//! Property-style tests for the paged KV-cache subsystem (`lt_nn::kv`)
//! and its memory-pressure scheduler.
//!
//! Like `tests/properties.rs`, these sweep seeded random cases instead
//! of using a property-testing crate (no crates.io in the container):
//! every failure prints the seed/case that produced it.
//!
//! The invariants:
//! 1. block-pool alloc/retain/release bookkeeping matches a trivial
//!    mirror model under random operation sequences;
//! 2. copy-on-write never lets one session's writes reach another
//!    session's view of a shared prefix;
//! 3. pool exhaustion always evicts the *highest-ticket* (most recently
//!    admitted) resident session;
//! 4. a preempted-and-resumed decode is bit-identical to an
//!    uninterrupted one — under swap-out for a *noisy* backend, and
//!    under recompute for a deterministic one;
//! 5. paged decode is bit-identical to the contiguous cache for any
//!    block size, whenever the pool is large enough to avoid preemption
//!    (the acceptance cross-validation).

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::core::ComputeBackend;
use lightening_transformer::core::{GaussianSampler, NativeBackend};
use lightening_transformer::dptc::DptcBackend;
use lightening_transformer::nn::decode::{
    DecodeReply, DecodeSession, DecoderConfig, DecoderLm, SessionConfig,
};
use lightening_transformer::nn::kv::{
    BlockPool, ModelKv, PagedKvCache, PreemptPolicy, PrefixIndex,
};
use lightening_transformer::nn::serve::decode::DecodeRequest;
use lightening_transformer::nn::serve::sched::{KvScheduler, KvServeConfig};
use lightening_transformer::nn::Tensor;

fn model() -> DecoderLm {
    let mut rng = GaussianSampler::new(17);
    DecoderLm::new(DecoderConfig::tiny(), &mut rng)
}

/// Invariant 1: the pool's refcount/free bookkeeping matches a mirror
/// model under random alloc/retain/release sequences.
#[test]
fn pool_bookkeeping_matches_a_mirror_model_under_random_ops() {
    for seed in 0..10u64 {
        let mut rng = GaussianSampler::new(300 + seed);
        let total = 4 + rng.below(12);
        let pool = BlockPool::new(total, 2, 4, 3);
        let mut mirror = vec![0u32; total];
        // Handles we hold, with multiplicity (a block appears once per
        // reference we own).
        let mut held: Vec<usize> = Vec::new();
        for step in 0..400 {
            match rng.below(3) {
                0 => match pool.alloc() {
                    Some(id) => {
                        assert_eq!(mirror[id], 0, "seed {seed} step {step}: reused live block");
                        mirror[id] = 1;
                        held.push(id);
                    }
                    None => {
                        assert!(
                            mirror.iter().all(|&c| c > 0),
                            "seed {seed} step {step}: alloc failed with free blocks"
                        );
                    }
                },
                1 if !held.is_empty() => {
                    let id = held[rng.below(held.len())];
                    pool.retain(id);
                    mirror[id] += 1;
                    held.push(id);
                }
                2 if !held.is_empty() => {
                    let i = rng.below(held.len());
                    let id = held.swap_remove(i);
                    let freed = pool.release(id);
                    mirror[id] -= 1;
                    assert_eq!(freed, mirror[id] == 0, "seed {seed} step {step}");
                }
                _ => {}
            }
            let free = mirror.iter().filter(|&&c| c == 0).count();
            assert_eq!(pool.free_blocks(), free, "seed {seed} step {step}");
            assert_eq!(pool.used_blocks(), total - free, "seed {seed} step {step}");
            for (id, &c) in mirror.iter().enumerate() {
                assert_eq!(pool.refcount(id), c, "seed {seed} step {step} block {id}");
            }
        }
    }
}

/// Invariant 2: once a prefix is shared, neither the owner's nor the
/// borrower's further writes can change what the other reads.
#[test]
fn cow_never_aliases_writes_into_a_shared_prefix() {
    for seed in 0..12u64 {
        let mut rng = GaussianSampler::new(400 + seed);
        let dim = 4;
        let pool = BlockPool::new(64, 1, dim, 3);
        let mut index = PrefixIndex::new();

        let shared_tokens = 4 + rng.below(7);
        let prompt: Vec<usize> = (0..shared_tokens).map(|i| i % 16).collect();
        let mut a = PagedKvCache::new(&pool, 1, dim);
        let rows = Tensor::from_fn(shared_tokens, dim, |i, j| {
            (seed * 100) as f32 + (i * dim + j) as f32
        });
        a.layer_mut(0).append(&rows, &rows);
        index.register(&prompt, a.block_refs(shared_tokens));

        let prefix = index.lookup(&pool, &prompt).expect("registered and live");
        let mut b = PagedKvCache::with_shared_prefix(&pool, 1, dim, prefix);
        let skipped = Tensor::from_fn(shared_tokens, dim, |_, _| -1.0);
        let w = b.layer_mut(0).append(&skipped, &skipped);
        assert_eq!(w.rows_written, 0, "seed {seed}: borrowed rows rewritten");

        let snapshot = a.layer_mut(0).context_keys();
        // Interleave random appends from both sessions.
        for step in 0..(2 + rng.below(6)) {
            let (who, mark) = if rng.below(2) == 0 {
                (&mut a, 1000.0)
            } else {
                (&mut b, 2000.0)
            };
            let t = 1 + rng.below(2);
            if who.len() + t > 24 {
                continue;
            }
            let x = Tensor::from_fn(t, dim, |i, j| mark + (step * 10 + i * dim + j) as f32);
            who.layer_mut(0).append(&x, &x);
        }
        // The shared prefix reads back unchanged from both sides.
        let a_now = a.layer_mut(0).context_keys();
        let b_now = b.layer_mut(0).context_keys();
        for pos in 0..shared_tokens {
            for j in 0..dim {
                assert_eq!(
                    a_now.get(pos, j),
                    snapshot.get(pos, j),
                    "seed {seed}: owner prefix"
                );
                assert_eq!(
                    b_now.get(pos, j),
                    snapshot.get(pos, j),
                    "seed {seed}: borrower prefix"
                );
            }
        }
        // Past the prefix, each session sees only its own marks.
        for (label, t) in [("owner", &mut a), ("borrower", &mut b)] {
            let keys = t.layer_mut(0).context_keys();
            let own_mark = if label == "owner" { 1000.0 } else { 2000.0 };
            for pos in shared_tokens..t.len() {
                let v = keys.get(pos, 0);
                assert!(
                    (own_mark..own_mark + 100.0).contains(&v),
                    "seed {seed}: {label} row {pos} holds foreign value {v}"
                );
            }
        }
    }
}

/// Invariant 3: whenever the reserve phase must evict, the victim is
/// the highest-ticket resident session — under random loads, block
/// sizes, and pool sizes.
#[test]
fn exhaustion_always_evicts_the_highest_ticket_resident() {
    let m = model();
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let mut saw_pressure = false;
    for seed in 0..6u64 {
        let mut rng = GaussianSampler::new(500 + seed);
        let block_tokens = [1, 2, 4][rng.below(3)];
        let min_blocks = DecoderConfig::tiny().max_seq.div_ceil(block_tokens) + 1;
        let kv = KvServeConfig {
            block_tokens,
            pool_blocks: min_blocks + rng.below(6),
            preempt: PreemptPolicy::SwapOut,
            ..KvServeConfig::default()
        };
        let mut sched = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 8);
        let n = 5 + rng.below(5);
        for t in 0..n as u64 {
            let plen = 1 + rng.below(6);
            sched.submit(
                t,
                DecodeRequest {
                    prompt: (0..plen).map(|i| (i + seed as usize) % 16).collect(),
                    max_new_tokens: 2 + rng.below(10),
                },
            );
        }
        let mut finished = 0;
        while sched.has_work() {
            sched.tick();
            finished += sched.drain_finished().len();
        }
        assert_eq!(finished, n, "seed {seed}: every request must complete");
        let stats = sched.stats();
        saw_pressure |= stats.preemptions > 0;
        for ev in &stats.preemption_events {
            assert_eq!(
                Some(ev.victim),
                ev.resident.iter().copied().max(),
                "seed {seed}: eviction must take the most recent admission"
            );
        }
        assert_eq!(sched.pool().used_blocks(), 0, "seed {seed}: blocks leaked");
    }
    assert!(saw_pressure, "the sweep never exercised pool exhaustion");
}

fn serve_through_pool<B: ComputeBackend + Clone>(
    m: &DecoderLm,
    sim: &Simulator,
    backend: B,
    kv: KvServeConfig,
    requests: &[DecodeRequest],
) -> (Vec<DecodeReply>, u64) {
    let mut sched = KvScheduler::new(m, sim, backend, SessionConfig::default(), kv, 16);
    for (t, r) in requests.iter().enumerate() {
        sched.submit(t as u64, r.clone());
    }
    let mut replies = Vec::new();
    while sched.has_work() {
        sched.tick();
        replies.extend(sched.drain_finished());
    }
    replies.sort_by_key(|&(t, _)| t);
    let preemptions = sched.stats().preemptions;
    (replies.into_iter().map(|(_, r)| r).collect(), preemptions)
}

/// Invariant 4: preemption changes scheduling, never results. A starved
/// pool (which must evict) serves the same replies as an ample one —
/// swap-out restores a noisy backend's cache bit for bit, and recompute
/// rebuilds a deterministic backend's cache exactly.
#[test]
fn preempted_decode_is_bit_identical_to_uninterrupted_decode() {
    let m = model();
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let requests: Vec<DecodeRequest> = (0..7)
        .map(|i| DecodeRequest {
            prompt: vec![(i * 2) % 16, (i + 5) % 16],
            max_new_tokens: 10,
        })
        .collect();
    let roomy = KvServeConfig {
        block_tokens: 2,
        pool_blocks: 512,
        ..KvServeConfig::default()
    };
    for (label, preempt) in [
        ("swap-out under a noisy backend", PreemptPolicy::SwapOut),
        (
            "recompute under a deterministic backend",
            PreemptPolicy::Recompute,
        ),
    ] {
        let tight = KvServeConfig {
            block_tokens: 2,
            pool_blocks: 25, // min for max_seq 48 — guaranteed pressure
            preempt,
            ..KvServeConfig::default()
        };
        let (base, tight_replies, evictions) = match preempt {
            PreemptPolicy::SwapOut => {
                let backend = DptcBackend::paper(8, 3);
                let (base, p0) = serve_through_pool(&m, &sim, backend.clone(), roomy, &requests);
                assert_eq!(p0, 0, "the roomy pool must not evict");
                let (tight_replies, p1) = serve_through_pool(&m, &sim, backend, tight, &requests);
                (base, tight_replies, p1)
            }
            PreemptPolicy::Recompute => {
                let (base, p0) = serve_through_pool(&m, &sim, NativeBackend, roomy, &requests);
                assert_eq!(p0, 0, "the roomy pool must not evict");
                let (tight_replies, p1) =
                    serve_through_pool(&m, &sim, NativeBackend, tight, &requests);
                (base, tight_replies, p1)
            }
        };
        assert!(evictions > 0, "{label}: the tight pool must evict");
        assert_eq!(base, tight_replies, "{label}: replies must not change");
    }
}

/// Invariant 5 (the acceptance cross-validation): for any block size,
/// a paged session over a pool large enough to avoid preemption is
/// bit-identical to the contiguous-cache session — tokens, per-token
/// costs, and KV byte accounting.
#[test]
fn paged_decode_is_bit_identical_to_contiguous_for_every_block_size() {
    let m = model();
    let cfg = m.config();
    let sim = Simulator::new(ArchConfig::lt_base(8));
    for block_tokens in [1, 3, 16] {
        for (ticket, prompt, n) in [(0u64, vec![1usize, 2, 3, 4, 5], 6), (9, vec![7, 7, 1], 12)] {
            let backend = DptcBackend::paper(8, 5);
            let mut contiguous = DecodeSession::new(
                &m,
                ticket,
                prompt.clone(),
                n,
                backend.clone(),
                SessionConfig::default(),
            );
            contiguous.prefill(&m, &sim);
            while !contiguous.is_done() {
                contiguous.step(&m, &sim);
            }

            let pool = BlockPool::new(200, cfg.layers, cfg.dim, block_tokens);
            let cache = PagedKvCache::new(&pool, cfg.layers, cfg.dim);
            let mut paged = DecodeSession::new_paged(
                &m,
                ticket,
                prompt,
                n,
                backend,
                SessionConfig::default(),
                cache,
            );
            paged.prefill(&m, &sim);
            while !paged.is_done() {
                paged.step(&m, &sim);
            }
            assert_eq!(
                contiguous.into_reply(),
                paged.into_reply(),
                "block_tokens={block_tokens}: paged and contiguous diverged"
            );
        }
    }
}
