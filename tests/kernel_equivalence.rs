//! The shared GEMM micro-kernel's equivalence contract.
//!
//! PR 7 reworked every exact matrix product onto the register-blocked,
//! cache-tiled `lt_core::kernel::tiled_gemm` and added the true integer
//! execution path (`lt_core::quantized_gemm`). These properties pin
//! what "rework" is allowed to mean:
//!
//! 1. **Tiled == naive, bit for bit.** Over seeded random sweeps and
//!    the edge shapes that straddle every tile boundary (`MR`, `NR`,
//!    `KC`), the tiled kernel returns *exactly* (`==`) what the
//!    textbook triple loop returns — for `f64` and `f32`, and for
//!    strided sub-views.
//! 2. **Every backend rides the same kernel.** The exact backends
//!    (`NativeBackend`, ideal DPTC) are bit-identical to the naive
//!    reference; every backend × fidelity is bit-identical under
//!    `ParallelBackend` at 1/2/4/8 threads (`split_seed` block streams
//!    make scheduling irrelevant).
//! 3. **Quantized error obeys the analytic per-group bound.** The
//!    i8/i4 integer GEMM's deviation from the exact `f64` product is
//!    bounded element-wise by the half-step triangle bound assembled
//!    from the operands' grouped scales.

use lightening_transformer::baselines::{MrrBackend, MziBackend, PcmBackend};
use lightening_transformer::core::kernel::{tiled_gemm, KC, MR, NR};
use lightening_transformer::core::{
    blocked_gemm, quantized_gemm, reference_gemm, ComputeBackend, GaussianSampler, Matrix32,
    Matrix64, NativeBackend, QuantizedMatrix, RunCtx,
};
use lightening_transformer::dptc::{DptcBackend, DptcConfig, Fidelity, NoiseModel};
use lightening_transformer::runtime::ParallelBackend;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Shapes that land exactly on, just under, and just over every tile
/// boundary of the micro-kernel, plus degenerate and vector shapes.
fn edge_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, KC + 3, 1),       // row vector x column vector, straddling KC
        (MR, NR, 3),          // exactly one register tile
        (MR - 1, NR - 1, 2),  // strictly inside one tile
        (MR + 1, NR + 1, KC), // one row/col of remainder lanes, full chunk
        (3 * MR, 2 * NR, KC - 1),
        (2 * MR + 3, 3 * NR + 5, KC + 7), // remainders on every axis
        (17, 29, 2 * KC + 1),             // multiple KC chunks with a tail
    ]
}

#[test]
fn tiled_f64_is_bit_identical_to_naive_on_edge_shapes_and_random_sweeps() {
    let mut rng = GaussianSampler::new(101);
    for (case, &(m, k, n)) in edge_shapes().iter().enumerate() {
        let a = Matrix64::randn(m, k, 1.0, &mut rng);
        let b = Matrix64::randn(k, n, 1.0, &mut rng);
        assert_eq!(
            tiled_gemm(&a.view(), &b.view()),
            reference_gemm(&a.view(), &b.view()),
            "edge case {case}: ({m},{k},{n})"
        );
    }
    for case in 0..60 {
        let m = 1 + rng.below(50);
        let k = 1 + rng.below(2 * KC);
        let n = 1 + rng.below(50);
        let a = Matrix64::randn(m, k, 1.0, &mut rng);
        let b = Matrix64::randn(k, n, 1.0, &mut rng);
        assert_eq!(
            tiled_gemm(&a.view(), &b.view()),
            reference_gemm(&a.view(), &b.view()),
            "random case {case}: ({m},{k},{n})"
        );
    }
}

#[test]
fn tiled_f32_is_bit_identical_to_naive() {
    // The kernel is generic over the scalar; the f32 instantiation (the
    // NN stack's element type) must honor the same bit-identity.
    let mut rng = GaussianSampler::new(103);
    for &(m, k, n) in &edge_shapes() {
        let a = Matrix32::randn(m, k, 1.0, &mut rng);
        let b = Matrix32::randn(k, n, 1.0, &mut rng);
        assert_eq!(
            tiled_gemm(&a.view(), &b.view()),
            reference_gemm(&a.view(), &b.view()),
            "shape ({m},{k},{n})"
        );
    }
}

#[test]
fn tiled_handles_strided_views_bit_identically() {
    // Sub-views keep the parent's row stride, so the kernel's packing
    // loops must respect strides rather than assume contiguity.
    let mut rng = GaussianSampler::new(107);
    let parent = Matrix64::randn(64, 64, 1.0, &mut rng);
    for &(r0, c0, m, k, n) in &[(0usize, 0usize, 5usize, 9usize, 7usize), (3, 2, 31, 40, 13)] {
        let a = parent.view().block(r0, c0, m, k);
        let b = parent.view().block(c0, r0, k, n);
        assert_eq!(
            tiled_gemm(&a, &b),
            reference_gemm(&a.to_matrix().view(), &b.to_matrix().view()),
            "block ({r0},{c0},{m},{k},{n})"
        );
    }
}

#[test]
fn exact_backends_are_bit_identical_to_the_naive_reference() {
    // NativeBackend and the ideal DPTC fidelity both delegate to the
    // tiled kernel — so they must equal the naive loop exactly, not
    // approximately.
    let mut rng = GaussianSampler::new(109);
    let ideal = DptcBackend::ideal(DptcConfig::lt_paper());
    for &(m, k, n) in &[(1, 1, 1), (MR + 1, NR + 3, 5), (33, 41, 29)] {
        let a = Matrix64::randn(m, k, 1.0, &mut rng);
        let b = Matrix64::randn(k, n, 1.0, &mut rng);
        let want = reference_gemm(&a.view(), &b.view());
        let mut ctx = RunCtx::new(7);
        assert_eq!(NativeBackend.gemm(a.view(), b.view(), &mut ctx), want);
        assert_eq!(ideal.gemm(a.view(), b.view(), &mut ctx), want);
    }
}

/// parallel(B) == sequential blocked B at every thread count, with the
/// inline-execution shortcut disabled so every block really crosses the
/// worker pool.
fn assert_thread_count_invariant<B>(backend: B, m: usize, k: usize, n: usize, label: &str)
where
    B: ComputeBackend + Clone + Send + Sync + 'static,
{
    let mut rng = GaussianSampler::new(113);
    let a = Matrix64::randn(m, k, 1.0, &mut rng);
    let b = Matrix64::randn(k, n, 1.0, &mut rng);
    let want = blocked_gemm(&backend, a.view(), b.view(), &mut RunCtx::new(3));
    for threads in THREAD_COUNTS {
        let par = ParallelBackend::new(backend.clone(), threads).with_min_parallel_macs(0);
        let got = par.gemm(a.view(), b.view(), &mut RunCtx::new(3));
        assert_eq!(got, want, "{label}: diverged at {threads} threads");
    }
}

#[test]
fn every_backend_and_fidelity_is_thread_count_invariant() {
    // The reworked kernel and the reworked DPTC hot path must preserve
    // the runtime's core contract: what a GEMM computes never depends
    // on how many threads computed it.
    assert_thread_count_invariant(NativeBackend, 37, 23, 19, "native");
    assert_thread_count_invariant(
        DptcBackend::ideal(DptcConfig::lt_paper()),
        37,
        23,
        19,
        "dptc-ideal",
    );
    assert_thread_count_invariant(DptcBackend::paper(8, 5), 37, 23, 19, "dptc-analytic-8b");
    assert_thread_count_invariant(DptcBackend::paper(4, 5), 37, 23, 19, "dptc-analytic-4b");
    let circuit = DptcBackend::new(
        DptcConfig::lt_paper(),
        Fidelity::Circuit {
            noise: NoiseModel::paper_default(),
            seed: 11,
        },
        8,
    );
    // Circuit fidelity is ~10x slower; a smaller product still spans
    // several row blocks.
    assert_thread_count_invariant(circuit, 25, 13, 13, "dptc-circuit");
    assert_thread_count_invariant(MziBackend::paper(8), 37, 23, 19, "mzi");
    assert_thread_count_invariant(MrrBackend::paper(8), 37, 23, 19, "mrr");
    assert_thread_count_invariant(PcmBackend::paper(8), 37, 23, 19, "pcm");
}

/// The analytic element-wise error bound for `quantized_gemm(aq, bq)`
/// against the exact `f64` product: within each scale group the codes
/// deviate from the true operands by at most half a step, so
/// `|sum (a+ea)(b+eb) - sum a b| <= sum |a| sb/2 + |b| sa/2 + sa sb / 4`.
fn per_group_bound(
    a: &Matrix32,
    b: &Matrix32,
    aq: &QuantizedMatrix,
    bq: &QuantizedMatrix,
    i: usize,
    j: usize,
) -> f64 {
    let k = a.cols();
    let group = aq.group_size();
    let mut bound = 0.0f64;
    for l in 0..k {
        let g = l / group;
        let sa = aq.step(i, g) as f64 / 2.0;
        let sb = bq.step(j, g) as f64 / 2.0;
        let av = a.get(i, l).abs() as f64;
        let bv = b.get(l, j).abs() as f64;
        bound += av * sb + bv * sa + sa * sb;
    }
    bound
}

#[test]
fn quantized_gemm_error_stays_within_the_analytic_per_group_bound() {
    // Sweep both work modes (8-bit and 4-bit), several group sizes
    // (including one that doesn't divide k, leaving a ragged tail
    // group), and seeded random operands. The integer product must sit
    // inside the half-step triangle bound everywhere — plus a small
    // slack for the f32 cross-group accumulation itself.
    let mut rng = GaussianSampler::new(127);
    for &bits in &[8u32, 4] {
        for &group in &[8usize, 32, 13] {
            for case in 0..6 {
                let m = 1 + rng.below(8);
                let k = 1 + rng.below(64);
                let n = 1 + rng.below(8);
                let a = Matrix32::randn(m, k, 0.8, &mut rng);
                let b = Matrix32::randn(k, n, 0.6, &mut rng);
                let aq = QuantizedMatrix::quantize_rows(&a.view(), bits, group);
                let bq = QuantizedMatrix::quantize_cols(&b.view(), bits, group);
                let y = quantized_gemm(&aq, &bq);
                // Exact product in f64 — quantization is the only error
                // source we're bounding, so remove f32 accumulation
                // noise from the reference side.
                for i in 0..m {
                    for j in 0..n {
                        let exact: f64 = (0..k)
                            .map(|l| a.get(i, l) as f64 * b.get(l, j) as f64)
                            .sum();
                        let bound = per_group_bound(&a, &b, &aq, &bq, i, j);
                        let err = (y.get(i, j) as f64 - exact).abs();
                        let slack = 1e-4 * (1.0 + exact.abs());
                        assert!(
                            err <= bound + slack,
                            "{bits}-bit group {group} case {case} ({m},{k},{n}) \
                             element ({i},{j}): error {err} exceeds bound {bound}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn quantized_gemm_equals_the_dequantized_float_product_up_to_accumulation() {
    // Structural cross-check: the integer pipeline computes the same
    // mathematical product as dequantize-then-matmul; only the f32
    // summation order may differ, never group scaling or code decode.
    let mut rng = GaussianSampler::new(131);
    let a = Matrix32::randn(6, 40, 1.0, &mut rng);
    let b = Matrix32::randn(40, 5, 1.0, &mut rng);
    for &(bits, group) in &[(8u32, 16usize), (4, 10)] {
        let aq = QuantizedMatrix::quantize_rows(&a.view(), bits, group);
        let bq = QuantizedMatrix::quantize_cols(&b.view(), bits, group);
        let y = quantized_gemm(&aq, &bq);
        let float = aq.dequantize().matmul(&bq.dequantize());
        let err = y.max_abs_diff(&float);
        assert!(
            err < 1e-4,
            "{bits}-bit/group {group}: integer and dequantized paths tell \
             different products (diff {err})"
        );
    }
}
