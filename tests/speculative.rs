//! The speculative-decoding contract, end to end.
//!
//! Greedy draft + greedy verify + KV rollback must leave the output
//! stream **bit-identical** to plain greedy decode — for every
//! speculation depth, every backend (deterministic native and noisy
//! photonic), both cache paths (contiguous and paged), and any
//! `ParallelBackend` thread count. Speculation may only change *how
//! fast* tokens are produced (scheduler ticks, replayed cycles), never
//! *which* tokens. These tests pin that contract plus the rollback
//! bookkeeping: a speculative session's paged cache never leaks a
//! block — after every step the `BlockPool` free count matches the
//! post-rollback context exactly, and a drained pool ends full.

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::core::{ComputeBackend, GaussianSampler, NativeBackend};
use lightening_transformer::dptc::DptcBackend;
use lightening_transformer::nn::decode::{
    DecodeReply, DecodeSession, DecoderConfig, DecoderLm, DraftLm, SessionConfig,
};
use lightening_transformer::nn::kv::{BlockPool, ModelKv, PagedKvCache};
use lightening_transformer::nn::serve::decode::{DecodeServeConfig, SpecConfig};
use lightening_transformer::nn::serve::lifecycle::SloFrontend;
use lightening_transformer::nn::serve::sched::KvServeConfig;
use lightening_transformer::runtime::loadgen::LoadgenConfig;
use lightening_transformer::runtime::ParallelBackend;

const SPEC_KS: [usize; 4] = [1, 2, 4, 8];
const PROMPT: [usize; 5] = [3, 1, 4, 1, 5];
const MAX_NEW: usize = 10;

/// The tapered target (deep blocks scaled so the self-speculative
/// draft agrees at a useful rate; bit-identity must hold regardless).
fn tapered_model(seed: u64) -> DecoderLm {
    let mut rng = GaussianSampler::new(seed);
    let mut model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    model.taper_deep_blocks(0.25);
    model
}

/// Runs one session to completion on a contiguous cache: plain steps
/// at `k == 0`, speculative steps otherwise.
fn run_contiguous<B: ComputeBackend + Clone>(
    model: &DecoderLm,
    backend: B,
    k: usize,
) -> DecodeReply {
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let draft = DraftLm::from_target(model);
    let mut session = DecodeSession::new(
        model,
        0,
        PROMPT.to_vec(),
        MAX_NEW,
        backend,
        SessionConfig::default(),
    );
    session.prefill(model, &sim);
    while !session.is_done() {
        if k == 0 {
            session.step(model, &sim);
        } else {
            session.spec_step(model, &draft, &sim, k);
        }
    }
    session.into_reply()
}

/// Same, on a paged cache over `pool`.
fn run_paged<B: ComputeBackend + Clone>(
    model: &DecoderLm,
    backend: B,
    k: usize,
    pool: &BlockPool,
) -> DecodeReply {
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let draft = DraftLm::from_target(model);
    let config = model.config();
    let cache = PagedKvCache::new(pool, config.layers, config.dim);
    let mut session = DecodeSession::new_paged(
        model,
        0,
        PROMPT.to_vec(),
        MAX_NEW,
        backend,
        SessionConfig::default(),
        cache,
    );
    session.prefill(model, &sim);
    while !session.is_done() {
        if k == 0 {
            session.step(model, &sim);
        } else {
            session.spec_step(model, &draft, &sim, k);
        }
    }
    session.into_reply()
}

#[test]
fn speculative_decode_is_bit_identical_on_contiguous_caches() {
    // Full-reply equality (tokens AND per-token replayed costs AND KV
    // footprint) across seeds, depths, and both backend families.
    for seed in [1u64, 9, 23] {
        let model = tapered_model(seed);
        let exact = run_contiguous(&model, NativeBackend, 0);
        let noisy = run_contiguous(&model, DptcBackend::paper(8, 3), 0);
        assert_eq!(exact.tokens.len(), MAX_NEW);
        for k in SPEC_KS {
            assert_eq!(
                run_contiguous(&model, NativeBackend, k),
                exact,
                "native backend diverged at seed {seed}, k={k}"
            );
            assert_eq!(
                run_contiguous(&model, DptcBackend::paper(8, 3), k),
                noisy,
                "noisy DPTC backend diverged at seed {seed}, k={k}"
            );
        }
    }
}

#[test]
fn speculative_decode_is_bit_identical_on_paged_caches() {
    let config = DecoderConfig::tiny();
    for seed in [5u64, 17] {
        let model = tapered_model(seed);
        // A roomy pool: the contract under pressure is the scheduler
        // tests' business; here the paged session itself must match
        // both its plain-paged and contiguous siblings.
        let pool = BlockPool::new(64, config.layers, config.dim, 4);
        let exact = run_paged(&model, NativeBackend, 0, &pool);
        assert_eq!(
            exact,
            run_contiguous(&model, NativeBackend, 0),
            "paged plain decode must match contiguous (seed {seed})"
        );
        let noisy = run_paged(&model, DptcBackend::paper(8, 3), 0, &pool);
        for k in SPEC_KS {
            assert_eq!(
                run_paged(&model, NativeBackend, k, &pool),
                exact,
                "native paged diverged at seed {seed}, k={k}"
            );
            assert_eq!(
                run_paged(&model, DptcBackend::paper(8, 3), k, &pool),
                noisy,
                "noisy paged diverged at seed {seed}, k={k}"
            );
        }
        assert_eq!(
            pool.used_blocks(),
            0,
            "finished sessions must free all blocks"
        );
    }
}

#[test]
fn rollback_restores_the_block_pool_free_count_exactly() {
    // After every speculative step the session's cache must hold
    // exactly the committed context — the verify rows' rollback
    // returned every tail block — and the pool's free count must be
    // the total minus what that context needs. No leak, no slack.
    let config = DecoderConfig::tiny();
    // Untapered target on the noisy backend, on purpose: draft and
    // target greedy streams disagree often, so rounds have tail blocks
    // to roll back (bit-identity is the other tests' subject). Seed 5
    // yields both accepted and rolled-back proposals.
    let mut rng = GaussianSampler::new(5);
    let model = DecoderLm::new(config, &mut rng);
    let draft = DraftLm::from_target(&model);
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let pool = BlockPool::new(64, config.layers, config.dim, 4);
    let cache = PagedKvCache::new(&pool, config.layers, config.dim);
    let mut session = DecodeSession::new_paged(
        &model,
        0,
        PROMPT.to_vec(),
        MAX_NEW,
        DptcBackend::paper(8, 9),
        SessionConfig::default(),
        cache,
    );
    session.prefill(&model, &sim);
    while !session.is_done() {
        let report = session.spec_step(&model, &draft, &sim, 4);
        assert!(
            report.outcome.rollback <= 4,
            "at most k proposals roll back"
        );
        let kv = session.paged_kv().expect("session is paged");
        // The cache holds everything *fed*: the prompt plus all sampled
        // tokens except the newest, which is fed by the next step.
        let context = PROMPT.len() + session.tokens().len() - 1;
        assert_eq!(kv.len(), context, "cache must hold exactly the context");
        let needed = context.div_ceil(pool.block_tokens());
        assert_eq!(
            kv.resident_blocks(),
            needed,
            "no speculative tail block survives"
        );
        assert_eq!(
            pool.free_blocks(),
            pool.total_blocks() - needed,
            "rollback must restore the pool free count exactly"
        );
    }
    let stats = session.spec_stats();
    assert!(stats.rolled_back > 0, "the sweep must exercise rollback");
    assert!(
        stats.accepted > 0,
        "and partial acceptance, not just misses"
    );
    drop(session);
    assert_eq!(pool.free_blocks(), pool.total_blocks(), "pool drains full");
}

#[test]
fn the_spec_serving_report_is_invariant_to_gemm_thread_count() {
    // The whole speculative ServingReport — acceptance counters, draft
    // overhead, percentiles, every timestamp — must not move when the
    // photonic GEMMs fan out across 1/2/4/8 threads.
    let trace = LoadgenConfig::smoke(11, 10).generate();
    let model = tapered_model(3);
    let arch = ArchConfig::lt_base(8);
    let sim = Simulator::new(arch.clone());
    let config = DecodeServeConfig {
        max_active: 4,
        arch: arch.clone(),
        kv: KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            ..KvServeConfig::default()
        },
        spec: SpecConfig::with_k(4),
        ..DecodeServeConfig::default()
    };
    let run = |threads: usize| {
        let backend =
            ParallelBackend::new(DptcBackend::paper(8, 17), threads).with_min_parallel_macs(0);
        SloFrontend::new(&model, &sim, backend, &config).run_open(&trace)
    };
    let (base_records, base_report) = run(1);
    assert!(base_report.spec_steps > 0, "speculation must actually run");
    assert!(base_report.spec_proposed > 0);
    assert!(base_report.draft_cycles > 0);
    for threads in [2usize, 4, 8] {
        let (records, report) = run(threads);
        assert_eq!(report, base_report, "report diverged at {threads} threads");
        assert_eq!(
            records, base_records,
            "records diverged at {threads} threads"
        );
    }
}
