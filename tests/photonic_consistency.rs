//! Cross-crate consistency: the circuit-level netlist, the analytic Eq. 9
//! model, and the tensor-core GEMM must all tell the same story.

use lightening_transformer::core::{GaussianSampler, Matrix64};
use lightening_transformer::dptc::{DDot, DdotCircuit, Dptc, DptcConfig, Fidelity, NoiseModel};
use lightening_transformer::photonics::wdm::DispersionModel;

fn rand_vec(rng: &mut GaussianSampler, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

/// Deterministic (noise-free) circuit and analytic outputs agree to
/// numerical precision, across wavelength counts.
#[test]
fn circuit_and_analytic_agree_without_stochastic_noise() {
    let noise = NoiseModel::noiseless().with_dispersion(DispersionModel::paper());
    let mut rng = GaussianSampler::new(1);
    for n in [4usize, 12, 25, 40] {
        let circuit = DdotCircuit::paper(n);
        let analytic = DDot::new(n);
        for _ in 0..20 {
            let x = rand_vec(&mut rng, n);
            let y = rand_vec(&mut rng, n);
            let c = circuit.dot(&x, &y);
            let a = analytic.dot_noisy(&x, &y, &noise, 0);
            assert!((c - a).abs() < 1e-2, "n={n}: circuit {c} vs analytic {a}");
        }
    }
}

/// With stochastic noise, circuit and analytic models have statistically
/// matching error magnitudes.
#[test]
fn circuit_and_analytic_error_statistics_match() {
    let noise = NoiseModel::paper_default();
    let mut rng = GaussianSampler::new(2);
    let circuit = DdotCircuit::paper(12);
    let analytic = DDot::new(12);
    let trials = 300;
    let mut circuit_err = 0.0;
    let mut analytic_err = 0.0;
    for t in 0..trials {
        let x = rand_vec(&mut rng, 12);
        let y = rand_vec(&mut rng, 12);
        let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        circuit_err += (circuit.dot_noisy(&x, &y, &noise, t) - exact).abs();
        analytic_err += (analytic.dot_noisy(&x, &y, &noise, 10_000 + t) - exact).abs();
    }
    let ratio = circuit_err / analytic_err;
    assert!(
        (0.6..1.6).contains(&ratio),
        "mean-error ratio circuit/analytic = {ratio}"
    );
}

/// A DPTC one-shot MM at zero noise equals the exact product; at paper
/// noise it stays within a bounded envelope; more wavelengths do not blow
/// up the error (the dispersion-robustness claim).
#[test]
fn dptc_error_envelope_is_stable_across_wavelength_counts() {
    let mut rng = GaussianSampler::new(3);
    for nlambda in [6usize, 12, 24] {
        let core = Dptc::new(DptcConfig::new(8, 8, nlambda));
        let a = Matrix64::from_fn(8, nlambda, |_, _| rng.uniform_in(-1.0, 1.0));
        let b = Matrix64::from_fn(nlambda, 8, |_, _| rng.uniform_in(-1.0, 1.0));
        let exact = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
        let noisy = core.matmul(a.view(), b.view(), &Fidelity::paper_noisy(5));
        let max_rel = noisy.max_abs_diff(&exact) / (nlambda as f64).sqrt();
        assert!(
            max_rel < 0.25,
            "nlambda={nlambda}: normalized max error {max_rel}"
        );
    }
}

/// End-to-end: a tiled GEMM through the noisy core approximates the exact
/// product with a relative Frobenius error of a few percent.
#[test]
fn tiled_gemm_relative_error_is_small() {
    let mut rng = GaussianSampler::new(4);
    let core = Dptc::new(DptcConfig::lt_paper());
    let (m, k, n) = (30, 50, 20);
    let a = Matrix64::from_fn(m, k, |_, _| rng.uniform_in(-1.0, 1.0));
    let b = Matrix64::from_fn(k, n, |_, _| rng.uniform_in(-1.0, 1.0));
    let noisy = core.gemm(a.view(), b.view(), 8, &Fidelity::paper_noisy(6));
    let exact = lightening_transformer::core::reference_gemm(&a.view(), &b.view());
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in noisy.data().iter().zip(exact.data()) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    let rel = (num / den).sqrt();
    assert!(rel < 0.15, "relative Frobenius error {rel}");
}
