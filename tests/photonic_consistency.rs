//! Cross-crate consistency: the circuit-level netlist, the analytic Eq. 9
//! model, and the tensor-core GEMM must all tell the same story.

use lightening_transformer::dptc::{DDot, DdotCircuit, Dptc, DptcConfig, NoiseModel};
use lightening_transformer::photonics::noise::GaussianSampler;
use lightening_transformer::photonics::wdm::DispersionModel;

fn rand_vec(rng: &mut GaussianSampler, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

/// Deterministic (noise-free) circuit and analytic outputs agree to
/// numerical precision, across wavelength counts.
#[test]
fn circuit_and_analytic_agree_without_stochastic_noise() {
    let noise = NoiseModel::noiseless().with_dispersion(DispersionModel::paper());
    let mut rng = GaussianSampler::new(1);
    for n in [4usize, 12, 25, 40] {
        let circuit = DdotCircuit::paper(n);
        let analytic = DDot::new(n);
        for _ in 0..20 {
            let x = rand_vec(&mut rng, n);
            let y = rand_vec(&mut rng, n);
            let c = circuit.dot(&x, &y);
            let a = analytic.dot_noisy(&x, &y, &noise, 0);
            assert!(
                (c - a).abs() < 1e-2,
                "n={n}: circuit {c} vs analytic {a}"
            );
        }
    }
}

/// With stochastic noise, circuit and analytic models have statistically
/// matching error magnitudes.
#[test]
fn circuit_and_analytic_error_statistics_match() {
    let noise = NoiseModel::paper_default();
    let mut rng = GaussianSampler::new(2);
    let circuit = DdotCircuit::paper(12);
    let analytic = DDot::new(12);
    let trials = 300;
    let mut circuit_err = 0.0;
    let mut analytic_err = 0.0;
    for t in 0..trials {
        let x = rand_vec(&mut rng, 12);
        let y = rand_vec(&mut rng, 12);
        let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        circuit_err += (circuit.dot_noisy(&x, &y, &noise, t) - exact).abs();
        analytic_err += (analytic.dot_noisy(&x, &y, &noise, 10_000 + t) - exact).abs();
    }
    let ratio = circuit_err / analytic_err;
    assert!(
        (0.6..1.6).contains(&ratio),
        "mean-error ratio circuit/analytic = {ratio}"
    );
}

/// A DPTC one-shot MM at zero noise equals the exact product; at paper
/// noise it stays within a bounded envelope; more wavelengths do not blow
/// up the error (the dispersion-robustness claim).
#[test]
fn dptc_error_envelope_is_stable_across_wavelength_counts() {
    let mut rng = GaussianSampler::new(3);
    for nlambda in [6usize, 12, 24] {
        let core = Dptc::new(DptcConfig::new(8, 8, nlambda));
        let a: Vec<Vec<f64>> = (0..8).map(|_| rand_vec(&mut rng, nlambda)).collect();
        let b: Vec<Vec<f64>> = (0..nlambda).map(|_| rand_vec(&mut rng, 8)).collect();
        let exact = core.matmul_ideal(&a, &b);
        let noisy = core.matmul_noisy(&a, &b, &NoiseModel::paper_default(), 5);
        let mut max_rel = 0.0f64;
        for i in 0..8 {
            for j in 0..8 {
                let rel = (noisy[i][j] - exact[i][j]).abs() / (nlambda as f64).sqrt();
                max_rel = max_rel.max(rel);
            }
        }
        assert!(
            max_rel < 0.25,
            "nlambda={nlambda}: normalized max error {max_rel}"
        );
    }
}

/// End-to-end: a tiled GEMM through the noisy core approximates the exact
/// product with a relative Frobenius error of a few percent.
#[test]
fn tiled_gemm_relative_error_is_small() {
    let mut rng = GaussianSampler::new(4);
    let core = Dptc::new(DptcConfig::lt_paper());
    let (m, k, n) = (30, 50, 20);
    let a: Vec<f64> = (0..m * k).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
    let b: Vec<f64> = (0..k * n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
    let noisy = core.gemm(&a, &b, m, k, n, 8, &NoiseModel::paper_default(), 6);
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..m {
        for j in 0..n {
            let exact: f64 = (0..k).map(|l| a[i * k + l] * b[l * n + j]).sum();
            num += (noisy[i * n + j] - exact) * (noisy[i * n + j] - exact);
            den += exact * exact;
        }
    }
    let rel = (num / den).sqrt();
    assert!(rel < 0.15, "relative Frobenius error {rel}");
}
