//! The parallel runtime's determinism contract.
//!
//! `ParallelBackend` partitions every GEMM into the canonical
//! `row_blocks` work items, each with a `split_seed`-derived noise
//! stream, so thread scheduling can change *when* a block runs but never
//! *what* it computes. These tests pin the contract:
//!
//! * parallel output is bit-identical to the wrapped `DptcBackend` for
//!   every `Fidelity` variant (Ideal / AnalyticNoisy / Circuit) at every
//!   thread count;
//! * the same holds for the exact `NativeBackend` and (relative to the
//!   blocked sequential reference) for a stochastic baseline backend;
//! * `BatchQueue` hands out requests in strict FIFO ticket order, so no
//!   request is starved or reordered;
//! * the batching inference server returns logits — and per-request
//!   hardware costs — that do not depend on worker count, batch size,
//!   or intra-GEMM thread count;
//! * the wired serving path (`ServeConfig::threads` /
//!   `DecodeServeConfig::threads`, the `LT_THREADS` knob) leaves
//!   forward replies, decode token streams, and memory-pressured paged
//!   replies bit-identical at 1/2/4/8 threads.

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::baselines::PcmBackend;
use lightening_transformer::core::{
    blocked_gemm, ComputeBackend, GaussianSampler, Matrix64, NativeBackend, RunCtx,
};
use lightening_transformer::dptc::{DptcBackend, DptcConfig, Fidelity, NoiseModel};
use lightening_transformer::nn::decode::{DecodeReply, DecoderConfig, DecoderLm, SessionConfig};
use lightening_transformer::nn::kv::PreemptPolicy;
use lightening_transformer::nn::layers::ForwardCtx;
use lightening_transformer::nn::model::{Classifier, ModelConfig};
use lightening_transformer::nn::serve::decode::{DecodeRequest, DecodeServeConfig, DecodeServer};
use lightening_transformer::nn::serve::sched::{KvScheduler, KvServeConfig};
use lightening_transformer::nn::serve::{Request, ServeConfig, Server};
use lightening_transformer::nn::{
    BackendEngine, QuantConfig, Tensor, TextClassifier, VisionTransformer,
};
use lightening_transformer::runtime::{BatchQueue, ParallelBackend, ThreadsConfig};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix64, Matrix64) {
    let mut rng = GaussianSampler::new(seed);
    (
        Matrix64::randn(m, k, 1.0, &mut rng),
        Matrix64::randn(k, n, 1.0, &mut rng),
    )
}

/// parallel(B) == B, bit for bit, for every thread count — with the
/// inline-execution gate removed, so the multi-thread cases genuinely
/// dispatch every row block through the worker pool.
fn assert_parallel_matches_wrapped<B>(backend: B, m: usize, k: usize, n: usize, label: &str)
where
    B: ComputeBackend + Clone + Send + Sync + 'static,
{
    let (a, b) = rand_pair(m, k, n, 0xC0FFEE);
    let want = backend.gemm(a.view(), b.view(), &mut RunCtx::new(99));
    for threads in THREAD_COUNTS {
        let par = ParallelBackend::new(backend.clone(), threads).with_min_parallel_macs(0);
        let got = par.gemm(a.view(), b.view(), &mut RunCtx::new(99));
        assert_eq!(got, want, "{label} diverged at {threads} threads");
    }
}

#[test]
fn parallel_equals_wrapped_dptc_ideal() {
    assert_parallel_matches_wrapped(
        DptcBackend::ideal(DptcConfig::lt_paper()),
        61,
        40,
        27,
        "dptc-ideal",
    );
}

#[test]
fn parallel_equals_wrapped_dptc_analytic_noisy() {
    assert_parallel_matches_wrapped(DptcBackend::paper(8, 21), 61, 40, 27, "dptc-analytic");
}

#[test]
fn parallel_equals_wrapped_dptc_circuit() {
    // Circuit-level fidelity propagates fields through the device
    // netlist (~10x slower), so keep the product small: still multiple
    // row strips and edge tiles.
    let backend = DptcBackend::new(
        DptcConfig::lt_paper(),
        Fidelity::Circuit {
            noise: NoiseModel::paper_default(),
            seed: 4,
        },
        8,
    );
    assert_parallel_matches_wrapped(backend, 25, 13, 13, "dptc-circuit");
}

#[test]
fn parallel_equals_wrapped_native() {
    assert_parallel_matches_wrapped(NativeBackend, 73, 31, 44, "native");
}

#[test]
fn parallel_stochastic_baseline_is_thread_count_invariant() {
    // The PCM baseline's plain `gemm` is not the blocked loop, so the
    // reference here is the canonical blocked sequential execution —
    // which the parallel wrapper must reproduce at every thread count.
    let backend = PcmBackend::paper(8);
    let (a, b) = rand_pair(48, 32, 24, 7);
    let want = blocked_gemm(&backend, a.view(), b.view(), &mut RunCtx::new(5));
    for threads in THREAD_COUNTS {
        let par = ParallelBackend::new(backend, threads).with_min_parallel_macs(0);
        let got = par.gemm(a.view(), b.view(), &mut RunCtx::new(5));
        assert_eq!(got, want, "pcm diverged at {threads} threads");
    }
}

#[test]
fn parallel_backend_drops_into_an_engine_unchanged() {
    // ParallelBackend is itself a ComputeBackend: BackendEngine accepts
    // it like any other backend and produces identical results.
    use lightening_transformer::nn::engine::MatmulEngine;
    use lightening_transformer::nn::BackendEngine;
    let a = Tensor::from_fn(40, 36, |i, j| ((i + j) as f32 * 0.05).sin());
    let b = Tensor::from_fn(36, 40, |i, j| ((i * j) as f32 * 0.03).cos());
    let mut seq = BackendEngine::new(DptcBackend::paper(8, 3), 11);
    let mut par = BackendEngine::new(ParallelBackend::new(DptcBackend::paper(8, 3), 4), 11);
    assert_eq!(seq.matmul(&a, &b), par.matmul(&a, &b));
    assert_eq!(par.name(), "parallel(dptc-analytic)");
}

#[test]
fn quantized_forward_is_invariant_to_gemm_thread_count() {
    // The true integer path (i8/i4 weight-bearing layers) composes with
    // intra-GEMM parallelism: the quantized linear layers execute on
    // integer codes while attention QK/AV still flow through the
    // (parallel, noisy) backend, so the whole forward must stay
    // bit-identical at every thread count.
    let mut rng = GaussianSampler::new(41);
    let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let patches = Tensor::randn(16, 16, 1.0, &mut rng);
    for quant in [QuantConfig::int8(), QuantConfig::int4()] {
        let run = |threads: usize| -> Tensor {
            let mut model = vision.clone();
            let backend =
                ParallelBackend::new(DptcBackend::paper(8, 17), threads).with_min_parallel_macs(0);
            let mut engine = BackendEngine::new(backend, 11);
            let mut nrng = GaussianSampler::new(0);
            let mut ctx = ForwardCtx::inference(&mut engine, quant, &mut nrng);
            model.forward(&patches, &mut ctx)
        };
        let base = run(1);
        for threads in THREAD_COUNTS {
            assert_eq!(
                base,
                run(threads),
                "quantized ({quant:?}) forward diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn quantized_paged_decode_survives_memory_pressure_unchanged() {
    // One quantized pressure scenario through the paged-KV scheduler
    // (the `kv_properties.rs` harness): an i8 decode stream served from
    // a pool tight enough to force swap-out evictions must return the
    // same replies as the same stream served from an ample pool —
    // preemption may reschedule integer-path sessions, never change
    // what they generate.
    let mut rng = GaussianSampler::new(53);
    let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let session = SessionConfig {
        quant: QuantConfig::int8(),
        ..SessionConfig::default()
    };
    let requests: Vec<DecodeRequest> = (0..7)
        .map(|i| DecodeRequest {
            prompt: vec![(i * 2) % 16, (i + 5) % 16],
            max_new_tokens: 10,
        })
        .collect();
    let serve = |kv: KvServeConfig| -> (Vec<DecodeReply>, u64) {
        let mut sched = KvScheduler::new(&model, &sim, DptcBackend::paper(8, 3), session, kv, 16);
        for (t, r) in requests.iter().enumerate() {
            sched.submit(t as u64, r.clone());
        }
        let mut replies = Vec::new();
        while sched.has_work() {
            sched.tick();
            replies.extend(sched.drain_finished());
        }
        replies.sort_by_key(|&(t, _)| t);
        let preemptions = sched.stats().preemptions;
        (replies.into_iter().map(|(_, r)| r).collect(), preemptions)
    };
    let (roomy, p0) = serve(KvServeConfig {
        block_tokens: 2,
        pool_blocks: 512,
        ..KvServeConfig::default()
    });
    assert_eq!(p0, 0, "the roomy pool must not evict");
    let (tight, p1) = serve(KvServeConfig {
        block_tokens: 2,
        pool_blocks: 25, // min for max_seq 48 — guaranteed pressure
        preempt: PreemptPolicy::SwapOut,
        ..KvServeConfig::default()
    });
    assert!(p1 > 0, "the tight pool must evict");
    assert_eq!(roomy, tight, "preemption changed an i8 decode's replies");
}

#[test]
fn batch_queue_is_fifo_and_fair_under_concurrency() {
    let queue = Arc::new(BatchQueue::new(5));
    let submitters: Vec<_> = (0..3u32)
        .map(|s| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for i in 0..40u32 {
                    queue.submit((s, i));
                }
            })
        })
        .collect();
    let consumer = {
        let queue = Arc::clone(&queue);
        std::thread::spawn(move || {
            let mut drained = Vec::new();
            while let Some(batch) = queue.next_batch() {
                assert!(batch.len() <= 5, "batch size must stay bounded");
                drained.extend(batch);
            }
            drained
        })
    };
    for s in submitters {
        s.join().unwrap();
    }
    queue.close();
    let drained = consumer.join().unwrap();
    assert_eq!(drained.len(), 120, "every request served exactly once");
    for pair in drained.windows(2) {
        assert!(
            pair[0].0 < pair[1].0,
            "global FIFO: tickets strictly increase"
        );
    }
    for s in 0..3u32 {
        let per_client: Vec<u32> = drained
            .iter()
            .filter(|&&(_, (owner, _))| owner == s)
            .map(|&(_, (_, i))| i)
            .collect();
        assert_eq!(
            per_client,
            (0..40).collect::<Vec<u32>>(),
            "client {s} requests reordered"
        );
    }
}

#[test]
fn decode_token_streams_are_invariant_to_worker_count_and_batch_width() {
    // Continuous-batching decode on the *noisy* photonic backend: the
    // generated token streams and every attached per-token cost must be
    // bit-identical whether the stream is served by 1, 2, or 4 workers
    // at any continuous-batch width — everything stochastic flows from
    // split_seed(seed, ticket), never from scheduling.
    let mut rng = GaussianSampler::new(31);
    let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let requests: Vec<DecodeRequest> = (0..10)
        .map(|i| DecodeRequest {
            prompt: (0..(2 + i % 4)).map(|t| (i * 5 + t) % 16).collect(),
            max_new_tokens: 2 + i % 5,
        })
        .collect();

    let serve = |workers: usize, max_active: usize| -> Vec<DecodeReply> {
        let server = DecodeServer::new(
            model.clone(),
            DptcBackend::paper(8, 17),
            DecodeServeConfig {
                workers,
                max_active,
                seed: 23,
                ..DecodeServeConfig::default()
            },
        );
        let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
        let replies = pending.into_iter().map(|p| p.wait()).collect();
        assert_eq!(server.shutdown(), requests.len() as u64);
        replies
    };

    let base = serve(1, 1);
    for (i, reply) in base.iter().enumerate() {
        assert_eq!(reply.tokens.len(), requests[i].max_new_tokens);
        assert!(reply.prefill.cycles > 0, "prefill carries replayed cost");
        assert!(reply.steps.iter().all(|s| s.cycles > 0), "per-token costs");
    }
    for (workers, max_active) in [(1, 4), (2, 4), (4, 8)] {
        let got = serve(workers, max_active);
        for (a, b) in base.iter().zip(&got) {
            // DecodeReply equality covers tokens, prefill + per-token
            // costs, and the KV footprint at once.
            assert_eq!(a, b, "workers={workers} max_active={max_active}");
        }
    }
}

#[test]
fn quantized_decode_serving_is_invariant_to_worker_count_and_batch_width() {
    // The DecodeServer end of the same contract: continuous-batching
    // paged serving with the weight-bearing layers on true i8 codes
    // must produce worker-count- and batch-width-invariant token
    // streams and costs, exactly like the fp32 path above.
    let mut rng = GaussianSampler::new(37);
    let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let requests: Vec<DecodeRequest> = (0..8)
        .map(|i| DecodeRequest {
            prompt: (0..(2 + i % 3)).map(|t| (i * 3 + t) % 16).collect(),
            max_new_tokens: 2 + i % 4,
        })
        .collect();
    let serve = |workers: usize, max_active: usize| -> Vec<DecodeReply> {
        let server = DecodeServer::new(
            model.clone(),
            DptcBackend::paper(8, 17),
            DecodeServeConfig {
                workers,
                max_active,
                seed: 23,
                quant: QuantConfig::int8(),
                ..DecodeServeConfig::default()
            },
        );
        let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
        let replies = pending.into_iter().map(|p| p.wait()).collect();
        assert_eq!(server.shutdown(), requests.len() as u64);
        replies
    };
    let base = serve(1, 1);
    for (i, reply) in base.iter().enumerate() {
        assert_eq!(reply.tokens.len(), requests[i].max_new_tokens);
        assert!(reply.prefill.cycles > 0, "prefill carries replayed cost");
    }
    for (workers, max_active) in [(2, 4), (4, 8)] {
        let got = serve(workers, max_active);
        for (a, b) in base.iter().zip(&got) {
            assert_eq!(a, b, "i8 decode: workers={workers} max_active={max_active}");
        }
    }
}

#[test]
fn serving_is_invariant_to_workers_batch_size_and_gemm_threads() {
    let mut rng = GaussianSampler::new(3);
    let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let text = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);
    let requests: Vec<Request> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                Request::Vision(Tensor::randn(16, 16, 1.0, &mut rng))
            } else {
                Request::Text((0..12).map(|t| (i + t) % 16).collect())
            }
        })
        .collect();

    let serve = |workers: usize,
                 max_batch: usize,
                 gemm_threads: usize|
     -> Vec<lightening_transformer::nn::Reply> {
        let backend = ParallelBackend::new(DptcBackend::paper(8, 17), gemm_threads);
        let server = Server::new(
            vision.clone(),
            text.clone(),
            backend,
            ServeConfig {
                workers,
                max_batch,
                seed: 23,
                ..ServeConfig::default()
            },
        );
        let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
        pending.into_iter().map(|p| p.wait()).collect()
    };

    let base = serve(1, 1, 1);
    for reply in &base {
        assert!(reply.cost.cycles > 0, "every reply carries hardware cost");
        assert!(!reply.trace.is_empty(), "every reply carries its trace");
    }
    for (workers, max_batch, gemm_threads) in [(2, 3, 2), (4, 6, 4)] {
        let got = serve(workers, max_batch, gemm_threads);
        for (a, b) in base.iter().zip(&got) {
            assert_eq!(
                a.logits, b.logits,
                "logits diverged at workers={workers} max_batch={max_batch} threads={gemm_threads}"
            );
            assert_eq!(
                a.cost, b.cost,
                "cost diverged at workers={workers} max_batch={max_batch} threads={gemm_threads}"
            );
            assert_eq!(a.trace, b.trace, "trace diverged");
        }
    }
}

#[test]
fn forward_serving_is_invariant_to_threads_config() {
    // The *wired* parallel serving path: `ServeConfig::threads` (the
    // `LT_THREADS` knob) wraps the backend in a pool-sharing
    // `ParallelBackend` inside `Server::new`. Replies — logits, cost,
    // and the recorded trace — must be bit-identical to the sequential
    // server at every thread count.
    let mut rng = GaussianSampler::new(41);
    let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let text = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);
    let requests: Vec<Request> = (0..4)
        .map(|i| {
            if i % 2 == 0 {
                Request::Vision(Tensor::randn(16, 16, 1.0, &mut rng))
            } else {
                Request::Text((0..12).map(|t| (i + t) % 16).collect())
            }
        })
        .collect();
    let serve = |threads: usize| -> Vec<lightening_transformer::nn::Reply> {
        let server = Server::new(
            vision.clone(),
            text.clone(),
            DptcBackend::paper(8, 17),
            ServeConfig {
                workers: 2,
                max_batch: 2,
                seed: 29,
                threads: ThreadsConfig::new(threads),
                ..ServeConfig::default()
            },
        );
        let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
        pending.into_iter().map(|p| p.wait()).collect()
    };
    let base = serve(1);
    for reply in &base {
        assert!(reply.cost.cycles > 0, "every reply carries hardware cost");
        assert!(!reply.trace.is_empty(), "every reply carries its trace");
    }
    for threads in THREAD_COUNTS {
        let got = serve(threads);
        for (a, b) in base.iter().zip(&got) {
            assert_eq!(
                a.logits, b.logits,
                "logits diverged at LT_THREADS={threads}"
            );
            assert_eq!(a.cost, b.cost, "cost diverged at LT_THREADS={threads}");
            assert_eq!(a.trace, b.trace, "trace diverged at LT_THREADS={threads}");
        }
    }
}

#[test]
fn decode_serving_is_invariant_to_threads_config() {
    // Same contract for the decode server: `DecodeServeConfig::threads`
    // routes every per-token GEMM through the shared pool, and the
    // token streams plus their replayed per-token costs must not move.
    let mut rng = GaussianSampler::new(43);
    let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let requests: Vec<DecodeRequest> = (0..6)
        .map(|i| DecodeRequest {
            prompt: (0..(2 + i % 3)).map(|t| (i * 7 + t) % 16).collect(),
            max_new_tokens: 2 + i % 4,
        })
        .collect();
    let serve = |threads: usize| -> Vec<DecodeReply> {
        let server = DecodeServer::new(
            model.clone(),
            DptcBackend::paper(8, 17),
            DecodeServeConfig {
                workers: 2,
                max_active: 4,
                seed: 23,
                threads: ThreadsConfig::new(threads),
                ..DecodeServeConfig::default()
            },
        );
        let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
        let replies = pending.into_iter().map(|p| p.wait()).collect();
        assert_eq!(server.shutdown(), requests.len() as u64);
        replies
    };
    let base = serve(1);
    for (i, reply) in base.iter().enumerate() {
        assert_eq!(reply.tokens.len(), requests[i].max_new_tokens);
        assert!(reply.prefill.cycles > 0, "prefill carries replayed cost");
    }
    for threads in THREAD_COUNTS {
        let got = serve(threads);
        for (a, b) in base.iter().zip(&got) {
            assert_eq!(a, b, "decode reply diverged at LT_THREADS={threads}");
        }
    }
}

#[test]
fn paged_pressure_replies_are_invariant_to_threads_config() {
    // Memory-pressure serving through the parallel path: a deliberately
    // tight per-worker KV pool forces preemption while `threads` fans
    // the GEMMs out. Replies must match the roomy sequential server —
    // neither eviction/restore nor row-block scheduling may leak into
    // tokens or costs.
    let mut rng = GaussianSampler::new(47);
    let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let requests: Vec<DecodeRequest> = (0..8)
        .map(|i| DecodeRequest {
            prompt: (0..(2 + i % 3)).map(|t| (i * 5 + t) % 16).collect(),
            max_new_tokens: 4 + i % 4,
        })
        .collect();
    let serve = |threads: usize, kv: KvServeConfig| -> Vec<DecodeReply> {
        let server = DecodeServer::new(
            model.clone(),
            DptcBackend::paper(8, 17),
            DecodeServeConfig {
                workers: 1,
                max_active: 8,
                seed: 31,
                kv,
                threads: ThreadsConfig::new(threads),
                ..DecodeServeConfig::default()
            },
        );
        let pending: Vec<_> = requests.iter().map(|r| server.submit(r.clone())).collect();
        let replies = pending.into_iter().map(|p| p.wait()).collect();
        server.shutdown();
        replies
    };
    let roomy = KvServeConfig {
        block_tokens: 2,
        pool_blocks: 512,
        ..KvServeConfig::default()
    };
    let tight = KvServeConfig {
        block_tokens: 2,
        pool_blocks: 25, // min for max_seq 48 — guaranteed pressure
        preempt: PreemptPolicy::SwapOut,
        ..KvServeConfig::default()
    };
    let base = serve(1, roomy);
    for threads in THREAD_COUNTS {
        let got = serve(threads, tight);
        for (a, b) in base.iter().zip(&got) {
            assert_eq!(
                a, b,
                "paged-pressure reply diverged at LT_THREADS={threads}"
            );
        }
    }
}
