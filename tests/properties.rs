//! Property-based tests (proptest) on core invariants across the
//! workspace.

use lightening_transformer::baselines::svd::{jacobi_svd, reconstruct};
use lightening_transformer::dptc::{DDot, Dptc, DptcConfig, NoiseModel, Quantizer};
use lightening_transformer::photonics::units::Decibels;
use lightening_transformer::photonics::wdm::DispersionModel;
use lightening_transformer::workloads::{GemmOp, OpKind};
use proptest::prelude::*;

proptest! {
    /// The noiseless DDot is exactly the dot product for any operands.
    #[test]
    fn ddot_noiseless_is_exact(
        xy in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..32)
    ) {
        let n = xy.len();
        let x: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let y: Vec<f64> = xy.iter().map(|p| p.1).collect();
        let ddot = DDot::new(n);
        let expected: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let got = ddot.dot_noisy(&x, &y, &NoiseModel::noiseless(), 0);
        prop_assert!((got - expected).abs() < 1e-9);
    }

    /// Quantization never moves a normalized value by more than half a
    /// step, and is idempotent.
    #[test]
    fn quantizer_bounds(bits in 2u32..=10, v in -1.0f64..1.0) {
        let q = Quantizer::new(bits);
        let qv = q.quantize_unit(v);
        prop_assert!((qv - v).abs() <= q.max_error() + 1e-12);
        prop_assert_eq!(q.quantize_unit(qv), qv);
        prop_assert!((-1.0..=1.0).contains(&qv));
    }

    /// Tiled GEMM with zero noise matches a reference matmul for random
    /// shapes (padding/edge handling must be exact).
    #[test]
    fn tiled_gemm_matches_reference(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let core = Dptc::new(DptcConfig::new(4, 4, 4));
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let a: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let got = core.gemm(&a, &b, m, k, n, 16, &NoiseModel::noiseless(), 0);
        for i in 0..m {
            for j in 0..n {
                let exact: f64 = (0..k).map(|l| a[i * k + l] * b[l * n + j]).sum();
                // 16-bit quantization per tile keeps errors tiny.
                prop_assert!((got[i * n + j] - exact).abs() < 2e-3,
                    "({i},{j}): got {} exact {}", got[i * n + j], exact);
            }
        }
    }

    /// dB -> linear -> dB round-trips.
    #[test]
    fn decibel_round_trip(db in 0.0f64..60.0) {
        let lin = Decibels(db).to_linear();
        prop_assert!((Decibels::from_linear(lin).value() - db).abs() < 1e-9);
        prop_assert!(lin <= 1.0 && lin > 0.0);
    }

    /// The lossless coupler conserves power at every wavelength.
    #[test]
    fn dispersion_coupler_is_unitary(detuning in -10.0f64..10.0) {
        let d = DispersionModel::paper();
        let lambda = 1550.0 + detuning;
        let t = d.through_coefficient(lambda);
        let k = d.cross_coefficient(lambda);
        prop_assert!((t * t + k * k - 1.0).abs() < 1e-12);
    }

    /// Jacobi SVD reconstructs arbitrary random square matrices and its
    /// singular values are sorted and non-negative.
    #[test]
    fn svd_reconstructs(n in 2usize..10, seed in 0u64..500) {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let a: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let svd = jacobi_svd(&a, n, n);
        let back = reconstruct(&svd, n, n);
        for (x, y) in a.iter().zip(&back) {
            prop_assert!((x - y).abs() < 1e-8);
        }
        prop_assert!(svd.s.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(svd.s.iter().all(|&s| s >= 0.0));
    }

    /// Eq. 6: the crossbar sharing factor equals 2*Nh*Nv/(Nh+Nv) for any
    /// core geometry.
    #[test]
    fn encoding_saving_formula(nh in 1usize..32, nv in 1usize..32, nl in 1usize..32) {
        let core = Dptc::new(DptcConfig::new(nh, nv, nl));
        let saving = core.encoding_cost().saving_factor();
        let expect = 2.0 * (nh * nv) as f64 / (nh + nv) as f64;
        prop_assert!((saving - expect).abs() < 1e-9);
    }

    /// GEMM op accounting: MACs and module assignment are consistent.
    #[test]
    fn gemm_op_accounting(m in 1usize..512, k in 1usize..512, n in 1usize..512, c in 1usize..16) {
        let op = GemmOp::new(OpKind::AttnQk, m, k, n, c);
        prop_assert_eq!(op.total_macs(), (m * k * n * c) as u64);
        prop_assert_eq!(op.module(), lightening_transformer::workloads::Module::Mha);
        prop_assert_eq!(
            op.dynamics(),
            lightening_transformer::workloads::OperandDynamics::BothDynamic
        );
    }

    /// Utilization is in (0, 1] and exact for divisible shapes.
    #[test]
    fn utilization_bounds(m in 1usize..300, k in 1usize..300, n in 1usize..300) {
        let cfg = DptcConfig::lt_paper();
        let u = cfg.utilization(m, k, n);
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
        if m.is_multiple_of(12) && k.is_multiple_of(12) && n.is_multiple_of(12) {
            prop_assert!((u - 1.0).abs() < 1e-12);
        }
    }
}
