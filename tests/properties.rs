//! Property-style tests on core invariants across the workspace.
//!
//! The container has no crates.io access, so instead of `proptest` these
//! run each invariant over a deterministic sweep of seeded random cases
//! (shrinking is traded for reproducibility — every failure prints the
//! seed that produced it).

use lightening_transformer::baselines::svd::{jacobi_svd, reconstruct};
use lightening_transformer::core::{GaussianSampler, Matrix64};
use lightening_transformer::dptc::{DDot, Dptc, DptcConfig, Fidelity, NoiseModel, Quantizer};
use lightening_transformer::photonics::units::Decibels;
use lightening_transformer::photonics::wdm::DispersionModel;
use lightening_transformer::workloads::{GemmOp, OpKind};

fn rand_vec(rng: &mut GaussianSampler, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

/// The noiseless DDot is exactly the dot product for any operands.
#[test]
fn ddot_noiseless_is_exact() {
    let mut rng = GaussianSampler::new(100);
    for case in 0..50 {
        let n = 1 + rng.below(31);
        let x = rand_vec(&mut rng, n);
        let y = rand_vec(&mut rng, n);
        let ddot = DDot::new(n);
        let expected: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let got = ddot.dot_noisy(&x, &y, &NoiseModel::noiseless(), 0);
        assert!((got - expected).abs() < 1e-9, "case {case} (n={n})");
    }
}

/// Quantization never moves a normalized value by more than half a step,
/// and is idempotent.
#[test]
fn quantizer_bounds() {
    let mut rng = GaussianSampler::new(101);
    for case in 0..500 {
        let bits = 2 + (rng.below(9) as u32);
        let v = rng.uniform_in(-1.0, 1.0);
        let q = Quantizer::new(bits);
        let qv = q.quantize_unit(v);
        assert!((qv - v).abs() <= q.max_error() + 1e-12, "case {case}");
        assert_eq!(q.quantize_unit(qv), qv, "case {case}");
        assert!((-1.0..=1.0).contains(&qv), "case {case}");
    }
}

/// Tiled GEMM with zero noise matches a reference matmul for random
/// shapes (padding/edge handling must be exact).
#[test]
fn tiled_gemm_matches_reference() {
    let core = Dptc::new(DptcConfig::new(4, 4, 4));
    let mut rng = GaussianSampler::new(102);
    for case in 0..40 {
        let m = 1 + rng.below(19);
        let k = 1 + rng.below(19);
        let n = 1 + rng.below(19);
        let a = Matrix64::from_fn(m, k, |_, _| rng.uniform_in(-1.0, 1.0));
        let b = Matrix64::from_fn(k, n, |_, _| rng.uniform_in(-1.0, 1.0));
        let got = core.gemm(
            a.view(),
            b.view(),
            16,
            &Fidelity::AnalyticNoisy {
                noise: NoiseModel::noiseless(),
                seed: 0,
            },
        );
        let exact = lightening_transformer::core::reference_gemm(&a.view(), &b.view());
        // 16-bit quantization per tile keeps errors tiny.
        assert!(
            got.max_abs_diff(&exact) < 2e-3,
            "case {case} ({m}x{k}x{n}): err {}",
            got.max_abs_diff(&exact)
        );
    }
}

/// dB -> linear -> dB round-trips.
#[test]
fn decibel_round_trip() {
    let mut rng = GaussianSampler::new(103);
    for _ in 0..500 {
        let db = rng.uniform_in(0.0, 60.0);
        let lin = Decibels(db).to_linear();
        assert!((Decibels::from_linear(lin).value() - db).abs() < 1e-9);
        assert!(lin <= 1.0 && lin > 0.0);
    }
}

/// The lossless coupler conserves power at every wavelength.
#[test]
fn dispersion_coupler_is_unitary() {
    let mut rng = GaussianSampler::new(104);
    let d = DispersionModel::paper();
    for _ in 0..500 {
        let lambda = 1550.0 + rng.uniform_in(-10.0, 10.0);
        let t = d.through_coefficient(lambda);
        let k = d.cross_coefficient(lambda);
        assert!((t * t + k * k - 1.0).abs() < 1e-12);
    }
}

/// Jacobi SVD reconstructs arbitrary random square matrices and its
/// singular values are sorted and non-negative.
#[test]
fn svd_reconstructs() {
    let mut rng = GaussianSampler::new(105);
    for case in 0..60 {
        let n = 2 + rng.below(8);
        let a: Vec<f64> = (0..n * n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let svd = jacobi_svd(&a, n, n);
        let back = reconstruct(&svd, n, n);
        for (x, y) in a.iter().zip(&back) {
            assert!((x - y).abs() < 1e-8, "case {case} (n={n})");
        }
        assert!(svd.s.windows(2).all(|w| w[0] >= w[1]), "case {case}");
        assert!(svd.s.iter().all(|&s| s >= 0.0), "case {case}");
    }
}

/// Eq. 6: the crossbar sharing factor equals 2*Nh*Nv/(Nh+Nv) for any
/// core geometry.
#[test]
fn encoding_saving_formula() {
    let mut rng = GaussianSampler::new(106);
    for _ in 0..200 {
        let nh = 1 + rng.below(31);
        let nv = 1 + rng.below(31);
        let nl = 1 + rng.below(31);
        let core = Dptc::new(DptcConfig::new(nh, nv, nl));
        let saving = core.encoding_cost().saving_factor();
        let expect = 2.0 * (nh * nv) as f64 / (nh + nv) as f64;
        assert!((saving - expect).abs() < 1e-9);
    }
}

/// GEMM op accounting: MACs and module assignment are consistent.
#[test]
fn gemm_op_accounting() {
    let mut rng = GaussianSampler::new(107);
    for _ in 0..200 {
        let m = 1 + rng.below(511);
        let k = 1 + rng.below(511);
        let n = 1 + rng.below(511);
        let c = 1 + rng.below(15);
        let op = GemmOp::new(OpKind::AttnQk, m, k, n, c);
        assert_eq!(op.total_macs(), (m * k * n * c) as u64);
        assert_eq!(op.module(), lightening_transformer::workloads::Module::Mha);
        assert_eq!(
            op.dynamics(),
            lightening_transformer::workloads::OperandDynamics::BothDynamic
        );
    }
}

/// Utilization is in (0, 1] and exact for divisible shapes.
#[test]
fn utilization_bounds() {
    let mut rng = GaussianSampler::new(108);
    let cfg = DptcConfig::lt_paper();
    for _ in 0..300 {
        let m = 1 + rng.below(299);
        let k = 1 + rng.below(299);
        let n = 1 + rng.below(299);
        let u = cfg.utilization(m, k, n);
        assert!(u > 0.0 && u <= 1.0 + 1e-12);
        if m.is_multiple_of(12) && k.is_multiple_of(12) && n.is_multiple_of(12) {
            assert!((u - 1.0).abs() < 1e-12);
        }
    }
}
