//! End-to-end accuracy pipeline across crates: train with QAT + noise
//! awareness, checkpoint, restore into a fresh model, and evaluate on the
//! photonic backend — the full Fig. 14/15 workflow including the
//! artifact-style checkpoint round trip.

use lightening_transformer::nn::checkpoint;
use lightening_transformer::nn::data;
use lightening_transformer::nn::engine::{ExactEngine, PhotonicEngine};
use lightening_transformer::nn::metrics::confusion_matrix;
use lightening_transformer::nn::model::{ModelConfig, VisionTransformer};
use lightening_transformer::nn::quant::QuantConfig;
use lightening_transformer::nn::train::{evaluate, train, TrainConfig};
use lightening_transformer::photonics::noise::GaussianSampler;

fn fresh_vit(seed: u64) -> VisionTransformer {
    let mut rng = GaussianSampler::new(seed);
    VisionTransformer::new(
        ModelConfig::tiny_vision(),
        data::NUM_PATCHES,
        data::PATCH_DIM,
        &mut rng,
    )
}

#[test]
fn train_checkpoint_restore_photonic_eval() {
    // 1. Train with the paper's recipe (4-bit QAT + noise-aware).
    let mut model = fresh_vit(7);
    let train_set = data::vision_dataset(384, 1);
    let test_set = data::vision_dataset(128, 2);
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::noise_aware(4)
    };
    let stats = train(&mut model, &train_set, &cfg);
    assert!(
        stats.last().unwrap().accuracy > 0.7,
        "training should converge: {:?}",
        stats.last().unwrap()
    );

    // 2. Checkpoint, then restore into a *differently initialized* model.
    let mut blob = Vec::new();
    checkpoint::save(&mut model, &mut blob).expect("save");
    let mut restored = fresh_vit(999);
    checkpoint::load(&mut restored, blob.as_slice()).expect("load");

    // 3. Digital 4-bit reference accuracy is identical for both.
    let quant = QuantConfig::low_bit(4);
    let acc_orig = evaluate(&mut model, &test_set, &mut ExactEngine, quant);
    let acc_rest = evaluate(&mut restored, &test_set, &mut ExactEngine, quant);
    assert!(
        (acc_orig - acc_rest).abs() < 1e-12,
        "restored model must match: {acc_orig} vs {acc_rest}"
    );
    assert!(acc_orig > 0.6, "digital accuracy {acc_orig}");

    // 4. Photonic evaluation stays within a few points of digital.
    let mut photonic = PhotonicEngine::paper(4, 12, 42);
    let acc_photo = evaluate(&mut restored, &test_set, &mut photonic, quant);
    assert!(
        acc_photo >= acc_orig - 0.10,
        "photonic {acc_photo} vs digital {acc_orig}"
    );

    // 5. The confusion matrix bookkeeping is consistent with accuracy.
    let mut photonic2 = PhotonicEngine::paper(4, 12, 42);
    let cm = confusion_matrix(&mut restored, &test_set, 4, &mut photonic2, quant);
    assert_eq!(cm.total(), test_set.len() as u64);
    assert!((cm.accuracy() - acc_photo).abs() < 1e-12);
    assert!(cm.macro_f1() > 0.4);
}

#[test]
fn photonic_noise_hurts_untrained_robustness_more() {
    // Noise-aware training is supposed to buy robustness: a noise-aware
    // model should lose no more accuracy under heavy photonic noise than
    // a plainly trained one loses.
    let train_set = data::vision_dataset(384, 3);
    let test_set = data::vision_dataset(128, 4);
    let quant = QuantConfig::low_bit(4);
    let heavy = lightening_transformer::dptc::NoiseModel::paper_default()
        .with_magnitude(0.08)
        .with_phase_degrees(7.0);

    let mut aware = fresh_vit(11);
    let _ = train(
        &mut aware,
        &train_set,
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::noise_aware(4)
        },
    );
    let mut plain = fresh_vit(11);
    let _ = train(
        &mut plain,
        &train_set,
        &TrainConfig {
            epochs: 8,
            quant: QuantConfig::low_bit(4),
            ..TrainConfig::quick()
        },
    );

    let drop = |model: &mut VisionTransformer, seed: u64| {
        let digital = evaluate(model, &test_set, &mut ExactEngine, quant);
        let mut eng = PhotonicEngine::paper(4, 12, seed).with_noise(heavy);
        let noisy = evaluate(model, &test_set, &mut eng, quant);
        digital - noisy
    };
    let aware_drop = drop(&mut aware, 5);
    let plain_drop = drop(&mut plain, 5);
    // Not a strict dominance claim (tiny models are noisy) — but the
    // noise-aware drop must not be dramatically worse.
    assert!(
        aware_drop <= plain_drop + 0.08,
        "noise-aware drop {aware_drop} vs plain {plain_drop}"
    );
}
