//! Cross-crate integration tests: the paper's headline claims.
//!
//! These tests exercise workloads + arch + baselines together and assert
//! the *shape* of the paper's results — who wins, by roughly what factor.

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::baselines::{ElectronicPlatform, MrrAccelerator, MziAccelerator};
use lightening_transformer::workloads::TransformerConfig;

/// ">2.6x energy and >12x latency reductions compared to prior photonic
/// accelerators" (abstract), averaged over DeiT-T and DeiT-B.
#[test]
fn beats_photonic_baselines_by_paper_margins() {
    for bits in [4u32, 8] {
        let mut mrr_energy_ratio = 0.0;
        let mut mrr_latency_ratio = 0.0;
        let mut mzi_energy_ratio = 0.0;
        let mut mzi_latency_ratio = 0.0;
        let models = [
            TransformerConfig::deit_tiny(),
            TransformerConfig::deit_base(),
        ];
        for model in &models {
            let lt = Simulator::new(ArchConfig::lt_base(bits)).run_model(model);
            let mrr = MrrAccelerator::paper_baseline(bits).run_model(model);
            let mzi = MziAccelerator::paper_baseline(bits).run_model(model);
            mrr_energy_ratio += mrr.all.energy.value() / lt.all.energy.total().value();
            mrr_latency_ratio += mrr.all.latency.value() / lt.all.latency.value();
            mzi_energy_ratio += mzi.all.energy.value() / lt.all.energy.total().value();
            mzi_latency_ratio += mzi.all.latency.value() / lt.all.latency.value();
        }
        let n = models.len() as f64;
        let (mrr_e, mrr_l) = (mrr_energy_ratio / n, mrr_latency_ratio / n);
        let (mzi_e, mzi_l) = (mzi_energy_ratio / n, mzi_latency_ratio / n);
        assert!(
            mrr_e > 2.0,
            "[{bits}-bit] MRR energy ratio {mrr_e} (paper >2.6)"
        );
        assert!(
            mrr_l > 8.0,
            "[{bits}-bit] MRR latency ratio {mrr_l} (paper ~12.8)"
        );
        assert!(
            mzi_e > 4.0,
            "[{bits}-bit] MZI energy ratio {mzi_e} (paper 8-32x)"
        );
        assert!(
            mzi_l > 100.0,
            "[{bits}-bit] MZI latency ratio {mzi_l} (paper ~676x)"
        );
    }
}

/// "2 to 3 orders of magnitude lower energy-delay product compared to the
/// electronic Transformer accelerator" and "lowest energy cost".
#[test]
fn edp_beats_electronic_platforms_by_orders_of_magnitude() {
    let model = TransformerConfig::deit_tiny();
    let lt = Simulator::new(ArchConfig::lt_base(4)).run_model(&model);
    let lt_edp = lt.all.edp();
    for p in ElectronicPlatform::fig13_platforms() {
        let edp = p.energy(&model).value() * p.latency(&model).value();
        let ratio = edp / lt_edp;
        assert!(
            ratio > 100.0,
            "{}: EDP ratio {ratio} should be >= 2 orders of magnitude",
            p.name
        );
        assert!(
            p.energy(&model).value() > lt.all.energy.total().value(),
            "{}: LT must have the lowest energy",
            p.name
        );
    }
}

/// LT-B throughput tops every platform in Fig. 13.
#[test]
fn highest_fps_of_all_platforms() {
    for model in TransformerConfig::paper_benchmarks() {
        let lt = Simulator::new(ArchConfig::lt_base(4)).run_model(&model);
        for p in ElectronicPlatform::fig13_platforms() {
            assert!(
                lt.fps() > p.fps(&model),
                "{} beats LT-B on {} ({} vs {})",
                p.name,
                model.name,
                p.fps(&model),
                lt.fps()
            );
        }
    }
}

/// Even without the architecture-level optimizations, the DPTC topology
/// alone still beats the baselines (Table V's "Energy w/o Arch Opt").
#[test]
fn bare_crossbar_still_beats_baselines() {
    let model = TransformerConfig::deit_tiny();
    let bare = Simulator::new(ArchConfig::lt_crossbar_base(4)).run_model(&model);
    let mrr = MrrAccelerator::paper_baseline(4).run_model(&model);
    assert!(
        mrr.all.energy.value() > bare.all.energy.total().value(),
        "MRR {} mJ vs bare LT {} mJ",
        mrr.all.energy.value(),
        bare.all.energy.total().value()
    );
}

/// The weight-static MZI array loses even on the weight-static linear
/// layers (the paper's "counterintuitive but well-explained" result).
#[test]
fn lt_wins_linear_layers_despite_dynamic_encoding() {
    let model = TransformerConfig::deit_tiny();
    let lt = Simulator::new(ArchConfig::lt_base(4)).run_model(&model);
    let mzi = MziAccelerator::paper_baseline(4).run_model(&model);
    assert!(
        mzi.ffn.energy.value() > 2.0 * lt.ffn.energy.total().value(),
        "MZI FFN {} mJ vs LT FFN {} mJ",
        mzi.ffn.energy.value(),
        lt.ffn.energy.total().value()
    );
}

/// Latency ordering across model scale: bigger models take longer, and
/// LT-L catches up on the big ones.
#[test]
fn latency_scales_sensibly_across_models() {
    let sim_b = Simulator::new(ArchConfig::lt_base(4));
    let t = sim_b
        .run_model(&TransformerConfig::deit_tiny())
        .all
        .latency
        .value();
    let s = sim_b
        .run_model(&TransformerConfig::deit_small())
        .all
        .latency
        .value();
    let b = sim_b
        .run_model(&TransformerConfig::deit_base())
        .all
        .latency
        .value();
    assert!(t < s && s < b, "latency must grow with model size");
    let sim_l = Simulator::new(ArchConfig::lt_large(4));
    let b_large = sim_l
        .run_model(&TransformerConfig::deit_base())
        .all
        .latency
        .value();
    assert!(b_large < b, "LT-L must be faster than LT-B on DeiT-B");
}
