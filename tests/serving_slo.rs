//! The SLO serving frontend's CI contract.
//!
//! `SloFrontend` stamps every request lifecycle in *simulated*
//! picoseconds, which makes its whole serving report a deterministic
//! integer function of (workload seed, model weights, config). These
//! tests pin that contract end to end through the public facade:
//!
//! * the seeded load generator replays the same arrival trace bit for
//!   bit, and the frontend turns it into the same per-request metrics;
//! * thread count is latency-invariant: `ParallelBackend` at 1/2/4/8
//!   threads produces identical lifecycles and reports (only wall
//!   clock changes, and wall clock is not part of the report);
//! * chunked prefill bounds starvation: a burst of 10x-length prompts
//!   admitted mid-stream cannot stretch a running session's worst
//!   inter-token gap much past its typical gap, while the unchunked
//!   path demonstrably blows through that bound — and both paths
//!   generate bit-identical token streams;
//! * admission control is SLO-aware: impossible TTFT deadlines are
//!   rejected at arrival, and interactive arrivals overtake queued
//!   batch work.

use lightening_transformer::arch::Simulator;
use lightening_transformer::core::{GaussianSampler, NativeBackend};
use lightening_transformer::nn::decode::{DecoderConfig, DecoderLm};
use lightening_transformer::nn::serve::decode::DecodeServeConfig;
use lightening_transformer::nn::serve::lifecycle::{RequestLifecycle, RequestOutcome, SloFrontend};
use lightening_transformer::nn::serve::sched::KvServeConfig;
use lightening_transformer::runtime::loadgen::{GenRequest, LoadgenConfig};
use lightening_transformer::runtime::{ParallelBackend, SloClass};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn model() -> DecoderLm {
    let mut rng = GaussianSampler::new(5);
    DecoderLm::new(DecoderConfig::tiny(), &mut rng)
}

fn config(prefill_chunk_tokens: usize) -> DecodeServeConfig {
    DecodeServeConfig {
        max_active: 4,
        kv: KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            ..KvServeConfig::default()
        },
        prefill_chunk_tokens,
        ..DecodeServeConfig::default()
    }
}

#[test]
fn the_seeded_workload_and_its_metrics_replay_bit_for_bit() {
    // Same seed, same arrival trace — every field of every request.
    let trace = LoadgenConfig::smoke(29, 16).generate();
    assert_eq!(trace, LoadgenConfig::smoke(29, 16).generate());
    assert_ne!(trace, LoadgenConfig::smoke(30, 16).generate());

    // Same trace, same per-request metrics and aggregate report.
    let m = model();
    let cfg = config(0);
    let sim = Simulator::new(cfg.arch.clone());
    let (rec_a, rep_a) = SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&trace);
    let (rec_b, rep_b) = SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&trace);
    assert_eq!(rec_a, rec_b, "lifecycles must replay bit for bit");
    assert_eq!(rep_a, rep_b, "the aggregate report must replay bit for bit");
    assert_eq!(rep_a.completed + rep_a.rejected + rep_a.failed, 16);
    assert!(rep_a.completed > 0);
}

#[test]
fn serving_metrics_do_not_depend_on_thread_count() {
    // The frontend is a single event loop; LT_THREADS-style parallelism
    // only changes how each GEMM's row blocks are dispatched, and
    // `ParallelBackend` is bit-identical to its wrapped backend. So the
    // serving report — TTFT, ITL, goodput, everything — must be the
    // same at every thread count, chunked and unchunked alike.
    let trace = LoadgenConfig::smoke(29, 12).generate();
    let m = model();
    for chunk in [0, 4] {
        let cfg = config(chunk);
        let sim = Simulator::new(cfg.arch.clone());
        let (rec_ref, rep_ref) = SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&trace);
        for threads in THREAD_COUNTS {
            let backend = ParallelBackend::new(NativeBackend, threads).with_min_parallel_macs(0);
            let (rec, rep) = SloFrontend::new(&m, &sim, backend, &cfg).run_open(&trace);
            assert_eq!(
                rec, rec_ref,
                "lifecycles diverged at {threads} threads (chunk {chunk})"
            );
            assert_eq!(
                rep, rep_ref,
                "report diverged at {threads} threads (chunk {chunk})"
            );
        }
    }
}

/// The starvation workload: one short interactive request decoding a
/// long reply, plus a burst of prompts 10x its length arriving behind
/// it. Prompt lengths are sized for [`starvation_model`]'s 256-token
/// context so a whole-prompt prefill genuinely dominates a tick.
fn starvation_burst() -> Vec<GenRequest> {
    let mut requests = vec![GenRequest {
        id: 0,
        arrival_us: 0,
        prompt: (0..12).map(|t| t % 16).collect(),
        max_new_tokens: 24,
        class: SloClass::Interactive,
        ttft_deadline_us: None,
    }];
    for id in 1..4 {
        requests.push(GenRequest {
            id,
            arrival_us: 0,
            prompt: (0..120).map(|t| (t * 7 + id) % 16).collect(),
            max_new_tokens: 2,
            class: SloClass::Batch,
            ttft_deadline_us: None,
        });
    }
    requests
}

/// The tiny decoder stretched to 256 positions, so a 120-token prompt
/// is legal and its prefill dwarfs a decode step.
fn starvation_model() -> DecoderLm {
    let mut rng = GaussianSampler::new(5);
    DecoderLm::new(
        DecoderConfig {
            max_seq: 256,
            ..DecoderConfig::tiny()
        },
        &mut rng,
    )
}

fn run_starvation(chunk: usize) -> Vec<RequestLifecycle> {
    let m = starvation_model();
    let mut cfg = config(chunk);
    // Two in-flight slots: the interactive session plus one long
    // prompt at a time, so every burst admission lands while request 0
    // is mid-decode. The pool comfortably fits both (no preemptions —
    // this test isolates the prefill-induced gaps).
    cfg.max_active = 2;
    cfg.kv.pool_blocks = 128;
    let sim = Simulator::new(cfg.arch.clone());
    let (records, report) =
        SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&starvation_burst());
    assert_eq!(report.completed, 4, "the whole burst must be served");
    records
}

#[test]
fn chunked_prefill_bounds_the_itl_a_long_prompt_burst_can_inflict() {
    const CHUNK: usize = 3;
    let unchunked = run_starvation(0);
    let chunked = run_starvation(CHUNK);

    // Chunking must never change *what* is generated, only *when*:
    // every request's token stream is bit-identical across the two runs.
    for (u, c) in unchunked.iter().zip(&chunked) {
        assert_eq!(u.outcome, RequestOutcome::Completed);
        assert_eq!(u.tokens, c.tokens, "request {} reply changed", u.id);
    }

    // Request 0 streams tokens while the 10x-length prompts prefill.
    // Unchunked, each burst admission runs a whole 30-token prefill
    // inside one tick, and that tick's full latency lands in request
    // 0's inter-token gap. Chunked, a tick carries at most CHUNK
    // prompt tokens, so the worst gap stays within a small factor of
    // the typical gap.
    let gaps = |records: &[RequestLifecycle]| {
        let itl = &records[0].itl_ps;
        assert!(!itl.is_empty());
        let mut sorted = itl.clone();
        sorted.sort_unstable();
        let p50 = sorted[sorted.len() / 2];
        (*itl.iter().max().unwrap(), p50)
    };
    let (max_unchunked, p50_unchunked) = gaps(&unchunked);
    let (max_chunked, p50_chunked) = gaps(&chunked);

    // The configured chunk bound: worst gap within 4x the typical gap.
    assert!(
        max_chunked <= 4 * p50_chunked,
        "chunked worst gap {max_chunked} ps blew past 4x the median {p50_chunked} ps"
    );
    // The bound is not vacuous: the unchunked path blows through it...
    assert!(
        max_unchunked > 4 * p50_unchunked,
        "unchunked worst gap {max_unchunked} ps should exceed 4x the median {p50_unchunked} ps"
    );
    // ...and chunking shrinks the absolute worst-case gap itself.
    assert!(
        2 * max_chunked <= max_unchunked,
        "chunked worst gap {max_chunked} ps should be well under unchunked {max_unchunked} ps"
    );
}

#[test]
fn admission_is_deadline_and_priority_aware() {
    let m = model();
    let mut cfg = config(0);
    cfg.max_active = 1; // serialize admissions so queue order is visible
    let sim = Simulator::new(cfg.arch.clone());
    let request = |id, class, deadline| GenRequest {
        id,
        arrival_us: 0,
        prompt: vec![4, 5, 6, 7],
        max_new_tokens: 3,
        class,
        ttft_deadline_us: deadline,
    };
    let requests = vec![
        request(0, SloClass::Batch, None),
        request(1, SloClass::Standard, None),
        // Impossible: prefill alone needs more than 0 us.
        request(2, SloClass::Interactive, Some(0)),
        request(3, SloClass::Interactive, Some(10_000_000)),
    ];
    let (records, report) = SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&requests);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 3);
    assert_eq!(records[2].outcome, RequestOutcome::Rejected);
    assert_eq!(records[2].admitted_ps, None, "rejected before admission");
    assert!(records[3].met_deadline(), "a generous deadline is honored");
    let admitted = |id: usize| records[id].admitted_ps.expect("completed");
    assert!(
        admitted(3) <= admitted(1) && admitted(1) <= admitted(0),
        "interactive first, then standard, then batch"
    );
}
