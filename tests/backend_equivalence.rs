//! Backend-equivalence properties for the unified `Matrix` /
//! `ComputeBackend` API.
//!
//! These pin the two contracts the API redesign rests on:
//!
//! 1. The ideal DPTC backend is *bit-for-bit* the workspace's shared
//!    exact kernel (`lt_core::NativeBackend`) — "ideal photonics computes
//!    the exact product" is an identity, not an approximation.
//! 2. The analytic-noisy fidelity at the paper's operating point stays
//!    inside the error bound asserted by `lt_dptc`'s crate-level
//!    doc-test (`err < 0.5` on paper-geometry one-shot products).

use lightening_transformer::baselines::{MrrBackend, MziBackend, PcmBackend, SvdBackend};
use lightening_transformer::core::{
    reference_gemm, ComputeBackend, GaussianSampler, Matrix64, NativeBackend, RunCtx,
};
use lightening_transformer::dptc::{Dptc, DptcBackend, DptcConfig, Fidelity};

fn rand_pair(rng: &mut GaussianSampler, m: usize, k: usize, n: usize) -> (Matrix64, Matrix64) {
    (
        Matrix64::from_fn(m, k, |_, _| rng.uniform_in(-1.0, 1.0)),
        Matrix64::from_fn(k, n, |_, _| rng.uniform_in(-1.0, 1.0)),
    )
}

/// Property: over random shapes and operands, `DptcBackend::ideal`
/// returns exactly (`==`, not approximately) what the shared reference
/// kernel returns.
#[test]
fn ideal_backend_is_bit_for_bit_the_reference_matmul() {
    let mut rng = GaussianSampler::new(1);
    let backend = DptcBackend::ideal(DptcConfig::lt_paper());
    for case in 0..40 {
        let m = 1 + rng.below(40);
        let k = 1 + rng.below(40);
        let n = 1 + rng.below(40);
        let (a, b) = rand_pair(&mut rng, m, k, n);
        let mut ctx = RunCtx::new(case);
        let ideal = backend.gemm(a.view(), b.view(), &mut ctx);
        let native = NativeBackend.gemm(a.view(), b.view(), &mut ctx);
        assert_eq!(ideal, native, "case {case} ({m}x{k}x{n})");
        // And the kernel itself agrees with the naive reference to
        // floating-point accumulation-order tolerance.
        let reference = reference_gemm(&a.view(), &b.view());
        assert!(ideal.max_abs_diff(&reference) < 1e-10, "case {case}");
    }
}

/// Property: the paper-default analytic noise respects the error bound
/// the `lt_dptc` crate doc-test asserts — the doc-test's exact operand
/// pattern (constant 0.25 x -0.5 paper-geometry matrices, observed
/// element error < 0.5) must hold for *every* seed, not just the one the
/// doc-test happens to use; and on random unit-range operands the
/// max-over-all-elements error stays inside the unit-test envelope
/// (< 0.8).
#[test]
fn analytic_noisy_respects_the_doc_test_error_bound() {
    let core = Dptc::new(DptcConfig::lt_paper());

    // The doc-test's setup, swept over seeds.
    let a_doc = Matrix64::from_fn(12, 12, |_, _| 0.25);
    let b_doc = Matrix64::from_fn(12, 12, |_, _| -0.5);
    let ideal_doc = core.matmul(a_doc.view(), b_doc.view(), &Fidelity::Ideal);
    for seed in 0..200 {
        let noisy = core.matmul(a_doc.view(), b_doc.view(), &Fidelity::paper_noisy(seed));
        let err = (noisy.get(0, 0) - ideal_doc.get(0, 0)).abs();
        assert!(
            err < 0.5,
            "seed {seed}: element error {err} breaks the documented bound"
        );
    }

    // Random unit-range operands: whole-matrix envelope.
    let mut rng = GaussianSampler::new(2);
    for seed in 0..60 {
        let (a, b) = rand_pair(&mut rng, 12, 12, 12);
        let ideal = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
        let noisy = core.matmul(a.view(), b.view(), &Fidelity::paper_noisy(seed));
        let err = noisy.max_abs_diff(&ideal);
        assert!(
            err > 0.0 && err < 0.8,
            "seed {seed}: max element error {err}"
        );
    }
}

/// Every backend in the workspace serves the same workload through the
/// same trait — a pure backend swap — and stays within its class's
/// documented error envelope.
#[test]
fn every_backend_serves_the_same_workload() {
    let mut rng = GaussianSampler::new(3);
    let (a, b) = rand_pair(&mut rng, 18, 24, 15);
    let exact = a.matmul(&b);
    let scale = exact.max_abs();

    let backends: Vec<(Box<dyn ComputeBackend>, f64)> = vec![
        (Box::new(NativeBackend), 1e-12),
        (Box::new(DptcBackend::ideal(DptcConfig::lt_paper())), 1e-12),
        (Box::new(DptcBackend::quantized(8)), 0.10),
        (Box::new(DptcBackend::paper(8, 7)), 0.50),
        (Box::new(MziBackend::paper(8)), 0.15),
        (Box::new(MrrBackend::paper(8)), 0.15),
        (Box::new(PcmBackend::paper(8)), 0.25),
        (Box::new(SvdBackend::new(15)), 1e-6),
    ];
    let mut ctx = RunCtx::new(11);
    for (backend, bound) in &backends {
        let got = backend.gemm(a.view(), b.view(), &mut ctx);
        assert_eq!(got.shape(), exact.shape(), "{}", backend.name());
        let rel = got.max_abs_diff(&exact) / scale;
        assert!(
            rel < *bound,
            "{}: relative error {rel} exceeds its {bound} envelope",
            backend.name()
        );
    }
}

/// The batched entry point agrees with per-pair calls for deterministic
/// backends.
#[test]
fn batched_gemm_matches_sequential_for_deterministic_backends() {
    let mut rng = GaussianSampler::new(4);
    let (a, b) = rand_pair(&mut rng, 9, 13, 7);
    let (c, d) = rand_pair(&mut rng, 7, 11, 9);
    let backend = DptcBackend::ideal(DptcConfig::lt_paper());
    let outs = backend.gemm_batch(
        &[(a.view(), b.view()), (c.view(), d.view())],
        &mut RunCtx::new(0),
    );
    assert_eq!(outs.len(), 2);
    assert_eq!(outs[0], a.matmul(&b));
    assert_eq!(outs[1], c.matmul(&d));
}
