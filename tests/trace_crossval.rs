//! Recorded-vs-analytical trace cross-validation.
//!
//! The simulator used to be fed only by the hand-maintained analytical
//! trace (`TransformerConfig::gemm_trace`), which could silently diverge
//! from what the `lt-nn` models actually execute. These tests close the
//! loop: for every paper benchmark, a *real* forward pass of the
//! corresponding `lt-nn` model (at the benchmark's structurally
//! identical `tiny_validation` geometry, where weights can actually be
//! instantiated) is recorded through the op-trace IR, and the recorded
//! GEMMs must agree with the analytical generator — same dims, same
//! instance counts, same MACs — and cost the same when replayed through
//! the accelerator model.

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::core::trace::OpKind;
use lightening_transformer::core::{GaussianSampler, NativeBackend, Op, Trace, TraceRecorder};
use lightening_transformer::nn::decode::{DecodeSession, DecoderConfig, DecoderLm, SessionConfig};
use lightening_transformer::nn::layers::ForwardCtx;
use lightening_transformer::nn::model::{Classifier, ModelConfig};
use lightening_transformer::nn::quant::QuantConfig;
use lightening_transformer::nn::{ExactEngine, Tensor, TextClassifier, VisionTransformer};
use lightening_transformer::workloads::model::InputKind;
use lightening_transformer::workloads::{DecodeTrace, TransformerConfig};

/// Builds the `lt-nn` model matching `spec`'s geometry, runs one real
/// forward pass with a recorder attached under the given quantization
/// mode, and returns the recorded trace.
fn record_forward_quant(spec: &TransformerConfig, quant: QuantConfig) -> Trace {
    let cfg = ModelConfig {
        dim: spec.dim,
        layers: spec.layers,
        heads: spec.heads,
        ffn_dim: spec.ffn_dim,
        classes: spec.num_classes,
    };
    let mut rng = GaussianSampler::new(42);
    let recorder = TraceRecorder::new();
    let mut engine = ExactEngine;
    let mut nrng = GaussianSampler::new(0);
    let mut ctx =
        ForwardCtx::inference(&mut engine, quant, &mut nrng).with_recorder(recorder.clone());
    match spec.input {
        InputKind::VisionPatches { patch_size, .. } => {
            let patch_dim = 3 * patch_size * patch_size;
            let mut model = VisionTransformer::new(cfg, spec.seq_len - 1, patch_dim, &mut rng);
            let patches = Tensor::randn(spec.seq_len - 1, patch_dim, 1.0, &mut rng);
            let logits = model.forward(&patches, &mut ctx);
            assert_eq!(logits.shape(), (1, spec.num_classes));
        }
        InputKind::TextTokens => {
            let vocab = 16;
            let mut model = TextClassifier::new(cfg, vocab, spec.seq_len, &mut rng);
            let tokens: Vec<usize> = (0..spec.seq_len).map(|i| (i * 7 + 3) % vocab).collect();
            let logits = model.forward(&tokens, &mut ctx);
            assert_eq!(logits.shape(), (1, spec.num_classes));
        }
    }
    recorder.take()
}

/// `record_forward_quant` at the default fp32 mode.
fn record_forward(spec: &TransformerConfig) -> Trace {
    record_forward_quant(spec, QuantConfig::fp32())
}

/// The analytical trace of `spec` in the shared IR, GEMMs only.
fn analytical_gemms(spec: &TransformerConfig) -> Trace {
    Trace::from_ops(spec.gemm_trace().iter().map(|op| op.op()).collect())
}

#[test]
fn recorded_gemms_match_the_analytical_trace_for_every_paper_benchmark() {
    for model in TransformerConfig::paper_benchmarks() {
        let tiny = model.tiny_validation();
        let recorded = record_forward(&tiny).gemm_only().coalesce();
        let analytical = analytical_gemms(&tiny).coalesce();
        assert_eq!(
            recorded, analytical,
            "{}: recorded execution and analytical generator disagree on \
             GEMM dims or instance counts",
            model.name
        );
        assert_eq!(
            recorded.total_macs(),
            tiny.total_macs(),
            "{}: MAC accounting drifted",
            model.name
        );
    }
}

#[test]
fn quantized_recorded_gemms_match_the_analytical_work_mode_traces() {
    // The true integer execution path must be *workload-transparent*:
    // a forward pass whose weight-bearing layers execute on i8/i4 codes
    // records exactly the GEMM trace the analytical generator predicts
    // — same dims, same instance counts, same MACs — because the
    // paper's 8-bit/4-bit work modes change operand precision, never
    // the computation graph. And replaying the recorded trace through
    // the matching-precision accelerator model must cost the same as
    // replaying the analytical one.
    for (bits, quant) in [(8u32, QuantConfig::int8()), (4, QuantConfig::int4())] {
        let sim = Simulator::new(ArchConfig::lt_base(bits));
        for model in TransformerConfig::paper_benchmarks() {
            let tiny = model.tiny_validation();
            let recorded = record_forward_quant(&tiny, quant).gemm_only().coalesce();
            let analytical = analytical_gemms(&tiny).coalesce();
            assert_eq!(
                recorded, analytical,
                "{} [{bits}-bit]: integer execution changed the recorded \
                 GEMM dims or instance counts",
                model.name
            );
            assert_eq!(
                recorded.total_macs(),
                tiny.total_macs(),
                "{} [{bits}-bit]: MAC accounting drifted",
                model.name
            );
            assert_eq!(
                sim.run_trace(&recorded),
                sim.run_trace(&analytical),
                "{} [{bits}-bit]: recorded and analytical traces must cost \
                 identically",
                model.name
            );
        }
    }
}

#[test]
fn recorded_and_analytical_traces_cost_identically_in_the_simulator() {
    let sim = Simulator::new(ArchConfig::lt_base(4));
    for model in TransformerConfig::paper_benchmarks() {
        let tiny = model.tiny_validation();
        let recorded = record_forward(&tiny).gemm_only().coalesce();
        let analytical = analytical_gemms(&tiny).coalesce();
        let r = sim.run_trace(&recorded);
        let a = sim.run_trace(&analytical);
        assert_eq!(r, a, "{}: equal traces must cost identically", model.name);
        assert!(
            r.cycles > 0 && r.energy.total().value() > 0.0,
            "{}",
            model.name
        );
        // And the simulator itself is deterministic: replaying the same
        // trace twice is bit-identical.
        assert_eq!(r, sim.run_trace(&recorded), "{}", model.name);
    }
}

/// Builds a decoder LM at the structurally identical executable tiny
/// geometry of a decoder benchmark spec.
fn decoder_at(spec: &TransformerConfig, vocab: usize) -> DecoderLm {
    let cfg = DecoderConfig {
        dim: spec.dim,
        layers: spec.layers,
        heads: spec.heads,
        ffn_dim: spec.ffn_dim,
        vocab,
        max_seq: spec.seq_len,
    };
    let mut rng = GaussianSampler::new(42);
    DecoderLm::new(cfg, &mut rng)
}

/// The transformer-body GEMMs of a recorded decode trace: everything
/// except the LM head, which the analytical `DecodeTrace` (like the
/// paper's Section VI-B accounting) leaves out of the per-token body.
fn body_gemms(trace: &Trace) -> Trace {
    Trace::from_ops(
        trace
            .gemm_only()
            .ops()
            .iter()
            .filter(|op| {
                !matches!(
                    op,
                    Op::Gemm {
                        kind: OpKind::LmHead,
                        ..
                    }
                )
            })
            .copied()
            .collect(),
    )
}

#[test]
fn recorded_decode_step_trace_matches_the_analytical_decode_trace() {
    // Real token-by-token decoding at the executable GPT2-small tiny
    // geometry: every decode step's recorded GEMMs must equal
    // `DecodeTrace::gemm_trace()` at batch 1 — same dims, same instance
    // counts, same MACs — for every context length the session visits.
    for spec in [
        TransformerConfig::gpt2_small(16).tiny_validation(),
        TransformerConfig::gpt2_medium(12).tiny_validation(),
    ] {
        let model = decoder_at(&spec, 16);
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let prompt = vec![3usize, 1, 4, 1];
        let mut session = DecodeSession::new(
            &model,
            0,
            prompt.clone(),
            6,
            NativeBackend,
            SessionConfig::default(),
        );
        session.prefill(&model, &sim);
        let mut context = prompt.len();
        while !session.is_done() {
            let recorded = body_gemms(&session.step(&model, &sim)).coalesce();
            context += 1; // the step appended its token before attending
            let analytical_ops = DecodeTrace::new(spec.clone(), context, 1);
            let analytical = analytical_ops.op_trace().coalesce();
            assert_eq!(
                recorded, analytical,
                "{}: recorded decode step and analytical DecodeTrace disagree \
                 at context {context}",
                spec.name
            );
            assert_eq!(
                recorded.total_macs(),
                analytical_ops.macs_per_token(),
                "{}: per-token MAC accounting drifted at context {context}",
                spec.name
            );
        }
    }
}

#[test]
fn recorded_verify_step_traces_match_the_analytical_spec_trace() {
    // Speculative decoding's batched verify pass at the executable tiny
    // GPT2-small geometry: every spec step's recorded verify GEMMs must
    // equal `DecodeTrace::spec_trace(k)` — row-stacked `k+1` high, the
    // attention context grown by the speculated positions — and cost
    // the same when replayed through the accelerator model.
    use lightening_transformer::nn::decode::DraftLm;
    let spec = TransformerConfig::gpt2_small(16).tiny_validation();
    let model = decoder_at(&spec, 16);
    let draft = DraftLm::from_target(&model);
    let sim = Simulator::new(ArchConfig::lt_base(8));
    for k in [1usize, 2, 4] {
        let prompt = vec![3usize, 1, 4, 1];
        let max_new = 8usize;
        let mut session = DecodeSession::new(
            &model,
            0,
            prompt.clone(),
            max_new,
            NativeBackend,
            SessionConfig::default(),
        );
        session.prefill(&model, &sim);
        while !session.is_done() {
            let committed = session.tokens().len();
            let k_eff = k.min(max_new - committed - 1);
            let base = prompt.len() + committed - 1;
            let report = session.spec_step(&model, &draft, &sim, k);
            if k_eff == 0 {
                // Degenerate tail: a plain step, covered by the
                // decode-step crossval above.
                continue;
            }
            let recorded = body_gemms(&report.verify_trace).coalesce();
            // The first verified position attends over base + 1 tokens.
            let analytical_ops = DecodeTrace::new(spec.clone(), base + 1, 1);
            let analytical = analytical_ops.spec_trace(k_eff).coalesce();
            assert_eq!(
                recorded, analytical,
                "{}: recorded verify step and analytical spec_trace disagree \
                 at base {base}, k_eff {k_eff}",
                spec.name
            );
            assert_eq!(
                sim.run_trace(&recorded),
                sim.run_trace(&analytical),
                "{}: verify trace must cost like its analytic twin",
                spec.name
            );
        }
    }
}

#[test]
fn quantized_recorded_decode_steps_match_the_analytical_decode_trace() {
    // Token-by-token decoding with the weight-bearing layers on true
    // i8 / i4 codes: each step's recorded body GEMMs must still equal
    // the analytical per-token `DecodeTrace` at every context length —
    // the integer path feeds the same record→replay pipeline, so the
    // paged-KV serving stack costs quantized tokens correctly.
    let spec = TransformerConfig::gpt2_small(16).tiny_validation();
    let model = decoder_at(&spec, 16);
    for (bits, quant) in [(8u32, QuantConfig::int8()), (4, QuantConfig::int4())] {
        let sim = Simulator::new(ArchConfig::lt_base(bits));
        let prompt = vec![3usize, 1, 4, 1];
        let mut session = DecodeSession::new(
            &model,
            0,
            prompt.clone(),
            5,
            NativeBackend,
            SessionConfig {
                quant,
                ..SessionConfig::default()
            },
        );
        session.prefill(&model, &sim);
        let mut context = prompt.len();
        while !session.is_done() {
            let recorded = body_gemms(&session.step(&model, &sim)).coalesce();
            context += 1;
            let analytical_ops = DecodeTrace::new(spec.clone(), context, 1);
            assert_eq!(
                recorded,
                analytical_ops.op_trace().coalesce(),
                "[{bits}-bit] recorded decode step and analytical DecodeTrace \
                 disagree at context {context}"
            );
            assert_eq!(
                recorded.total_macs(),
                analytical_ops.macs_per_token(),
                "[{bits}-bit] per-token MAC accounting drifted at context {context}"
            );
        }
    }
}

#[test]
fn batched_decode_tick_matches_the_analytical_batched_decode_trace() {
    // Sixteen equal-geometry sessions stepped as one continuous-batch
    // tick, row-stacked by the scheduler's merge, must equal the
    // analytical batch-16 DecodeTrace — and replay to fewer cycles than
    // sixteen batch-1 steps (the Section VI-B batching remedy in the
    // replayed-cycle metric).
    let spec = TransformerConfig::gpt2_small(16).tiny_validation();
    let model = decoder_at(&spec, 16);
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let prompt = vec![2usize, 7, 1, 8];
    let mut sessions: Vec<DecodeSession<NativeBackend>> = (0..16)
        .map(|ticket| {
            DecodeSession::new(
                &model,
                ticket,
                prompt.clone(),
                3,
                NativeBackend,
                SessionConfig {
                    seed: 9,
                    ..SessionConfig::default()
                },
            )
        })
        .collect();
    for s in sessions.iter_mut() {
        s.prefill(&model, &sim);
    }
    let step_bodies: Vec<Trace> = sessions
        .iter_mut()
        .map(|s| body_gemms(&s.step(&model, &sim)))
        .collect();
    let context = prompt.len() + 1;
    let batched = Trace::batch_rows(step_bodies.iter()).coalesce();
    let analytical = DecodeTrace::new(spec.clone(), context, 16)
        .op_trace()
        .coalesce();
    assert_eq!(
        batched, analytical,
        "scheduler merge == analytical batch-16 trace"
    );

    let batch1_cycles: u64 = step_bodies.iter().map(|t| sim.run_trace(t).cycles).sum();
    let batch16_cycles = sim.run_trace(&batched).cycles;
    assert!(
        batch16_cycles < batch1_cycles,
        "batch 16 must beat 16x batch 1 in replayed cycles: {batch16_cycles} vs {batch1_cycles}"
    );
}

/// The six traces the scheduler-vs-closed-form oracle runs over: every
/// paper benchmark's full-size analytical trace plus the batch-1
/// autoregressive decode trace (GPT2-small at context 512).
fn oracle_traces() -> Vec<(String, Trace)> {
    let mut traces: Vec<(String, Trace)> = TransformerConfig::paper_benchmarks()
        .into_iter()
        .map(|m| (m.name.clone(), m.trace()))
        .collect();
    traces.push((
        "GPT2-small decode ctx=512 b=1".to_string(),
        DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1).op_trace(),
    ));
    traces
}

#[test]
fn scheduler_equals_the_closed_form_oracle_under_unconstrained_memory() {
    // With unlimited SRAM and infinite HBM bandwidth there is nothing
    // to stage, stall on, or refetch: the tile schedule must collapse
    // to the closed-form per-op model exactly — same cycles, and in
    // fact the same report bit for bit (shared energy/stall/utilization
    // arithmetic).
    for bits in [4, 8] {
        let sim = Simulator::new(ArchConfig::lt_base(bits).unconstrained_memory());
        for (name, trace) in oracle_traces() {
            let scheduled = sim.run_trace(&trace);
            let analytic = sim.analytic_report(&trace);
            assert_eq!(
                scheduled.cycles, analytic.cycles,
                "{name} [{bits}-bit]: scheduled cycles must equal the closed form"
            );
            assert_eq!(
                scheduled, analytic,
                "{name} [{bits}-bit]: unconstrained memory is the exact oracle"
            );
        }
    }
}

#[test]
fn scheduler_only_improves_on_the_closed_form_under_real_configs() {
    // Under the real LT-B / LT-L memory systems the schedule may only
    // improve on the closed form: per-op overlap (the next op's weights
    // prefetching under the current op's compute) hides traffic the
    // closed form charges in full. Cycles are schedule-invariant.
    for config in [ArchConfig::lt_base(4), ArchConfig::lt_large(4)] {
        let sim = Simulator::new(config.clone());
        for (name, trace) in oracle_traces() {
            let scheduled = sim.run_trace(&trace);
            let analytic = sim.analytic_report(&trace);
            assert_eq!(
                scheduled.cycles, analytic.cycles,
                "{name} on {}",
                config.name
            );
            assert!(
                scheduled.latency.value() <= analytic.latency.value() * (1.0 + 1e-9),
                "{name} on {}: scheduled {} ms must not exceed closed-form {} ms",
                config.name,
                scheduled.latency.value(),
                analytic.latency.value()
            );
        }
    }
}

#[test]
fn memory_bound_decode_ops_report_nonzero_stalls() {
    // The decode trace is the memory wall made concrete (Section VI-B):
    // at least its weight-streaming matrix-vector products must surface
    // a nonzero bandwidth stall, classified memory-bound, on both
    // paper configurations.
    let trace = DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1).op_trace();
    for config in [ArchConfig::lt_base(8), ArchConfig::lt_large(8)] {
        let sim = Simulator::new(config.clone());
        let sched = sim.schedule_trace(&trace, sim.config().dataflow);
        assert!(
            sched.stalled_ops() > 0,
            "{}: no op reported a bandwidth stall",
            config.name
        );
        let worst = sched
            .per_op
            .iter()
            .max_by(|a, b| {
                a.stalls
                    .bandwidth
                    .value()
                    .partial_cmp(&b.stalls.bandwidth.value())
                    .unwrap()
            })
            .unwrap();
        assert_eq!(
            worst.stalls.bound(),
            lightening_transformer::arch::roofline::Bound::Memory,
            "{}: the worst-stalled op must classify memory-bound",
            config.name
        );
        assert!(
            sched.total.stalls.bandwidth.value() > 0.0,
            "{}: the trace total must carry the stall",
            config.name
        );
        // And the same trace under unconstrained memory reports none.
        let free = Simulator::new(config.clone().unconstrained_memory());
        let unconstrained = free.run_trace(&trace);
        assert_eq!(unconstrained.stalls.bandwidth.value(), 0.0);
    }
}

#[test]
fn recorded_non_gemm_counts_cover_the_analytical_profile() {
    // The recorded trace counts *all* executed digital work; it must be
    // at least the analytical per-block profile (it also sees the final
    // LayerNorm the analytical profile omits) and exactly match it on
    // softmax and GELU, which exist only inside blocks.
    for model in TransformerConfig::paper_benchmarks() {
        let tiny = model.tiny_validation();
        let prof = tiny.non_gemm_profile();
        let recorded = record_forward(&tiny);
        let sum = |kind: lightening_transformer::core::NonGemmKind| -> u64 {
            recorded
                .ops()
                .iter()
                .filter_map(|op| match *op {
                    Op::NonGemm { kind: k, elems } if k == kind => Some(elems),
                    _ => None,
                })
                .sum()
        };
        use lightening_transformer::core::NonGemmKind::*;
        assert_eq!(sum(Softmax), prof.softmax_elems, "{}", model.name);
        assert_eq!(sum(Gelu), prof.gelu_elems, "{}", model.name);
        assert_eq!(sum(Residual), prof.residual_elems, "{}", model.name);
        let ln_f = (tiny.seq_len * tiny.dim) as u64;
        assert_eq!(
            sum(LayerNorm),
            prof.layernorm_elems + ln_f,
            "{}: recorded = per-block norms + the final LayerNorm",
            model.name
        );
    }
}
