//! Recorded-vs-analytical trace cross-validation.
//!
//! The simulator used to be fed only by the hand-maintained analytical
//! trace (`TransformerConfig::gemm_trace`), which could silently diverge
//! from what the `lt-nn` models actually execute. These tests close the
//! loop: for every paper benchmark, a *real* forward pass of the
//! corresponding `lt-nn` model (at the benchmark's structurally
//! identical `tiny_validation` geometry, where weights can actually be
//! instantiated) is recorded through the op-trace IR, and the recorded
//! GEMMs must agree with the analytical generator — same dims, same
//! instance counts, same MACs — and cost the same when replayed through
//! the accelerator model.

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::core::{GaussianSampler, Op, Trace, TraceRecorder};
use lightening_transformer::nn::layers::ForwardCtx;
use lightening_transformer::nn::model::{Classifier, ModelConfig};
use lightening_transformer::nn::quant::QuantConfig;
use lightening_transformer::nn::{ExactEngine, Tensor, TextClassifier, VisionTransformer};
use lightening_transformer::workloads::model::InputKind;
use lightening_transformer::workloads::TransformerConfig;

/// Builds the `lt-nn` model matching `spec`'s geometry, runs one real
/// forward pass with a recorder attached, and returns the recorded trace.
fn record_forward(spec: &TransformerConfig) -> Trace {
    let cfg = ModelConfig {
        dim: spec.dim,
        layers: spec.layers,
        heads: spec.heads,
        ffn_dim: spec.ffn_dim,
        classes: spec.num_classes,
    };
    let mut rng = GaussianSampler::new(42);
    let recorder = TraceRecorder::new();
    let mut engine = ExactEngine;
    let mut nrng = GaussianSampler::new(0);
    let mut ctx = ForwardCtx::inference(&mut engine, QuantConfig::fp32(), &mut nrng)
        .with_recorder(recorder.clone());
    match spec.input {
        InputKind::VisionPatches { patch_size, .. } => {
            let patch_dim = 3 * patch_size * patch_size;
            let mut model = VisionTransformer::new(cfg, spec.seq_len - 1, patch_dim, &mut rng);
            let patches = Tensor::randn(spec.seq_len - 1, patch_dim, 1.0, &mut rng);
            let logits = model.forward(&patches, &mut ctx);
            assert_eq!(logits.shape(), (1, spec.num_classes));
        }
        InputKind::TextTokens => {
            let vocab = 16;
            let mut model = TextClassifier::new(cfg, vocab, spec.seq_len, &mut rng);
            let tokens: Vec<usize> = (0..spec.seq_len).map(|i| (i * 7 + 3) % vocab).collect();
            let logits = model.forward(&tokens, &mut ctx);
            assert_eq!(logits.shape(), (1, spec.num_classes));
        }
    }
    recorder.take()
}

/// The analytical trace of `spec` in the shared IR, GEMMs only.
fn analytical_gemms(spec: &TransformerConfig) -> Trace {
    Trace::from_ops(spec.gemm_trace().iter().map(|op| op.op()).collect())
}

#[test]
fn recorded_gemms_match_the_analytical_trace_for_every_paper_benchmark() {
    for model in TransformerConfig::paper_benchmarks() {
        let tiny = model.tiny_validation();
        let recorded = record_forward(&tiny).gemm_only().coalesce();
        let analytical = analytical_gemms(&tiny).coalesce();
        assert_eq!(
            recorded, analytical,
            "{}: recorded execution and analytical generator disagree on \
             GEMM dims or instance counts",
            model.name
        );
        assert_eq!(
            recorded.total_macs(),
            tiny.total_macs(),
            "{}: MAC accounting drifted",
            model.name
        );
    }
}

#[test]
fn recorded_and_analytical_traces_cost_identically_in_the_simulator() {
    let sim = Simulator::new(ArchConfig::lt_base(4));
    for model in TransformerConfig::paper_benchmarks() {
        let tiny = model.tiny_validation();
        let recorded = record_forward(&tiny).gemm_only().coalesce();
        let analytical = analytical_gemms(&tiny).coalesce();
        let r = sim.run_trace(&recorded);
        let a = sim.run_trace(&analytical);
        assert_eq!(r, a, "{}: equal traces must cost identically", model.name);
        assert!(
            r.cycles > 0 && r.energy.total().value() > 0.0,
            "{}",
            model.name
        );
        // And the simulator itself is deterministic: replaying the same
        // trace twice is bit-identical.
        assert_eq!(r, sim.run_trace(&recorded), "{}", model.name);
    }
}

#[test]
fn recorded_non_gemm_counts_cover_the_analytical_profile() {
    // The recorded trace counts *all* executed digital work; it must be
    // at least the analytical per-block profile (it also sees the final
    // LayerNorm the analytical profile omits) and exactly match it on
    // softmax and GELU, which exist only inside blocks.
    for model in TransformerConfig::paper_benchmarks() {
        let tiny = model.tiny_validation();
        let prof = tiny.non_gemm_profile();
        let recorded = record_forward(&tiny);
        let sum = |kind: lightening_transformer::core::NonGemmKind| -> u64 {
            recorded
                .ops()
                .iter()
                .filter_map(|op| match *op {
                    Op::NonGemm { kind: k, elems } if k == kind => Some(elems),
                    _ => None,
                })
                .sum()
        };
        use lightening_transformer::core::NonGemmKind::*;
        assert_eq!(sum(Softmax), prof.softmax_elems, "{}", model.name);
        assert_eq!(sum(Gelu), prof.gelu_elems, "{}", model.name);
        assert_eq!(sum(Residual), prof.residual_elems, "{}", model.name);
        let ln_f = (tiny.seq_len * tiny.dim) as u64;
        assert_eq!(
            sum(LayerNorm),
            prof.layernorm_elems + ln_f,
            "{}: recorded = per-block norms + the final LayerNorm",
            model.name
        );
    }
}
