//! The schedule cache's correctness contract.
//!
//! `Simulator::new` memoizes each GEMM's tile plan (map, staged
//! segments, energy) keyed by op shape x dataflow, invalidated by the
//! `ArchConfig` fingerprint; `Simulator::uncached` is the always-miss
//! reference that rebuilds every op from scratch. These tests prove the
//! two are bit-for-bit identical across every dataflow policy, every
//! paper benchmark, and the autoregressive decode trace — and that the
//! hit/miss counters are deterministic, so `repro check` can gate them.

use lightening_transformer::arch::{ArchConfig, DataflowPolicy, Simulator};
use lightening_transformer::core::Trace;
use lightening_transformer::workloads::{DecodeTrace, TransformerConfig};

/// Every workload the cache must be transparent for: the five paper
/// benchmarks' full-size analytical traces plus the batch-1 decode
/// trace (GPT2-small at context 512) — the same set as the
/// scheduler-vs-closed-form oracle in `trace_crossval.rs`.
fn cache_workloads() -> Vec<(String, Trace)> {
    let mut traces: Vec<(String, Trace)> = TransformerConfig::paper_benchmarks()
        .into_iter()
        .map(|m| (m.name.clone(), m.trace()))
        .collect();
    traces.push((
        "GPT2-small decode ctx=512 b=1".to_string(),
        DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1).op_trace(),
    ));
    traces
}

#[test]
fn cached_schedules_equal_uncached_bit_for_bit() {
    // The memoized fast path must never change a number: for every
    // dataflow x workload, the cached simulator's per-op reports, trace
    // total, and HBM traffic equal the always-miss reference exactly.
    for config in [ArchConfig::lt_base(8), ArchConfig::lt_large(4)] {
        let cached = Simulator::new(config.clone());
        let uncached = Simulator::uncached(config);
        for policy in DataflowPolicy::ALL {
            for (name, trace) in cache_workloads() {
                let fast = cached.schedule_trace(&trace, policy);
                let slow = uncached.schedule_trace(&trace, policy);
                assert_eq!(
                    fast.per_op,
                    slow.per_op,
                    "{name} [{}]: cached per-op reports drifted",
                    policy.name()
                );
                assert_eq!(
                    fast.total,
                    slow.total,
                    "{name} [{}]: cached trace total drifted",
                    policy.name()
                );
                assert_eq!(
                    fast.hbm_bytes.to_bits(),
                    slow.hbm_bytes.to_bits(),
                    "{name} [{}]: cached HBM traffic drifted",
                    policy.name()
                );
            }
        }
        // The reference cache never stores or counts anything.
        let stats = uncached.schedule_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
        // The real cache did real work, and every miss inserted exactly
        // one entry.
        let before = cached.schedule_cache_stats();
        assert!(before.entries > 0 && before.misses > 0);
        assert_eq!(
            before.misses as usize, before.entries,
            "every miss inserts exactly one entry"
        );
        // A replayed pass is served entirely from the cache.
        let (_, trace) = &cache_workloads()[0];
        cached.schedule_trace(trace, DataflowPolicy::ALL[0]);
        let after = cached.schedule_cache_stats();
        assert_eq!(after.misses, before.misses, "a replay must not miss");
        assert!(after.hits > before.hits, "a replay must hit");
    }
}

#[test]
fn run_trace_is_identical_with_and_without_the_cache() {
    // The public entry point (config's own dataflow): replaying through
    // `run_trace` on a warm cache equals the cold uncached run, and a
    // second replay on the same simulator — now served entirely from
    // the cache — is bit-identical to the first.
    for bits in [4, 8] {
        let config = ArchConfig::lt_base(bits);
        let cached = Simulator::new(config.clone());
        let uncached = Simulator::uncached(config);
        for (name, trace) in cache_workloads() {
            let first = cached.run_trace(&trace);
            assert_eq!(
                first,
                uncached.run_trace(&trace),
                "{name} [{bits}-bit]: cache changed a run_trace report"
            );
            let misses_before = cached.schedule_cache_stats().misses;
            let replay = cached.run_trace(&trace);
            assert_eq!(first, replay, "{name} [{bits}-bit]: warm replay drifted");
            assert_eq!(
                cached.schedule_cache_stats().misses,
                misses_before,
                "{name} [{bits}-bit]: a warm replay must not miss"
            );
        }
    }
}

#[test]
fn hit_and_miss_counts_are_deterministic_across_identical_runs() {
    // Two fresh simulators fed the identical op sequence must land on
    // identical counters — the property that lets BENCH_repro.json gate
    // the counts as deterministic fields.
    let run = || {
        let sim = Simulator::new(ArchConfig::lt_base(8));
        for (_, trace) in cache_workloads() {
            sim.run_trace(&trace);
            for policy in DataflowPolicy::ALL {
                sim.schedule_trace(&trace, policy);
            }
        }
        let stats = sim.schedule_cache_stats();
        (stats.hits, stats.misses, stats.entries)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "replaying the same workload must replay the counters");
    // `run_trace` walks the config's own dataflow, and the explicit
    // sweep revisits it — so the second pass over each trace hits.
    assert!(a.0 > 0, "the repeated dataflow pass must produce hits");
}

#[test]
fn clones_share_one_cache_and_its_counters() {
    // `Simulator` is cloned into worker threads by the serving stack;
    // the clone family shares a single cache, so warm workers never
    // rebuild schedules the first worker already planned.
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let (_, trace) = &cache_workloads()[0];
    let warm = sim.run_trace(trace);
    let misses = sim.schedule_cache_stats().misses;
    let clone = sim.clone();
    assert_eq!(warm, clone.run_trace(trace), "clone must reuse, not drift");
    assert_eq!(
        clone.schedule_cache_stats().misses,
        misses,
        "a clone replaying the same trace must be all hits"
    );
}
