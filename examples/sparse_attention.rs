//! Structured sparse attention on DPTC (paper Section VI-A, Fig. 16):
//! blockify a window local-attention pattern into dense chunked MMs and
//! measure the energy/latency payoff on LT-B.
//!
//! ```sh
//! cargo run --release --example sparse_attention
//! ```

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::workloads::{GemmOp, OpKind, WindowAttention};

fn main() {
    let sim = Simulator::new(ArchConfig::lt_base(4));
    let (tokens, head_dim) = (384usize, 64usize);

    println!("window local attention over {tokens} tokens (one head, d_k = {head_dim}):\n");
    println!(
        "{:>8} {:>7} {:>9} {:>11} {:>13} {:>13}",
        "window", "block", "density", "MAC saving", "energy gain", "latency gain"
    );
    let dense_qk = GemmOp::new(OpKind::AttnQk, tokens, head_dim, tokens, 1);
    let dense_av = GemmOp::new(OpKind::AttnAv, tokens, tokens, head_dim, 1);
    let mut dense = sim.run_op(&dense_qk);
    dense.merge(&sim.run_op(&dense_av));

    for (window, block) in [(3usize, 24usize), (3, 36), (5, 24), (7, 12)] {
        let w = WindowAttention::new(tokens, window, block, head_dim);
        let mut sparse = sim.run_op(&w.blockified_qk());
        sparse.merge(&sim.run_op(&w.blockified_av()));
        println!(
            "{window:>8} {block:>7} {:>8.1}% {:>10.2}x {:>12.2}x {:>12.2}x",
            w.density() * 100.0,
            w.mac_saving(),
            dense.energy.total().value() / sparse.energy.total().value(),
            dense.latency.value() / sparse.latency.value(),
        );
    }

    println!();
    println!("after blockification every chunk is a dense MM that DPTC executes");
    println!("natively; the sparse pattern costs nothing beyond its residual density.");
}
