//! dataflow_sweep — which loop order should the accelerator run?
//!
//! Prints the `repro dataflow` experiment: every paper benchmark's
//! trace (DeiT-T/S/B, BERT-B/L prefill, plus GPT2-small autoregressive
//! decode) played through the tile-level scheduler under each
//! `DataflowPolicy`, with cycles, utilization, HBM traffic, and the
//! stall breakdown per policy — the design-space question the
//! closed-form cost model could not even ask. On top of the table, the
//! example asserts the scheduler's two headline invariants end to end.
//!
//! ```sh
//! cargo run --release --example dataflow_sweep
//! ```

use lightening_transformer::arch::{ArchConfig, DataflowPolicy, Simulator};
use lightening_transformer::workloads::{DecodeTrace, TransformerConfig};

fn main() {
    println!("== Dataflow sweep over the tile-level scheduler ==\n");
    print!("{}", lt_bench::experiments::dataflow::dataflow());

    // The oracle sanity the sweep rides on: unconstrained memory makes
    // the schedule collapse to the closed form exactly...
    let free = Simulator::new(ArchConfig::lt_base(4).unconstrained_memory());
    let trace = TransformerConfig::deit_tiny().trace();
    assert_eq!(free.run_trace(&trace), free.analytic_report(&trace));

    // ...cycles are loop-order invariant...
    let sim8 = Simulator::new(ArchConfig::lt_base(8));
    let decode = DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1).op_trace();
    let cycles: Vec<u64> = DataflowPolicy::ALL
        .iter()
        .map(|&p| sim8.schedule_trace(&decode, p).total.cycles)
        .collect();
    assert!(cycles.windows(2).all(|w| w[0] == w[1]));

    // ...and the decode regime reports a real memory wall.
    let sched = sim8.schedule_trace(&decode, DataflowPolicy::WeightStationary);
    assert!(sched.total.stalls.bandwidth.value() > 0.0);
    println!(
        "schedule cache across the sweep: {}",
        sim8.schedule_cache_stats()
    );
    println!("ok: cycles are policy-invariant, the oracle holds, and decode stalls are visible");
}
