//! LLM autoregressive decoding on the photonic accelerator (paper
//! Section VI-B): arithmetic intensity, memory-boundedness, and the
//! batching remedy, quantified on LT-B with a roofline analysis.
//!
//! ```sh
//! cargo run --release --example llm_decode
//! ```

use lightening_transformer::arch::roofline::{analyze, Bound};
use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::workloads::{DecodeTrace, TransformerConfig};

fn main() {
    // A GPT-2-small decoder with a 512-token KV cache.
    let model = TransformerConfig::gpt2_small(1);
    let cfg = ArchConfig::lt_base(8);
    let sim = Simulator::new(cfg.clone());
    let hbm_gbps = 1000.0; // 1 TB/s

    println!("token-by-token decoding, 512-token context, 8-bit:");
    println!(
        "{:>6} {:>14} {:>10} {:>13} {:>13} {:>8} {:>6}",
        "batch", "MACs/token", "MAC/byte", "compute(us)", "HBM(us)", "bound", "util"
    );
    let ridge = analyze(&cfg, &DecodeTrace::new(model.clone(), 512, 1).gemm_trace()).ridge;
    for batch in [1usize, 4, 16, 64, 256] {
        let trace = DecodeTrace::new(model.clone(), 512, batch);
        // The analytical decode step replays through the same trace-IR
        // entry point as recorded execution (`lt_nn::decode`) — one
        // costing path for the roofline table and the serving runtime.
        let report = sim.run_trace(&trace.op_trace());
        let compute_us = report.latency.value() * 1e3;
        // Weights + every sequence's private KV cache stream from HBM.
        let bytes = model.param_count() as f64 + trace.kv_cache_bytes(8) as f64;
        let hbm_us = bytes / (hbm_gbps * 1e9) * 1e6;
        // Classify against the ridge using the *per-sequence* KV traffic
        // (each batch element reads its own cache).
        let intensity = trace.arithmetic_intensity(8);
        let bound = if intensity >= ridge {
            Bound::Compute
        } else {
            Bound::Memory
        };
        println!(
            "{batch:>6} {:>14} {:>10.2} {:>13.2} {:>13.2} {:>8} {:>5.0}%",
            trace.macs_per_token(),
            intensity,
            compute_us,
            hbm_us,
            match bound {
                Bound::Compute => "compute",
                Bound::Memory => "memory",
            },
            (intensity / ridge).min(1.0) * 100.0,
        );
    }

    println!("\nLT-B ridge point: {ridge:.1} MACs per HBM byte");
    println!("observations (matching the paper's Section VI-B):");
    println!(" - at batch 1 the HBM-bound time dwarfs photonic compute: decoding is");
    println!("   memory-bound and the ultra-fast optics sit underutilized;");
    println!(" - batching raises arithmetic intensity past the ridge point;");
    println!(" - KV-cache growth is linear in context; recomputing K/V trades cheap");
    println!("   optical MACs for HBM bytes, exactly the remedy the paper suggests.");
}
