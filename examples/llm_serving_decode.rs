//! Continuous-batching LLM decode serving (paper Section VI-B, made
//! executable): concurrent generation requests stream through
//! [`DecodeServer`], whose workers interleave prefill and per-token
//! decode steps across all in-flight requests — newcomers join between
//! token steps, finished requests leave, and every generated token
//! carries the hardware cost of its recorded op trace replayed through
//! the LT-B model.
//!
//! The run prints the batching remedy in the replayed-cycle metric:
//! each scheduler tick's per-session matrix-vector step traces are
//! row-stacked into one batched trace ([`lt_core::Trace::batch_rows`]),
//! and the merged cycles come out well below the one-request-at-a-time
//! cost of the same tokens.
//!
//! ```sh
//! cargo run --release --example llm_serving_decode
//! LT_DECODE_REQUESTS=4 cargo run --release --example llm_serving_decode   # bounded (CI smoke)
//! LT_DECODE_QUANT=int8 cargo run --release --example llm_serving_decode   # true i8 weight path
//! LT_THREADS=4 cargo run --release --example llm_serving_decode           # row-block GEMM pool
//! ```

use lightening_transformer::core::GaussianSampler;
use lightening_transformer::dptc::DptcBackend;
use lightening_transformer::nn::decode::{DecodeReply, DecoderConfig, DecoderLm};
use lightening_transformer::nn::serve::decode::{DecodeRequest, DecodeServeConfig, DecodeServer};
use lightening_transformer::nn::QuantConfig;
use lightening_transformer::runtime::ThreadsConfig;
use std::time::Instant;

/// Total requests; override with `LT_DECODE_REQUESTS` (CI smoke runs 4).
fn total_requests() -> usize {
    std::env::var("LT_DECODE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
        .max(1)
}

/// Layer quantization mode; `LT_DECODE_QUANT` selects `fp32` (default),
/// `int8`, or `int4` — the latter two execute weight-bearing layers on
/// true integer codes ([`lt_core::quantized_gemm`]).
fn quant_mode() -> QuantConfig {
    match std::env::var("LT_DECODE_QUANT").as_deref() {
        Ok("int8") => QuantConfig::int8(),
        Ok("int4") => QuantConfig::int4(),
        Ok("fp32") | Err(_) => QuantConfig::fp32(),
        Ok(other) => panic!("LT_DECODE_QUANT must be fp32|int8|int4, got {other:?}"),
    }
}

fn make_request(i: usize) -> DecodeRequest {
    DecodeRequest {
        prompt: (0..(3 + i % 5)).map(|t| (i * 7 + t * 3) % 16).collect(),
        max_new_tokens: 4 + i % 6,
    }
}

fn main() {
    let total = total_requests();
    let quant = quant_mode();
    let mut rng = GaussianSampler::new(42);
    let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let threads = ThreadsConfig::from_env();
    let config = DecodeServeConfig {
        workers: 2,
        max_active: 8,
        seed: 7,
        quant,
        threads,
        ..DecodeServeConfig::default()
    };
    let clock_ghz = config.arch.clock.value();
    let server = DecodeServer::new(model.clone(), DptcBackend::paper(8, 7), config);
    if threads.is_parallel() {
        println!(
            "parallel GEMM dispatch: LT_THREADS={} (replies stay bit-identical)",
            threads.threads()
        );
    }

    let start = Instant::now();
    let pending: Vec<_> = (0..total).map(|i| server.submit(make_request(i))).collect();
    let replies: Vec<DecodeReply> = pending.into_iter().map(|p| p.wait()).collect();
    let elapsed = start.elapsed();

    let tokens: usize = replies.iter().map(|r| r.tokens.len()).sum();
    println!(
        "decoded {tokens} tokens across {total} requests in {:.1} ms ({:.0} tokens/s wall)",
        elapsed.as_secs_f64() * 1e3,
        tokens as f64 / elapsed.as_secs_f64()
    );
    println!(
        "continuous batching: {} decode ticks, realized batch width {:.2}",
        server.ticks(),
        server.decoded_tokens() as f64 / server.ticks().max(1) as f64
    );
    let (hits, misses) = server.schedule_cache_hits_misses();
    println!(
        "schedule cache: {hits} hits / {misses} misses ({:.1}% hit rate) — \
         per-token replay reuses memoized tile plans",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );

    // The Section VI-B claim, measured on this very stream: the merged
    // per-tick traces replay to fewer photonic cycles than the same
    // tokens served one request at a time.
    let batched = server.batched_cycles();
    let sequential = server.sequential_cycles();
    let decoded = server.decoded_tokens();
    let tokens_per_s = |cycles: u64| decoded as f64 * clock_ghz * 1e9 / cycles.max(1) as f64;
    println!(
        "replayed decode cost (LT-B 8-bit): batched {batched} cycles vs {sequential} one-at-a-time \
         ({:.2}x fewer)",
        sequential as f64 / batched.max(1) as f64
    );
    println!(
        "replayed throughput: {:.3e} tokens/s batched vs {:.3e} tokens/s at batch 1",
        tokens_per_s(batched),
        tokens_per_s(sequential)
    );

    // Every reply carries prefill + per-token costs and its KV footprint.
    let sample = &replies[0];
    println!(
        "sample reply (ticket 0): prompt {:?} -> tokens {:?}",
        sample.prompt, sample.tokens
    );
    println!(
        "  prefill: {} cycles; steps: {:?} cycles; KV cache {} bytes",
        sample.prefill.cycles,
        sample.steps.iter().map(|s| s.cycles).collect::<Vec<_>>(),
        sample.kv_cache_bytes
    );

    // Determinism: replay the stream one request at a time on one
    // worker — token streams and costs must be bit-identical.
    let replay_server = DecodeServer::new(
        model,
        DptcBackend::paper(8, 7),
        DecodeServeConfig {
            workers: 1,
            max_active: 1,
            seed: 7,
            quant,
            ..DecodeServeConfig::default()
        },
    );
    let replay_pending: Vec<_> = (0..total)
        .map(|i| replay_server.submit(make_request(i)))
        .collect();
    for (i, (p, original)) in replay_pending.into_iter().zip(&replies).enumerate() {
        let replayed = p.wait();
        assert_eq!(
            &replayed, original,
            "request {i} must replay bit-identically on 1 worker / width 1"
        );
    }
    println!("determinism: all {total} replies replayed bit-identically on 1 worker / width 1");
    replay_server.shutdown();
    server.shutdown();
}
