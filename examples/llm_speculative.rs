//! Speculative decoding, end to end: a draft LM proposes `k` tokens,
//! the target verifies all of them in ONE batched pass, mismatches are
//! rolled back out of the KV cache — and the output stream stays
//! bit-identical to plain greedy decode, even on the noisy photonic
//! backend.
//!
//! The example serves the same request mix twice through
//! [`DecodeServer`] (plain vs. speculative at `LT_SPEC_K`, default 4)
//! and asserts every reply matches token for token and cost for cost.
//! Then it prints the `repro spec` sweep: replayed target-model cycles
//! per generated token for k∈{0,2,4,8} at batch 1 and 8, with the
//! draft's own cycles itemized separately.
//!
//! ```sh
//! cargo run --release --example llm_speculative
//! LT_SPEC_K=8 cargo run --release --example llm_speculative   # deeper speculation
//! ```

use lightening_transformer::core::GaussianSampler;
use lightening_transformer::dptc::DptcBackend;
use lightening_transformer::nn::decode::{DecodeReply, DecoderConfig, DecoderLm};
use lightening_transformer::nn::serve::decode::{
    DecodeRequest, DecodeServeConfig, DecodeServer, SpecConfig,
};
use lightening_transformer::nn::serve::sched::KvServeConfig;

/// Varied prompts and generation lengths over the tiny vocabulary.
fn make_request(i: usize) -> DecodeRequest {
    DecodeRequest {
        prompt: (0..3 + i % 4).map(|t| (i * 5 + t * 3) % 16).collect(),
        max_new_tokens: 6 + i % 5,
    }
}

/// Serves the fixed mix once and returns the replies plus the server's
/// speculation counters `(proposed, accepted, draft_cycles)`.
fn serve(spec: SpecConfig, total: usize) -> (Vec<DecodeReply>, u64, u64, u64) {
    let mut rng = GaussianSampler::new(42);
    let mut model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    // The synthetic stand-in for a trained LM's layer-wise refinement:
    // without it a random-init target disagrees with its own first half
    // at chance level (see `DecoderLm::taper_deep_blocks`).
    model.taper_deep_blocks(0.25);
    let server = DecodeServer::new(
        model,
        DptcBackend::paper(8, 3),
        DecodeServeConfig {
            workers: 1,
            max_active: 4,
            seed: 7,
            kv: KvServeConfig {
                block_tokens: 4,
                pool_blocks: 64,
                ..KvServeConfig::default()
            },
            spec,
            ..DecodeServeConfig::default()
        },
    );
    let pending: Vec<_> = (0..total).map(|i| server.submit(make_request(i))).collect();
    let replies: Vec<DecodeReply> = pending.into_iter().map(|p| p.wait()).collect();
    let out = (
        replies,
        server.spec_proposed(),
        server.spec_accepted(),
        server.draft_cycles(),
    );
    server.shutdown();
    out
}

fn main() {
    let env = SpecConfig::from_env();
    let k = if env.is_enabled() { env.k } else { 4 };
    let total = 8;

    println!("== Speculative decoding (LT_SPEC_K={k}, noisy DPTC backend) ==\n");
    let (base, p0, a0, d0) = serve(SpecConfig::default(), total);
    assert_eq!((p0, a0, d0), (0, 0, 0), "plain serving must not speculate");
    let (spec, proposed, accepted, draft_cycles) = serve(SpecConfig::with_k(k), total);

    assert!(proposed > 0, "speculation must propose");
    assert!(accepted <= proposed);
    assert!(draft_cycles > 0, "draft overhead must be accounted");
    for (i, (a, b)) in base.iter().zip(&spec).enumerate() {
        assert_eq!(
            a, b,
            "request {i}: speculation must not change tokens or costs"
        );
    }
    let tokens: usize = base.iter().map(|r| r.tokens.len()).sum();
    println!(
        "bit-identical: all {total} replies ({tokens} tokens, per-token costs, KV footprints)\n\
         match plain greedy decode at k={k}; acceptance {}/{} = {:.3}, draft overhead \
         {draft_cycles} replayed cycles\n",
        accepted,
        proposed,
        accepted as f64 / proposed as f64,
    );

    print!("{}", lt_bench::experiments::spec::spec());
}
