//! Paged KV cache under memory pressure, end to end: the same request
//! stream served twice through [`DecodeServer`] — once with a roomy
//! block pool (nothing is ever evicted) and once with a pool squeezed
//! to the legal minimum, where sessions' growing contexts force the
//! scheduler to preempt (swap out) and later resume residents.
//!
//! The run asserts the subsystem's core promise: preemption changes
//! *scheduling*, never *results*. Every reply from the starved server —
//! token streams, per-token replayed costs, KV footprints — is
//! bit-identical to the roomy server's, even though the noisy photonic
//! backend makes any recompute-style shortcut detectable.
//!
//! ```sh
//! cargo run --release --example kv_pressure
//! LT_KV_SESSIONS=8 cargo run --release --example kv_pressure   # bounded (CI smoke)
//! ```

use lightening_transformer::core::GaussianSampler;
use lightening_transformer::dptc::DptcBackend;
use lightening_transformer::nn::decode::{DecodeReply, DecoderConfig, DecoderLm};
use lightening_transformer::nn::serve::decode::{DecodeRequest, DecodeServeConfig, DecodeServer};
use lightening_transformer::nn::serve::sched::KvServeConfig;

/// Concurrent sessions; override with `LT_KV_SESSIONS` (CI smoke runs 8).
fn total_sessions() -> usize {
    std::env::var("LT_KV_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
        .max(2)
}

/// Short prompts, long generations: admission is cheap, but every
/// session's context grows well past its prompt — the shape that turns
/// a tight pool into genuine eviction pressure instead of mere
/// admission back-pressure.
fn make_request(i: usize) -> DecodeRequest {
    DecodeRequest {
        prompt: vec![(i * 5) % 16, (i + 3) % 16],
        max_new_tokens: 12,
    }
}

fn serve(label: &str, kv: KvServeConfig, total: usize) -> (Vec<DecodeReply>, u64, u64, u64) {
    let mut rng = GaussianSampler::new(42);
    let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
    let server = DecodeServer::new(
        model,
        DptcBackend::paper(8, 7),
        DecodeServeConfig {
            workers: 1,
            max_active: total,
            seed: 7,
            kv,
            ..DecodeServeConfig::default()
        },
    );
    let pending: Vec<_> = (0..total).map(|i| server.submit(make_request(i))).collect();
    let replies: Vec<DecodeReply> = pending.into_iter().map(|p| p.wait()).collect();
    println!(
        "{label}: {} blocks x {} tokens -> peak {} resident, {} preemptions, {} resumes",
        kv.pool_blocks,
        kv.block_tokens,
        server.peak_resident_sessions(),
        server.preemptions(),
        server.resumes(),
    );
    let out = (
        replies,
        server.preemptions(),
        server.resumes(),
        server.peak_resident_sessions(),
    );
    server.shutdown();
    out
}

fn main() {
    let total = total_sessions();
    let block_tokens = 2;
    let max_seq = DecoderConfig::tiny().max_seq;
    // The legal minimum: one max-length session plus one spare block.
    let min_blocks = max_seq.div_ceil(block_tokens) + 1;

    println!("serving {total} concurrent sessions twice (LT-B 8-bit, swap-out preemption):");
    let roomy = KvServeConfig {
        block_tokens,
        pool_blocks: min_blocks * total,
        ..KvServeConfig::default()
    };
    let (base, roomy_preempt, _, _) = serve("  roomy pool", roomy, total);
    assert_eq!(roomy_preempt, 0, "the roomy pool must never evict");

    let tight = KvServeConfig {
        block_tokens,
        pool_blocks: min_blocks,
        ..KvServeConfig::default()
    };
    let (pressured, preemptions, resumes, peak) = serve("  tight pool", tight, total);
    assert!(preemptions > 0, "the tight pool must evict under load");
    assert_eq!(preemptions, resumes, "every eviction must be resumed");
    assert!(peak >= 2, "pressure must still batch sessions");

    for (i, (a, b)) in base.iter().zip(&pressured).enumerate() {
        assert_eq!(
            a, b,
            "session {i}: preemption must not change tokens or costs"
        );
    }
    let tokens: usize = base.iter().map(|r| r.tokens.len()).sum();
    println!(
        "bit-identical: all {total} replies ({tokens} tokens, costs, KV footprints) match \
         across a {}x pool squeeze",
        roomy.pool_blocks / tight.pool_blocks
    );
}
