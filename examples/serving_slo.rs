//! serving_slo — the SLO-aware serving frontend under a seeded load.
//!
//! Runs the `repro serve` scenario: an open-loop bursty mixed-class
//! workload (`lt_runtime::loadgen`, seed 29) through the deterministic
//! event-loop frontend (`SloFrontend`), once with whole-prompt prefill
//! and once with chunked prefill, then prints the TTFT / inter-token
//! latency percentile table. Every number is simulated accelerator
//! time, so the run is bit-identical across hosts and thread counts —
//! CI replays it and gates the `serving` section of `BENCH_repro.json`
//! on the same values.
//!
//! ```sh
//! cargo run --release --example serving_slo
//! LT_SERVE_SLO_REQUESTS=32 cargo run --release --example serving_slo
//! ```

use lt_bench::experiments::serving;

fn total_requests() -> usize {
    std::env::var("LT_SERVE_SLO_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
        .max(1)
}

fn main() {
    let requests = total_requests();
    println!("== SLO serving frontend ({requests} requests; LT_SERVE_SLO_REQUESTS to vary) ==\n");
    let report = serving::measure(requests);
    print!("{}", serving::render(&report));

    // The scenario is a pure function of (seed, request count): a
    // second run must reproduce every metric bit for bit.
    let again = serving::measure(requests);
    assert_eq!(report.unchunked, again.unchunked, "unchunked run drifted");
    assert_eq!(report.chunked, again.chunked, "chunked run drifted");

    // And the accounting must close: every request ends somewhere.
    for r in [&report.unchunked, &report.chunked] {
        assert_eq!(r.completed + r.rejected + r.failed, requests);
        assert_eq!(r.deadline_hits + r.deadline_misses, r.completed);
    }
    println!("\nok: rerun is bit-identical and every request is accounted for");
}
