//! Design-space exploration: core-size scaling (paper Figs. 9-10), the
//! heterogeneous core search (Section VI-A), and hard-fault resilience.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use lightening_transformer::arch::scaling::evaluate_core;
use lightening_transformer::arch::search::search_core_geometry;
use lightening_transformer::core::Matrix64;
use lightening_transformer::dptc::{
    ChannelFault, Dptc, DptcConfig, FaultSet, Fidelity, NoiseModel,
};
use lightening_transformer::photonics::noise::GaussianSampler;
use lightening_transformer::workloads::TransformerConfig;

fn main() {
    // 1. How far does a single core scale? (Figs. 9-10.)
    println!("single 4-bit core scaling:");
    println!(
        "{:>4} {:>10} {:>9} {:>8} {:>9}",
        "N", "area mm^2", "power W", "TOPS", "TOPS/W"
    );
    for n in [8usize, 16, 32, 48, 64] {
        let p = evaluate_core(n, 4);
        println!(
            "{:>4} {:>10.1} {:>9.2} {:>8.1} {:>9.1}",
            p.n, p.area_mm2, p.power_w, p.tops, p.tops_per_w
        );
    }

    // 2. Which geometry fits DeiT-T best under a 100 mm^2 budget?
    println!("\nbest core geometries for DeiT-T under 100 mm^2:");
    let trace = TransformerConfig::deit_tiny().gemm_trace();
    for c in search_core_geometry(&trace, 100.0, 12, 4).iter().take(3) {
        println!(
            "  {:<14} area {:>5.1} mm^2  latency {:.4} ms  EDP {:.5}  util {:.0}%",
            c.config.name,
            c.area_mm2,
            c.latency_ms,
            c.edp,
            c.utilization * 100.0
        );
    }

    // 3. What does a dead comb line cost? Inject the fault and measure the
    //    error before and after the scheduler remaps around the channel.
    let core = Dptc::new(DptcConfig::lt_paper());
    let mut rng = GaussianSampler::new(5);
    let a = Matrix64::from_fn(12, 12, |_, _| rng.uniform_in(-1.0, 1.0));
    let b = Matrix64::from_fn(12, 12, |_, _| rng.uniform_in(-1.0, 1.0));
    let clean = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
    let faults = FaultSet::none().with(ChannelFault::DeadWavelength { channel: 5 });
    let faulty = core.matmul_noisy_faulty(a.view(), b.view(), &NoiseModel::noiseless(), &faults, 0);
    let max_err = faulty.max_abs_diff(&clean);
    println!("\nhard-fault study (dead comb line on channel 5 of 12):");
    println!("  unmitigated max output error : {max_err:.3}");
    println!("  after remapping to 11 lanes  : exact result, ~8% throughput loss");
    println!("  (see lt_dptc::faults tests for the remapping construction)");
}
