//! Serving: a stream of mixed DeiT/BERT-style requests through the
//! batching inference runtime.
//!
//! Three client threads submit interleaved vision and text requests; the
//! server coalesces them into batches ([`BatchQueue`]), worker threads
//! run whole transformer forward passes on the photonic DPTC backend
//! wrapped in [`ParallelBackend`], and every reply is bit-reproducible
//! from `(root seed, ticket)` no matter how the work was scheduled.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use lightening_transformer::core::GaussianSampler;
use lightening_transformer::dptc::DptcBackend;
use lightening_transformer::nn::model::ModelConfig;
use lightening_transformer::nn::serve::{PendingReply, Request, ServeConfig, Server};
use lightening_transformer::nn::{Tensor, TextClassifier, VisionTransformer};
use lightening_transformer::runtime::ParallelBackend;
use std::sync::mpsc::channel;
use std::time::Instant;

const CLIENTS: usize = 3;
const REQUESTS_PER_CLIENT: usize = 20;

fn make_request(client: usize, i: usize) -> Request {
    if (client + i).is_multiple_of(3) {
        // A BERT-style request: a 12-token sequence over a 16-symbol vocab.
        Request::Text((0..12).map(|t| (client * 5 + i + t) % 16).collect())
    } else {
        // A DeiT-style request: 16 patches of 16 values.
        let mut rng = GaussianSampler::new((client * 1000 + i) as u64);
        Request::Vision(Tensor::randn(16, 16, 1.0, &mut rng))
    }
}

fn main() {
    // Models are built once; each server worker clones the weights once
    // and reuses them for every request it serves (the software analogue
    // of amortizing weight loading across a batch).
    let mut rng = GaussianSampler::new(42);
    let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let text = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);

    // The photonic backend, with intra-GEMM row-block parallelism.
    let backend = ParallelBackend::new(DptcBackend::paper(8, 7), 4);
    let config = ServeConfig {
        workers: 4,
        max_batch: 8,
        seed: 7,
        ..ServeConfig::default()
    };
    let server = Server::new(vision.clone(), text.clone(), backend.clone(), config);

    // Three concurrent clients stream mixed requests.
    let start = Instant::now();
    let (tx, rx) = channel::<(usize, usize, PendingReply)>();
    std::thread::scope(|scope| {
        let server = &server;
        for client in 0..CLIENTS {
            let tx = tx.clone();
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let pending = server.submit(make_request(client, i));
                    tx.send((client, i, pending)).unwrap();
                }
            });
        }
        drop(tx);
    });

    let mut replies: Vec<(usize, usize, u64, Tensor)> = rx
        .into_iter()
        .map(|(client, i, pending)| {
            let ticket = pending.ticket();
            (client, i, ticket, pending.wait())
        })
        .collect();
    let elapsed = start.elapsed();
    replies.sort_by_key(|&(client, i, _, _)| (client, i));

    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!(
        "served {total} mixed requests in {:.1} ms ({:.0} req/s)",
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "coalescing: {} requests drained in {} batches (mean batch {:.2})",
        server.served(),
        server.batches(),
        server.served() as f64 / server.batches().max(1) as f64
    );

    // Determinism: replay one request single-threaded, unbatched — the
    // same ticket must reproduce the same logits bit-for-bit.
    let probe = &replies[5];
    let replay_server = Server::new(
        vision,
        text,
        backend,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            seed: 7,
            ..ServeConfig::default()
        },
    );
    // Re-submit every request in ticket order so the probe keeps its ticket.
    let mut by_ticket: Vec<&(usize, usize, u64, Tensor)> = replies.iter().collect();
    by_ticket.sort_by_key(|&&(_, _, t, _)| t);
    let mut replayed = None;
    for &&(client, i, ticket, _) in &by_ticket {
        let pending = replay_server.submit(make_request(client, i));
        assert_eq!(pending.ticket(), ticket);
        let logits = pending.wait();
        if ticket == probe.2 {
            replayed = Some(logits);
        }
    }
    assert_eq!(
        replayed.as_ref(),
        Some(&probe.3),
        "replay must be bit-identical"
    );
    println!(
        "determinism: ticket {} replayed on 1 worker / batch 1 -> identical logits",
        probe.2
    );
    replay_server.shutdown();
    server.shutdown();

    let sample = &replies[0];
    println!(
        "sample reply (client {}, request {}, ticket {}): logits {:?}",
        sample.0,
        sample.1,
        sample.2,
        sample.3.data()
    );
}
