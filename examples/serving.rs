//! Serving: a stream of mixed DeiT/BERT-style requests through the
//! batching inference runtime.
//!
//! Three client threads submit interleaved vision and text requests; the
//! server coalesces them into batches ([`BatchQueue`]), worker threads
//! run whole transformer forward passes on the photonic DPTC backend
//! wrapped in [`ParallelBackend`], and every reply is bit-reproducible
//! from `(root seed, ticket)` no matter how the work was scheduled.
//! Each reply also carries the hardware cost (cycles, energy, latency,
//! EDP) of its recorded op trace replayed through the LT-B model.
//!
//! ```sh
//! cargo run --release --example serving
//! LT_SERVE_REQUESTS=4 cargo run --release --example serving   # bounded (CI smoke)
//! ```

use lightening_transformer::core::GaussianSampler;
use lightening_transformer::dptc::DptcBackend;
use lightening_transformer::nn::model::ModelConfig;
use lightening_transformer::nn::serve::{PendingReply, Reply, Request, ServeConfig, Server};
use lightening_transformer::nn::{Tensor, TextClassifier, VisionTransformer};
use lightening_transformer::runtime::ParallelBackend;
use std::sync::mpsc::channel;
use std::time::Instant;

const CLIENTS: usize = 3;

/// Requests per client; override with `LT_SERVE_REQUESTS` (CI runs a
/// small bounded stream).
fn requests_per_client() -> usize {
    std::env::var("LT_SERVE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
        .max(1)
}

fn make_request(client: usize, i: usize) -> Request {
    if (client + i).is_multiple_of(3) {
        // A BERT-style request: a 12-token sequence over a 16-symbol vocab.
        Request::Text((0..12).map(|t| (client * 5 + i + t) % 16).collect())
    } else {
        // A DeiT-style request: 16 patches of 16 values.
        let mut rng = GaussianSampler::new((client * 1000 + i) as u64);
        Request::Vision(Tensor::randn(16, 16, 1.0, &mut rng))
    }
}

fn main() {
    let requests_per_client = requests_per_client();
    // Models are built once; each server worker clones the weights once
    // and reuses them for every request it serves (the software analogue
    // of amortizing weight loading across a batch).
    let mut rng = GaussianSampler::new(42);
    let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let text = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);

    // The photonic backend, with intra-GEMM row-block parallelism.
    let backend = ParallelBackend::new(DptcBackend::paper(8, 7), 4);
    let config = ServeConfig {
        workers: 4,
        max_batch: 8,
        seed: 7,
        ..ServeConfig::default()
    };
    let server = Server::new(vision.clone(), text.clone(), backend.clone(), config);

    // Three concurrent clients stream mixed requests.
    let start = Instant::now();
    let (tx, rx) = channel::<(usize, usize, PendingReply)>();
    std::thread::scope(|scope| {
        let server = &server;
        for client in 0..CLIENTS {
            let tx = tx.clone();
            scope.spawn(move || {
                for i in 0..requests_per_client {
                    let pending = server.submit(make_request(client, i));
                    tx.send((client, i, pending)).unwrap();
                }
            });
        }
        drop(tx);
    });

    let mut replies: Vec<(usize, usize, u64, Reply)> = rx
        .into_iter()
        .map(|(client, i, pending)| {
            let ticket = pending.ticket();
            (client, i, ticket, pending.wait())
        })
        .collect();
    let elapsed = start.elapsed();
    replies.sort_by_key(|&(client, i, _, _)| (client, i));

    let total = CLIENTS * requests_per_client;
    println!(
        "served {total} mixed requests in {:.1} ms ({:.0} req/s)",
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "coalescing: {} requests drained in {} batches (mean batch {:.2})",
        server.served(),
        server.batches(),
        server.served() as f64 / server.batches().max(1) as f64
    );

    // Every reply carries the hardware cost of its own recorded trace.
    let total_mj: f64 = replies
        .iter()
        .map(|(_, _, _, r)| r.cost.energy.total().value())
        .sum();
    let total_cycles: u64 = replies.iter().map(|(_, _, _, r)| r.cost.cycles).sum();
    println!(
        "accelerator cost of the stream (LT-B 8-bit): {total_cycles} photonic cycles, {total_mj:.3e} mJ across {total} requests"
    );

    // Determinism: replay one request single-threaded, unbatched — the
    // same ticket must reproduce the same logits bit-for-bit.
    // Any reply works as the probe; stay in bounds for small
    // LT_SERVE_REQUESTS overrides.
    let probe = &replies[5.min(replies.len() - 1)];
    let replay_server = Server::new(
        vision,
        text,
        backend,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            seed: 7,
            ..ServeConfig::default()
        },
    );
    // Re-submit every request in ticket order so the probe keeps its ticket.
    let mut by_ticket: Vec<&(usize, usize, u64, Reply)> = replies.iter().collect();
    by_ticket.sort_by_key(|&&(_, _, t, _)| t);
    let mut replayed = None;
    for &&(client, i, ticket, _) in &by_ticket {
        let pending = replay_server.submit(make_request(client, i));
        assert_eq!(pending.ticket(), ticket);
        let reply = pending.wait();
        if ticket == probe.2 {
            replayed = Some(reply);
        }
    }
    let replayed = replayed.expect("probe ticket replayed");
    assert_eq!(
        replayed.logits, probe.3.logits,
        "replay must be bit-identical"
    );
    assert_eq!(
        replayed.cost, probe.3.cost,
        "cost is schedule-invariant too"
    );
    println!(
        "determinism: ticket {} replayed on 1 worker / batch 1 -> identical logits and cost",
        probe.2
    );
    replay_server.shutdown();
    server.shutdown();

    let sample = &replies[0];
    println!(
        "sample reply (client {}, request {}, ticket {}): logits {:?}",
        sample.0,
        sample.1,
        sample.2,
        sample.3.logits.data()
    );
    println!(
        "  cost: {} cycles, {:.3e} mJ, {:.3e} ms, EDP {:.3e} mJ*ms ({} trace ops)",
        sample.3.cost.cycles,
        sample.3.cost.energy.total().value(),
        sample.3.cost.latency.value(),
        sample.3.cost.edp(),
        sample.3.trace.len()
    );
}
