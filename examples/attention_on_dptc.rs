//! Run a real attention layer on the photonic core.
//!
//! Computes one DeiT-T-shaped attention head — `Q K^T`, softmax, `A V` —
//! with both dynamic matrix products executed on the noisy DPTC model, and
//! compares against the exact result. This is the workload weight-static
//! photonic accelerators fundamentally cannot serve (paper Challenge 1).
//!
//! ```sh
//! cargo run --release --example attention_on_dptc
//! ```

use lightening_transformer::core::Matrix64;
use lightening_transformer::dptc::{Dptc, DptcConfig, Fidelity};
use lightening_transformer::photonics::noise::GaussianSampler;

const TOKENS: usize = 32;
const HEAD_DIM: usize = 64;

fn softmax_rows(x: &mut Matrix64) {
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        for v in row.iter_mut() {
            *v /= denom;
        }
    }
}

fn main() {
    let mut rng = GaussianSampler::new(7);
    let q = Matrix64::from_fn(TOKENS, HEAD_DIM, |_, _| rng.normal(0.0, 0.5));
    let k = Matrix64::from_fn(TOKENS, HEAD_DIM, |_, _| rng.normal(0.0, 0.5));
    let v = Matrix64::from_fn(TOKENS, HEAD_DIM, |_, _| rng.normal(0.0, 0.5));
    let k_t = k.transpose();

    let core = Dptc::new(DptcConfig::lt_paper());
    let noisy = Fidelity::paper_noisy(1);
    let scale = 1.0 / (HEAD_DIM as f64).sqrt();

    // Photonic path: both dynamic products tiled through the DPTC.
    let mut scores = core.gemm(q.view(), k_t.view(), 8, &noisy).scale(scale);
    softmax_rows(&mut scores);
    let out_photonic = core.gemm(scores.view(), v.view(), 8, &Fidelity::paper_noisy(2));

    // Exact path: same API, quantized-but-noiseless reference.
    let mut scores_exact = core.gemm_quantized(q.view(), k_t.view(), 8).scale(scale);
    softmax_rows(&mut scores_exact);
    let out_exact = core.gemm_quantized(scores_exact.view(), v.view(), 8);

    let max_err = out_photonic.max_abs_diff(&out_exact);
    let mut rms = 0.0;
    for (a, b) in out_photonic.data().iter().zip(out_exact.data()) {
        rms += (a - b) * (a - b);
    }
    rms = (rms / (TOKENS * HEAD_DIM) as f64).sqrt();
    let out_scale = out_exact.max_abs();

    println!("attention head ({TOKENS} tokens, d_k = {HEAD_DIM}) on DPTC:");
    println!("  output scale        : {out_scale:.3}");
    println!("  photonic max error  : {max_err:.4}");
    println!("  photonic RMS error  : {rms:.4}");
    println!("  relative RMS        : {:.2}%", rms / out_scale * 100.0);
    println!("\nboth Q K^T and A V ran with dynamically encoded, full-range operands -");
    println!("no weight mapping, no device reprogramming, no operand decomposition.");
}
