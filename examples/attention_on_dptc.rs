//! Run a real attention layer on the photonic core.
//!
//! Computes one DeiT-T-shaped attention head — `Q K^T`, softmax, `A V` —
//! with both dynamic matrix products executed on the noisy DPTC model, and
//! compares against the exact result. This is the workload weight-static
//! photonic accelerators fundamentally cannot serve (paper Challenge 1).
//!
//! ```sh
//! cargo run --release --example attention_on_dptc
//! ```

use lightening_transformer::dptc::{Dptc, DptcConfig, NoiseModel};
use lightening_transformer::photonics::noise::GaussianSampler;

const TOKENS: usize = 32;
const HEAD_DIM: usize = 64;

fn softmax_rows(x: &mut [Vec<f64>]) {
    for row in x {
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        for v in row.iter_mut() {
            *v /= denom;
        }
    }
}

fn gemm_flat(core: &Dptc, a: &[Vec<f64>], b: &[Vec<f64>], noise: Option<&NoiseModel>, seed: u64) -> Vec<Vec<f64>> {
    let (m, k, n) = (a.len(), b.len(), b[0].len());
    let a_flat: Vec<f64> = a.iter().flatten().copied().collect();
    let b_flat: Vec<f64> = b.iter().flatten().copied().collect();
    let out = match noise {
        Some(nm) => core.gemm(&a_flat, &b_flat, m, k, n, 8, nm, seed),
        None => core.gemm_exact_quantized(&a_flat, &b_flat, m, k, n, 8),
    };
    out.chunks(n).map(|r| r.to_vec()).collect()
}

fn main() {
    let mut rng = GaussianSampler::new(7);
    let q: Vec<Vec<f64>> = (0..TOKENS)
        .map(|_| (0..HEAD_DIM).map(|_| rng.normal(0.0, 0.5)).collect())
        .collect();
    let k: Vec<Vec<f64>> = (0..TOKENS)
        .map(|_| (0..HEAD_DIM).map(|_| rng.normal(0.0, 0.5)).collect())
        .collect();
    let v: Vec<Vec<f64>> = (0..TOKENS)
        .map(|_| (0..HEAD_DIM).map(|_| rng.normal(0.0, 0.5)).collect())
        .collect();
    let k_t: Vec<Vec<f64>> = (0..HEAD_DIM)
        .map(|j| (0..TOKENS).map(|i| k[i][j]).collect())
        .collect();

    let core = Dptc::new(DptcConfig::lt_paper());
    let noise = NoiseModel::paper_default();
    let scale = 1.0 / (HEAD_DIM as f64).sqrt();

    // Photonic path: both dynamic products on the DPTC.
    let mut scores = gemm_flat(&core, &q, &k_t, Some(&noise), 1);
    scores.iter_mut().for_each(|r| r.iter_mut().for_each(|x| *x *= scale));
    softmax_rows(&mut scores);
    let out_photonic = gemm_flat(&core, &scores, &v, Some(&noise), 2);

    // Exact path.
    let mut scores_exact = gemm_flat(&core, &q, &k_t, None, 0);
    scores_exact.iter_mut().for_each(|r| r.iter_mut().for_each(|x| *x *= scale));
    softmax_rows(&mut scores_exact);
    let out_exact = gemm_flat(&core, &scores_exact, &v, None, 0);

    let mut max_err = 0.0f64;
    let mut rms = 0.0;
    for i in 0..TOKENS {
        for j in 0..HEAD_DIM {
            let e = out_photonic[i][j] - out_exact[i][j];
            max_err = max_err.max(e.abs());
            rms += e * e;
        }
    }
    rms = (rms / (TOKENS * HEAD_DIM) as f64).sqrt();
    let out_scale = out_exact
        .iter()
        .flatten()
        .fold(0.0f64, |m, v| m.max(v.abs()));

    println!("attention head ({TOKENS} tokens, d_k = {HEAD_DIM}) on DPTC:");
    println!("  output scale        : {out_scale:.3}");
    println!("  photonic max error  : {max_err:.4}");
    println!("  photonic RMS error  : {rms:.4}");
    println!("  relative RMS        : {:.2}%", rms / out_scale * 100.0);
    println!("\nboth Q K^T and A V ran with dynamically encoded, full-range operands -");
    println!("no weight mapping, no device reprogramming, no operand decomposition.");
}
