//! Train a tiny Vision Transformer (the DeiT stand-in) with 4-bit QAT and
//! noise-aware training, then run inference through the noisy photonic
//! core — a miniature of the paper's Fig. 14/15 accuracy pipeline.
//!
//! ```sh
//! cargo run --release --example photonic_vit
//! ```

use lightening_transformer::nn::data;
use lightening_transformer::nn::engine::{ExactEngine, PhotonicEngine};
use lightening_transformer::nn::metrics::confusion_matrix;
use lightening_transformer::nn::model::{ModelConfig, VisionTransformer};
use lightening_transformer::nn::quant::QuantConfig;
use lightening_transformer::nn::train::{evaluate, train, TrainConfig};
use lightening_transformer::photonics::noise::GaussianSampler;

fn main() {
    let mut rng = GaussianSampler::new(100);
    let mut vit = VisionTransformer::new(
        ModelConfig::tiny_vision(),
        data::NUM_PATCHES,
        data::PATCH_DIM,
        &mut rng,
    );
    let train_set = data::vision_dataset(768, 1);
    let test_set = data::vision_dataset(256, 2);

    println!("training 4-bit noise-aware ViT on the synthetic quadrant task...");
    let cfg = TrainConfig {
        epochs: 12,
        ..TrainConfig::noise_aware(4)
    };
    let stats = train(&mut vit, &train_set, &cfg);
    for (e, s) in stats.iter().enumerate() {
        println!(
            "  epoch {:>2}: loss {:.4}  train acc {:.1}%",
            e + 1,
            s.loss,
            s.accuracy * 100.0
        );
    }

    let quant = QuantConfig::low_bit(4);
    let digital = evaluate(&mut vit, &test_set, &mut ExactEngine, quant);
    println!("\ndigital 4-bit accuracy : {:.1}%", digital * 100.0);

    for n_lambda in [6usize, 12, 24] {
        let mut engine = PhotonicEngine::paper(4, n_lambda, 42);
        let acc = evaluate(&mut vit, &test_set, &mut engine, quant);
        println!(
            "photonic accuracy      : {:.1}%  ({n_lambda} wavelengths, paper noise)",
            acc * 100.0
        );
    }

    // Per-class view of the photonic run (which quadrants get confused?).
    let mut engine = PhotonicEngine::paper(4, 12, 42);
    let cm = confusion_matrix(&mut vit, &test_set, 4, &mut engine, quant);
    println!("\nphotonic confusion matrix (12 wavelengths):\n{cm}");

    // Checkpoint the trained model, exactly like the paper's artifact does.
    let mut blob = Vec::new();
    lightening_transformer::nn::checkpoint::save(&mut vit, &mut blob)
        .expect("serialize checkpoint");
    println!("\ncheckpoint size: {} KiB", blob.len() / 1024);
    println!("the photonic accuracy stays within ~1% of the digital reference -");
    println!("the paper's 'digital-comparable accuracy' claim, end to end in Rust.");
}
