//! Quickstart: a noisy photonic matrix product and a full DeiT-T
//! inference simulation in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::dptc::{Dptc, DptcConfig, NoiseModel};
use lightening_transformer::workloads::TransformerConfig;

fn main() {
    // 1. A 12x12x12 DPTC core multiplies two dynamic, full-range matrices
    //    in one shot — the paper's core capability.
    let core = Dptc::new(DptcConfig::lt_paper());
    let a: Vec<Vec<f64>> = (0..12)
        .map(|i| (0..12).map(|j| ((i * 12 + j) as f64 / 72.0) - 1.0).collect())
        .collect();
    let b: Vec<Vec<f64>> = (0..12)
        .map(|i| (0..12).map(|j| 1.0 - ((i + j) as f64 / 12.0)).collect())
        .collect();
    let ideal = core.matmul_ideal(&a, &b);
    let noisy = core.matmul_noisy(&a, &b, &NoiseModel::paper_default(), 42);
    let mut max_err = 0.0f64;
    for i in 0..12 {
        for j in 0..12 {
            max_err = max_err.max((ideal[i][j] - noisy[i][j]).abs());
        }
    }
    println!("one-shot 12x12x12 MM: max analog error = {max_err:.4}");
    println!(
        "encoding-cost saving from the crossbar broadcast (Eq. 6): {:.0}x",
        core.encoding_cost().saving_factor()
    );

    // 2. Simulate a whole DeiT-T inference on the LT-B accelerator.
    let sim = Simulator::new(ArchConfig::lt_base(4));
    let report = sim.run_model(&TransformerConfig::deit_tiny());
    println!("\nDeiT-T on LT-B (4-bit):");
    println!("  energy : {:.3} mJ", report.all.energy.total().value());
    println!("  latency: {:.4} ms", report.all.latency.value());
    println!("  EDP    : {:.5} mJ*ms", report.all.edp());
    println!("  FPS    : {:.0}", report.fps());
    println!("\nenergy breakdown:\n{}", report.all.energy);
}
