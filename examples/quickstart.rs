//! Quickstart: a noisy photonic matrix product and a full DeiT-T
//! inference simulation in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::core::Matrix64;
use lightening_transformer::dptc::{Dptc, DptcConfig, Fidelity};
use lightening_transformer::workloads::TransformerConfig;

fn main() {
    // 1. A 12x12x12 DPTC core multiplies two dynamic, full-range matrices
    //    in one shot — the paper's core capability. Fidelity is selected
    //    by value; the same call serves ideal, analytic-noisy, and
    //    circuit-level simulation.
    let core = Dptc::new(DptcConfig::lt_paper());
    let a = Matrix64::from_fn(12, 12, |i, j| ((i * 12 + j) as f64 / 72.0) - 1.0);
    let b = Matrix64::from_fn(12, 12, |i, j| 1.0 - ((i + j) as f64 / 12.0));
    let ideal = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
    let noisy = core.matmul(a.view(), b.view(), &Fidelity::paper_noisy(42));
    println!(
        "one-shot 12x12x12 MM: max analog error = {:.4}",
        noisy.max_abs_diff(&ideal)
    );
    println!(
        "encoding-cost saving from the crossbar broadcast (Eq. 6): {:.0}x",
        core.encoding_cost().saving_factor()
    );

    // 2. Simulate a whole DeiT-T inference on the LT-B accelerator.
    let sim = Simulator::new(ArchConfig::lt_base(4));
    let report = sim.run_model(&TransformerConfig::deit_tiny());
    println!("\nDeiT-T on LT-B (4-bit):");
    println!("  energy : {:.3} mJ", report.all.energy.total().value());
    println!("  latency: {:.4} ms", report.all.latency.value());
    println!("  EDP    : {:.5} mJ*ms", report.all.edp());
    println!("  FPS    : {:.0}", report.fps());
    println!("\nenergy breakdown:\n{}", report.all.energy);
}
