//! cost_report — record a real model's execution, replay it through the
//! hardware model, and print what the request would cost on the
//! accelerator.
//!
//! One forward pass of a (tiny) Vision Transformer runs on the noisy
//! photonic DPTC backend with a trace recorder attached; the recorded
//! op trace — every GEMM with its workload role, every softmax /
//! LayerNorm / GELU / residual element — then replays through the LT-B
//! accelerator model (the paper's Table V methodology), producing
//! cycles, itemized energy, latency, and EDP for the *same computation
//! that produced the logits*.
//!
//! ```sh
//! cargo run --release --example cost_report
//! ```

use lightening_transformer::arch::{ArchConfig, Simulator};
use lightening_transformer::core::{GaussianSampler, Op, TraceRecorder};
use lightening_transformer::dptc::DptcBackend;
use lightening_transformer::nn::layers::ForwardCtx;
use lightening_transformer::nn::model::{Classifier, ModelConfig, VisionTransformer};
use lightening_transformer::nn::quant::QuantConfig;
use lightening_transformer::nn::{BackendEngine, Tensor};

fn main() {
    // A real model with real weights, and a real input.
    let mut rng = GaussianSampler::new(42);
    let mut vit = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
    let patches = Tensor::randn(16, 16, 1.0, &mut rng);

    // Execute on the photonic backend while recording the op trace.
    let recorder = TraceRecorder::new();
    let mut engine = BackendEngine::new(DptcBackend::paper(8, 7), 1);
    let mut nrng = GaussianSampler::new(0);
    let mut ctx = ForwardCtx::inference(&mut engine, QuantConfig::fp32(), &mut nrng)
        .with_recorder(recorder.clone());
    let logits = vit.forward(&patches, &mut ctx);
    let trace = recorder.take().coalesce();

    println!("logits: {:?}", logits.data());
    println!(
        "\nrecorded trace: {} coalesced ops, {:.3} MMACs",
        trace.len(),
        trace.total_macs() as f64 / 1e6
    );
    for op in trace.ops() {
        match *op {
            Op::Gemm {
                kind,
                m,
                k,
                n,
                instances,
            } => println!("  gemm {kind:?}: [{m}x{k}]x[{k}x{n}] x{instances}"),
            Op::NonGemm { kind, elems } => println!("  digital {kind:?}: {elems} elems"),
        }
    }

    // Replay the recorded trace through the accelerator model.
    let sim = Simulator::new(ArchConfig::lt_base(8));
    let report = sim.run_trace(&trace);
    println!("\nhardware cost on {} (8-bit):", sim.config().name);
    println!("  cycles : {}", report.cycles);
    for (label, mj) in report.energy.rows() {
        if mj > 0.0 {
            println!("  energy : {label:<14} {:.3e} mJ", mj);
        }
    }
    println!(
        "  energy : {:<14} {:.3e} mJ",
        "total",
        report.energy.total().value()
    );
    println!("  latency: {:.3e} ms", report.latency.value());
    println!("  EDP    : {:.3e} mJ*ms", report.edp());
    println!(
        "  util   : {:.1}% of peak MACs ({:?}-bound)",
        report.utilization * 100.0,
        report.stalls.bound()
    );
    println!(
        "  stalls : compute {:.3e} ms | hbm {:.3e} ms | fill {:.3e} ms",
        report.stalls.compute.value(),
        report.stalls.bandwidth.value(),
        report.stalls.fill.value()
    );

    println!("  cache  : schedule cache {}", sim.schedule_cache_stats());

    assert!(report.cycles > 0 && report.edp() > 0.0);
    assert!((report.stalls.total().value() - report.latency.value()).abs() < 1e-9);
    println!("\nok: one run produced logits, a replayable hardware cost, and its stall story");
}
