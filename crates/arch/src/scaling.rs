//! Core-size scaling studies (paper Figs. 9 and 10).
//!
//! Sweeps a *single* 4-bit DPTC core from size 8 to 32 (and beyond for
//! Fig. 10) with no cross-tile sharing, reporting area, power, pipeline
//! latency, and the throughput/efficiency metrics of the optical computing
//! part.

use crate::area::AreaBreakdown;
use crate::config::ArchConfig;

use crate::latency::{eo_oe_latency_ps, optics_latency_ps};
use crate::power::PowerBreakdown;

/// One row of the Fig. 9 / Fig. 10 sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreScalingPoint {
    /// Core size `N` (`Nh = Nv = N_lambda = N`).
    pub n: usize,
    /// Single-core area, mm^2.
    pub area_mm2: f64,
    /// Single-core power, W.
    pub power_w: f64,
    /// Optics time-of-flight, ps.
    pub optics_ps: f64,
    /// EO/OE conversion latency, ps.
    pub eo_oe_ps: f64,
    /// Peak throughput, TOPS.
    pub tops: f64,
    /// Optical-part energy efficiency (ADC/DAC excluded), TOPS/W.
    pub tops_per_w: f64,
    /// Area efficiency, TOPS/mm^2.
    pub tops_per_mm2: f64,
    /// Energy efficiency per unit area, TOPS/W/mm^2.
    pub tops_per_w_per_mm2: f64,
}

impl CoreScalingPoint {
    /// Total pipeline latency, ps.
    pub fn latency_ps(&self) -> f64 {
        self.optics_ps + self.eo_oe_ps
    }
}

/// Evaluates one core size at the given precision.
pub fn evaluate_core(n: usize, bits: u32) -> CoreScalingPoint {
    let config = ArchConfig::single_core(n, bits);
    let area = AreaBreakdown::for_config(&config);
    let power = PowerBreakdown::for_config(&config);

    let tops = config.peak_tops();
    // "Optical computing part (ADC/DAC excluded)" — Fig. 10's caption.
    let optical_w = power.modulation.value() + power.detection.value() + power.laser.value();
    let area_mm2 = area.total().value();
    let tops_per_w = tops / optical_w;
    let tops_per_mm2 = tops / area_mm2;
    CoreScalingPoint {
        n,
        area_mm2,
        power_w: power.total().value(),
        optics_ps: optics_latency_ps(n),
        eo_oe_ps: eo_oe_latency_ps(),
        tops,
        tops_per_w,
        tops_per_mm2,
        tops_per_w_per_mm2: tops_per_w / area_mm2,
    }
}

/// The Fig. 9 sweep: core sizes 8..32 at 4-bit.
pub fn fig9_sweep() -> Vec<CoreScalingPoint> {
    [8, 12, 14, 16, 18, 20, 22, 24, 32]
        .into_iter()
        .map(|n| evaluate_core(n, 4))
        .collect()
}

/// The Fig. 10 sweep: core sizes up to 60 at 4-bit.
pub fn fig10_sweep() -> Vec<CoreScalingPoint> {
    [8, 12, 16, 20, 24, 32, 40, 48, 56, 60]
        .into_iter()
        .map(|n| evaluate_core(n, 4))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_area_band() {
        // Paper: 5.9 mm^2 (N=8) to 49.3 mm^2 (N=32).
        let pts = fig9_sweep();
        let a8 = pts.first().unwrap().area_mm2;
        let a32 = pts.last().unwrap().area_mm2;
        assert!((4.0..8.5).contains(&a8), "N=8 {a8} mm^2");
        assert!((40.0..60.0).contains(&a32), "N=32 {a32} mm^2");
        assert!(pts.windows(2).all(|w| w[1].area_mm2 > w[0].area_mm2));
    }

    #[test]
    fn fig9_power_band() {
        // Paper: 1.1 W (N=8) to 17 W (N=32).
        let pts = fig9_sweep();
        let p8 = pts.first().unwrap().power_w;
        let p32 = pts.last().unwrap().power_w;
        assert!((0.5..2.2).contains(&p8), "N=8 {p8} W");
        assert!((10.0..25.0).contains(&p32), "N=32 {p32} W");
    }

    #[test]
    fn fig9_latency_endpoints() {
        let pts = fig9_sweep();
        assert!((pts.first().unwrap().latency_ps() - 47.0).abs() < 1.5);
        assert!((pts.last().unwrap().latency_ps() - 106.4).abs() < 1.5);
    }

    #[test]
    fn fig10_monotonic_trends() {
        // TOPS, TOPS/W, TOPS/mm^2 rise with core size; TOPS/W/mm^2 falls
        // (the ADC/DAC area bottleneck) — the paper's stated trends.
        let pts = fig10_sweep();
        assert!(pts.windows(2).all(|w| w[1].tops > w[0].tops));
        assert!(pts.windows(2).all(|w| w[1].tops_per_w > w[0].tops_per_w));
        assert!(pts
            .windows(2)
            .all(|w| w[1].tops_per_mm2 > w[0].tops_per_mm2));
        assert!(
            pts.first().unwrap().tops_per_w_per_mm2 > pts.last().unwrap().tops_per_w_per_mm2,
            "efficiency per area must fall with size"
        );
    }

    #[test]
    fn fig10_magnitudes() {
        // N=60 should be thousands of TOPS and tens of TOPS/W.
        let p = evaluate_core(60, 4);
        assert!((1500.0..4000.0).contains(&p.tops), "TOPS {}", p.tops);
        assert!(
            (20.0..120.0).contains(&p.tops_per_w),
            "TOPS/W {}",
            p.tops_per_w
        );
    }
}
