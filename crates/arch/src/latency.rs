//! Latency model: cycle counts under the Fig. 5 spatial/temporal mapping
//! plus the optics / EO-OE pipeline delays of Fig. 9.

use crate::config::ArchConfig;

/// Optics time-of-flight through a core of size `n` (waveguide path grows
/// linearly with the crossbar), picoseconds. Calibrated to Fig. 9's
/// 47 ps (N=8) to 106.4 ps (N=32) including the fixed EO/OE portion.
pub fn optics_latency_ps(n: usize) -> f64 {
    14.2 + 2.475 * n as f64
}

/// E-O and O-E conversion latency, picoseconds ("remains almost the same"
/// across core sizes, Fig. 9).
pub fn eo_oe_latency_ps() -> f64 {
    13.0
}

/// Total single-shot pipeline latency of a core of size `n`, picoseconds.
pub fn pipeline_latency_ps(n: usize) -> f64 {
    optics_latency_ps(n) + eo_oe_latency_ps()
}

/// Number of photonic cycles to execute one `[rows, inner] x [inner, cols]`
/// GEMM under the paper's mapping: M1 row-chunks spread spatially over
/// `Nt` tiles, inner-dimension chunks over the `Nc` cores of a tile
/// (their partial sums join by photocurrent summation), and the remaining
/// tiles processed temporally.
pub fn gemm_cycles(config: &ArchConfig, rows: usize, inner: usize, cols: usize) -> u64 {
    gemm_cycles_batched(config, rows, inner, cols, 1)
}

/// Cycles for `instances` independent executions of the same GEMM (e.g.
/// the per-head attention products, or blockified sparse-attention
/// chunks). Independent instances fill tiles that a small `rows` dimension
/// would otherwise leave idle — without it, many-small-MM workloads would
/// be charged for an underutilized machine they can trivially fill.
///
/// Degenerate inputs are free rather than fatal: a GEMM with any
/// zero dimension (or zero instances) costs 0 cycles, so arbitrary —
/// possibly empty — recorded traces replay without panicking.
pub fn gemm_cycles_batched(
    config: &ArchConfig,
    rows: usize,
    inner: usize,
    cols: usize,
    instances: usize,
) -> u64 {
    if instances == 0 {
        return 0;
    }
    let tiles_m = rows.div_ceil(config.core.nh) as u64;
    let tiles_d = inner.div_ceil(config.core.nlambda) as u64;
    let tiles_n = cols.div_ceil(config.core.nv) as u64;
    let spatial_m = (tiles_m * instances as u64).div_ceil(config.nt as u64);
    let spatial_d = tiles_d.div_ceil(config.nc as u64);
    spatial_m * spatial_d * tiles_n
}

/// Total tile-invocations `T = ceil(m/Nh) ceil(d/Nl) ceil(n/Nv)` of Eq. 11
/// (energy does not parallelize away, unlike latency).
pub fn gemm_tile_invocations(config: &ArchConfig, rows: usize, inner: usize, cols: usize) -> u64 {
    (rows.div_ceil(config.core.nh) as u64)
        * (inner.div_ceil(config.core.nlambda) as u64)
        * (cols.div_ceil(config.core.nv) as u64)
}

/// The ideal tile lower bound: total tile invocations spread perfectly
/// over all `Nt * Nc` cores with zero padding waste. No schedule —
/// event-driven or closed-form — can beat this cycle count.
pub fn ideal_tile_cycles(
    config: &ArchConfig,
    rows: usize,
    inner: usize,
    cols: usize,
    instances: usize,
) -> u64 {
    (gemm_tile_invocations(config, rows, inner, cols) * instances as u64)
        .div_ceil((config.nt * config.nc) as u64)
}

/// The fully sequential upper bound: every tile invocation of every
/// instance issued one at a time, no spatial parallelism at all. Any
/// schedule's cycle count sits in
/// `[ideal_tile_cycles, sequential_tile_cycles]`.
pub fn sequential_tile_cycles(
    config: &ArchConfig,
    rows: usize,
    inner: usize,
    cols: usize,
    instances: usize,
) -> u64 {
    gemm_tile_invocations(config, rows, inner, cols) * instances as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_latency_endpoints() {
        let n8 = pipeline_latency_ps(8);
        let n32 = pipeline_latency_ps(32);
        assert!((n8 - 47.0).abs() < 1.0, "N=8 latency {n8} ps");
        assert!((n32 - 106.4).abs() < 1.0, "N=32 latency {n32} ps");
        // EO/OE share shrinks as optics grows.
        assert!(eo_oe_latency_ps() / n32 < eo_oe_latency_ps() / n8);
    }

    #[test]
    fn cycles_shrink_with_parallelism() {
        let ltb = ArchConfig::lt_base(4);
        let single = ArchConfig::single_core(12, 4);
        let big = gemm_cycles(&single, 197, 192, 768);
        let par = gemm_cycles(&ltb, 197, 192, 768);
        // 8 cores cannot speed up by more than 8x, and at these sizes the
        // mapping should get close.
        assert!(par < big);
        let speedup = big as f64 / par as f64;
        assert!((4.0..=8.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn tile_invocations_match_eq11() {
        let ltb = ArchConfig::lt_base(4);
        assert_eq!(
            gemm_tile_invocations(&ltb, 197, 64, 197),
            (17 * 6 * 17) as u64
        );
    }

    /// Seeded-sweep property tests over a mix of aligned, off-by-one,
    /// and degenerate shapes on every headline configuration (the
    /// workspace has no crates.io access, so no proptest — the sweep is
    /// deterministic and exhaustive over its grid).
    mod properties {
        use super::*;

        fn configs() -> Vec<ArchConfig> {
            vec![
                ArchConfig::lt_base(4),
                ArchConfig::lt_large(4),
                ArchConfig::single_core(12, 4),
                ArchConfig::lt_crossbar_base(4),
            ]
        }

        const DIMS: [usize; 8] = [0, 1, 5, 11, 12, 13, 48, 197];
        const INSTANCES: [usize; 5] = [0, 1, 2, 7, 36];

        #[test]
        fn cycles_are_monotone_in_every_dimension() {
            for cfg in configs() {
                for &m in &DIMS {
                    for &k in &DIMS {
                        for &n in &DIMS {
                            let base = gemm_cycles_batched(&cfg, m, k, n, 3);
                            assert!(
                                gemm_cycles_batched(&cfg, m + 1, k, n, 3) >= base,
                                "{}: rows {m}->{} k={k} n={n}",
                                cfg.name,
                                m + 1
                            );
                            assert!(
                                gemm_cycles_batched(&cfg, m, k + 1, n, 3) >= base,
                                "{}: inner {k}->{} m={m} n={n}",
                                cfg.name,
                                k + 1
                            );
                            assert!(
                                gemm_cycles_batched(&cfg, m, k, n + 1, 3) >= base,
                                "{}: cols {n}->{} m={m} k={k}",
                                cfg.name,
                                n + 1
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn batching_never_exceeds_instances_times_single_cost() {
            for cfg in configs() {
                for &m in &DIMS {
                    for &k in &DIMS {
                        for &n in &DIMS {
                            let single = gemm_cycles_batched(&cfg, m, k, n, 1);
                            for &i in &INSTANCES {
                                let batched = gemm_cycles_batched(&cfg, m, k, n, i);
                                assert!(
                                    batched <= single * i as u64,
                                    "{}: {m}x{k}x{n} i={i}: {batched} > {i}*{single}",
                                    cfg.name
                                );
                                // And batching is itself monotone.
                                assert!(batched >= gemm_cycles_batched(&cfg, m, k, n, i / 2));
                            }
                        }
                    }
                }
            }
        }

        #[test]
        fn zero_size_gemms_cost_zero_cycles_without_panicking() {
            for cfg in configs() {
                for &(m, k, n, i) in &[
                    (0usize, 64usize, 64usize, 3usize),
                    (64, 0, 64, 3),
                    (64, 64, 0, 3),
                    (64, 64, 64, 0),
                    (0, 0, 0, 0),
                ] {
                    assert_eq!(
                        gemm_cycles_batched(&cfg, m, k, n, i),
                        0,
                        "{}: {m}x{k}x{n} i={i}",
                        cfg.name
                    );
                }
            }
        }

        #[test]
        fn nonzero_gemms_cost_at_least_one_cycle() {
            for cfg in configs() {
                for &m in &DIMS[1..] {
                    for &i in &INSTANCES[1..] {
                        assert!(gemm_cycles_batched(&cfg, m, 1, 1, i) >= 1, "{}", cfg.name);
                    }
                }
            }
        }
    }

    #[test]
    fn perfect_fit_has_no_padding() {
        let ltb = ArchConfig::lt_base(4);
        // 48 x 24 x 12: tiles_m = 4 (one per tile), tiles_d = 2 (one per
        // core), tiles_n = 1 => exactly one cycle.
        assert_eq!(gemm_cycles(&ltb, 48, 24, 12), 1);
    }

    #[test]
    fn mapped_cycles_sit_between_the_ideal_and_sequential_bounds() {
        for cfg in [
            ArchConfig::lt_base(4),
            ArchConfig::lt_large(4),
            ArchConfig::single_core(12, 4),
        ] {
            for &(m, k, n, i) in &[
                (197usize, 64usize, 197usize, 36usize),
                (1, 768, 768, 12),
                (13, 5, 7, 2),
                (48, 24, 12, 1),
            ] {
                let cycles = gemm_cycles_batched(&cfg, m, k, n, i);
                assert!(
                    cycles >= ideal_tile_cycles(&cfg, m, k, n, i),
                    "{}",
                    cfg.name
                );
                assert!(
                    cycles <= sequential_tile_cycles(&cfg, m, k, n, i),
                    "{}",
                    cfg.name
                );
            }
        }
    }
}
