//! Per-workload energy accounting (the categories of Figs. 11/12 and
//! Table V).

use lt_photonics::units::MilliJoules;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Itemized execution energy, following the paper's breakdown categories:
/// `laser`, `op1-DAC`, `op1-mod`, `op2-DAC`, `op2-mod`, `det`, `ADC`,
/// `data movement`, plus the digital (non-GEMM) units.
///
/// `op1` is the M1 operand (the weight matrix for linear layers — the one
/// weight-static baselines hold in their devices); `op2` is the M2 operand
/// (the input side, shared across tiles by the optical interconnect).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Laser wall-plug energy.
    pub laser: MilliJoules,
    /// D/A conversion of the M1 operand.
    pub op1_dac: MilliJoules,
    /// Modulation (MZM drive / device locking) of the M1 operand.
    pub op1_mod: MilliJoules,
    /// D/A conversion of the M2 operand.
    pub op2_dac: MilliJoules,
    /// Modulation of the M2 operand.
    pub op2_mod: MilliJoules,
    /// Photodetection and transimpedance amplification.
    pub det: MilliJoules,
    /// A/D conversion.
    pub adc: MilliJoules,
    /// SRAM/HBM data movement.
    pub data_movement: MilliJoules,
    /// Digital non-GEMM units (softmax, LayerNorm, GELU, residuals).
    pub digital: MilliJoules,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> MilliJoules {
        self.laser
            + self.op1_dac
            + self.op1_mod
            + self.op2_dac
            + self.op2_mod
            + self.det
            + self.adc
            + self.data_movement
            + self.digital
    }

    /// `(label, mJ)` rows in the paper's plotting order.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("laser", self.laser.value()),
            ("op1-DAC", self.op1_dac.value()),
            ("op1-mod", self.op1_mod.value()),
            ("op2-DAC", self.op2_dac.value()),
            ("op2-mod", self.op2_mod.value()),
            ("det", self.det.value()),
            ("ADC", self.adc.value()),
            ("data movement", self.data_movement.value()),
            ("digital", self.digital.value()),
        ]
    }

    /// Scales every component (used for count-weighted ops).
    pub fn scaled(&self, factor: f64) -> Self {
        EnergyBreakdown {
            laser: self.laser * factor,
            op1_dac: self.op1_dac * factor,
            op1_mod: self.op1_mod * factor,
            op2_dac: self.op2_dac * factor,
            op2_mod: self.op2_mod * factor,
            det: self.det * factor,
            adc: self.adc * factor,
            data_movement: self.data_movement * factor,
            digital: self.digital * factor,
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            laser: self.laser + rhs.laser,
            op1_dac: self.op1_dac + rhs.op1_dac,
            op1_mod: self.op1_mod + rhs.op1_mod,
            op2_dac: self.op2_dac + rhs.op2_dac,
            op2_mod: self.op2_mod + rhs.op2_mod,
            det: self.det + rhs.det,
            adc: self.adc + rhs.adc,
            data_movement: self.data_movement + rhs.data_movement,
            digital: self.digital + rhs.digital,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().value();
        for (label, mj) in self.rows() {
            if mj > 0.0 {
                writeln!(
                    f,
                    "  {label:<14} {mj:>12.6} mJ ({:>5.1}%)",
                    mj / total * 100.0
                )?;
            }
        }
        write!(f, "  {:<14} {total:>12.6} mJ", "TOTAL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        EnergyBreakdown {
            laser: MilliJoules(1.0),
            op1_dac: MilliJoules(2.0),
            op1_mod: MilliJoules(3.0),
            op2_dac: MilliJoules(4.0),
            op2_mod: MilliJoules(5.0),
            det: MilliJoules(6.0),
            adc: MilliJoules(7.0),
            data_movement: MilliJoules(8.0),
            digital: MilliJoules(9.0),
        }
    }

    #[test]
    fn total_sums_all_components() {
        assert!((sample().total().value() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_scale() {
        let s = sample();
        let doubled = s + s;
        assert!((doubled.total().value() - 90.0).abs() < 1e-12);
        let scaled = s.scaled(0.5);
        assert!((scaled.total().value() - 22.5).abs() < 1e-12);
        let mut acc = EnergyBreakdown::default();
        acc += s;
        acc += s;
        assert_eq!(acc, doubled);
    }

    #[test]
    fn rows_cover_every_component() {
        let rows = sample().rows();
        assert_eq!(rows.len(), 9);
        let sum: f64 = rows.iter().map(|(_, v)| v).sum();
        assert!((sum - 45.0).abs() < 1e-12);
    }
}
