//! Lightening-Transformer accelerator architecture simulator.
//!
//! This crate models the paper's Section IV system: `Nt` tiles of `Nc`
//! DPTC cores each, a three-level memory hierarchy (global SRAM, per-tile
//! SRAMs, converter buffers) fed by HBM, a tile-granular scheduled
//! dataflow (Fig. 5) with selectable loop order
//! ([`schedule::DataflowPolicy`]), inter-core operand broadcast over
//! optical interconnect, and analog-domain accumulation (photocurrent
//! summation across cores plus temporal accumulation before the ADC).
//! Every [`sim::RunReport`] itemizes where its wall-clock went
//! ([`schedule::StallBreakdown`]: compute vs. HBM bandwidth vs.
//! pipeline fill) and the achieved MAC utilization.
//!
//! It produces the quantities the paper's evaluation reports:
//!
//! * **Area breakdown** (Fig. 7) — [`area::AreaBreakdown`]
//! * **Power breakdown** (Fig. 8) — [`power::PowerBreakdown`]
//! * **Per-workload energy/latency/EDP** (Table V, Figs. 11-13) —
//!   [`sim::Simulator`]
//! * **Core-size scaling** (Figs. 9, 10) — [`scaling`]
//!
//! # Example
//!
//! ```
//! use lt_arch::{ArchConfig, Simulator};
//! use lt_workloads::TransformerConfig;
//!
//! let sim = Simulator::new(ArchConfig::lt_base(4));
//! let report = sim.run_model(&TransformerConfig::deit_tiny());
//! // DeiT-T on LT-B at 4-bit: tens of microseconds, sub-millijoule.
//! assert!(report.all.latency.value() < 0.1);     // < 0.1 ms
//! assert!(report.all.energy.total().value() < 1.0); // < 1 mJ
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod cache;
pub mod clock;
pub mod config;
pub mod devices;
pub mod energy;
pub mod latency;
pub mod memory;
pub mod power;
pub mod roofline;
pub mod scaling;
pub mod schedule;
pub mod search;
pub mod sim;

pub use area::AreaBreakdown;
pub use cache::ScheduleCacheStats;
pub use clock::CycleClock;
pub use config::{ArchConfig, ArchOptimizations, CoreTopology};
pub use energy::EnergyBreakdown;
pub use power::PowerBreakdown;
pub use schedule::{DataflowPolicy, StallBreakdown, TraceSchedule};
pub use sim::{ModelReport, RunReport, Simulator};
