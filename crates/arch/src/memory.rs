//! Memory hierarchy: analytic SRAM model (PCACTI substitute) and HBM link.
//!
//! The paper models SRAM area/leakage/access energy with PCACTI at 14 nm
//! and decouples large arrays into 32 KB sub-arrays for bandwidth
//! (Section IV-A). We use a standard CACTI-style analytic fit: access
//! energy grows with the square root of sub-array capacity, leakage and
//! area grow linearly with capacity. Constants are calibrated so the
//! memory share of LT-B's area/power breakdown matches Fig. 7/8
//! (DESIGN.md, Substitution 3).

use lt_photonics::units::{MilliWatts, PicoJoules, SquareMicrometers};

/// Size of the decoupled SRAM sub-arrays (paper follows \[10\]).
pub const SUBARRAY_BYTES: usize = 32 << 10;

/// 14 nm SRAM density including periphery, um^2 per byte.
const SRAM_UM2_PER_BYTE: f64 = 6.2;

/// Read energy of a 32 KB sub-array, pJ per byte.
const SRAM_PJ_PER_BYTE_32K: f64 = 0.9;

/// Write premium over reads.
const SRAM_WRITE_FACTOR: f64 = 1.1;

/// SRAM leakage, mW per KB at 14 nm.
const SRAM_LEAKAGE_MW_PER_KB: f64 = 0.012;

/// HBM access energy, pJ per byte (~5 pJ/bit class, \[37\]).
pub const HBM_PJ_PER_BYTE: f64 = 40.0;

/// HBM bandwidth, bytes per second (> 1 TB/s in the paper).
pub const HBM_BYTES_PER_S: f64 = 1.0e12;

/// An on-chip SRAM macro, internally banked into 32 KB sub-arrays.
///
/// ```
/// use lt_arch::memory::SramMacro;
/// let global = SramMacro::new(2 << 20); // LT-B's 2 MB global SRAM
/// assert!(global.area().to_mm2().value() > 5.0);
/// assert!(global.read_energy_per_byte().value() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramMacro {
    capacity_bytes: usize,
}

impl SramMacro {
    /// Creates a macro of the given capacity (zero capacity is allowed and
    /// costs nothing — used by single-core scaling configs).
    pub fn new(capacity_bytes: usize) -> Self {
        SramMacro { capacity_bytes }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of 32 KB sub-arrays (at least one for non-empty macros).
    pub fn subarrays(&self) -> usize {
        if self.capacity_bytes == 0 {
            0
        } else {
            self.capacity_bytes.div_ceil(SUBARRAY_BYTES)
        }
    }

    /// Total layout area.
    pub fn area(&self) -> SquareMicrometers {
        SquareMicrometers(self.capacity_bytes as f64 * SRAM_UM2_PER_BYTE)
    }

    /// Read energy per byte. Sub-arrays cap the bitline length, so the
    /// energy follows the sub-array (not total) capacity; smaller macros
    /// are cheaper with square-root scaling.
    pub fn read_energy_per_byte(&self) -> PicoJoules {
        if self.capacity_bytes == 0 {
            return PicoJoules(0.0);
        }
        let effective = self.capacity_bytes.min(SUBARRAY_BYTES) as f64;
        PicoJoules(SRAM_PJ_PER_BYTE_32K * (effective / SUBARRAY_BYTES as f64).sqrt())
    }

    /// Write energy per byte.
    pub fn write_energy_per_byte(&self) -> PicoJoules {
        self.read_energy_per_byte() * SRAM_WRITE_FACTOR
    }

    /// Static leakage power.
    pub fn leakage(&self) -> MilliWatts {
        MilliWatts(self.capacity_bytes as f64 / 1024.0 * SRAM_LEAKAGE_MW_PER_KB)
    }
}

/// The full memory hierarchy of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryHierarchy {
    /// Global (chip-level) SRAM.
    pub global: SramMacro,
    /// One M1 operand SRAM per tile.
    pub tile_m1: SramMacro,
    /// One activation SRAM per tile.
    pub tile_act: SramMacro,
    /// Number of tiles.
    pub tiles: usize,
}

impl MemoryHierarchy {
    /// Builds the hierarchy of an [`crate::ArchConfig`].
    pub fn for_config(config: &crate::config::ArchConfig) -> Self {
        MemoryHierarchy {
            global: SramMacro::new(config.global_sram_bytes),
            tile_m1: SramMacro::new(config.tile_sram_bytes),
            tile_act: SramMacro::new(config.act_sram_bytes),
            tiles: config.nt,
        }
    }

    /// Total on-chip SRAM capacity.
    pub fn total_bytes(&self) -> usize {
        self.global.capacity_bytes()
            + self.tiles * (self.tile_m1.capacity_bytes() + self.tile_act.capacity_bytes())
    }

    /// Total SRAM layout area.
    pub fn area(&self) -> SquareMicrometers {
        let per_tile =
            SquareMicrometers(self.tile_m1.area().value() + self.tile_act.area().value());
        SquareMicrometers(self.global.area().value() + per_tile.value() * self.tiles as f64)
    }

    /// Total SRAM leakage.
    pub fn leakage(&self) -> MilliWatts {
        self.global.leakage()
            + (self.tile_m1.leakage() + self.tile_act.leakage()) * self.tiles as f64
    }

    /// Energy to move one byte from global SRAM into a tile and through
    /// the tile SRAM to the converters (read global + write tile + read
    /// tile).
    pub fn operand_byte_energy(&self) -> PicoJoules {
        self.global.read_energy_per_byte()
            + self.tile_m1.write_energy_per_byte()
            + self.tile_m1.read_energy_per_byte()
    }

    /// Energy to write one output byte back into the activation SRAM and
    /// eventually the global SRAM.
    pub fn output_byte_energy(&self) -> PicoJoules {
        self.tile_act.write_energy_per_byte() + self.global.write_energy_per_byte()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subarray_decomposition() {
        assert_eq!(SramMacro::new(2 << 20).subarrays(), 64);
        assert_eq!(SramMacro::new(4 << 10).subarrays(), 1);
        assert_eq!(SramMacro::new(0).subarrays(), 0);
    }

    #[test]
    fn small_srams_are_cheaper_per_byte() {
        let small = SramMacro::new(4 << 10);
        let big = SramMacro::new(2 << 20);
        assert!(small.read_energy_per_byte().value() < big.read_energy_per_byte().value());
        // Sub-array cap: a 2 MB macro reads at 32 KB-array cost.
        assert!((big.read_energy_per_byte().value() - SRAM_PJ_PER_BYTE_32K).abs() < 1e-9);
    }

    #[test]
    fn ltb_memory_area_near_quarter_of_chip() {
        // Fig. 7: memory ~25% of LT-B's 60.3 mm^2 => ~15 mm^2.
        let h = MemoryHierarchy::for_config(&crate::config::ArchConfig::lt_base(4));
        let mm2 = h.area().to_mm2().value();
        assert!((10.0..20.0).contains(&mm2), "memory area {mm2} mm^2");
    }

    #[test]
    fn zero_capacity_costs_nothing() {
        let m = SramMacro::new(0);
        assert_eq!(m.area().value(), 0.0);
        assert_eq!(m.leakage().value(), 0.0);
        assert_eq!(m.read_energy_per_byte().value(), 0.0);
    }

    #[test]
    fn hierarchy_totals() {
        let h = MemoryHierarchy::for_config(&crate::config::ArchConfig::lt_base(4));
        assert_eq!(h.total_bytes(), (2 << 20) + 4 * ((4 << 10) + (64 << 10)));
        assert!(h.leakage().value() > 0.0);
        assert!(h.operand_byte_energy().value() > 0.0);
        assert!(h.output_byte_energy().value() > 0.0);
    }
}
