//! Operating power model (paper Fig. 8).

use crate::config::ArchConfig;
use crate::devices::DeviceRack;
use crate::memory::MemoryHierarchy;
use lt_photonics::units::{GigaHertz, MilliWatts, Watts};
use std::fmt;

/// Digital processing unit power: fixed base plus per-tile share, watts.
const DIGITAL_BASE_W: f64 = 0.3;
const DIGITAL_PER_TILE_W: f64 = 0.1;

/// Itemized operating power.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// DAC channels at the configured precision and clock.
    pub dac: Watts,
    /// ADC channels (rate-reduced by analog accumulation).
    pub adc: Watts,
    /// Operand modulation: MZM drive plus WDM filter locking.
    pub modulation: Watts,
    /// Photodetectors and TIAs.
    pub detection: Watts,
    /// Laser wall-plug power.
    pub laser: Watts,
    /// Memory: SRAM leakage plus streaming dynamic power.
    pub memory: Watts,
    /// Digital processing units.
    pub digital: Watts,
}

impl PowerBreakdown {
    /// Computes the breakdown for a configuration at full utilization.
    pub fn for_config(config: &ArchConfig) -> Self {
        let rack = DeviceRack::paper(config);
        let mem = MemoryHierarchy::for_config(config);
        let bits = config.precision_bits;
        let clock = config.clock;

        let dac_mw = rack.dac_count() as f64 * rack.dac.scaled_power(bits, clock).value();
        let adc_rate = GigaHertz(clock.value() / config.opts.adc_reduction(config.nc));
        let adc_mw = rack.adc_count() as f64 * rack.adc.scaled_power(bits, adc_rate).value();
        let modulation_mw = rack.mzm_count() as f64 * rack.mzm.tuning_power().value()
            + rack.microdisk_count() as f64 * rack.microdisk.locking_power.value();
        let detection_mw = rack.pd_count() as f64 * rack.pd.power.value()
            + rack.tia_count() as f64 * rack.tia.power.value();
        let laser_mw = rack.laser_power().value();

        // Memory: leakage + peak streaming power (fresh operands every
        // cycle out of the tile SRAMs, with ~Nv-fold reuse before the
        // global SRAM is touched again).
        let fresh_bytes_per_cycle =
            (rack.m1_signal_count() + rack.m2_signal_count()) as f64 * bits as f64 / 8.0;
        let cycles_per_s = clock.to_hz();
        let tile_stream_w = fresh_bytes_per_cycle
            * mem.tile_m1.read_energy_per_byte().value()
            * 1e-12
            * cycles_per_s;
        let reuse = config.core.nv.max(1) as f64;
        let global_stream_w = fresh_bytes_per_cycle / reuse
            * mem.global.read_energy_per_byte().value()
            * 1e-12
            * cycles_per_s;
        let memory_w = mem.leakage().to_watts().value() + tile_stream_w + global_stream_w;

        let digital_w = if config.global_sram_bytes == 0 {
            0.0
        } else {
            DIGITAL_BASE_W + DIGITAL_PER_TILE_W * config.nt as f64
        };

        PowerBreakdown {
            dac: MilliWatts(dac_mw).to_watts(),
            adc: MilliWatts(adc_mw).to_watts(),
            modulation: MilliWatts(modulation_mw).to_watts(),
            detection: MilliWatts(detection_mw).to_watts(),
            laser: MilliWatts(laser_mw).to_watts(),
            memory: Watts(memory_w),
            digital: Watts(digital_w),
        }
    }

    /// Total operating power.
    pub fn total(&self) -> Watts {
        self.dac
            + self.adc
            + self.modulation
            + self.detection
            + self.laser
            + self.memory
            + self.digital
    }

    /// `(label, watts, share)` rows for reporting.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total().value();
        [
            ("DAC", self.dac.value()),
            ("ADC", self.adc.value()),
            ("modulation", self.modulation.value()),
            ("detection (PD+TIA)", self.detection.value()),
            ("laser", self.laser.value()),
            ("memory", self.memory.value()),
            ("digital", self.digital.value()),
        ]
        .into_iter()
        .map(|(k, v)| (k, v, v / total))
        .collect()
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, w, share) in self.rows() {
            writeln!(f, "  {label:<22} {w:>8.3} W  ({:>5.1}%)", share * 100.0)?;
        }
        write!(f, "  {:<22} {:>8.3} W", "TOTAL", self.total().value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ltb_4bit_total_near_paper() {
        // Paper Fig. 8a: 14.75 W.
        let p = PowerBreakdown::for_config(&ArchConfig::lt_base(4));
        let total = p.total().value();
        assert!((10.0..19.0).contains(&total), "LT-B 4-bit {total} W");
    }

    #[test]
    fn ltb_8bit_total_near_paper_and_dac_dominates() {
        // Paper Fig. 8b: 50.94 W with DACs > 50% of the total.
        let p = PowerBreakdown::for_config(&ArchConfig::lt_base(8));
        let total = p.total().value();
        assert!((38.0..65.0).contains(&total), "LT-B 8-bit {total} W");
        assert!(
            p.dac.value() / total > 0.4,
            "8-bit DAC share {}",
            p.dac.value() / total
        );
        // 8-bit draws more than 3x the 4-bit power (paper text).
        let p4 = PowerBreakdown::for_config(&ArchConfig::lt_base(4))
            .total()
            .value();
        assert!(total / p4 > 3.0, "8-bit/4-bit power ratio {}", total / p4);
    }

    #[test]
    fn ltl_power_near_paper() {
        // Paper: LT-L draws 28.06 W at 4-bit, 95.92 W at 8-bit.
        let p4 = PowerBreakdown::for_config(&ArchConfig::lt_large(4))
            .total()
            .value();
        let p8 = PowerBreakdown::for_config(&ArchConfig::lt_large(8))
            .total()
            .value();
        assert!((19.0..36.0).contains(&p4), "LT-L 4-bit {p4} W");
        assert!((70.0..120.0).contains(&p8), "LT-L 8-bit {p8} W");
    }

    #[test]
    fn laser_jumps_16x_from_4_to_8_bit() {
        let p4 = PowerBreakdown::for_config(&ArchConfig::lt_base(4));
        let p8 = PowerBreakdown::for_config(&ArchConfig::lt_base(8));
        let ratio = p8.laser.value() / p4.laser.value();
        assert!((ratio - 16.0).abs() < 0.1, "laser ratio {ratio}");
    }

    #[test]
    fn temporal_accumulation_cuts_adc_power() {
        let full = PowerBreakdown::for_config(&ArchConfig::lt_base(4));
        let off = PowerBreakdown::for_config(&ArchConfig::lt_crossbar_base(4));
        // all_off also doubles ADC count (no photocurrent summation) and
        // runs the ADC at the full clock: 2 * 6 = 12x more ADC power,
        // minus the extra DAC count effect; just check direction strongly.
        assert!(
            off.adc.value() > 5.0 * full.adc.value(),
            "ADC power {} vs {}",
            off.adc.value(),
            full.adc.value()
        );
    }

    #[test]
    fn rows_sum_to_total() {
        let p = PowerBreakdown::for_config(&ArchConfig::lt_base(4));
        let sum: f64 = p.rows().iter().map(|(_, v, _)| v).sum();
        assert!((sum - p.total().value()).abs() < 1e-9);
    }
}
