//! Heterogeneous core-geometry search (paper Section VI-A).
//!
//! "We have the flexibility to explore heterogeneous DPTCs by having
//! different/searched core sizes to better suit workloads with specific
//! sparse patterns, avoiding low-utilization scenarios. For example, we can
//! have a specific DPTC engine for vector-matrix multiplication by setting
//! Nh to 1." — this module implements that search: enumerate core
//! geometries within an area budget, play the trace through the tile
//! scheduler on each (so dataflow stalls and SRAM pressure count against
//! a candidate, not just its closed-form cycles), and rank them by EDP.

use crate::area::AreaBreakdown;
use crate::config::ArchConfig;
use crate::sim::Simulator;
use lt_core::Trace;
use lt_dptc::DptcConfig;
use lt_workloads::GemmOp;

/// One evaluated candidate geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreCandidate {
    /// The evaluated configuration.
    pub config: ArchConfig,
    /// Chip area, mm^2.
    pub area_mm2: f64,
    /// Trace energy, mJ.
    pub energy_mj: f64,
    /// Trace latency, ms.
    pub latency_ms: f64,
    /// Energy-delay product, mJ * ms.
    pub edp: f64,
    /// Achieved MAC utilization over the scheduled trace (time-weighted
    /// fraction of peak, stalls included).
    pub utilization: f64,
    /// Total scheduled HBM traffic, bytes (refetch included).
    pub hbm_bytes: f64,
}

/// Enumerates `(Nh, Nv)` geometries (at fixed `N_lambda`) that fit within
/// `area_budget_mm2`, evaluates each on `trace`, and returns candidates
/// sorted by ascending EDP.
///
/// # Panics
///
/// Panics if `trace` is empty or no candidate fits the budget.
pub fn search_core_geometry(
    trace: &[GemmOp],
    area_budget_mm2: f64,
    nlambda: usize,
    bits: u32,
) -> Vec<CoreCandidate> {
    assert!(!trace.is_empty(), "cannot search on an empty trace");
    let shapes: &[(usize, usize)] = &[
        (1, 12),
        (4, 12),
        (8, 12),
        (12, 12),
        (16, 12),
        (12, 16),
        (16, 16),
        (24, 12),
        (12, 24),
        (4, 4),
        (8, 8),
        (24, 24),
    ];
    let ir_trace = Trace::from_ops(trace.iter().map(GemmOp::op).collect());
    let mut candidates = Vec::new();
    for &(nh, nv) in shapes {
        let mut config = ArchConfig::lt_base(bits);
        config.name = format!("LT[{nh}x{nv}x{nlambda}]");
        config.core = DptcConfig::new(nh, nv, nlambda);
        let area = AreaBreakdown::for_config(&config).total().value();
        if area > area_budget_mm2 {
            continue;
        }
        let sim = Simulator::new(config.clone());
        // Rank with the tile scheduler: a geometry that looks good on
        // paper but stalls on operand staging loses here.
        let sched = sim.schedule_trace(&ir_trace, config.dataflow);
        let report = sched.total;
        candidates.push(CoreCandidate {
            area_mm2: area,
            energy_mj: report.energy.total().value(),
            latency_ms: report.latency.value(),
            edp: report.edp(),
            utilization: report.utilization,
            hbm_bytes: sched.hbm_bytes,
            config,
        });
    }
    assert!(
        !candidates.is_empty(),
        "no core geometry fits within {area_budget_mm2} mm^2"
    );
    candidates.sort_by(|a, b| a.edp.partial_cmp(&b.edp).unwrap());
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_workloads::{OpKind, TransformerConfig};

    #[test]
    fn dense_deit_prefers_square_cores() {
        let trace = TransformerConfig::deit_tiny().gemm_trace();
        let ranked = search_core_geometry(&trace, 120.0, 12, 4);
        let best = &ranked[0].config.core;
        // Dense Transformer GEMMs want a big square-ish core.
        assert!(
            best.nh >= 8 && best.nv >= 8,
            "best core for dense DeiT: {best:?}"
        );
    }

    #[test]
    fn vector_matrix_trace_prefers_narrow_nh() {
        // A decode-style trace: every GEMM has m = 1 (vector-matrix).
        let trace = vec![
            GemmOp::new(OpKind::AttnQk, 1, 64, 512, 12 * 12),
            GemmOp::new(OpKind::AttnAv, 1, 512, 64, 12 * 12),
        ];
        let ranked = search_core_geometry(&trace, 120.0, 12, 4);
        let best = &ranked[0].config.core;
        // The paper's Nh = 1 (or small) vector-matrix engine should win.
        assert!(
            best.nh <= 4,
            "best core for vector-matrix trace should be narrow: {best:?}"
        );
        // And its utilization must beat the square core's.
        let square = ranked
            .iter()
            .find(|c| c.config.core.nh == 12 && c.config.core.nv == 12)
            .expect("square core evaluated");
        assert!(ranked[0].utilization > square.utilization);
    }

    #[test]
    fn ranking_is_sorted_and_within_budget() {
        let trace = TransformerConfig::deit_tiny().gemm_trace();
        let budget = 80.0;
        let ranked = search_core_geometry(&trace, budget, 12, 4);
        assert!(ranked.windows(2).all(|w| w[0].edp <= w[1].edp));
        assert!(ranked.iter().all(|c| c.area_mm2 <= budget));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        search_core_geometry(&[], 100.0, 12, 4);
    }
}
