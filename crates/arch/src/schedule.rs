//! The tile-level scheduled execution model (paper Figs. 5, 8–9).
//!
//! The closed-form cost model ([`crate::sim::Simulator::analytic_report`])
//! charges every GEMM `max(compute, HBM)` as one indivisible lump. This
//! module replaces that with what the DOTA architecture actually does:
//! every [`lt_core::Op`] decomposes into `[Nh x Nλ x Nv]` *tile
//! invocations*, the invocations are grouped into prefetchable
//! *segments* by a selectable [`DataflowPolicy`] (the loop order over
//! the tile grid), and the segments play over a timeline with
//! double-buffered SRAM staging:
//!
//! * the operand chunk of segment `s + 1` prefetches from HBM while
//!   segment `s` computes (two buffers; a load may run at most two
//!   segments ahead of the compute frontier);
//! * all loads serialize on the one shared HBM link, so concurrently
//!   loading tiles — including the *next op's* weights prefetching
//!   under the current op's compute — contend for its bandwidth;
//! * whenever a policy's reuse window exceeds the configuration's
//!   global-SRAM capacity (2 MB LT-B / 4 MB LT-L, Table IV), the
//!   operands that no longer fit are refetched from HBM, charging both
//!   time and energy.
//!
//! The output is a [`TraceSchedule`]: one [`crate::sim::RunReport`] per
//! op whose latency windows partition the makespan, each carrying a
//! [`StallBreakdown`] that itemizes *why* the op took its cycles —
//! photonic compute, HBM bandwidth stalls, or pipeline fill.
//!
//! Under an unconstrained-memory configuration
//! ([`crate::ArchConfig::unconstrained_memory`]) the schedule collapses
//! to the closed-form model exactly — `tests/trace_crossval.rs` pins
//! scheduled == analytic there, and scheduled <= analytic (overlap can
//! only help) for the default weight-stationary dataflow under the real
//! LT-B / LT-L configurations. Coarser loop orders may honestly exceed
//! the closed form: front-loaded weight streaming and capacity-driven
//! refetch are the effects this module exists to expose.

use crate::cache::CachedOpSchedule;
use crate::config::ArchConfig;
use crate::roofline::Bound;
use crate::sim::{RunReport, Simulator, ACCUM_BITS};
use lt_core::{Op, OpKind, OperandDynamics, Trace};
use lt_photonics::units::Milliseconds;
use std::fmt;
use std::ops::{Add, AddAssign};

/// The loop order a GEMM's tile grid is walked in — which operand stays
/// resident in on-chip SRAM while the other two stream (the DxPTA-style
/// dataflow axis of the design space).
///
/// All three policies issue the same tile invocations, so the photonic
/// *cycle* count is identical; what changes is the HBM traffic (reuse
/// windows that exceed the global SRAM refetch) and the stall pattern
/// (how loads interleave with compute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataflowPolicy {
    /// Walk `(row-block, depth-block)` outer, columns inner: every
    /// weight tile is loaded exactly once (minimum HBM traffic), at the
    /// price of holding a `Nt*Nh x cols` partial-sum panel across the
    /// whole depth loop — which spills to HBM if it outgrows the
    /// global SRAM.
    WeightStationary,
    /// Walk `(row-block, column-block)` outer, depth inner: partial
    /// sums complete in the accumulation buffer before moving on (no
    /// spill risk), but the row-panel of weights is revisited once per
    /// column block and refetches whenever the panel exceeds the
    /// global SRAM.
    OutputStationary,
    /// Walk `(column-block, depth-block)` outer, rows inner: the input
    /// (M2) tile stays resident while every weight tile streams past
    /// it — weight reuse across column blocks then requires the
    /// *entire* weight matrix on chip, so large layers refetch once
    /// per column block.
    InputStationary,
}

impl DataflowPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [DataflowPolicy; 3] = [
        DataflowPolicy::WeightStationary,
        DataflowPolicy::OutputStationary,
        DataflowPolicy::InputStationary,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DataflowPolicy::WeightStationary => "weight-stationary",
            DataflowPolicy::OutputStationary => "output-stationary",
            DataflowPolicy::InputStationary => "input-stationary",
        }
    }
}

impl fmt::Display for DataflowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where an op's wall-clock went: the three mutually exclusive slices of
/// its latency window. `compute + bandwidth + fill == latency` for every
/// report the simulator emits (scheduled or closed-form).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StallBreakdown {
    /// Time the photonic cores were firing tile invocations.
    pub compute: Milliseconds,
    /// Time the schedule sat waiting on HBM operand loads (the
    /// memory-bound slice — nonzero exactly when the op could not hide
    /// its traffic under compute).
    pub bandwidth: Milliseconds,
    /// Optics / EO-OE pipeline fill, charged once per dependent chain
    /// (back-to-back instances stream through an already-filled
    /// pipeline).
    pub fill: Milliseconds,
}

impl StallBreakdown {
    /// Total accounted time (equals the report's latency).
    pub fn total(&self) -> Milliseconds {
        self.compute + self.bandwidth + self.fill
    }

    /// Fraction of the window lost to bandwidth stalls (0 when idle).
    pub fn bandwidth_fraction(&self) -> f64 {
        let t = self.total().value();
        if t > 0.0 {
            self.bandwidth.value() / t
        } else {
            0.0
        }
    }

    /// Roofline classification of this window: memory-bound when the
    /// schedule stalled on HBM longer than it computed.
    pub fn bound(&self) -> Bound {
        if self.bandwidth.value() > self.compute.value() {
            Bound::Memory
        } else {
            Bound::Compute
        }
    }
}

impl Add for StallBreakdown {
    type Output = StallBreakdown;
    fn add(self, rhs: StallBreakdown) -> StallBreakdown {
        StallBreakdown {
            compute: self.compute + rhs.compute,
            bandwidth: self.bandwidth + rhs.bandwidth,
            fill: self.fill + rhs.fill,
        }
    }
}

impl AddAssign for StallBreakdown {
    fn add_assign(&mut self, rhs: StallBreakdown) {
        *self = *self + rhs;
    }
}

/// The tile-grid decomposition of one GEMM under the Fig. 5 mapping —
/// the shared geometry both the closed-form model and the scheduler
/// cost from. `None`-like degenerate ops (any zero dimension) never
/// construct a map.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GemmMap {
    /// Mapped M2 columns (used for the weight-stationary output panel).
    pub cols: usize,
    /// Tile column-blocks (`ceil(cols / Nv)`).
    pub tiles_n: u64,
    /// Spatial row steps: `ceil(tiles_m * instances / Nt)` — instances
    /// fold into the row dimension and fill otherwise-idle tiles.
    pub mb_steps: u64,
    /// Spatial depth steps: `ceil(tiles_d / Nc)` (photocurrent
    /// summation joins the cores of a tile).
    pub db_steps: u64,
    /// Photonic cycles: `mb_steps * db_steps * tiles_n`, identical to
    /// [`crate::latency::gemm_cycles_batched`].
    pub waves: u64,
    /// True MACs across all instances.
    pub macs: u64,
    /// Base HBM weight traffic in bytes (zero for dynamic products).
    pub weight_bytes: f64,
    /// Pipeline fill, picoseconds, charged once per op.
    pub fill_ps: f64,
}

impl GemmMap {
    /// Builds the map, or `None` for a free (zero-sized) op.
    pub(crate) fn new(
        config: &ArchConfig,
        kind: OpKind,
        m: usize,
        k: usize,
        n: usize,
        instances: usize,
    ) -> Option<GemmMap> {
        if m == 0 || k == 0 || n == 0 || instances == 0 {
            return None;
        }
        let core = config.core;
        // Weights ride M1 (spread across tiles), inputs ride M2 (shared
        // by the optical interconnect) — Fig. 5. Traces carry weights on
        // the right operand, so weight-static ops map transposed.
        let (rows, inner, cols) = match kind.dynamics() {
            OperandDynamics::WeightStatic => (n, k, m),
            OperandDynamics::BothDynamic => (m, k, n),
        };
        let tiles_m = rows.div_ceil(core.nh) as u64;
        let tiles_d = inner.div_ceil(core.nlambda) as u64;
        let tiles_n = cols.div_ceil(core.nv) as u64;
        let mb_steps = (tiles_m * instances as u64).div_ceil(config.nt as u64);
        let db_steps = tiles_d.div_ceil(config.nc as u64);
        let weight_bytes = if kind.dynamics() == OperandDynamics::WeightStatic {
            (k * n) as f64 * config.precision_bits as f64 / 8.0 * instances as f64
        } else {
            0.0
        };
        Some(GemmMap {
            cols,
            tiles_n,
            mb_steps,
            db_steps,
            waves: mb_steps * db_steps * tiles_n,
            macs: (m as u64) * (k as u64) * (n as u64) * instances as u64,
            weight_bytes,
            fill_ps: crate::latency::pipeline_latency_ps(core.nh.max(core.nv)),
        })
    }
}

/// One prefetchable unit of the schedule: `bytes` of fresh HBM traffic
/// staged into a double buffer, then `waves` photonic cycles consuming
/// it. Reuse waves (operands already resident) fold into the preceding
/// segment — they extend its compute without a buffer event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Segment {
    pub(crate) bytes: f64,
    pub(crate) waves: u64,
}

/// A whole op's segment plan under one policy.
#[derive(Debug)]
struct Plan {
    segments: Vec<Segment>,
    /// Total HBM traffic: base weight bytes times the policy's refetch
    /// factor, plus any partial-sum spill.
    hbm_bytes: f64,
}

/// Capacity check helper: a zero-byte global SRAM (the bare single-core
/// scaling configs) models *no* memory system and disables capacity
/// pressure rather than charging infinite refetch.
fn fits(working_set: f64, capacity: usize) -> bool {
    capacity == 0 || working_set <= capacity as f64
}

fn plan(policy: DataflowPolicy, map: &GemmMap, config: &ArchConfig) -> Plan {
    let w = map.weight_bytes;
    if w <= 0.0 {
        // Dynamic product: operands are on-chip activations; one pure
        // compute segment.
        return Plan {
            segments: vec![Segment {
                bytes: 0.0,
                waves: map.waves,
            }],
            hbm_bytes: 0.0,
        };
    }
    let cap = config.global_sram_bytes;
    let (mb, db, nb) = (map.mb_steps, map.db_steps, map.tiles_n);
    let mut segments = Vec::new();
    let mut hbm_bytes;
    match policy {
        DataflowPolicy::WeightStationary => {
            // (mb, db) outer, nb inner: each weight super-tile loads
            // once and serves a full column sweep. The partial-sum
            // panel for one row step (`Nt*Nh x cols` at accumulator
            // precision) must survive the whole depth loop; if it
            // outgrows the global SRAM, every later depth step
            // re-reads and re-writes it through HBM.
            let seg_bytes = w / (mb * db) as f64;
            let out_panel =
                (config.nt * config.core.nh) as f64 * map.cols as f64 * ACCUM_BITS as f64 / 8.0;
            let spill = if db > 1 && !fits(out_panel, cap) {
                2.0 * out_panel
            } else {
                0.0
            };
            hbm_bytes = w + spill * (db - 1) as f64 * mb as f64;
            segments.reserve((mb * db) as usize);
            for _ in 0..mb {
                for d in 0..db {
                    let bytes = seg_bytes + if d > 0 { spill } else { 0.0 };
                    segments.push(Segment { bytes, waves: nb });
                }
            }
        }
        DataflowPolicy::OutputStationary => {
            // (mb, nb) outer, db inner: the row-panel of weights
            // (`w / mb`) is revisited once per column block; it loads
            // once per row step if it fits, once per (row, column)
            // step if it does not.
            let panel = w / mb as f64;
            let refetch = !fits(panel, cap);
            hbm_bytes = if refetch { w * nb as f64 } else { w };
            segments.reserve(if refetch {
                (mb * nb) as usize
            } else {
                mb as usize
            });
            for _ in 0..mb {
                if refetch {
                    for _ in 0..nb {
                        segments.push(Segment {
                            bytes: panel,
                            waves: db,
                        });
                    }
                } else {
                    // Reuse waves fold into the loading segment.
                    segments.push(Segment {
                        bytes: panel,
                        waves: db * nb,
                    });
                }
            }
        }
        DataflowPolicy::InputStationary => {
            // (nb, db) outer, mb inner: the M2 input tile stays put
            // while every weight tile streams past it. Reusing a
            // weight tile at the next column block requires the whole
            // weight matrix resident, so large layers refetch the
            // full stream once per column block.
            let panel = w / db as f64;
            let refetch = !fits(w, cap);
            hbm_bytes = if refetch { w * nb as f64 } else { w };
            if refetch {
                segments.reserve((nb * db) as usize);
                for _ in 0..nb {
                    for _ in 0..db {
                        segments.push(Segment {
                            bytes: panel,
                            waves: mb,
                        });
                    }
                }
            } else {
                // First column block streams the weights; the rest of
                // the grid runs out of residency.
                segments.reserve(db as usize);
                for _ in 0..db {
                    segments.push(Segment {
                        bytes: panel,
                        waves: mb,
                    });
                }
                if nb > 1 {
                    let tail = mb * db * (nb - 1);
                    if let Some(last) = segments.last_mut() {
                        last.waves += tail;
                    }
                }
            }
        }
    }
    // Degenerate guard: keep totals finite even for pathological maps.
    if !hbm_bytes.is_finite() {
        hbm_bytes = w;
    }
    Plan {
        segments,
        hbm_bytes,
    }
}

/// Timeline state threaded through a whole trace: the compute frontier,
/// the shared-HBM free time, the compute-end times of the last two
/// load-bearing segments (the two SRAM buffers), and how many warm-start
/// preloads remain (the first two buffers are staged before execution
/// begins, the standard warm-start assumption).
#[derive(Debug)]
pub(crate) struct SchedState {
    now: f64,
    hbm_free: f64,
    seg_hist: [f64; 2],
    preload: u8,
}

impl SchedState {
    pub(crate) fn new() -> Self {
        SchedState {
            now: 0.0,
            hbm_free: 0.0,
            seg_hist: [0.0; 2],
            preload: 2,
        }
    }
}

/// Computes the pure (state-independent) part of one GEMM op's
/// schedule: the tile map, the dataflow's segment plan, the energy
/// model, and — when the schedule never touches live timeline state —
/// the finished report itself. This is the value the simulator's
/// [`crate::cache::ScheduleCache`] memoizes per `(op, policy)`.
///
/// Must only be called for [`Op::Gemm`]; non-GEMM ops bypass the cache
/// entirely (their KV-window side effect is inherently stateful and
/// their report is already a cheap closed form).
pub(crate) fn build_op_schedule(
    sim: &Simulator,
    policy: DataflowPolicy,
    op: &Op,
) -> CachedOpSchedule {
    let (kind, m, k, n, instances) = match *op {
        Op::Gemm {
            kind,
            m,
            k,
            n,
            instances,
        } => (kind, m, k, n, instances),
        Op::NonGemm { .. } => unreachable!("non-GEMM ops are never cached"),
    };
    let config = sim.config();
    let Some(map) = GemmMap::new(config, kind, m, k, n, instances) else {
        return CachedOpSchedule::Free;
    };
    let period = config.clock.period().value();
    let plan = plan(policy, &map, config);
    let active_ps = map.waves as f64 * period + map.fill_ps;
    let energy = sim.gemm_energy(op, plan.hbm_bytes, active_ps);

    let bw_per_ps = config.hbm_bytes_per_s / 1e12;
    if plan.hbm_bytes <= 0.0 || !bw_per_ps.is_finite() {
        // Nothing to load (or loads are instantaneous): the schedule is
        // pure compute — the window IS the active time, which equals
        // the closed-form expression bit for bit, and the whole report
        // is a replayable constant.
        return CachedOpSchedule::Pure {
            report: sim.finish_gemm_report(energy, map.waves, map.macs, active_ps, map.fill_ps),
            hbm_bytes: plan.hbm_bytes,
            active_ps,
        };
    }
    CachedOpSchedule::Staged {
        map,
        segments: plan.segments.into(),
        hbm_bytes: plan.hbm_bytes,
        energy,
    }
}

/// Schedules one op, advancing the trace timeline, and returns its
/// report. GEMMs get a latency window with stall itemization,
/// utilization, and energy at the policy's actual HBM traffic;
/// non-GEMM digital work charges energy and no time — except KV-cache
/// reads/writes, whose bytes occupy the shared HBM link as a pure
/// bandwidth-stall window.
pub(crate) fn schedule_op(
    sim: &Simulator,
    state: &mut SchedState,
    policy: DataflowPolicy,
    op: &Op,
    hbm_bytes_acc: &mut f64,
) -> RunReport {
    if let Op::NonGemm { kind, elems } = *op {
        let report = sim.non_gemm_report(kind, elems);
        let bytes = sim.kv_traffic_bytes(kind, elems);
        if bytes > 0.0 {
            // KV-cache reads/writes ride the same HBM link as weight
            // loads: account their bytes and serialize the link —
            // later ops' prefetches queue behind the KV window.
            *hbm_bytes_acc += bytes;
            state.now += report.latency.value() * 1e9;
            state.hbm_free = state.hbm_free.max(state.now);
        }
        return report;
    }
    // The pure part of the schedule — tile map, segment plan, energy —
    // is memoized per (op, policy) in the simulator's ScheduleCache;
    // only the timeline walk below touches live state.
    let (map, segments, energy) = match sim.cached_op_schedule(policy, op) {
        CachedOpSchedule::Free => return RunReport::default(),
        CachedOpSchedule::Pure {
            report,
            hbm_bytes,
            active_ps,
        } => {
            // Nothing to load (or loads are instantaneous): the
            // schedule is pure compute — the window IS the active time,
            // which equals the closed-form expression bit for bit.
            *hbm_bytes_acc += hbm_bytes;
            state.now += active_ps;
            return report;
        }
        CachedOpSchedule::Staged {
            map,
            segments,
            hbm_bytes,
            energy,
        } => {
            *hbm_bytes_acc += hbm_bytes;
            (map, segments, energy)
        }
    };
    let period = sim.config().clock.period().value();
    let bw_per_ps = sim.config().hbm_bytes_per_s / 1e12;

    let start = state.now;
    let mut prev_end = state.now;
    for seg in segments.iter() {
        if seg.bytes > 0.0 {
            let load_end = if state.preload > 0 {
                // Warm start: this buffer was staged before t = 0.
                state.preload -= 1;
                0.0
            } else {
                // Double buffering: the load may run up to two segments
                // ahead of the compute frontier (its buffer frees when
                // the segment two back finishes computing), and all
                // loads serialize on the shared HBM link.
                let load_start = state.hbm_free.max(state.seg_hist[1]);
                let end = load_start + seg.bytes / bw_per_ps;
                state.hbm_free = end;
                end
            };
            let compute_start = prev_end.max(load_end);
            let compute_end = compute_start + seg.waves as f64 * period;
            state.seg_hist = [compute_end, state.seg_hist[0]];
            prev_end = compute_end;
        } else {
            prev_end += seg.waves as f64 * period;
        }
    }
    let end = prev_end + map.fill_ps;
    state.now = end;
    sim.finish_gemm_report(energy, map.waves, map.macs, end - start, map.fill_ps)
}

/// A whole trace played through the scheduler: per-op reports whose
/// latency windows partition the makespan, plus their merge.
#[derive(Debug, Clone)]
pub struct TraceSchedule {
    /// The dataflow the schedule was played under.
    pub policy: DataflowPolicy,
    /// One report per trace op, in trace order.
    pub per_op: Vec<RunReport>,
    /// The merged whole-trace report (cycles/energy/stalls sum; the
    /// latency is the makespan; utilization is time-weighted).
    pub total: RunReport,
    /// Total HBM traffic in bytes, including dataflow-induced refetch
    /// and partial-sum spill.
    pub hbm_bytes: f64,
}

impl TraceSchedule {
    /// Ops that reported a nonzero bandwidth stall (the memory-bound
    /// part of the trace).
    pub fn stalled_ops(&self) -> usize {
        self.per_op
            .iter()
            .filter(|r| r.stalls.bandwidth.value() > 0.0)
            .count()
    }
}

/// Plays a trace over the tile scheduler. Exposed on
/// [`Simulator::schedule_trace`]; this free function keeps the timeline
/// mechanics next to the policy definitions.
pub(crate) fn schedule_trace(
    sim: &Simulator,
    trace: &Trace,
    policy: DataflowPolicy,
) -> TraceSchedule {
    let mut state = SchedState::new();
    let mut per_op = Vec::with_capacity(trace.len());
    let mut total = RunReport::default();
    let mut hbm_bytes = 0.0;
    for op in trace.ops() {
        let r = schedule_op(sim, &mut state, policy, op, &mut hbm_bytes);
        total.merge(&r);
        per_op.push(r);
    }
    TraceSchedule {
        policy,
        per_op,
        total,
        hbm_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::gemm_cycles_batched;

    fn map_of(
        config: &ArchConfig,
        kind: OpKind,
        m: usize,
        k: usize,
        n: usize,
        i: usize,
    ) -> GemmMap {
        GemmMap::new(config, kind, m, k, n, i).expect("nonzero op")
    }

    #[test]
    fn gemm_map_waves_equal_the_closed_form_cycle_count() {
        let cfg = ArchConfig::lt_base(4);
        for &(m, k, n, i) in &[
            (197usize, 64usize, 197usize, 36usize),
            (197, 192, 768, 12),
            (1, 768, 768, 36),
            (13, 5, 1, 2),
        ] {
            for kind in [OpKind::AttnQk, OpKind::Ffn1] {
                let map = map_of(&cfg, kind, m, k, n, i);
                let (rows, inner, cols) = match kind.dynamics() {
                    OperandDynamics::WeightStatic => (n, k, m),
                    OperandDynamics::BothDynamic => (m, k, n),
                };
                assert_eq!(
                    map.waves,
                    gemm_cycles_batched(&cfg, rows, inner, cols, i),
                    "{kind:?} {m}x{k}x{n} i={i}"
                );
            }
        }
    }

    #[test]
    fn every_policy_issues_the_same_waves_and_conserves_base_traffic() {
        let cfg = ArchConfig::lt_base(4);
        let map = map_of(&cfg, OpKind::Ffn1, 197, 192, 768, 12);
        for policy in DataflowPolicy::ALL {
            let p = plan(policy, &map, &cfg);
            let waves: u64 = p.segments.iter().map(|s| s.waves).sum();
            assert_eq!(waves, map.waves, "{policy}");
            let loaded: f64 = p.segments.iter().map(|s| s.bytes).sum();
            assert!(
                (loaded - p.hbm_bytes).abs() < 1e-6 * p.hbm_bytes.max(1.0),
                "{policy}: segment bytes {loaded} vs plan {}",
                p.hbm_bytes
            );
            // DeiT-T FFN1 at 4 bits fits every reuse window of LT-B:
            // no policy refetches.
            assert!(
                (p.hbm_bytes - map.weight_bytes).abs() < 1e-6,
                "{policy} refetched"
            );
        }
    }

    #[test]
    fn input_stationary_refetches_when_the_weights_outgrow_sram() {
        let cfg = ArchConfig::lt_base(4);
        // DeiT-B FFN1: 768x3072 weights x 12 layers ~ 14 MB >> 2 MB.
        let map = map_of(&cfg, OpKind::Ffn1, 197, 768, 3072, 12);
        let is = plan(DataflowPolicy::InputStationary, &map, &cfg);
        let ws = plan(DataflowPolicy::WeightStationary, &map, &cfg);
        assert!(
            (ws.hbm_bytes - map.weight_bytes).abs() < 1e-6,
            "weight-stationary never refetches weights"
        );
        assert!(
            is.hbm_bytes > 10.0 * ws.hbm_bytes,
            "input-stationary must pay ~tiles_n x refetch: {} vs {}",
            is.hbm_bytes,
            ws.hbm_bytes
        );
        assert!((is.hbm_bytes / map.weight_bytes - map.tiles_n as f64).abs() < 1e-6);
    }

    #[test]
    fn weight_stationary_spills_partial_sums_on_absurdly_wide_outputs() {
        let mut cfg = ArchConfig::lt_base(4);
        cfg.global_sram_bytes = 8 << 10; // shrink SRAM to force the spill
                                         // Mapped cols = m for a weight-static op; make it huge.
        let map = map_of(&cfg, OpKind::Ffn1, 100_000, 64, 64, 1);
        let ws = plan(DataflowPolicy::WeightStationary, &map, &cfg);
        assert!(
            ws.hbm_bytes > map.weight_bytes,
            "partial-sum panel must spill: {} vs {}",
            ws.hbm_bytes,
            map.weight_bytes
        );
    }

    #[test]
    fn zero_capacity_disables_the_memory_model() {
        let cfg = ArchConfig::single_core(12, 4);
        assert_eq!(cfg.global_sram_bytes, 0);
        let map = map_of(&cfg, OpKind::Ffn1, 4096, 4096, 4096, 1);
        for policy in DataflowPolicy::ALL {
            let p = plan(policy, &map, &cfg);
            assert!(
                (p.hbm_bytes - map.weight_bytes).abs() < 1e-3,
                "{policy}: bare configs model no SRAM pressure"
            );
        }
    }

    #[test]
    fn dynamic_products_plan_pure_compute() {
        let cfg = ArchConfig::lt_base(4);
        let map = map_of(&cfg, OpKind::AttnQk, 197, 64, 197, 36);
        for policy in DataflowPolicy::ALL {
            let p = plan(policy, &map, &cfg);
            assert_eq!(p.hbm_bytes, 0.0, "{policy}");
            assert_eq!(p.segments.len(), 1);
            assert_eq!(p.segments[0].waves, map.waves);
        }
    }

    #[test]
    fn stall_breakdown_adds_and_classifies() {
        let a = StallBreakdown {
            compute: Milliseconds(1.0),
            bandwidth: Milliseconds(3.0),
            fill: Milliseconds(0.5),
        };
        let b = StallBreakdown {
            compute: Milliseconds(2.0),
            ..StallBreakdown::default()
        };
        let sum = a + b;
        assert!((sum.total().value() - 6.5).abs() < 1e-12);
        assert_eq!(a.bound(), Bound::Memory);
        assert_eq!(b.bound(), Bound::Compute);
        assert!((a.bandwidth_fraction() - 3.0 / 4.5).abs() < 1e-12);
        assert_eq!(StallBreakdown::default().bandwidth_fraction(), 0.0);
    }
}
