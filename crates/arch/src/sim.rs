//! The workload simulator: replays op traces through the accelerator
//! model and reports itemized energy, latency, and EDP (paper Table V
//! and Figs. 11-13).
//!
//! The simulator consumes the shared trace IR (`lt_core::trace`): an
//! arbitrary [`lt_core::Trace`] — recorded from a real `lt-nn` forward
//! pass or derived analytically by `lt_workloads` — replays through
//! [`Simulator::run_trace`]. Since the tile-schedule refactor, that
//! entry point plays the trace over the event-driven tile scheduler
//! ([`crate::schedule`]): every GEMM decomposes into tile invocations,
//! operands stage through double-buffered SRAM under the configured
//! [`DataflowPolicy`], and each report carries a [`StallBreakdown`]
//! itemizing compute vs. HBM-bandwidth vs. pipeline-fill time plus the
//! achieved MAC `utilization`.
//!
//! The original closed-form per-op accounting survives as
//! [`Simulator::analytic_report`] and serves as the cross-validation
//! oracle: under an unconstrained-memory configuration
//! ([`crate::ArchConfig::unconstrained_memory`]) the scheduled and
//! closed-form reports are identical, and under real configurations the
//! schedule may only improve on the closed form via overlap
//! (`tests/trace_crossval.rs`).

use crate::config::{ArchConfig, CoreTopology};
use crate::devices::DeviceRack;
use crate::energy::EnergyBreakdown;
use crate::memory::{MemoryHierarchy, HBM_PJ_PER_BYTE};
use crate::schedule::{self, DataflowPolicy, GemmMap, StallBreakdown, TraceSchedule};
use lt_core::{NonGemmKind, Op, OpKind, Trace};
use lt_photonics::units::{GigaHertz, MilliJoules, Milliseconds, PicoJoules};
use lt_workloads::{GemmOp, Module, OperandDynamics, TransformerConfig};
use std::sync::Arc;

/// Digital non-GEMM energies, pJ per element (efficient hardware units,
/// paper refs \[21\], \[40\], \[59\]).
pub const SOFTMAX_PJ_PER_ELEM: f64 = 3.0;
/// LayerNorm energy, pJ per element.
pub const LAYERNORM_PJ_PER_ELEM: f64 = 2.0;
/// GELU energy, pJ per element.
pub const GELU_PJ_PER_ELEM: f64 = 1.5;
/// Residual-add energy, pJ per element.
pub const RESIDUAL_PJ_PER_ELEM: f64 = 0.2;
/// KV-cache append energy, pJ per element written (an on-chip SRAM
/// write per cached K/V value; the decode path's per-token memory
/// traffic, Section VI-B).
pub const KV_APPEND_PJ_PER_ELEM: f64 = 0.5;
/// KV-cache read energy, pJ per element read back for decode attention
/// (the digital-side gather; the off-chip HBM energy and bandwidth of
/// the same bytes are charged separately per byte).
pub const KV_READ_PJ_PER_ELEM: f64 = 0.5;

/// Output accumulator width in bits (partial sums carry more precision
/// than operands). Shared with the scheduler's partial-sum spill model.
pub(crate) const ACCUM_BITS: u32 = 16;

/// Result of running a trace (or part of one).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunReport {
    /// Itemized energy.
    pub energy: EnergyBreakdown,
    /// Photonic-core cycles (tile-invocation waves; stall time is in
    /// `stalls`, not here).
    pub cycles: u64,
    /// Wall-clock latency of the op's schedule window (compute plus any
    /// stalls that could not hide under it).
    pub latency: Milliseconds,
    /// Fraction of peak MAC throughput achieved over the window
    /// (time-weighted when reports merge).
    pub utilization: f64,
    /// Where the window went: compute vs. HBM-bandwidth stalls vs.
    /// pipeline fill. `stalls.total() == latency`.
    pub stalls: StallBreakdown,
}

impl RunReport {
    /// Energy-delay product in mJ * ms (the paper's EDP unit).
    pub fn edp(&self) -> f64 {
        self.energy.total().value() * self.latency.value()
    }

    /// Merges another report (sequential execution). Energy, cycles,
    /// latency, and stalls add; utilization combines latency-weighted,
    /// so the merged value is still `achieved MACs / peak MACs` over
    /// the combined window.
    pub fn merge(&mut self, other: &RunReport) {
        let t1 = self.latency.value();
        let t2 = other.latency.value();
        self.utilization = if t1 + t2 > 0.0 {
            (self.utilization * t1 + other.utilization * t2) / (t1 + t2)
        } else {
            0.0
        };
        self.energy += other.energy;
        self.cycles += other.cycles;
        self.latency += other.latency;
        self.stalls += other.stalls;
    }
}

/// Per-model simulation result, split by module as in Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Configuration name.
    pub config: String,
    /// The dynamic attention products (`Q K^T`, `A V`) only.
    pub mha: RunReport,
    /// The FFN linears only.
    pub ffn: RunReport,
    /// Projections, embeddings, classifier, and digital non-GEMM work.
    pub other: RunReport,
    /// Everything.
    pub all: RunReport,
}

impl ModelReport {
    /// Frames (inferences) per second at batch 1.
    pub fn fps(&self) -> f64 {
        1e3 / self.all.latency.value()
    }
}

/// The accelerator simulator.
///
/// ```
/// use lt_arch::{ArchConfig, Simulator};
/// use lt_workloads::TransformerConfig;
/// let sim = Simulator::new(ArchConfig::lt_base(4));
/// let r = sim.run_model(&TransformerConfig::deit_tiny());
/// assert!(r.fps() > 10_000.0, "LT-B runs DeiT-T at > 10k FPS");
/// // Scheduled reports explain themselves: utilization + stall split.
/// assert!(r.all.utilization > 0.0);
/// assert!((r.all.stalls.total().value() - r.all.latency.value()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: ArchConfig,
    rack: DeviceRack,
    mem: MemoryHierarchy,
    laser_w: f64,
    /// [`ArchConfig::fingerprint`] of `config`, precomputed once.
    fingerprint: u64,
    /// Memoized per-op schedules, shared by every clone of this
    /// simulator (parallel serving workers pool one cache).
    cache: Arc<crate::cache::ScheduleCache>,
}

impl Simulator {
    /// Creates a simulator for a configuration.
    pub fn new(config: ArchConfig) -> Self {
        let fingerprint = config.fingerprint();
        let rack = DeviceRack::paper(&config);
        let mem = MemoryHierarchy::for_config(&config);
        let laser_w = rack.laser_power().to_watts().value();
        Simulator {
            config,
            rack,
            mem,
            laser_w,
            fingerprint,
            cache: Arc::new(crate::cache::ScheduleCache::new(fingerprint)),
        }
    }

    /// A simulator whose schedule cache never hits: every op recomputes
    /// its tile plan from scratch. Results are bit-identical to the
    /// cached simulator — this constructor exists so tests (and
    /// skeptical users) can prove it.
    pub fn uncached(config: ArchConfig) -> Self {
        let mut sim = Simulator::new(config);
        sim.cache = Arc::new(crate::cache::ScheduleCache::disabled(sim.fingerprint));
        sim
    }

    /// Hit/miss/size statistics of the schedule cache since this
    /// simulator (or the clone-family it belongs to) was created.
    pub fn schedule_cache_stats(&self) -> crate::cache::ScheduleCacheStats {
        let (hits, misses) = self.cache.stats();
        crate::cache::ScheduleCacheStats {
            hits,
            misses,
            entries: self.cache.len(),
        }
    }

    /// The memoized pure schedule for one GEMM op under `policy`,
    /// computing and storing it on miss. See [`crate::cache`].
    pub(crate) fn cached_op_schedule(
        &self,
        policy: DataflowPolicy,
        op: &Op,
    ) -> crate::cache::CachedOpSchedule {
        let key = (*op, policy);
        if let Some(entry) = self.cache.lookup(self.fingerprint, key) {
            return entry;
        }
        let entry = schedule::build_op_schedule(self, policy, op);
        self.cache.insert(self.fingerprint, key, entry.clone());
        entry
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Simulates one IR op in isolation (a fresh schedule timeline): a
    /// GEMM through the photonic datapath under the config's dataflow,
    /// or a non-GEMM op through the digital units. For whole traces
    /// prefer [`Simulator::run_trace`], which overlaps adjacent ops'
    /// prefetch and compute.
    pub fn simulate_op(&self, op: &Op) -> RunReport {
        let mut state = schedule::SchedState::new();
        let mut bytes = 0.0;
        schedule::schedule_op(self, &mut state, self.config.dataflow, op, &mut bytes)
    }

    /// Simulates one analytical GEMM op (including its repetition count)
    /// on a fresh schedule timeline.
    pub fn run_op(&self, op: &GemmOp) -> RunReport {
        self.simulate_op(&op.op())
    }

    /// The off-chip bytes a non-GEMM op moves over the HBM link: KV
    /// cache writes ([`NonGemmKind::KvAppend`]) and reads
    /// ([`NonGemmKind::KvRead`]) at the operand precision; zero for the
    /// activation-resident digital ops. This is what turns the decode
    /// path's growing context into scheduled memory traffic.
    pub(crate) fn kv_traffic_bytes(&self, kind: NonGemmKind, elems: u64) -> f64 {
        match kind {
            NonGemmKind::KvAppend | NonGemmKind::KvRead => {
                elems as f64 * self.config.precision_bits as f64 / 8.0
            }
            _ => 0.0,
        }
    }

    /// One non-GEMM digital op: per-element energy on the 500 MHz
    /// digital units, overlapped with photonic compute (zero modeled
    /// latency, as in the paper's Table V accounting). KV-cache traffic
    /// (`KvAppend` / `KvRead`) additionally pays per-byte HBM energy
    /// and occupies the HBM link for `bytes / bandwidth` — reported as
    /// a pure bandwidth-stall window, since the cache lives off chip
    /// and its movement cannot hide under the op itself.
    pub(crate) fn non_gemm_report(&self, kind: NonGemmKind, elems: u64) -> RunReport {
        let pj_per_elem = match kind {
            NonGemmKind::Softmax => SOFTMAX_PJ_PER_ELEM,
            NonGemmKind::LayerNorm => LAYERNORM_PJ_PER_ELEM,
            NonGemmKind::Gelu => GELU_PJ_PER_ELEM,
            NonGemmKind::Residual => RESIDUAL_PJ_PER_ELEM,
            NonGemmKind::KvAppend => KV_APPEND_PJ_PER_ELEM,
            NonGemmKind::KvRead => KV_READ_PJ_PER_ELEM,
        };
        let digital = MilliJoules(elems as f64 * pj_per_elem * 1e-9);
        let bytes = self.kv_traffic_bytes(kind, elems);
        if bytes <= 0.0 {
            return RunReport {
                energy: EnergyBreakdown {
                    digital,
                    ..EnergyBreakdown::default()
                },
                ..RunReport::default()
            };
        }
        // `bytes / INFINITY == 0` exactly, so unconstrained-memory
        // configs keep the closed-form identity bit for bit.
        let window = Milliseconds(bytes / self.config.hbm_bytes_per_s * 1e3);
        RunReport {
            energy: EnergyBreakdown {
                digital,
                data_movement: MilliJoules(bytes * HBM_PJ_PER_BYTE * 1e-9),
                ..EnergyBreakdown::default()
            },
            cycles: 0,
            latency: window,
            utilization: 0.0,
            stalls: StallBreakdown {
                bandwidth: window,
                ..StallBreakdown::default()
            },
        }
    }

    /// The per-device GEMM energy model shared by the closed-form and
    /// scheduled paths. `hbm_bytes` is the *actual* off-chip traffic
    /// (base weight bytes, plus any dataflow-induced refetch or
    /// partial-sum spill); `active_ps` is the time the optics are
    /// firing (compute + fill — the laser gates off during stalls).
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a GEMM.
    pub(crate) fn gemm_energy(&self, op: &Op, hbm_bytes: f64, active_ps: f64) -> EnergyBreakdown {
        let Op::Gemm {
            kind,
            m: op_m,
            k: op_k,
            n: op_n,
            instances,
        } = *op
        else {
            panic!("gemm_energy called on a non-GEMM op");
        };
        let c = &self.config;
        let core = c.core;
        let bits = c.precision_bits;
        let period = c.clock.period();
        let count = instances as u64;

        // Operand mapping: weights ride M1 (spread across tiles), inputs
        // ride M2 (shared across tiles by the optical interconnect) —
        // Fig. 5. Our traces carry weights on the right operand, so
        // weight-static ops are mapped transposed.
        let (rows, inner, cols) = match kind.dynamics() {
            OperandDynamics::WeightStatic => (op_n, op_k, op_m),
            OperandDynamics::BothDynamic => (op_m, op_k, op_n),
        };

        let tiles_m = rows.div_ceil(core.nh) as u64;
        let tiles_d = inner.div_ceil(core.nlambda) as u64;
        let tiles_n = cols.div_ceil(core.nv) as u64;
        let t_invocations = tiles_m * tiles_d * tiles_n;

        let e_dac: PicoJoules = self.rack.dac.scaled_power(bits, c.clock) * period;
        let e_mzm: PicoJoules = self.rack.mzm.tuning_power() * period;
        let e_pd: PicoJoules = self.rack.pd.power * period;
        let e_tia: PicoJoules = self.rack.tia.power * period;
        // Per-conversion ADC energy (power scales with rate, so the energy
        // per conversion is rate-independent).
        let e_adc: PicoJoules = self.rack.adc.scaled_power(bits, c.clock) * period;

        // Encoded elements. op1 = M1 (nh rows), op2 = M2 (nv columns).
        let op1_elems = t_invocations * (core.nh * core.nlambda) as u64 * count;
        let op2_tile_factor = match c.topology {
            CoreTopology::Crossbar => 1,
            CoreTopology::BroadcastOnly => core.nh as u64,
        };
        let op2_tiles = if c.opts.inter_core_broadcast {
            tiles_m.div_ceil(c.nt as u64) * tiles_d * tiles_n
        } else {
            t_invocations
        };
        let op2_elems = op2_tiles * (core.nlambda * core.nv) as u64 * op2_tile_factor * count;

        // Detection: every DDot output of every invocation hits 2 PDs;
        // TIAs sit after the in-tile photocurrent summation.
        let ddot_outputs = t_invocations * core.num_ddots() as u64 * count;
        let tia_events = if c.opts.photocurrent_summation {
            tiles_m * tiles_d.div_ceil(c.nc as u64) * tiles_n * core.num_ddots() as u64 * count
        } else {
            ddot_outputs
        };
        // A/D conversions: once per temporal-accumulation window.
        let d_steps = tiles_d.div_ceil(if c.opts.photocurrent_summation {
            c.nc as u64
        } else {
            1
        });
        let adc_windows = if c.opts.analog_temporal_accum {
            d_steps.div_ceil(c.opts.temporal_accum_depth as u64)
        } else {
            d_steps
        };
        let adc_convs = tiles_m * adc_windows * tiles_n * core.num_ddots() as u64 * count;

        // Data movement: operand bytes through the SRAM hierarchy, partial
        // sums into the accumulation buffer, weights from HBM (including
        // any refetch the dataflow forced).
        let operand_pj = self.mem.operand_byte_energy().value();
        let output_pj = self.mem.output_byte_energy().value();
        let op_bytes = |elems: u64| elems as f64 * bits as f64 / 8.0;
        let out_bytes = (rows * cols) as f64 * ACCUM_BITS as f64 / 8.0 * count as f64;
        let accum_bytes = adc_convs as f64 * ACCUM_BITS as f64 / 8.0;
        let data_movement_pj = op_bytes(op1_elems) * operand_pj
            + op_bytes(op2_elems) * operand_pj
            + accum_bytes * self.mem.tile_act.write_energy_per_byte().value()
            + out_bytes * output_pj
            + hbm_bytes * HBM_PJ_PER_BYTE;

        let to_mj = |pj: f64| MilliJoules(pj * 1e-9);
        EnergyBreakdown {
            laser: MilliJoules(self.laser_w * active_ps * 1e-9),
            op1_dac: to_mj(op1_elems as f64 * e_dac.value()),
            op1_mod: to_mj(op1_elems as f64 * e_mzm.value()),
            op2_dac: to_mj(op2_elems as f64 * e_dac.value()),
            op2_mod: to_mj(op2_elems as f64 * e_mzm.value()),
            det: to_mj(
                ddot_outputs as f64 * 2.0 * e_pd.value() + tia_events as f64 * e_tia.value(),
            ),
            adc: to_mj(adc_convs as f64 * e_adc.value()),
            data_movement: to_mj(data_movement_pj),
            digital: MilliJoules(0.0),
        }
    }

    /// Assembles a GEMM report from a latency window: decomposes the
    /// window into compute / bandwidth / fill slices and computes the
    /// achieved MAC utilization. Shared by the scheduled and
    /// closed-form paths so that equal windows produce bit-identical
    /// reports.
    pub(crate) fn finish_gemm_report(
        &self,
        energy: EnergyBreakdown,
        cycles: u64,
        macs: u64,
        window_ps: f64,
        fill_ps: f64,
    ) -> RunReport {
        let period = self.config.clock.period().value();
        let compute_ps = cycles as f64 * period;
        // Snap float residue (a fully hidden load leaves `window ==
        // compute + fill` only up to rounding) so "no stall" reads as
        // exactly zero.
        let bandwidth_ps = {
            let b = window_ps - compute_ps - fill_ps;
            if b <= 1e-6 || b <= window_ps * 1e-12 {
                0.0
            } else {
                b
            }
        };
        let utilization = if window_ps > 0.0 {
            macs as f64 * period / (self.config.macs_per_cycle() as f64 * window_ps)
        } else {
            0.0
        };
        RunReport {
            energy,
            cycles,
            latency: Milliseconds(window_ps * 1e-9),
            utilization,
            stalls: StallBreakdown {
                compute: Milliseconds(compute_ps * 1e-9),
                bandwidth: Milliseconds(bandwidth_ps * 1e-9),
                fill: Milliseconds(fill_ps * 1e-9),
            },
        }
    }

    /// The closed-form cost of one GEMM op: whole-op `max(compute, HBM)`
    /// latency with pipeline fill charged once per dependent chain.
    fn gemm_report_analytic(
        &self,
        kind: OpKind,
        m: usize,
        k: usize,
        n: usize,
        instances: usize,
    ) -> RunReport {
        let Some(map) = GemmMap::new(&self.config, kind, m, k, n, instances) else {
            return RunReport::default();
        };
        let period = self.config.clock.period().value();
        // Back-to-back instances stream through an already-filled
        // optics/EO-OE pipeline, so the fill is charged once per op.
        let compute_ps = map.waves as f64 * period + map.fill_ps;
        // Weight streaming from HBM overlaps with compute (double
        // buffering); the slower of the two gates the op.
        let hbm_ps = map.weight_bytes / self.config.hbm_bytes_per_s * 1e12;
        let window_ps = compute_ps.max(hbm_ps);
        let energy = self.gemm_energy(
            &Op::gemm_n(kind, m, k, n, instances),
            map.weight_bytes,
            compute_ps,
        );
        self.finish_gemm_report(energy, map.waves, map.macs, window_ps, map.fill_ps)
    }

    /// Replays an arbitrary IR trace through the tile scheduler under
    /// the config's [`DataflowPolicy`] — recorded or analytical, the
    /// simulator does not care which. Identical traces produce
    /// identical reports (the model is deterministic). For the per-op
    /// windows and policy control, see [`Simulator::schedule_trace`];
    /// for the closed-form oracle, [`Simulator::analytic_report`].
    pub fn run_trace(&self, trace: &Trace) -> RunReport {
        self.schedule_trace(trace, self.config.dataflow).total
    }

    /// Plays a trace over the tile-level scheduler under an explicit
    /// dataflow: tile invocations over per-core timelines, operands
    /// staged through double-buffered SRAM, loads serialized on the
    /// shared HBM link, and adjacent ops' prefetch overlapped with
    /// compute. Returns per-op reports whose windows partition the
    /// makespan.
    pub fn schedule_trace(&self, trace: &Trace, policy: DataflowPolicy) -> TraceSchedule {
        schedule::schedule_trace(self, trace, policy)
    }

    /// The closed-form per-op oracle: every op charged
    /// `max(compute, HBM)` in sequence, no overlap between ops, no SRAM
    /// capacity pressure. Equals the scheduled report exactly under an
    /// unconstrained-memory configuration; under real configurations
    /// the *default weight-stationary* schedule may only improve on it
    /// (cross-op prefetch overlap). Coarser-grained loop orders chosen
    /// via [`crate::ArchConfig::with_dataflow`] can legitimately cost
    /// more than this oracle — front-loaded streaming and
    /// capacity-driven refetch are exactly what the scheduler exists to
    /// expose.
    pub fn analytic_report(&self, trace: &Trace) -> RunReport {
        let mut report = RunReport::default();
        for op in trace.ops() {
            let r = match *op {
                Op::Gemm {
                    kind,
                    m,
                    k,
                    n,
                    instances,
                } => self.gemm_report_analytic(kind, m, k, n, instances),
                Op::NonGemm { kind, elems } => self.non_gemm_report(kind, elems),
            };
            report.merge(&r);
        }
        report
    }

    /// Simulates a sequence of analytical GEMM ops on one shared
    /// schedule timeline (adjacent ops overlap prefetch with compute).
    pub fn run_gemm_ops(&self, ops: &[GemmOp]) -> RunReport {
        self.run_trace(&Trace::from_ops(ops.iter().map(GemmOp::op).collect()))
    }

    /// Simulates a whole Transformer inference from its analytical IR
    /// trace ([`TransformerConfig::trace`]), splitting the report by
    /// module as in Table V. Non-GEMM (digital) work runs in the
    /// 500 MHz domain overlapped with photonic compute, so it
    /// contributes energy to `other` and no latency.
    pub fn run_model(&self, model: &TransformerConfig) -> ModelReport {
        let trace = model.trace();
        let sched = self.schedule_trace(&trace, self.config.dataflow);
        let mut mha = RunReport::default();
        let mut ffn = RunReport::default();
        let mut other = RunReport::default();
        for (op, r) in trace.ops().iter().zip(&sched.per_op) {
            match op.module() {
                Module::Mha => mha.merge(r),
                Module::Ffn => ffn.merge(r),
                Module::Other => other.merge(r),
            }
        }
        ModelReport {
            model: model.name.clone(),
            config: self.config.name.clone(),
            mha,
            ffn,
            other,
            // The trace-order merge, not a re-merge of the module
            // groups: RunReport::merge is order-sensitive at the ulp
            // level, and `all` must equal run_trace on the same trace
            // bit for bit.
            all: sched.total,
        }
    }

    /// Effective A/D sampling rate after analog accumulation.
    pub fn adc_rate(&self) -> GigaHertz {
        GigaHertz(self.config.clock.value() / self.config.opts.adc_reduction(self.config.nc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deit_t() -> TransformerConfig {
        TransformerConfig::deit_tiny()
    }

    #[test]
    fn table5_deit_t_4bit_bands() {
        // Paper Table V, LT-B 4-bit DeiT-T: MHA 0.04 mJ / 3.12e-3 ms,
        // FFN 0.22 mJ / 1.04e-2 ms, All 0.38 mJ / 1.94e-2 ms.
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let r = sim.run_model(&deit_t());
        let mha_mj = r.mha.energy.total().value();
        let ffn_mj = r.ffn.energy.total().value();
        let all_mj = r.all.energy.total().value();
        assert!((0.015..0.12).contains(&mha_mj), "MHA {mha_mj} mJ");
        assert!((0.08..0.6).contains(&ffn_mj), "FFN {ffn_mj} mJ");
        assert!((0.15..0.9).contains(&all_mj), "All {all_mj} mJ");
        let all_ms = r.all.latency.value();
        assert!(
            (0.8e-2..4.0e-2).contains(&all_ms),
            "All latency {all_ms} ms"
        );
        let mha_ms = r.mha.latency.value();
        assert!((1.5e-3..7e-3).contains(&mha_ms), "MHA latency {mha_ms} ms");
    }

    #[test]
    fn eight_bit_costs_more_energy_same_cycles() {
        let sim4 = Simulator::new(ArchConfig::lt_base(4));
        let sim8 = Simulator::new(ArchConfig::lt_base(8));
        let r4 = sim4.run_model(&deit_t());
        let r8 = sim8.run_model(&deit_t());
        assert_eq!(
            r4.all.cycles, r8.all.cycles,
            "precision doesn't change cycles"
        );
        let ratio = r8.all.energy.total().value() / r4.all.energy.total().value();
        // Paper: 1.21 mJ vs 0.38 mJ => ~3.2x.
        assert!((2.0..5.5).contains(&ratio), "8/4-bit energy ratio {ratio}");
    }

    #[test]
    fn arch_opts_save_energy() {
        // Table V: LT-B w/o arch opt costs ~1.8x more (0.69 vs 0.38 mJ).
        let full = Simulator::new(ArchConfig::lt_base(4)).run_model(&deit_t());
        let bare = Simulator::new(ArchConfig::lt_crossbar_base(4)).run_model(&deit_t());
        let ratio = bare.all.energy.total().value() / full.all.energy.total().value();
        assert!((1.3..2.6).contains(&ratio), "w/o-opt ratio {ratio}");
    }

    #[test]
    fn broadcast_topology_costs_more_than_crossbar() {
        // Fig. 12: LT-broadcast-B > LT-crossbar-B on attention.
        let xbar = Simulator::new(ArchConfig::lt_crossbar_base(4)).run_model(&deit_t());
        let bcast = Simulator::new(ArchConfig::lt_broadcast_base(4)).run_model(&deit_t());
        assert!(
            bcast.mha.energy.total().value() > 1.5 * xbar.mha.energy.total().value(),
            "broadcast {} vs crossbar {}",
            bcast.mha.energy.total().value(),
            xbar.mha.energy.total().value()
        );
    }

    #[test]
    fn ltl_is_faster_than_ltb_on_big_models() {
        let b = Simulator::new(ArchConfig::lt_base(4)).run_model(&TransformerConfig::deit_base());
        let l = Simulator::new(ArchConfig::lt_large(4)).run_model(&TransformerConfig::deit_base());
        let speedup = b.all.latency.value() / l.all.latency.value();
        assert!(speedup > 1.5, "LT-L speedup {speedup}");
    }

    #[test]
    fn deit_b_latency_band() {
        // Paper: LT-B 4-bit DeiT-B all latency 2.65e-1 ms.
        let r = Simulator::new(ArchConfig::lt_base(4)).run_model(&TransformerConfig::deit_base());
        let ms = r.all.latency.value();
        assert!((0.1..0.6).contains(&ms), "DeiT-B latency {ms} ms");
    }

    #[test]
    fn fps_exceeds_gpu_class() {
        // Fig. 13: LT-B DeiT-T throughput is in the tens of thousands FPS.
        let r = Simulator::new(ArchConfig::lt_base(4)).run_model(&deit_t());
        assert!(r.fps() > 2e4, "fps {}", r.fps());
    }

    #[test]
    fn edp_is_energy_times_latency() {
        let r = Simulator::new(ArchConfig::lt_base(4)).run_model(&deit_t());
        let expect = r.all.energy.total().value() * r.all.latency.value();
        assert!((r.all.edp() - expect).abs() < 1e-12);
    }

    #[test]
    fn module_reports_sum_to_all() {
        let r = Simulator::new(ArchConfig::lt_base(4)).run_model(&deit_t());
        let sum = r.mha.energy.total().value()
            + r.ffn.energy.total().value()
            + r.other.energy.total().value();
        assert!((sum - r.all.energy.total().value()).abs() < 1e-9);
        assert_eq!(r.mha.cycles + r.ffn.cycles + r.other.cycles, r.all.cycles);
    }

    #[test]
    fn run_model_is_replaying_the_analytical_ir_trace() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let model = deit_t();
        let from_model = sim.run_model(&model);
        let from_trace = sim.run_trace(&model.trace());
        assert_eq!(
            from_model.all, from_trace,
            "run_model's `all` is the trace-order merge, bit for bit"
        );
        // The module split is a bucketing of the same per-op reports.
        let e_split = from_model.mha.energy.total().value()
            + from_model.ffn.energy.total().value()
            + from_model.other.energy.total().value();
        let e_all = from_model.all.energy.total().value();
        assert!(
            (e_split - e_all).abs() < 1e-9 * e_all.abs().max(1.0),
            "module bucketing only reorders summation: {e_split} vs {e_all}"
        );
    }

    #[test]
    fn identical_traces_get_identical_reports() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let trace = deit_t().trace();
        assert_eq!(
            sim.run_trace(&trace),
            sim.run_trace(&trace.clone()),
            "the model is deterministic: same trace, bit-identical report"
        );
    }

    #[test]
    fn non_gemm_ops_charge_digital_energy_and_nothing_else() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let r = sim.simulate_op(&Op::non_gemm(lt_core::NonGemmKind::Softmax, 1_000_000));
        assert_eq!(r.cycles, 0);
        assert_eq!(r.latency.value(), 0.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.stalls, StallBreakdown::default());
        let e = r.energy.total().value();
        assert_eq!(r.energy.digital.value(), e, "digital is the only term");
        assert!((e - 1e6 * SOFTMAX_PJ_PER_ELEM * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn coalesced_single_instance_ops_cost_like_the_analytical_batched_op() {
        // A recorded trace carries one op per head; coalescing merges
        // them into the same multi-instance op the analytical trace
        // emits, so both cost identically.
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let per_head = Trace::from_ops(vec![Op::gemm(lt_core::OpKind::AttnQk, 197, 64, 197); 36]);
        let analytical = GemmOp::new(lt_workloads::OpKind::AttnQk, 197, 64, 197, 36);
        assert_eq!(sim.run_trace(&per_head.coalesce()), sim.run_op(&analytical));
        // Uncoalesced, the 36 lone products cannot fill idle tiles, so
        // they cost at least as many cycles.
        assert!(sim.run_trace(&per_head).cycles >= sim.run_op(&analytical).cycles);
    }

    #[test]
    fn zero_sized_gemm_ops_cost_nothing() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        for op in [
            Op::gemm(lt_core::OpKind::Ffn1, 0, 64, 64),
            Op::gemm(lt_core::OpKind::Ffn1, 64, 0, 64),
            Op::gemm(lt_core::OpKind::AttnQk, 64, 64, 0),
            Op::gemm_n(lt_core::OpKind::AttnAv, 64, 64, 64, 0),
        ] {
            let r = sim.simulate_op(&op);
            assert_eq!(r.cycles, 0, "{op:?}");
            assert!(r.energy.total().value().abs() < 1e-18, "{op:?}");
        }
    }

    #[test]
    fn dynamic_ops_have_no_hbm_traffic() {
        // An attention op's latency must be pure compute (no HBM gating).
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let qk = GemmOp::new(lt_workloads::OpKind::AttnQk, 197, 64, 197, 1);
        let r = sim.run_op(&qk);
        let compute_ms = r.cycles as f64 * 200e-12 * 1e3;
        assert!((r.latency.value() - compute_ms).abs() / compute_ms < 0.05);
        assert_eq!(r.stalls.bandwidth.value(), 0.0, "no bandwidth stalls");
    }

    #[test]
    fn scheduled_equals_closed_form_under_unconstrained_memory() {
        // The oracle identity at its sharpest: with unconstrained SRAM
        // and infinite HBM bandwidth, the tile schedule collapses to
        // the closed form bit for bit.
        let sim = Simulator::new(ArchConfig::lt_base(4).unconstrained_memory());
        let trace = deit_t().trace();
        assert_eq!(sim.run_trace(&trace), sim.analytic_report(&trace));
    }

    #[test]
    fn scheduled_memory_bound_ops_report_bandwidth_stalls() {
        // A decode-style matrix-vector product streams far more weight
        // bytes than it computes: the schedule must surface that as a
        // bandwidth stall and a memory-bound classification.
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let op = Op::gemm_n(lt_core::OpKind::QkvProj, 1, 768, 768, 36);
        let r = sim.simulate_op(&op);
        assert!(
            r.stalls.bandwidth.value() > r.stalls.compute.value(),
            "m=1 weight streaming must be bandwidth-bound: {:?}",
            r.stalls
        );
        assert_eq!(r.stalls.bound(), crate::roofline::Bound::Memory);
        assert!(r.utilization < 0.05, "idle optics: {}", r.utilization);
        // And the scheduled window never beats the closed form for a
        // lone op (there is nothing to overlap with).
        let a = sim.analytic_report(&Trace::from_ops(vec![op]));
        assert!(r.latency.value() <= a.latency.value() * (1.0 + 1e-9));
    }

    #[test]
    fn stall_slices_partition_every_latency_window() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let sched = sim.schedule_trace(&deit_t().trace(), DataflowPolicy::WeightStationary);
        for (i, r) in sched.per_op.iter().enumerate() {
            let total = r.stalls.total().value();
            assert!(
                (total - r.latency.value()).abs() <= 1e-12 * total.max(1.0),
                "op {i}: stalls {total} != latency {}",
                r.latency.value()
            );
        }
        let t = sched.total;
        assert!((t.stalls.total().value() - t.latency.value()).abs() <= 1e-9);
    }

    #[test]
    fn dataflow_policies_agree_on_cycles_and_differ_on_traffic() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let trace = TransformerConfig::deit_base().trace();
        let ws = sim.schedule_trace(&trace, DataflowPolicy::WeightStationary);
        let os = sim.schedule_trace(&trace, DataflowPolicy::OutputStationary);
        let is = sim.schedule_trace(&trace, DataflowPolicy::InputStationary);
        assert_eq!(ws.total.cycles, os.total.cycles);
        assert_eq!(ws.total.cycles, is.total.cycles);
        // DeiT-B's 14 MB FFN weight panels overflow LT-B's 2 MB SRAM
        // under input-stationary reuse: refetch traffic must show up.
        assert!(
            is.hbm_bytes > 1.5 * ws.hbm_bytes,
            "IS {} vs WS {}",
            is.hbm_bytes,
            ws.hbm_bytes
        );
        assert!(is.total.energy.total().value() > ws.total.energy.total().value());
    }

    #[test]
    fn utilization_is_a_fraction_of_peak() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let r = sim.run_trace(&deit_t().trace());
        assert!(
            r.utilization > 0.2 && r.utilization <= 1.0,
            "DeiT-T on LT-B should keep the optics busy: {}",
            r.utilization
        );
    }
}
