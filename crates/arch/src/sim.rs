//! The workload simulator: replays op traces through the accelerator
//! model and reports itemized energy, latency, and EDP (paper Table V
//! and Figs. 11-13).
//!
//! The simulator consumes the shared trace IR (`lt_core::trace`): an
//! arbitrary [`lt_core::Trace`] — recorded from a real `lt-nn` forward
//! pass or derived analytically by `lt_workloads` — replays through
//! [`Simulator::run_trace`]. The analytical
//! `TransformerConfig::gemm_trace` is just one producer of that IR;
//! `tests/trace_crossval.rs` pins recorded-vs-analytical agreement.

use crate::config::{ArchConfig, CoreTopology};
use crate::devices::DeviceRack;
use crate::energy::EnergyBreakdown;
use crate::latency::{gemm_cycles_batched, pipeline_latency_ps};
use crate::memory::{MemoryHierarchy, HBM_BYTES_PER_S, HBM_PJ_PER_BYTE};
use lt_core::{NonGemmKind, Op, OpKind, Trace};
use lt_photonics::units::{GigaHertz, MilliJoules, Milliseconds, PicoJoules};
use lt_workloads::{GemmOp, Module, OperandDynamics, TransformerConfig};

/// Digital non-GEMM energies, pJ per element (efficient hardware units,
/// paper refs \[21\], \[40\], \[59\]).
pub const SOFTMAX_PJ_PER_ELEM: f64 = 3.0;
/// LayerNorm energy, pJ per element.
pub const LAYERNORM_PJ_PER_ELEM: f64 = 2.0;
/// GELU energy, pJ per element.
pub const GELU_PJ_PER_ELEM: f64 = 1.5;
/// Residual-add energy, pJ per element.
pub const RESIDUAL_PJ_PER_ELEM: f64 = 0.2;
/// KV-cache append energy, pJ per element written (an on-chip SRAM
/// write per cached K/V value; the decode path's per-token memory
/// traffic, Section VI-B).
pub const KV_APPEND_PJ_PER_ELEM: f64 = 0.5;

/// Output accumulator width in bits (partial sums carry more precision
/// than operands).
const ACCUM_BITS: u32 = 16;

/// Result of running a trace (or part of one).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunReport {
    /// Itemized energy.
    pub energy: EnergyBreakdown,
    /// Photonic-core cycles.
    pub cycles: u64,
    /// Wall-clock latency (compute overlapped with HBM; the larger wins).
    pub latency: Milliseconds,
}

impl RunReport {
    /// Energy-delay product in mJ * ms (the paper's EDP unit).
    pub fn edp(&self) -> f64 {
        self.energy.total().value() * self.latency.value()
    }

    /// Merges another report (sequential execution).
    pub fn merge(&mut self, other: &RunReport) {
        self.energy += other.energy;
        self.cycles += other.cycles;
        self.latency += other.latency;
    }
}

/// Per-model simulation result, split by module as in Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Configuration name.
    pub config: String,
    /// The dynamic attention products (`Q K^T`, `A V`) only.
    pub mha: RunReport,
    /// The FFN linears only.
    pub ffn: RunReport,
    /// Projections, embeddings, classifier, and digital non-GEMM work.
    pub other: RunReport,
    /// Everything.
    pub all: RunReport,
}

impl ModelReport {
    /// Frames (inferences) per second at batch 1.
    pub fn fps(&self) -> f64 {
        1e3 / self.all.latency.value()
    }
}

/// The accelerator simulator.
///
/// ```
/// use lt_arch::{ArchConfig, Simulator};
/// use lt_workloads::TransformerConfig;
/// let sim = Simulator::new(ArchConfig::lt_base(4));
/// let r = sim.run_model(&TransformerConfig::deit_tiny());
/// assert!(r.fps() > 10_000.0, "LT-B runs DeiT-T at > 10k FPS");
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: ArchConfig,
    rack: DeviceRack,
    mem: MemoryHierarchy,
    laser_w: f64,
}

impl Simulator {
    /// Creates a simulator for a configuration.
    pub fn new(config: ArchConfig) -> Self {
        let rack = DeviceRack::paper(&config);
        let mem = MemoryHierarchy::for_config(&config);
        let laser_w = rack.laser_power().to_watts().value();
        Simulator {
            config,
            rack,
            mem,
            laser_w,
        }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Simulates one IR op: a GEMM through the photonic datapath, or a
    /// non-GEMM op through the digital units.
    pub fn simulate_op(&self, op: &Op) -> RunReport {
        match *op {
            Op::Gemm {
                kind,
                m,
                k,
                n,
                instances,
            } => self.gemm_report(kind, m, k, n, instances),
            Op::NonGemm { kind, elems } => self.non_gemm_report(kind, elems),
        }
    }

    /// Simulates one analytical GEMM op (including its repetition count).
    pub fn run_op(&self, op: &GemmOp) -> RunReport {
        self.gemm_report(op.kind, op.m, op.k, op.n, op.count)
    }

    /// One non-GEMM digital op: per-element energy on the 500 MHz
    /// digital units, overlapped with photonic compute (zero modeled
    /// latency, as in the paper's Table V accounting).
    fn non_gemm_report(&self, kind: NonGemmKind, elems: u64) -> RunReport {
        let pj_per_elem = match kind {
            NonGemmKind::Softmax => SOFTMAX_PJ_PER_ELEM,
            NonGemmKind::LayerNorm => LAYERNORM_PJ_PER_ELEM,
            NonGemmKind::Gelu => GELU_PJ_PER_ELEM,
            NonGemmKind::Residual => RESIDUAL_PJ_PER_ELEM,
            NonGemmKind::KvAppend => KV_APPEND_PJ_PER_ELEM,
        };
        RunReport {
            energy: EnergyBreakdown {
                digital: MilliJoules(elems as f64 * pj_per_elem * 1e-9),
                ..EnergyBreakdown::default()
            },
            ..RunReport::default()
        }
    }

    /// The GEMM cost model shared by the IR and analytical entry points.
    fn gemm_report(
        &self,
        kind: OpKind,
        op_m: usize,
        op_k: usize,
        op_n: usize,
        instances: usize,
    ) -> RunReport {
        // A zero-size GEMM moves no data and fires no device: free.
        if op_m == 0 || op_k == 0 || op_n == 0 || instances == 0 {
            return RunReport::default();
        }
        let c = &self.config;
        let core = c.core;
        let bits = c.precision_bits;
        let period = c.clock.period();
        let count = instances as u64;

        // Operand mapping: weights ride M1 (spread across tiles), inputs
        // ride M2 (shared across tiles by the optical interconnect) —
        // Fig. 5. Our traces carry weights on the right operand, so
        // weight-static ops are mapped transposed.
        let (rows, inner, cols) = match kind.dynamics() {
            OperandDynamics::WeightStatic => (op_n, op_k, op_m),
            OperandDynamics::BothDynamic => (op_m, op_k, op_n),
        };

        let tiles_m = rows.div_ceil(core.nh) as u64;
        let tiles_d = inner.div_ceil(core.nlambda) as u64;
        let tiles_n = cols.div_ceil(core.nv) as u64;
        let t_invocations = tiles_m * tiles_d * tiles_n;

        // --- Latency --- (independent instances fill otherwise-idle tiles)
        let cycles = gemm_cycles_batched(c, rows, inner, cols, instances);
        let compute_ps = cycles as f64 * period.value()
            + pipeline_latency_ps(core.nh.max(core.nv)) * count as f64;
        // Weight streaming from HBM overlaps with compute (double
        // buffering); the slower of the two gates the op.
        let hbm_bytes = if kind.dynamics() == OperandDynamics::WeightStatic {
            (op_k * op_n) as f64 * bits as f64 / 8.0 * count as f64
        } else {
            0.0
        };
        let hbm_ps = hbm_bytes / HBM_BYTES_PER_S * 1e12;
        let latency = Milliseconds(compute_ps.max(hbm_ps) * 1e-9);

        // --- Energy ---
        let e_dac: PicoJoules = self.rack.dac.scaled_power(bits, c.clock) * period;
        let e_mzm: PicoJoules = self.rack.mzm.tuning_power() * period;
        let e_pd: PicoJoules = self.rack.pd.power * period;
        let e_tia: PicoJoules = self.rack.tia.power * period;
        // Per-conversion ADC energy (power scales with rate, so the energy
        // per conversion is rate-independent).
        let e_adc: PicoJoules = self.rack.adc.scaled_power(bits, c.clock) * period;

        // Encoded elements. op1 = M1 (nh rows), op2 = M2 (nv columns).
        let op1_elems = t_invocations * (core.nh * core.nlambda) as u64 * count;
        let op2_tile_factor = match c.topology {
            CoreTopology::Crossbar => 1,
            CoreTopology::BroadcastOnly => core.nh as u64,
        };
        let op2_tiles = if c.opts.inter_core_broadcast {
            tiles_m.div_ceil(c.nt as u64) * tiles_d * tiles_n
        } else {
            t_invocations
        };
        let op2_elems = op2_tiles * (core.nlambda * core.nv) as u64 * op2_tile_factor * count;

        // Detection: every DDot output of every invocation hits 2 PDs;
        // TIAs sit after the in-tile photocurrent summation.
        let ddot_outputs = t_invocations * core.num_ddots() as u64 * count;
        let tia_events = if c.opts.photocurrent_summation {
            tiles_m * tiles_d.div_ceil(c.nc as u64) * tiles_n * core.num_ddots() as u64 * count
        } else {
            ddot_outputs
        };
        // A/D conversions: once per temporal-accumulation window.
        let d_steps = tiles_d.div_ceil(if c.opts.photocurrent_summation {
            c.nc as u64
        } else {
            1
        });
        let adc_windows = if c.opts.analog_temporal_accum {
            d_steps.div_ceil(c.opts.temporal_accum_depth as u64)
        } else {
            d_steps
        };
        let adc_convs = tiles_m * adc_windows * tiles_n * core.num_ddots() as u64 * count;

        // Data movement: operand bytes through the SRAM hierarchy, partial
        // sums into the accumulation buffer, weights once from HBM.
        let operand_pj = self.mem.operand_byte_energy().value();
        let output_pj = self.mem.output_byte_energy().value();
        let op_bytes = |elems: u64| elems as f64 * bits as f64 / 8.0;
        let out_bytes = (rows * cols) as f64 * ACCUM_BITS as f64 / 8.0 * count as f64;
        let accum_bytes = adc_convs as f64 * ACCUM_BITS as f64 / 8.0;
        let data_movement_pj = op_bytes(op1_elems) * operand_pj
            + op_bytes(op2_elems) * operand_pj
            + accum_bytes * self.mem.tile_act.write_energy_per_byte().value()
            + out_bytes * output_pj
            + hbm_bytes * HBM_PJ_PER_BYTE;

        let to_mj = |pj: f64| MilliJoules(pj * 1e-9);
        let energy = EnergyBreakdown {
            laser: MilliJoules(self.laser_w * compute_ps * 1e-9),
            op1_dac: to_mj(op1_elems as f64 * e_dac.value()),
            op1_mod: to_mj(op1_elems as f64 * e_mzm.value()),
            op2_dac: to_mj(op2_elems as f64 * e_dac.value()),
            op2_mod: to_mj(op2_elems as f64 * e_mzm.value()),
            det: to_mj(
                ddot_outputs as f64 * 2.0 * e_pd.value() + tia_events as f64 * e_tia.value(),
            ),
            adc: to_mj(adc_convs as f64 * e_adc.value()),
            data_movement: to_mj(data_movement_pj),
            digital: MilliJoules(0.0),
        };

        RunReport {
            energy,
            cycles,
            latency,
        }
    }

    /// Replays an arbitrary IR trace (sequential ops) — recorded or
    /// analytical, the simulator does not care which. Identical traces
    /// produce identical reports (the model is deterministic).
    pub fn run_trace(&self, trace: &Trace) -> RunReport {
        let mut report = RunReport::default();
        for op in trace.ops() {
            report.merge(&self.simulate_op(op));
        }
        report
    }

    /// Simulates a sequence of analytical GEMM ops.
    pub fn run_gemm_ops(&self, ops: &[GemmOp]) -> RunReport {
        let mut report = RunReport::default();
        for op in ops {
            report.merge(&self.run_op(op));
        }
        report
    }

    /// Simulates a whole Transformer inference from its analytical IR
    /// trace ([`TransformerConfig::trace`]), splitting the report by
    /// module as in Table V. Non-GEMM (digital) work runs in the
    /// 500 MHz domain overlapped with photonic compute, so it
    /// contributes energy to `other` and no latency.
    pub fn run_model(&self, model: &TransformerConfig) -> ModelReport {
        let trace = model.trace();
        let mut mha = RunReport::default();
        let mut ffn = RunReport::default();
        let mut other = RunReport::default();
        for op in trace.ops() {
            let r = self.simulate_op(op);
            match op.module() {
                Module::Mha => mha.merge(&r),
                Module::Ffn => ffn.merge(&r),
                Module::Other => other.merge(&r),
            }
        }
        let mut all = RunReport::default();
        all.merge(&mha);
        all.merge(&ffn);
        all.merge(&other);
        ModelReport {
            model: model.name.clone(),
            config: self.config.name.clone(),
            mha,
            ffn,
            other,
            all,
        }
    }

    /// Effective A/D sampling rate after analog accumulation.
    pub fn adc_rate(&self) -> GigaHertz {
        GigaHertz(self.config.clock.value() / self.config.opts.adc_reduction(self.config.nc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deit_t() -> TransformerConfig {
        TransformerConfig::deit_tiny()
    }

    #[test]
    fn table5_deit_t_4bit_bands() {
        // Paper Table V, LT-B 4-bit DeiT-T: MHA 0.04 mJ / 3.12e-3 ms,
        // FFN 0.22 mJ / 1.04e-2 ms, All 0.38 mJ / 1.94e-2 ms.
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let r = sim.run_model(&deit_t());
        let mha_mj = r.mha.energy.total().value();
        let ffn_mj = r.ffn.energy.total().value();
        let all_mj = r.all.energy.total().value();
        assert!((0.015..0.12).contains(&mha_mj), "MHA {mha_mj} mJ");
        assert!((0.08..0.6).contains(&ffn_mj), "FFN {ffn_mj} mJ");
        assert!((0.15..0.9).contains(&all_mj), "All {all_mj} mJ");
        let all_ms = r.all.latency.value();
        assert!(
            (0.8e-2..4.0e-2).contains(&all_ms),
            "All latency {all_ms} ms"
        );
        let mha_ms = r.mha.latency.value();
        assert!((1.5e-3..7e-3).contains(&mha_ms), "MHA latency {mha_ms} ms");
    }

    #[test]
    fn eight_bit_costs_more_energy_same_cycles() {
        let sim4 = Simulator::new(ArchConfig::lt_base(4));
        let sim8 = Simulator::new(ArchConfig::lt_base(8));
        let r4 = sim4.run_model(&deit_t());
        let r8 = sim8.run_model(&deit_t());
        assert_eq!(
            r4.all.cycles, r8.all.cycles,
            "precision doesn't change cycles"
        );
        let ratio = r8.all.energy.total().value() / r4.all.energy.total().value();
        // Paper: 1.21 mJ vs 0.38 mJ => ~3.2x.
        assert!((2.0..5.5).contains(&ratio), "8/4-bit energy ratio {ratio}");
    }

    #[test]
    fn arch_opts_save_energy() {
        // Table V: LT-B w/o arch opt costs ~1.8x more (0.69 vs 0.38 mJ).
        let full = Simulator::new(ArchConfig::lt_base(4)).run_model(&deit_t());
        let bare = Simulator::new(ArchConfig::lt_crossbar_base(4)).run_model(&deit_t());
        let ratio = bare.all.energy.total().value() / full.all.energy.total().value();
        assert!((1.3..2.6).contains(&ratio), "w/o-opt ratio {ratio}");
    }

    #[test]
    fn broadcast_topology_costs_more_than_crossbar() {
        // Fig. 12: LT-broadcast-B > LT-crossbar-B on attention.
        let xbar = Simulator::new(ArchConfig::lt_crossbar_base(4)).run_model(&deit_t());
        let bcast = Simulator::new(ArchConfig::lt_broadcast_base(4)).run_model(&deit_t());
        assert!(
            bcast.mha.energy.total().value() > 1.5 * xbar.mha.energy.total().value(),
            "broadcast {} vs crossbar {}",
            bcast.mha.energy.total().value(),
            xbar.mha.energy.total().value()
        );
    }

    #[test]
    fn ltl_is_faster_than_ltb_on_big_models() {
        let b = Simulator::new(ArchConfig::lt_base(4)).run_model(&TransformerConfig::deit_base());
        let l = Simulator::new(ArchConfig::lt_large(4)).run_model(&TransformerConfig::deit_base());
        let speedup = b.all.latency.value() / l.all.latency.value();
        assert!(speedup > 1.5, "LT-L speedup {speedup}");
    }

    #[test]
    fn deit_b_latency_band() {
        // Paper: LT-B 4-bit DeiT-B all latency 2.65e-1 ms.
        let r = Simulator::new(ArchConfig::lt_base(4)).run_model(&TransformerConfig::deit_base());
        let ms = r.all.latency.value();
        assert!((0.1..0.6).contains(&ms), "DeiT-B latency {ms} ms");
    }

    #[test]
    fn fps_exceeds_gpu_class() {
        // Fig. 13: LT-B DeiT-T throughput is in the tens of thousands FPS.
        let r = Simulator::new(ArchConfig::lt_base(4)).run_model(&deit_t());
        assert!(r.fps() > 2e4, "fps {}", r.fps());
    }

    #[test]
    fn edp_is_energy_times_latency() {
        let r = Simulator::new(ArchConfig::lt_base(4)).run_model(&deit_t());
        let expect = r.all.energy.total().value() * r.all.latency.value();
        assert!((r.all.edp() - expect).abs() < 1e-12);
    }

    #[test]
    fn module_reports_sum_to_all() {
        let r = Simulator::new(ArchConfig::lt_base(4)).run_model(&deit_t());
        let sum = r.mha.energy.total().value()
            + r.ffn.energy.total().value()
            + r.other.energy.total().value();
        assert!((sum - r.all.energy.total().value()).abs() < 1e-9);
        assert_eq!(r.mha.cycles + r.ffn.cycles + r.other.cycles, r.all.cycles);
    }

    #[test]
    fn run_model_is_replaying_the_analytical_ir_trace() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let model = deit_t();
        let from_model = sim.run_model(&model);
        let from_trace = sim.run_trace(&model.trace());
        assert_eq!(from_model.all.cycles, from_trace.cycles);
        let e_model = from_model.all.energy.total().value();
        let e_trace = from_trace.energy.total().value();
        assert!(
            (e_model - e_trace).abs() < 1e-9 * e_model.abs().max(1.0),
            "module bucketing only reorders summation: {e_model} vs {e_trace}"
        );
        assert!(
            (from_model.all.latency.value() - from_trace.latency.value()).abs() < 1e-12,
            "same latency"
        );
    }

    #[test]
    fn identical_traces_get_identical_reports() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let trace = deit_t().trace();
        assert_eq!(
            sim.run_trace(&trace),
            sim.run_trace(&trace.clone()),
            "the model is deterministic: same trace, bit-identical report"
        );
    }

    #[test]
    fn non_gemm_ops_charge_digital_energy_and_nothing_else() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let r = sim.simulate_op(&Op::non_gemm(lt_core::NonGemmKind::Softmax, 1_000_000));
        assert_eq!(r.cycles, 0);
        assert_eq!(r.latency.value(), 0.0);
        let e = r.energy.total().value();
        assert_eq!(r.energy.digital.value(), e, "digital is the only term");
        assert!((e - 1e6 * SOFTMAX_PJ_PER_ELEM * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn coalesced_single_instance_ops_cost_like_the_analytical_batched_op() {
        // A recorded trace carries one op per head; coalescing merges
        // them into the same multi-instance op the analytical trace
        // emits, so both cost identically.
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let per_head = Trace::from_ops(vec![Op::gemm(lt_core::OpKind::AttnQk, 197, 64, 197); 36]);
        let analytical = GemmOp::new(lt_workloads::OpKind::AttnQk, 197, 64, 197, 36);
        assert_eq!(sim.run_trace(&per_head.coalesce()), sim.run_op(&analytical));
        // Uncoalesced, the 36 lone products cannot fill idle tiles, so
        // they cost at least as many cycles.
        assert!(sim.run_trace(&per_head).cycles >= sim.run_op(&analytical).cycles);
    }

    #[test]
    fn zero_sized_gemm_ops_cost_nothing() {
        let sim = Simulator::new(ArchConfig::lt_base(4));
        for op in [
            Op::gemm(lt_core::OpKind::Ffn1, 0, 64, 64),
            Op::gemm(lt_core::OpKind::Ffn1, 64, 0, 64),
            Op::gemm(lt_core::OpKind::AttnQk, 64, 64, 0),
            Op::gemm_n(lt_core::OpKind::AttnAv, 64, 64, 64, 0),
        ] {
            let r = sim.simulate_op(&op);
            assert_eq!(r.cycles, 0, "{op:?}");
            assert!(r.energy.total().value().abs() < 1e-18, "{op:?}");
        }
    }

    #[test]
    fn dynamic_ops_have_no_hbm_traffic() {
        // An attention op's latency must be pure compute (no HBM gating).
        let sim = Simulator::new(ArchConfig::lt_base(4));
        let qk = GemmOp::new(lt_workloads::OpKind::AttnQk, 197, 64, 197, 1);
        let r = sim.run_op(&qk);
        let compute_ms = r.cycles as f64 * 200e-12 * 1e3;
        assert!((r.latency.value() - compute_ms).abs() / compute_ms < 0.05);
    }
}
