//! Memoized per-op schedules.
//!
//! The tile scheduler's per-op work splits cleanly in two: a *pure*
//! part — tile-grid decomposition (`GemmMap`), the dataflow's segment
//! plan, and the energy model — that depends only on the op's canonical
//! shape, the dataflow policy, and the [`crate::ArchConfig`]; and a
//! cheap *stateful* timeline walk that threads the HBM-link and
//! double-buffer frontiers through the trace. Decode workloads replay
//! the same ctx-independent `[1, d] x [d, d]` shapes every token and
//! the same layer shapes across sessions, so the pure part is
//! recomputed thousands of times for a handful of distinct keys.
//! `ScheduleCache` memoizes it.
//!
//! Correctness contract: a cache hit must reproduce the uncached
//! schedule *bit for bit*. That holds because everything cached is a
//! deterministic pure function of `(op, policy, config)`: the cached
//! segments are walked by the same timeline code a fresh plan would
//! be, and the cached energy/report values are the very `f64`s the
//! fresh computation produced. `tests/schedule_cache.rs` pins this
//! across all three dataflows, the five paper benchmarks, and decode.
//!
//! The cache is keyed by `(Op, DataflowPolicy)` and guarded by the
//! owning config's [`crate::ArchConfig::fingerprint`]: presenting a different
//! fingerprint (a config change) clears all entries before the lookup
//! proceeds, so stale schedules can never leak across configurations.

use crate::schedule::{DataflowPolicy, GemmMap, Segment};
use crate::sim::RunReport;
use crate::EnergyBreakdown;
use lt_core::trace::Op;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The memoized pure part of one op's schedule under one dataflow.
#[derive(Debug, Clone)]
pub(crate) enum CachedOpSchedule {
    /// Degenerate op (a zero dimension): default report, no traffic.
    Free,
    /// State-independent schedule (no HBM traffic to stage, or an
    /// unconstrained link): the whole report is a constant; replay just
    /// advances the compute frontier by `active_ps`.
    Pure {
        report: RunReport,
        hbm_bytes: f64,
        active_ps: f64,
    },
    /// Staged schedule: the segment plan and energy are memoized, the
    /// cheap double-buffer timeline walk re-runs against live state.
    Staged {
        map: GemmMap,
        segments: Arc<[Segment]>,
        hbm_bytes: f64,
        energy: EnergyBreakdown,
    },
}

struct CacheState {
    /// Fingerprint of the [`ArchConfig`] the entries were built under.
    fingerprint: u64,
    entries: HashMap<(Op, DataflowPolicy), CachedOpSchedule>,
}

/// A concurrent memo table of per-op schedules, shared by every clone
/// of the owning [`crate::Simulator`] (worker threads serving the same
/// config pool one cache).
///
/// Hit/miss counters are totals since construction. On a
/// single-threaded replay they are exactly reproducible (the coalesced
/// trace order is deterministic), which is what lets the benchmark
/// snapshot gate them; concurrent replays may split a first encounter
/// into several misses (each racing thread computes the entry once) —
/// the *results* stay bit-identical, only the hit/miss split moves.
pub(crate) struct ScheduleCache {
    state: RwLock<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: bool,
}

impl ScheduleCache {
    /// An empty, enabled cache bound to the given config fingerprint.
    pub(crate) fn new(fingerprint: u64) -> Self {
        ScheduleCache {
            state: RwLock::new(CacheState {
                fingerprint,
                entries: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: true,
        }
    }

    /// A cache that never stores or returns anything — the always-miss
    /// reference path used to prove hits are bit-identical to fresh
    /// computation.
    pub(crate) fn disabled(fingerprint: u64) -> Self {
        ScheduleCache {
            enabled: false,
            ..ScheduleCache::new(fingerprint)
        }
    }

    /// Looks up the memoized schedule for `key` under the config
    /// identified by `fingerprint`, counting a hit or a miss. A
    /// fingerprint mismatch invalidates every entry first.
    pub(crate) fn lookup(
        &self,
        fingerprint: u64,
        key: (Op, DataflowPolicy),
    ) -> Option<CachedOpSchedule> {
        if !self.enabled {
            return None;
        }
        {
            let state = self.state.read().expect("schedule cache poisoned");
            if state.fingerprint == fingerprint {
                if let Some(entry) = state.entries.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(entry.clone());
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        // Config changed under the cache: drop every entry, rebind.
        let mut state = self.state.write().expect("schedule cache poisoned");
        if state.fingerprint != fingerprint {
            state.entries.clear();
            state.fingerprint = fingerprint;
        }
        if let Some(entry) = state.entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(entry.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a freshly computed schedule. No-op when disabled or when
    /// the fingerprint no longer matches (a racing config rebind).
    pub(crate) fn insert(
        &self,
        fingerprint: u64,
        key: (Op, DataflowPolicy),
        entry: CachedOpSchedule,
    ) {
        if !self.enabled {
            return;
        }
        let mut state = self.state.write().expect("schedule cache poisoned");
        if state.fingerprint == fingerprint {
            state.entries.insert(key, entry);
        }
    }

    /// `(hits, misses)` since construction.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct memoized `(op, dataflow)` keys.
    pub(crate) fn len(&self) -> usize {
        self.state
            .read()
            .expect("schedule cache poisoned")
            .entries
            .len()
    }
}

impl fmt::Debug for ScheduleCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("ScheduleCache")
            .field("enabled", &self.enabled)
            .field("entries", &self.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

/// Hit/miss statistics of a [`crate::Simulator`]'s schedule cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleCacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that computed (and stored) a fresh schedule.
    pub misses: u64,
    /// Distinct `(op, dataflow)` keys currently memoized.
    pub entries: usize,
}

impl ScheduleCacheStats {
    /// Fraction of lookups served from the cache (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for ScheduleCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} shapes)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_core::trace::OpKind;

    fn key(m: usize) -> (Op, DataflowPolicy) {
        (
            Op::Gemm {
                kind: OpKind::Ffn1,
                m,
                k: 8,
                n: 8,
                instances: 1,
            },
            DataflowPolicy::WeightStationary,
        )
    }

    #[test]
    fn miss_then_hit_with_counters() {
        let cache = ScheduleCache::new(7);
        assert!(cache.lookup(7, key(1)).is_none());
        cache.insert(7, key(1), CachedOpSchedule::Free);
        assert!(matches!(
            cache.lookup(7, key(1)),
            Some(CachedOpSchedule::Free)
        ));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fingerprint_change_invalidates_everything() {
        let cache = ScheduleCache::new(7);
        cache.insert(7, key(1), CachedOpSchedule::Free);
        cache.insert(7, key(2), CachedOpSchedule::Free);
        assert_eq!(cache.len(), 2);
        // A different config fingerprint clears the table, then misses.
        assert!(cache.lookup(8, key(1)).is_none());
        assert_eq!(cache.len(), 0);
        // Entries inserted under the stale fingerprint are rejected.
        cache.insert(7, key(1), CachedOpSchedule::Free);
        assert_eq!(cache.len(), 0);
        cache.insert(8, key(1), CachedOpSchedule::Free);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_never_stores_or_counts() {
        let cache = ScheduleCache::disabled(7);
        assert!(!cache.enabled);
        cache.insert(7, key(1), CachedOpSchedule::Free);
        assert!(cache.lookup(7, key(1)).is_none());
        assert_eq!(cache.stats(), (0, 0));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn stats_hit_rate_and_display() {
        let stats = ScheduleCacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ScheduleCacheStats::default().hit_rate(), 0.0);
        let text = stats.to_string();
        assert!(text.contains("3 hits"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
    }
}
