//! Device inventory: how many of each Table III component a configuration
//! instantiates, and the optical link budget from laser to detector.

use crate::config::{ArchConfig, CoreTopology};
use lt_photonics::devices::{
    Adc, Dac, DirectionalCoupler, Laser, MachZehnderModulator, MemsPhaseShifter, MicroComb,
    Microdisk, Photodetector, Tia, WaveguideCrossing, YBranch,
};
use lt_photonics::units::{Decibels, MilliWatts};
use lt_photonics::LinkBudget;

/// System margin added on top of itemized insertion losses (extinction
/// ratio, coupling penalties, aging). Calibrated so LT-B's 4-bit laser
/// power lands near the paper's 0.77 W.
pub const LASER_MARGIN_DB: f64 = 8.0;

/// Counts of every physical component in a configuration, plus the device
/// models themselves.
#[derive(Debug, Clone)]
pub struct DeviceRack {
    /// The configuration this rack was derived from.
    config: ArchConfig,
    /// DAC model.
    pub dac: Dac,
    /// ADC model.
    pub adc: Adc,
    /// TIA model.
    pub tia: Tia,
    /// Operand modulator model.
    pub mzm: MachZehnderModulator,
    /// WDM mux/demux filter model.
    pub microdisk: Microdisk,
    /// Photodetector model.
    pub pd: Photodetector,
    /// Laser model.
    pub laser: Laser,
    /// Frequency comb model.
    pub comb: MicroComb,
    /// Coupler model (DDot interference element).
    pub coupler: DirectionalCoupler,
    /// Broadcast splitter model.
    pub ybranch: YBranch,
    /// Crossing model.
    pub crossing: WaveguideCrossing,
    /// Programmable phase shifter model (baselines; reported for parity).
    pub mems_ps: MemsPhaseShifter,
}

impl DeviceRack {
    /// Instantiates the paper's Table III devices for `config`.
    pub fn paper(config: &ArchConfig) -> Self {
        DeviceRack {
            config: config.clone(),
            dac: Dac::paper(),
            adc: Adc::paper(),
            tia: Tia::paper(),
            mzm: MachZehnderModulator::paper(),
            microdisk: Microdisk::paper(),
            pd: Photodetector::paper(),
            laser: Laser::paper(),
            comb: MicroComb::paper(),
            coupler: DirectionalCoupler::paper(),
            ybranch: YBranch::paper(),
            crossing: WaveguideCrossing::typical(),
            mems_ps: MemsPhaseShifter::paper(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Number of M1-side modulated signals (private to each core):
    /// `Nt * Nc * Nh * N_lambda`, or with the broadcast-only topology the
    /// per-engine unshared copies `Nt * Nc * Nh * N_lambda` (M1 is the
    /// broadcast operand there).
    pub fn m1_signal_count(&self) -> usize {
        let c = &self.config;
        c.nt * c.nc * c.core.nh * c.core.nlambda
    }

    /// Number of M2-side modulated signals. Inter-core broadcast shares
    /// the M2 modulators across tiles; the broadcast-only topology cannot
    /// share M2 across the crossbar columns, so each of the `Nh` engine
    /// rows needs its own copy.
    pub fn m2_signal_count(&self) -> usize {
        let c = &self.config;
        let per_core = match c.topology {
            CoreTopology::Crossbar => c.core.nlambda * c.core.nv,
            CoreTopology::BroadcastOnly => c.core.nlambda * c.core.nv * c.core.nh,
        };
        if c.opts.inter_core_broadcast {
            c.nc * per_core
        } else {
            c.nt * c.nc * per_core
        }
    }

    /// Total DAC channels (one per modulated signal).
    pub fn dac_count(&self) -> usize {
        self.m1_signal_count() + self.m2_signal_count()
    }

    /// Total MZM devices (one per modulated signal).
    pub fn mzm_count(&self) -> usize {
        self.dac_count()
    }

    /// Total ADC channels: one per crossbar output column-row pair, shared
    /// across the tile's cores when photocurrent summation is on.
    pub fn adc_count(&self) -> usize {
        let c = &self.config;
        let outputs_per_tile = if c.opts.photocurrent_summation {
            c.core.num_ddots()
        } else {
            c.nc * c.core.num_ddots()
        };
        c.nt * outputs_per_tile
    }

    /// Total TIAs (one per balanced detector pair, after analog summation).
    pub fn tia_count(&self) -> usize {
        self.adc_count()
    }

    /// Total photodetectors: two per DDot (balanced detection).
    pub fn pd_count(&self) -> usize {
        2 * self.config.num_cores() * self.config.core.num_ddots()
    }

    /// Total WDM mux/demux microdisks: a demux and a mux of `N_lambda`
    /// filters per modulation unit (one unit per input waveguide).
    pub fn microdisk_count(&self) -> usize {
        let c = &self.config;
        let waveguides = c.num_cores() * (c.core.nh + c.core.nv);
        2 * waveguides * c.core.nlambda
    }

    /// Directional couplers (one per DDot).
    pub fn coupler_count(&self) -> usize {
        self.config.num_cores() * self.config.core.num_ddots()
    }

    /// The per-signal optical path from an M1 modulator to a detector:
    /// modulator, WDM demux+mux, intra-core 1:Nv broadcast, crossings, the
    /// DDot coupler and phase shifter.
    pub fn m1_link_budget(&self) -> LinkBudget {
        let c = &self.config;
        let mut budget = LinkBudget::new();
        budget.add("MZM", self.mzm.insertion_loss());
        budget.add("WDM demux", self.microdisk.insertion_loss);
        budget.add("WDM mux", self.microdisk.insertion_loss);
        budget.add(
            format!("intra-core broadcast 1:{}", c.core.nv),
            self.ybranch.broadcast_loss(c.core.nv),
        );
        budget.add_repeated("crossings", self.crossing.insertion_loss, c.core.nv / 2);
        budget.add("DDot coupler", self.coupler.insertion_loss());
        budget.add("DDot phase shifter", Decibels(0.33));
        budget.add("system margin", Decibels(LASER_MARGIN_DB));
        budget
    }

    /// The M2 path: as M1, but with the inter-tile broadcast split when
    /// the optical interconnect shares M2 across tiles.
    pub fn m2_link_budget(&self) -> LinkBudget {
        let c = &self.config;
        let mut budget = LinkBudget::new();
        budget.add("MZM", self.mzm.insertion_loss());
        budget.add("WDM demux", self.microdisk.insertion_loss);
        budget.add("WDM mux", self.microdisk.insertion_loss);
        if c.opts.inter_core_broadcast && c.nt > 1 {
            budget.add(
                format!("inter-tile broadcast 1:{}", c.nt),
                self.ybranch.broadcast_loss(c.nt),
            );
        }
        budget.add(
            format!("intra-core broadcast 1:{}", c.core.nh),
            self.ybranch.broadcast_loss(c.core.nh),
        );
        budget.add_repeated("crossings", self.crossing.insertion_loss, c.core.nh / 2);
        budget.add("DDot coupler", self.coupler.insertion_loss());
        budget.add("DDot phase shifter", Decibels(0.33));
        budget.add("system margin", Decibels(LASER_MARGIN_DB));
        budget
    }

    /// Required electrical laser power. Each photodetector must receive the
    /// sensitivity floor scaled by `2^(bits-4)` for output precision; a
    /// detector aggregates `N_lambda` wavelengths, so each wavelength
    /// carries `sensitivity / N_lambda`.
    pub fn laser_power(&self) -> MilliWatts {
        let c = &self.config;
        let per_wavelength = MilliWatts(self.pd.sensitivity().value() / c.core.nlambda as f64);
        let precision = 2f64.powi(c.precision_bits as i32 - 4);
        let m1 = self
            .m1_link_budget()
            .required_input_power(per_wavelength)
            .value()
            * self.m1_signal_count() as f64;
        let m2 = self
            .m2_link_budget()
            .required_input_power(per_wavelength)
            .value()
            * self.m2_signal_count() as f64;
        self.laser
            .electrical_power(MilliWatts((m1 + m2) * precision))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;

    #[test]
    fn ltb_signal_counts() {
        let rack = DeviceRack::paper(&ArchConfig::lt_base(4));
        assert_eq!(rack.m1_signal_count(), 4 * 2 * 12 * 12); // 1152
        assert_eq!(rack.m2_signal_count(), 2 * 12 * 12); // shared: 288
        assert_eq!(rack.dac_count(), 1440);
        assert_eq!(rack.mzm_count(), 1440);
    }

    #[test]
    fn no_sharing_doubles_m2() {
        let rack = DeviceRack::paper(&ArchConfig::lt_crossbar_base(4));
        assert_eq!(rack.m2_signal_count(), 4 * 2 * 12 * 12); // 1152
        assert_eq!(rack.dac_count(), 2304);
    }

    #[test]
    fn broadcast_topology_needs_per_engine_copies() {
        let rack = DeviceRack::paper(&ArchConfig::lt_broadcast_base(4));
        assert_eq!(rack.m2_signal_count(), 4 * 2 * 12 * 12 * 12);
    }

    #[test]
    fn adc_sharing() {
        let full = DeviceRack::paper(&ArchConfig::lt_base(4));
        assert_eq!(full.adc_count(), 4 * 144); // photocurrent summation
        let off = DeviceRack::paper(&ArchConfig::lt_crossbar_base(4));
        assert_eq!(off.adc_count(), 4 * 2 * 144);
    }

    #[test]
    fn pd_count_is_two_per_ddot() {
        let rack = DeviceRack::paper(&ArchConfig::lt_base(4));
        assert_eq!(rack.pd_count(), 2 * 8 * 144);
    }

    #[test]
    fn laser_power_matches_paper_band() {
        // Paper Fig. 8: 0.77 W at 4-bit, 12.3 W at 8-bit for LT-B.
        let p4 = DeviceRack::paper(&ArchConfig::lt_base(4)).laser_power();
        let p8 = DeviceRack::paper(&ArchConfig::lt_base(8)).laser_power();
        let w4 = p4.value() / 1e3;
        let w8 = p8.value() / 1e3;
        assert!((0.4..1.6).contains(&w4), "4-bit laser {w4} W");
        assert!((w8 / w4 - 16.0).abs() < 0.01, "16x precision scaling");
        assert!((6.0..25.0).contains(&w8), "8-bit laser {w8} W");
    }

    #[test]
    fn link_budget_is_itemized() {
        let rack = DeviceRack::paper(&ArchConfig::lt_base(4));
        let b = rack.m1_link_budget();
        assert!(b.stages().len() >= 6);
        assert!(b.total().value() > 10.0 && b.total().value() < 30.0);
        // M2 crosses tiles, so its budget is strictly larger.
        assert!(rack.m2_link_budget().total().value() > b.total().value());
    }
}
