//! Roofline analysis: is a workload compute-bound on the photonic cores
//! or memory-bound on HBM?
//!
//! The paper's LLM discussion (Section VI-B) hinges on exactly this:
//! autoregressive decoding has such low arithmetic intensity that the
//! ultra-fast photonic cores sit idle behind the memory system. This
//! module computes the accelerator's ridge point and classifies traces.

use crate::config::ArchConfig;
use crate::memory::HBM_BYTES_PER_S;
use lt_workloads::{GemmOp, OperandDynamics};

/// Which resource limits a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// The photonic cores are the bottleneck (good: optics paid off).
    Compute,
    /// The HBM link is the bottleneck (optics underutilized).
    Memory,
}

/// Roofline placement of one trace on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Arithmetic intensity of the trace, MACs per HBM byte.
    pub intensity: f64,
    /// The machine's ridge point, MACs per byte.
    pub ridge: f64,
    /// Attainable throughput, GMAC/s.
    pub attainable_gmacs: f64,
    /// Peak compute throughput, GMAC/s.
    pub peak_gmacs: f64,
    /// The binding resource.
    pub bound: Bound,
}

impl RooflinePoint {
    /// Fraction of peak compute the workload can reach.
    pub fn compute_utilization(&self) -> f64 {
        self.attainable_gmacs / self.peak_gmacs
    }
}

/// Bytes a trace must pull from HBM: weights, once per op execution.
/// Dynamic operands are assumed on-chip, matching the simulator's model;
/// note that a batched [`lt_workloads::DecodeTrace`] represents the batch
/// as extra GEMM rows sharing one KV operand, so for per-sequence KV
/// traffic use [`lt_workloads::DecodeTrace::arithmetic_intensity`]
/// instead.
pub fn hbm_bytes(trace: &[GemmOp], bits: u32) -> f64 {
    trace
        .iter()
        .filter(|op| op.dynamics() == OperandDynamics::WeightStatic)
        .map(|op| (op.k * op.n * op.count) as f64 * bits as f64 / 8.0)
        .sum()
}

/// Places a trace on the configuration's roofline.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn analyze(config: &ArchConfig, trace: &[GemmOp]) -> RooflinePoint {
    assert!(!trace.is_empty(), "cannot analyze an empty trace");
    let macs: f64 = trace.iter().map(|op| op.total_macs() as f64).sum();
    let bytes = hbm_bytes(trace, config.precision_bits).max(1.0);
    let intensity = macs / bytes;

    let peak_macs_per_s = config.macs_per_cycle() as f64 * config.clock.to_hz();
    let ridge = peak_macs_per_s / HBM_BYTES_PER_S;

    let attainable = peak_macs_per_s.min(intensity * HBM_BYTES_PER_S);
    RooflinePoint {
        intensity,
        ridge,
        attainable_gmacs: attainable / 1e9,
        peak_gmacs: peak_macs_per_s / 1e9,
        bound: if intensity >= ridge {
            Bound::Compute
        } else {
            Bound::Memory
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_workloads::{DecodeTrace, TransformerConfig};

    #[test]
    fn ridge_point_is_about_69_macs_per_byte() {
        // LT-B: 13824 MACs/cycle * 5 GHz = 69.1 TMAC/s over 1 TB/s.
        let cfg = ArchConfig::lt_base(4);
        let trace = TransformerConfig::deit_tiny().gemm_trace();
        let p = analyze(&cfg, &trace);
        assert!((p.ridge - 69.12).abs() < 0.1, "ridge {}", p.ridge);
    }

    #[test]
    fn batch_1_deit_inference_is_compute_bound() {
        // Activations are reused across all 197 tokens: intensity is high
        // enough that the photonic cores are the bottleneck.
        let cfg = ArchConfig::lt_base(4);
        let trace = TransformerConfig::deit_tiny().gemm_trace();
        let p = analyze(&cfg, &trace);
        assert_eq!(p.bound, Bound::Compute, "intensity {}", p.intensity);
        assert!(p.compute_utilization() > 0.99);
    }

    #[test]
    fn batch_1_decode_is_memory_bound() {
        // The paper's Section VI-B claim, now as a roofline fact.
        let cfg = ArchConfig::lt_base(8);
        let trace = DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1).gemm_trace();
        let p = analyze(&cfg, &trace);
        assert_eq!(p.bound, Bound::Memory, "intensity {}", p.intensity);
        assert!(
            p.compute_utilization() < 0.05,
            "decode should waste >95% of the optics: {}",
            p.compute_utilization()
        );
    }

    #[test]
    fn batching_crosses_the_ridge() {
        let cfg = ArchConfig::lt_base(8);
        let model = TransformerConfig::gpt2_small(1);
        let b1 = analyze(&cfg, &DecodeTrace::new(model.clone(), 512, 1).gemm_trace());
        let b256 = analyze(&cfg, &DecodeTrace::new(model, 512, 256).gemm_trace());
        assert!(b256.intensity > 50.0 * b1.intensity);
        assert!(b256.compute_utilization() > b1.compute_utilization());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        analyze(&ArchConfig::lt_base(4), &[]);
    }
}
