//! Roofline analysis: is a workload compute-bound on the photonic cores
//! or memory-bound on HBM?
//!
//! The paper's LLM discussion (Section VI-B) hinges on exactly this:
//! autoregressive decoding has such low arithmetic intensity that the
//! ultra-fast photonic cores sit idle behind the memory system. This
//! module computes the accelerator's ridge point and classifies traces.
//!
//! Two classification routes exist since the tile-schedule refactor:
//! the a-priori one here (arithmetic intensity vs. the ridge point,
//! from shapes alone) and the a-posteriori one on every simulator
//! report ([`crate::schedule::StallBreakdown::bound`], from where the
//! schedule actually spent its time). They agree on clear-cut
//! workloads; the stall route additionally sees dataflow-induced
//! refetch traffic the intensity route cannot.

use crate::config::ArchConfig;
use lt_core::Trace;
use lt_workloads::{GemmOp, OperandDynamics};

/// Which resource limits a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// The photonic cores are the bottleneck (good: optics paid off).
    Compute,
    /// The HBM link is the bottleneck (optics underutilized).
    Memory,
}

/// Roofline placement of one trace on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Arithmetic intensity of the trace, MACs per HBM byte.
    pub intensity: f64,
    /// The machine's ridge point, MACs per byte.
    pub ridge: f64,
    /// Attainable throughput, GMAC/s.
    pub attainable_gmacs: f64,
    /// Peak compute throughput, GMAC/s.
    pub peak_gmacs: f64,
    /// The binding resource.
    pub bound: Bound,
}

impl RooflinePoint {
    /// Fraction of peak compute the workload can reach.
    pub fn compute_utilization(&self) -> f64 {
        self.attainable_gmacs / self.peak_gmacs
    }
}

/// Bytes a trace must pull from HBM: weights, once per op execution.
/// Dynamic operands are assumed on-chip, matching the simulator's model;
/// note that a batched [`lt_workloads::DecodeTrace`] represents the batch
/// as extra GEMM rows sharing one KV operand, so for per-sequence KV
/// traffic use [`lt_workloads::DecodeTrace::arithmetic_intensity`]
/// instead.
pub fn hbm_bytes(trace: &[GemmOp], bits: u32) -> f64 {
    trace
        .iter()
        .filter(|op| op.dynamics() == OperandDynamics::WeightStatic)
        .map(|op| (op.k * op.n * op.count) as f64 * bits as f64 / 8.0)
        .sum()
}

/// Places a trace on the configuration's roofline.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn analyze(config: &ArchConfig, trace: &[GemmOp]) -> RooflinePoint {
    assert!(!trace.is_empty(), "cannot analyze an empty trace");
    let macs: f64 = trace.iter().map(|op| op.total_macs() as f64).sum();
    let bytes = hbm_bytes(trace, config.precision_bits).max(1.0);
    place(config, macs, bytes)
}

/// Places an IR trace on the configuration's roofline (the
/// [`analyze`] twin for recorded [`lt_core::Trace`]s, using the IR's
/// own weight-traffic accounting).
///
/// # Panics
///
/// Panics if the trace contains no GEMM work.
pub fn analyze_trace(config: &ArchConfig, trace: &Trace) -> RooflinePoint {
    let macs = trace.total_macs();
    assert!(macs > 0, "cannot analyze a trace with no GEMM work");
    let bytes = (trace.weight_elems() as f64 * config.precision_bits as f64 / 8.0).max(1.0);
    place(config, macs as f64, bytes)
}

fn place(config: &ArchConfig, macs: f64, bytes: f64) -> RooflinePoint {
    let intensity = macs / bytes;
    let peak_macs_per_s = config.macs_per_cycle() as f64 * config.clock.to_hz();
    let ridge = peak_macs_per_s / config.hbm_bytes_per_s;

    let attainable = peak_macs_per_s.min(intensity * config.hbm_bytes_per_s);
    RooflinePoint {
        intensity,
        ridge,
        attainable_gmacs: attainable / 1e9,
        peak_gmacs: peak_macs_per_s / 1e9,
        bound: if intensity >= ridge {
            Bound::Compute
        } else {
            Bound::Memory
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_workloads::{DecodeTrace, TransformerConfig};

    #[test]
    fn ridge_point_is_about_69_macs_per_byte() {
        // LT-B: 13824 MACs/cycle * 5 GHz = 69.1 TMAC/s over 1 TB/s.
        let cfg = ArchConfig::lt_base(4);
        let trace = TransformerConfig::deit_tiny().gemm_trace();
        let p = analyze(&cfg, &trace);
        assert!((p.ridge - 69.12).abs() < 0.1, "ridge {}", p.ridge);
    }

    #[test]
    fn batch_1_deit_inference_is_compute_bound() {
        // Activations are reused across all 197 tokens: intensity is high
        // enough that the photonic cores are the bottleneck.
        let cfg = ArchConfig::lt_base(4);
        let trace = TransformerConfig::deit_tiny().gemm_trace();
        let p = analyze(&cfg, &trace);
        assert_eq!(p.bound, Bound::Compute, "intensity {}", p.intensity);
        assert!(p.compute_utilization() > 0.99);
    }

    #[test]
    fn batch_1_decode_is_memory_bound() {
        // The paper's Section VI-B claim, now as a roofline fact.
        let cfg = ArchConfig::lt_base(8);
        let trace = DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1).gemm_trace();
        let p = analyze(&cfg, &trace);
        assert_eq!(p.bound, Bound::Memory, "intensity {}", p.intensity);
        assert!(
            p.compute_utilization() < 0.05,
            "decode should waste >95% of the optics: {}",
            p.compute_utilization()
        );
    }

    #[test]
    fn batching_crosses_the_ridge() {
        let cfg = ArchConfig::lt_base(8);
        let model = TransformerConfig::gpt2_small(1);
        let b1 = analyze(&cfg, &DecodeTrace::new(model.clone(), 512, 1).gemm_trace());
        let b256 = analyze(&cfg, &DecodeTrace::new(model, 512, 256).gemm_trace());
        assert!(b256.intensity > 50.0 * b1.intensity);
        assert!(b256.compute_utilization() > b1.compute_utilization());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        analyze(&ArchConfig::lt_base(4), &[]);
    }

    #[test]
    fn ir_trace_analysis_agrees_with_the_gemm_op_route() {
        let cfg = ArchConfig::lt_base(4);
        let model = TransformerConfig::deit_tiny();
        let from_ops = analyze(&cfg, &model.gemm_trace());
        let from_ir = analyze_trace(&cfg, &model.trace().gemm_only());
        assert_eq!(from_ops.bound, from_ir.bound);
        assert!((from_ops.intensity - from_ir.intensity).abs() < 1e-9 * from_ops.intensity);
    }

    #[test]
    fn infinite_bandwidth_makes_everything_compute_bound() {
        let cfg = ArchConfig::lt_base(8).unconstrained_memory();
        let trace = DecodeTrace::new(TransformerConfig::gpt2_small(1), 512, 1).gemm_trace();
        let p = analyze(&cfg, &trace);
        assert_eq!(p.bound, Bound::Compute);
        assert_eq!(p.ridge, 0.0, "ridge collapses with no memory wall");
    }

    #[test]
    #[should_panic(expected = "no GEMM work")]
    fn ir_trace_without_gemms_rejected() {
        analyze_trace(&ArchConfig::lt_base(4), &Trace::new());
    }
}
