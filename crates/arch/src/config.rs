//! Accelerator configuration (paper Table IV and the ablation variants of
//! Fig. 12).

use crate::memory::HBM_BYTES_PER_S;
use crate::schedule::DataflowPolicy;
use lt_dptc::DptcConfig;
use lt_photonics::units::GigaHertz;

/// How operands are shared inside a core (the Fig. 12 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreTopology {
    /// The DPTC crossbar: *both* operands ride shared row/column buses, so
    /// one MM costs `Nh*Nl + Nl*Nv` encodings (Eq. 6).
    Crossbar,
    /// A bank of independent dot-product engines where only the input
    /// operand is broadcast (the `LT-broadcast` variant): the other operand
    /// is encoded per engine, costing `Nh*Nl + Nh*Nv*Nl` encodings.
    BroadcastOnly,
}

/// The architecture-level optimizations of paper Section IV-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchOptimizations {
    /// Share the common M2 operand across tiles via optical interconnect
    /// (Section IV-C1): up to `Nt x` fewer M2 encodings.
    pub inter_core_broadcast: bool,
    /// Photocurrent summation across the cores of a tile before A/D
    /// conversion (Section IV-B): `Nc x` fewer conversions, full-precision
    /// analog partial sums.
    pub photocurrent_summation: bool,
    /// Analog-domain temporal accumulation via time integral (Section
    /// IV-C2): the ADC fires once every `temporal_accum_depth` steps.
    pub analog_temporal_accum: bool,
    /// Temporal accumulation depth (the paper uses 3).
    pub temporal_accum_depth: u32,
}

impl ArchOptimizations {
    /// Everything on, depth 3 — the full `LT` design point.
    pub fn all_on() -> Self {
        ArchOptimizations {
            inter_core_broadcast: true,
            photocurrent_summation: true,
            analog_temporal_accum: true,
            temporal_accum_depth: 3,
        }
    }

    /// Everything off — the `LT-crossbar` / `LT-broadcast` ablations.
    pub fn all_off() -> Self {
        ArchOptimizations {
            inter_core_broadcast: false,
            photocurrent_summation: false,
            analog_temporal_accum: false,
            temporal_accum_depth: 1,
        }
    }

    /// Effective divisor on A/D conversion count from analog accumulation.
    pub fn adc_reduction(&self, nc: usize) -> f64 {
        let depth = if self.analog_temporal_accum {
            self.temporal_accum_depth.max(1) as f64
        } else {
            1.0
        };
        let cores = if self.photocurrent_summation {
            nc as f64
        } else {
            1.0
        };
        depth * cores
    }
}

/// A complete accelerator configuration.
///
/// ```
/// use lt_arch::ArchConfig;
/// let ltb = ArchConfig::lt_base(4);
/// assert_eq!(ltb.nt, 4);
/// assert_eq!(ltb.num_cores(), 8);
/// assert_eq!(ltb.macs_per_cycle(), 8 * 12 * 12 * 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Configuration name (e.g. `LT-B`).
    pub name: String,
    /// Number of tiles `Nt`.
    pub nt: usize,
    /// Number of DPTC cores per tile `Nc`.
    pub nc: usize,
    /// Core geometry (`Nh`, `Nv`, `N_lambda`).
    pub core: DptcConfig,
    /// Datapath precision in bits (4 or 8 in the paper).
    pub precision_bits: u32,
    /// Photonic clock (5 GHz in the paper).
    pub clock: GigaHertz,
    /// Global SRAM capacity in bytes (2 MB for LT-B, 4 MB for LT-L).
    pub global_sram_bytes: usize,
    /// Per-tile M1 operand SRAM in bytes (4 KB in the paper).
    pub tile_sram_bytes: usize,
    /// Per-tile activation SRAM in bytes.
    pub act_sram_bytes: usize,
    /// HBM link bandwidth in bytes per second (> 1 TB/s in the paper;
    /// `f64::INFINITY` models an unconstrained memory system).
    pub hbm_bytes_per_s: f64,
    /// HBM budget reserved for the paged KV cache, in bytes. The decode
    /// server's block-pool size derives from this when not set
    /// explicitly (`lt_nn::serve::decode::KvServeConfig`): the number
    /// of resident decode sessions is bounded by how many KV blocks fit
    /// this budget.
    pub kv_pool_bytes: usize,
    /// Tile-schedule loop order used by `Simulator::run_trace`.
    pub dataflow: DataflowPolicy,
    /// Architecture-level optimizations.
    pub opts: ArchOptimizations,
    /// Intra-core operand sharing topology.
    pub topology: CoreTopology,
}

impl ArchConfig {
    /// A stable 64-bit digest over every field that influences
    /// scheduling or energy. Two configs with equal fingerprints
    /// produce identical per-op schedules, which is what lets
    /// the schedule cache ([`crate::cache`]) key memoized plans to a config
    /// and invalidate them wholesale when presented with a different
    /// one. Floats hash by bit pattern (`hbm_bytes_per_s` may be
    /// `INFINITY`, which hashes fine).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.nt.hash(&mut h);
        self.nc.hash(&mut h);
        self.core.hash(&mut h);
        self.precision_bits.hash(&mut h);
        self.clock.value().to_bits().hash(&mut h);
        self.global_sram_bytes.hash(&mut h);
        self.tile_sram_bytes.hash(&mut h);
        self.act_sram_bytes.hash(&mut h);
        self.hbm_bytes_per_s.to_bits().hash(&mut h);
        self.kv_pool_bytes.hash(&mut h);
        self.dataflow.hash(&mut h);
        self.opts.hash(&mut h);
        self.topology.hash(&mut h);
        h.finish()
    }

    /// `LT-B` (Table IV): 4 tiles x 2 cores, 12x12x12, 2 MB global SRAM.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]`.
    pub fn lt_base(bits: u32) -> Self {
        Self::lt_named("LT-B", 4, bits)
    }

    /// `LT-L` (Table IV): 8 tiles x 2 cores, 12x12x12, 4 MB global SRAM.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]`.
    pub fn lt_large(bits: u32) -> Self {
        let mut cfg = Self::lt_named("LT-L", 8, bits);
        cfg.global_sram_bytes = 4 << 20;
        cfg
    }

    /// `LT-crossbar-B`: LT-B with all architecture-level optimizations
    /// disabled (pure DPTC-topology comparison, Figs. 11-12).
    pub fn lt_crossbar_base(bits: u32) -> Self {
        let mut cfg = Self::lt_named("LT-crossbar-B", 4, bits);
        cfg.opts = ArchOptimizations::all_off();
        cfg
    }

    /// `LT-broadcast-B`: like `LT-crossbar-B` but with an MRR-style
    /// broadcast-only topology that shares only the input operand (Fig. 12).
    pub fn lt_broadcast_base(bits: u32) -> Self {
        let mut cfg = Self::lt_named("LT-broadcast-B", 4, bits);
        cfg.opts = ArchOptimizations::all_off();
        cfg.topology = CoreTopology::BroadcastOnly;
        cfg
    }

    fn lt_named(name: &str, nt: usize, bits: u32) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "precision {bits} outside supported range [2, 16]"
        );
        ArchConfig {
            name: name.to_string(),
            nt,
            nc: 2,
            core: DptcConfig::lt_paper(),
            precision_bits: bits,
            clock: GigaHertz(lt_photonics::constants::PTC_CLOCK_GHZ),
            global_sram_bytes: 2 << 20,
            tile_sram_bytes: 4 << 10,
            act_sram_bytes: 64 << 10,
            hbm_bytes_per_s: HBM_BYTES_PER_S,
            kv_pool_bytes: 1 << 30,
            dataflow: DataflowPolicy::WeightStationary,
            opts: ArchOptimizations::all_on(),
            topology: CoreTopology::Crossbar,
        }
    }

    /// A single-core configuration of square size `n` with no global
    /// sharing — the unit of the Fig. 9/10 scaling studies.
    pub fn single_core(n: usize, bits: u32) -> Self {
        let mut cfg = Self::lt_named(&format!("core-{n}"), 1, bits);
        cfg.nc = 1;
        cfg.core = DptcConfig::square(n);
        cfg.opts = ArchOptimizations::all_off();
        cfg.global_sram_bytes = 0;
        cfg.tile_sram_bytes = 0;
        cfg.act_sram_bytes = 0;
        cfg
    }

    /// Total number of DPTC cores.
    pub fn num_cores(&self) -> usize {
        self.nt * self.nc
    }

    /// Peak MACs per photonic cycle across the whole accelerator.
    pub fn macs_per_cycle(&self) -> usize {
        self.num_cores() * self.core.macs_per_cycle()
    }

    /// Peak throughput in tera-operations per second (2 ops per MAC).
    pub fn peak_tops(&self) -> f64 {
        2.0 * self.macs_per_cycle() as f64 * self.clock.to_hz() / 1e12
    }

    /// Returns a copy with a different precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `[2, 16]`.
    pub fn with_precision(mut self, bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "precision {bits} out of range");
        self.precision_bits = bits;
        self
    }

    /// Returns a copy that schedules under a different dataflow.
    pub fn with_dataflow(mut self, dataflow: DataflowPolicy) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Returns a copy with an unconstrained memory system: effectively
    /// unlimited global SRAM (no reuse window ever refetches) and
    /// infinite HBM bandwidth (loads are instantaneous). Under this
    /// configuration the tile schedule collapses to the closed-form
    /// model exactly — the cross-validation oracle of
    /// `tests/trace_crossval.rs`.
    pub fn unconstrained_memory(mut self) -> Self {
        self.global_sram_bytes = 1 << 60;
        self.hbm_bytes_per_s = f64::INFINITY;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_presets() {
        let b = ArchConfig::lt_base(4);
        assert_eq!((b.nt, b.nc), (4, 2));
        assert_eq!(b.core, DptcConfig::new(12, 12, 12));
        assert_eq!(b.global_sram_bytes, 2 * 1024 * 1024);
        let l = ArchConfig::lt_large(8);
        assert_eq!(l.nt, 8);
        assert_eq!(l.global_sram_bytes, 4 * 1024 * 1024);
        assert_eq!(l.precision_bits, 8);
    }

    #[test]
    fn peak_tops_ltb() {
        // 8 cores * 1728 MACs * 5 GHz * 2 = 138.2 TOPS.
        let tops = ArchConfig::lt_base(4).peak_tops();
        assert!((tops - 138.24).abs() < 0.01, "tops = {tops}");
    }

    #[test]
    fn ablation_variants_differ_only_in_opts() {
        let full = ArchConfig::lt_base(4);
        let xbar = ArchConfig::lt_crossbar_base(4);
        assert_eq!(full.core, xbar.core);
        assert!(!xbar.opts.inter_core_broadcast);
        let bcast = ArchConfig::lt_broadcast_base(4);
        assert_eq!(bcast.topology, CoreTopology::BroadcastOnly);
    }

    #[test]
    fn adc_reduction_composes() {
        let on = ArchOptimizations::all_on();
        assert_eq!(on.adc_reduction(2), 6.0);
        let off = ArchOptimizations::all_off();
        assert_eq!(off.adc_reduction(2), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn absurd_precision_rejected() {
        ArchConfig::lt_base(40);
    }

    #[test]
    fn unconstrained_memory_lifts_both_limits() {
        let cfg = ArchConfig::lt_base(4).unconstrained_memory();
        assert!(cfg.hbm_bytes_per_s.is_infinite());
        assert!(cfg.global_sram_bytes >= 1 << 60);
        // Everything else is untouched.
        assert_eq!(cfg.core, ArchConfig::lt_base(4).core);
        assert_eq!(cfg.dataflow, DataflowPolicy::WeightStationary);
    }

    #[test]
    fn with_dataflow_changes_only_the_loop_order() {
        let cfg = ArchConfig::lt_base(4).with_dataflow(DataflowPolicy::OutputStationary);
        assert_eq!(cfg.dataflow, DataflowPolicy::OutputStationary);
        assert_eq!(
            cfg.global_sram_bytes,
            ArchConfig::lt_base(4).global_sram_bytes
        );
    }
}
