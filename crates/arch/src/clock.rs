//! [`CycleClock`]: a deterministic simulated-time clock for the serving
//! layer.
//!
//! The serving frontend needs timestamps — arrival, first token, every
//! subsequent token — but wall-clock time is noise: it varies with host
//! load, thread count, and build flags, so it can never gate CI. The
//! simulator already produces an exact latency for every replayed op
//! trace ([`RunReport::latency`]); this clock integrates those latencies
//! into a monotonic *simulated* timeline, so TTFT and inter-token
//! latency become pure functions of the request stream and the modeled
//! hardware.
//!
//! Time is held in integer picoseconds (one [`RunReport`] latency is
//! rounded to a whole picosecond exactly once, when added), so
//! accumulation is exact integer arithmetic: no float-summation order
//! effects, bit-identical across `LT_THREADS` and across hosts. At the
//! LT clock of a few GHz a picosecond is finer than a single photonic
//! cycle, so nothing observable is lost to rounding.
//!
//! ```
//! use lt_arch::clock::CycleClock;
//! use lt_arch::RunReport;
//! use lt_photonics::units::Milliseconds;
//!
//! let mut clock = CycleClock::new();
//! let tick = RunReport {
//!     latency: Milliseconds(0.25),
//!     cycles: 1000,
//!     ..RunReport::default()
//! };
//! clock.advance(&tick);
//! clock.advance(&tick);
//! assert_eq!(clock.now_us(), 500);
//! assert_eq!(clock.cycles(), 2000);
//! ```

use crate::sim::RunReport;
use lt_photonics::units::Milliseconds;

/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;

/// A monotonic clock in the replayed-simulation time domain.
///
/// Advancing by a [`RunReport`] adds its modeled latency (and counts
/// its photonic cycles); jumping to an arrival timestamp never moves
/// time backwards. All accumulation is integer picosecond arithmetic,
/// so a request stream replays to the same timestamps on any host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleClock {
    now_ps: u64,
    cycles: u64,
}

impl CycleClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        CycleClock::default()
    }

    /// Advances by a replayed report's latency and accrues its cycles.
    pub fn advance(&mut self, report: &RunReport) {
        self.advance_ms(report.latency);
        self.cycles += report.cycles;
    }

    /// Advances by a bare latency (no cycle accrual).
    ///
    /// # Panics
    ///
    /// Panics if the latency is negative.
    pub fn advance_ms(&mut self, latency: Milliseconds) {
        assert!(latency.value() >= 0.0, "cannot advance by negative time");
        self.now_ps += (latency.value() * 1e9).round() as u64;
    }

    /// Moves the clock forward to `at_us` if it is still earlier — the
    /// open-loop idiom for "the next request arrives at `at_us`".
    /// Returns the idle gap skipped, in microseconds (zero when the
    /// clock was already past the arrival).
    pub fn advance_to_us(&mut self, at_us: u64) -> u64 {
        let at_ps = at_us * PS_PER_US;
        if at_ps <= self.now_ps {
            return 0;
        }
        let gap = at_ps - self.now_ps;
        self.now_ps = at_ps;
        gap / PS_PER_US
    }

    /// Current simulated time in whole microseconds (rounded down).
    pub fn now_us(&self) -> u64 {
        self.now_ps / PS_PER_US
    }

    /// Current simulated time in picoseconds (the exact internal unit).
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }

    /// Photonic cycles accrued through [`CycleClock::advance`].
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ms: f64, cycles: u64) -> RunReport {
        RunReport {
            latency: Milliseconds(ms),
            cycles,
            ..RunReport::default()
        }
    }

    #[test]
    fn advancing_accumulates_exactly() {
        let mut clock = CycleClock::new();
        for _ in 0..10 {
            clock.advance(&report(0.1, 250));
        }
        // 10 x 0.1 ms = 1 ms, exact in integer picoseconds even though
        // 0.1 is not exact in binary.
        assert_eq!(clock.now_us(), 1000);
        assert_eq!(clock.now_ps(), 1_000_000_000);
        assert_eq!(clock.cycles(), 2500);
    }

    #[test]
    fn advance_to_us_never_goes_backwards() {
        let mut clock = CycleClock::new();
        assert_eq!(clock.advance_to_us(500), 500, "full idle gap from zero");
        clock.advance_ms(Milliseconds(1.0));
        assert_eq!(clock.now_us(), 1500);
        assert_eq!(clock.advance_to_us(700), 0, "arrival in the past: no-op");
        assert_eq!(clock.now_us(), 1500);
        assert_eq!(clock.advance_to_us(2000), 500);
        assert_eq!(clock.now_us(), 2000);
    }

    #[test]
    fn sub_microsecond_latencies_are_not_lost() {
        let mut clock = CycleClock::new();
        // 0.1 us each: invisible at us granularity individually, exact
        // in picoseconds.
        for _ in 0..10 {
            clock.advance_ms(Milliseconds(1e-4));
        }
        assert_eq!(clock.now_us(), 1);
    }

    #[test]
    #[should_panic(expected = "negative time")]
    fn negative_advance_rejected() {
        CycleClock::new().advance_ms(Milliseconds(-1.0));
    }
}
