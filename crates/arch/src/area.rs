//! Chip area model (paper Fig. 7 and the area axis of Fig. 9).

use crate::config::ArchConfig;
use crate::devices::DeviceRack;
use crate::memory::MemoryHierarchy;
use lt_photonics::units::SquareMillimeters;
use std::fmt;

/// Layout pitch of one DDot cell in the crossbar, including waveguide
/// routing, micrometers. Calibrated so the photonic-core share of LT-B is
/// ~20% of the chip (Fig. 7).
pub const DDOT_CELL_PITCH_UM: f64 = 100.0;

/// Fixed digital-logic area per chip plus per tile, mm^2.
const DIGITAL_BASE_MM2: f64 = 1.0;
const DIGITAL_PER_TILE_MM2: f64 = 0.5;

/// Fraction of extra area for integration (pads, routing, keep-out).
const INTEGRATION_OVERHEAD: f64 = 0.05;

/// Itemized chip area.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Photonic crossbars (DDot arrays with routing).
    pub photonic_core: SquareMillimeters,
    /// All DAC channels.
    pub dac: SquareMillimeters,
    /// All ADC channels (including TIAs).
    pub adc: SquareMillimeters,
    /// Modulation: MZMs plus WDM mux/demux microdisks.
    pub modulation: SquareMillimeters,
    /// Laser array plus the Kerr micro-comb.
    pub laser_comb: SquareMillimeters,
    /// SRAM hierarchy.
    pub memory: SquareMillimeters,
    /// Digital processing units (softmax, LayerNorm, control).
    pub digital: SquareMillimeters,
    /// Integration overhead (routing, pads).
    pub overhead: SquareMillimeters,
}

impl AreaBreakdown {
    /// Computes the breakdown for a configuration.
    pub fn for_config(config: &ArchConfig) -> Self {
        let rack = DeviceRack::paper(config);
        let mem = MemoryHierarchy::for_config(config);

        let core_mm2 = config.num_cores() as f64
            * (config.core.nh as f64 * DDOT_CELL_PITCH_UM)
            * (config.core.nv as f64 * DDOT_CELL_PITCH_UM)
            / 1e6;
        let dac = rack.dac_count() as f64 * rack.dac.area.value() / 1e6;
        let adc = (rack.adc_count() as f64 * rack.adc.area.value()
            + rack.tia_count() as f64 * rack.tia.area.value())
            / 1e6;
        let modulation = (rack.mzm_count() as f64 * rack.mzm.area().value()
            + rack.microdisk_count() as f64 * rack.microdisk.area.value())
            / 1e6;
        // One comb per chip plus one pump laser per wavelength.
        let laser_comb =
            (rack.comb.area.value() + config.core.nlambda as f64 * rack.laser.area.value()) / 1e6;
        let memory = mem.area().to_mm2().value();
        let digital = if config.global_sram_bytes == 0 {
            0.0 // single-core scaling studies exclude the digital system
        } else {
            DIGITAL_BASE_MM2 + DIGITAL_PER_TILE_MM2 * config.nt as f64
        };
        let subtotal = core_mm2 + dac + adc + modulation + laser_comb + memory + digital;
        AreaBreakdown {
            photonic_core: SquareMillimeters(core_mm2),
            dac: SquareMillimeters(dac),
            adc: SquareMillimeters(adc),
            modulation: SquareMillimeters(modulation),
            laser_comb: SquareMillimeters(laser_comb),
            memory: SquareMillimeters(memory),
            digital: SquareMillimeters(digital),
            overhead: SquareMillimeters(subtotal * INTEGRATION_OVERHEAD),
        }
    }

    /// Total chip area.
    pub fn total(&self) -> SquareMillimeters {
        self.photonic_core
            + self.dac
            + self.adc
            + self.modulation
            + self.laser_comb
            + self.memory
            + self.digital
            + self.overhead
    }

    /// `(label, mm^2, share)` rows for reporting.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total().value();
        [
            ("photonic core", self.photonic_core.value()),
            ("DAC", self.dac.value()),
            ("ADC+TIA", self.adc.value()),
            ("modulation (MZM+WDM)", self.modulation.value()),
            ("laser+comb", self.laser_comb.value()),
            ("memory", self.memory.value()),
            ("digital", self.digital.value()),
            ("overhead", self.overhead.value()),
        ]
        .into_iter()
        .map(|(k, v)| (k, v, v / total))
        .collect()
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, mm2, share) in self.rows() {
            writeln!(
                f,
                "  {label:<22} {mm2:>8.2} mm^2  ({:>5.1}%)",
                share * 100.0
            )?;
        }
        write!(f, "  {:<22} {:>8.2} mm^2", "TOTAL", self.total().value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ltb_total_matches_table_iv() {
        // Paper: 60.3 mm^2 for LT-B.
        let a = AreaBreakdown::for_config(&ArchConfig::lt_base(4));
        let total = a.total().value();
        assert!((50.0..72.0).contains(&total), "LT-B area {total} mm^2");
    }

    #[test]
    fn ltl_total_matches_table_iv() {
        // Paper: 112.82 mm^2 for LT-L (~2x LT-B).
        let a = AreaBreakdown::for_config(&ArchConfig::lt_large(4));
        let total = a.total().value();
        assert!((95.0..130.0).contains(&total), "LT-L area {total} mm^2");
        let b = AreaBreakdown::for_config(&ArchConfig::lt_base(4))
            .total()
            .value();
        let ratio = total / b;
        assert!((1.6..2.2).contains(&ratio), "LT-L/LT-B ratio {ratio}");
    }

    #[test]
    fn fig7_shares() {
        // Fig. 7: photonic core ~20%, memory ~25%, DAC ~25%; the rest <30%.
        let a = AreaBreakdown::for_config(&ArchConfig::lt_base(4));
        let total = a.total().value();
        let share = |v: SquareMillimeters| v.value() / total;
        assert!((0.12..0.30).contains(&share(a.photonic_core)), "core share");
        assert!((0.17..0.33).contains(&share(a.memory)), "memory share");
        assert!((0.17..0.33).contains(&share(a.dac)), "DAC share");
        let rest = share(a.adc)
            + share(a.modulation)
            + share(a.laser_comb)
            + share(a.digital)
            + share(a.overhead);
        assert!(rest < 0.40, "remaining share {rest}");
    }

    #[test]
    fn area_is_precision_independent() {
        let a4 = AreaBreakdown::for_config(&ArchConfig::lt_base(4))
            .total()
            .value();
        let a8 = AreaBreakdown::for_config(&ArchConfig::lt_base(8))
            .total()
            .value();
        assert!((a4 - a8).abs() < 1e-9);
    }

    #[test]
    fn single_core_scaling_matches_fig9_band() {
        // Fig. 9: single 4-bit core area 5.9 mm^2 (N=8) to 49.3 mm^2 (N=32).
        let a8 = AreaBreakdown::for_config(&ArchConfig::single_core(8, 4))
            .total()
            .value();
        let a32 = AreaBreakdown::for_config(&ArchConfig::single_core(32, 4))
            .total()
            .value();
        assert!((4.0..8.5).contains(&a8), "N=8 area {a8}");
        assert!((40.0..60.0).contains(&a32), "N=32 area {a32}");
    }

    #[test]
    fn rows_sum_to_total() {
        let a = AreaBreakdown::for_config(&ArchConfig::lt_base(4));
        let sum: f64 = a.rows().iter().map(|(_, v, _)| v).sum();
        assert!((sum - a.total().value()).abs() < 1e-9);
    }
}
