//! Memory-pressure-aware decode scheduling over the paged KV pool: the
//! policy layer between the continuous-batching server and
//! [`crate::kv`]'s mechanism.
//!
//! [`KvScheduler`] owns one worker's [`BlockPool`] and decides, between
//! token ticks, which sessions are *resident*. Each [`KvScheduler::tick`]
//! runs four phases:
//!
//! 1. **Resume** — paused (preempted) sessions come back first, in
//!    ticket order, as soon as the pool can hold their blocks again.
//! 2. **Admit** — backlog requests enter strictly FIFO while the pool
//!    has room for their prompt (`ceil(prompt/block_tokens) + 1`
//!    blocks); prefix sharing, when enabled, lets a newcomer borrow the
//!    already-cached blocks of an identical prompt prefix instead of
//!    allocating fresh ones.
//! 3. **Reserve** — before stepping, the pool must cover every active
//!    session's worst-case next-token allocation; while it cannot, the
//!    *highest-ticket* (most recently admitted) session is preempted
//!    under the configured [`PreemptPolicy`].
//! 4. **Step + retire** — every resident session decodes one token
//!    (recording its trace) and finished sessions retire.
//!
//! Because paused tickets are always lower than backlog tickets (the
//! queue is monotonic) resume-before-admit is strict ticket priority,
//! and because preemption under [`PreemptPolicy::SwapOut`] neither
//! draws randomness nor touches a session's engine, a preempted-and
//! resumed session's reply is bit-identical to an uninterrupted run —
//! memory pressure changes *when* tokens are produced, never *which*.

use crate::decode::{DecodeReply, DecodeSession, DecoderConfig, DecoderLm, SessionConfig};
use crate::kv::{BlockPool, PagedKvCache, PreemptPolicy, PrefixIndex};
use crate::serve::decode::DecodeRequest;
use lt_arch::{ArchConfig, Simulator};
use lt_core::{ComputeBackend, Trace};
use std::collections::VecDeque;

/// Paged-KV serving knobs (the `kv` section of
/// [`crate::serve::decode::DecodeServeConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct KvServeConfig {
    /// Tokens per KV block.
    pub block_tokens: usize,
    /// Blocks in each worker's pool; `0` derives the count from the
    /// architecture's `kv_pool_bytes` budget at the serving precision.
    pub pool_blocks: usize,
    /// Share identical prompt prefixes between overlapping sessions
    /// (copy-on-write protected). Off by default: exact only for
    /// deterministic engines, where recomputing a prefix equals
    /// reading its cached blocks.
    pub prefix_sharing: bool,
    /// What happens to a preempted session's blocks.
    pub preempt: PreemptPolicy,
}

impl Default for KvServeConfig {
    fn default() -> Self {
        KvServeConfig {
            block_tokens: 16,
            pool_blocks: 0,
            prefix_sharing: false,
            preempt: PreemptPolicy::SwapOut,
        }
    }
}

impl KvServeConfig {
    /// One KV block's byte footprint for `model` at `bits` precision.
    pub fn block_bytes(&self, model: &DecoderConfig, bits: u32) -> u64 {
        2 * (model.layers * self.block_tokens * model.dim) as u64 * bits as u64 / 8
    }

    /// The pool size in blocks: `pool_blocks` if set, else the
    /// architecture's `kv_pool_bytes` budget divided by the block size.
    pub fn resolved_pool_blocks(&self, model: &DecoderConfig, arch: &ArchConfig) -> usize {
        if self.pool_blocks > 0 {
            self.pool_blocks
        } else {
            (arch.kv_pool_bytes as u64 / self.block_bytes(model, arch.precision_bits).max(1))
                as usize
        }
    }

    /// Validates the configuration against a model and architecture and
    /// returns the resolved pool size — called at server construction
    /// so a pool that cannot hold even one full-context session is
    /// rejected before any worker starts.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero, or if the resolved pool is
    /// smaller than `ceil(max_seq / block_tokens) + 1` blocks (one
    /// maximal session plus a copy-on-write spare — the minimum that
    /// guarantees the reserve phase can always make one session
    /// resident).
    pub fn validate(&self, model: &DecoderConfig, arch: &ArchConfig) -> usize {
        assert!(self.block_tokens > 0, "kv.block_tokens must be positive");
        let blocks = self.resolved_pool_blocks(model, arch);
        let min = model.max_seq.div_ceil(self.block_tokens) + 1;
        assert!(
            blocks >= min,
            "KV pool of {blocks} blocks cannot hold one max_seq={} session \
             (needs at least {min} blocks of {} tokens)",
            model.max_seq,
            self.block_tokens
        );
        blocks
    }
}

/// One preemption, for the record: who was evicted and who was resident
/// when the pool ran dry. The victim is always the highest ticket —
/// `tests/kv_properties.rs` pins that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreemptionEvent {
    /// Ticket of the evicted session.
    pub victim: u64,
    /// Tickets resident at the moment of eviction (victim included).
    pub resident: Vec<u64>,
}

/// Cumulative [`KvScheduler`] counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KvSchedStats {
    /// Ticks that stepped at least one session.
    pub ticks: u64,
    /// Tokens produced by decode steps.
    pub decoded_tokens: u64,
    /// Sessions admitted (prefilled successfully).
    pub admitted: u64,
    /// Sessions evicted under memory pressure.
    pub preemptions: u64,
    /// Paused sessions brought back.
    pub resumes: u64,
    /// K/V elements copied out by swap-out preemptions.
    pub swapped_out_elems: u64,
    /// K/V elements copied back by resumes.
    pub swapped_in_elems: u64,
    /// Tokens re-prefilled by recompute resumes.
    pub recompute_tokens: u64,
    /// Admissions that borrowed a cached prefix.
    pub prefix_hits: u64,
    /// Blocks borrowed across all prefix hits (allocation savings).
    pub prefix_shared_blocks: u64,
    /// Tokens covered by borrowed prefixes (skipped KV writes).
    pub prefix_shared_tokens: u64,
    /// High-water mark of simultaneously resident sessions.
    pub peak_resident_sessions: usize,
    /// Every preemption, in order.
    pub preemption_events: Vec<PreemptionEvent>,
}

/// What one [`KvScheduler::tick`] did: the per-session step traces (for
/// batched tick costing) and the same steps' one-at-a-time cycles.
#[derive(Debug)]
pub struct TickOutcome {
    /// One recorded step trace per resident session, ticket order.
    pub step_traces: Vec<Trace>,
    /// Sum of the steps' individually replayed cycles (the batch-1
    /// comparison basis).
    pub sequential_cycles: u64,
}

struct Entry<B: ComputeBackend + Clone> {
    session: DecodeSession<B>,
}

/// The per-worker paged-KV decode scheduler. See the [module
/// docs](self).
pub struct KvScheduler<'m, B: ComputeBackend + Clone> {
    model: &'m DecoderLm,
    sim: &'m Simulator,
    backend: B,
    session_config: SessionConfig,
    preempt: PreemptPolicy,
    pool: BlockPool,
    prefix: Option<PrefixIndex>,
    max_active: usize,
    active: Vec<Entry<B>>,
    paused: Vec<Entry<B>>,
    backlog: VecDeque<(u64, DecodeRequest)>,
    finished: Vec<(u64, DecodeReply)>,
    failed: Vec<u64>,
    stats: KvSchedStats,
}

impl<B: ComputeBackend + Clone> std::fmt::Debug for KvScheduler<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvScheduler")
            .field("active", &self.active.len())
            .field("paused", &self.paused.len())
            .field("backlog", &self.backlog.len())
            .field("pool_free", &self.pool.free_blocks())
            .finish_non_exhaustive()
    }
}

impl<'m, B: ComputeBackend + Clone> KvScheduler<'m, B> {
    /// Creates a scheduler with its own block pool, validated against
    /// the model and the simulator's architecture (see
    /// [`KvServeConfig::validate`]).
    pub fn new(
        model: &'m DecoderLm,
        sim: &'m Simulator,
        backend: B,
        session_config: SessionConfig,
        kv: KvServeConfig,
        max_active: usize,
    ) -> Self {
        let cfg = model.config();
        let blocks = kv.validate(&cfg, sim.config());
        KvScheduler {
            model,
            sim,
            backend,
            session_config,
            preempt: kv.preempt,
            pool: BlockPool::new(blocks, cfg.layers, cfg.dim, kv.block_tokens),
            prefix: kv.prefix_sharing.then(PrefixIndex::new),
            max_active: max_active.max(1),
            active: Vec::new(),
            paused: Vec::new(),
            backlog: VecDeque::new(),
            finished: Vec::new(),
            failed: Vec::new(),
            stats: KvSchedStats::default(),
        }
    }

    /// The scheduler's block pool.
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &KvSchedStats {
        &self.stats
    }

    /// Queues a request (admission happens inside [`KvScheduler::tick`],
    /// when the pool has room).
    pub fn submit(&mut self, ticket: u64, request: DecodeRequest) {
        self.backlog.push_back((ticket, request));
    }

    /// Whether any session is resident, paused, or waiting.
    pub fn has_work(&self) -> bool {
        !self.active.is_empty() || !self.paused.is_empty() || !self.backlog.is_empty()
    }

    /// In-flight slots still available (how many more submissions this
    /// scheduler wants before a tick).
    pub fn free_slots(&self) -> usize {
        self.max_active
            .saturating_sub(self.active.len() + self.paused.len() + self.backlog.len())
    }

    /// Takes the replies of every session that finished.
    pub fn drain_finished(&mut self) -> Vec<(u64, DecodeReply)> {
        std::mem::take(&mut self.finished)
    }

    /// Takes the tickets of requests that failed (malformed, or needing
    /// more KV blocks than the whole pool).
    pub fn drain_failed(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.failed)
    }

    /// One scheduling round: resume, admit, reserve (preempting if the
    /// pool cannot cover every resident session's next token), step
    /// every resident session, retire the finished. Returns `None` if
    /// nothing was resident to step.
    pub fn tick(&mut self) -> Option<TickOutcome> {
        self.resume_paused();
        self.admit();
        if self.active.is_empty() {
            return None;
        }
        self.stats.peak_resident_sessions =
            self.stats.peak_resident_sessions.max(self.active.len());
        self.reserve_for_step();

        let mut step_traces = Vec::with_capacity(self.active.len());
        let mut sequential_cycles = 0;
        for entry in self.active.iter_mut() {
            step_traces.push(entry.session.step(self.model, self.sim));
            if let Some(cost) = entry.session.last_step_cost() {
                sequential_cycles += cost.cycles;
            }
        }
        self.stats.decoded_tokens += step_traces.len() as u64;
        self.stats.ticks += 1;

        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].session.is_done() {
                let entry = self.active.remove(i);
                self.finished
                    .push((entry.session.ticket(), entry.session.into_reply()));
            } else {
                i += 1;
            }
        }
        Some(TickOutcome {
            step_traces,
            sequential_cycles,
        })
    }

    /// Blocks a paused session needs to become resident again (restore
    /// plus one decode step).
    fn resume_need(&self, entry: &Entry<B>) -> usize {
        let kv = entry
            .session
            .paged_kv()
            .expect("scheduler sessions are paged");
        if kv.is_swapped() {
            kv.blocks_needed(1)
        } else {
            // Recompute: the cache is empty; the resume re-prefills
            // everything fed so far, then the tick appends one token.
            let fed = entry.session.prompt().len() + entry.session.tokens().len() - 1;
            (fed + 1).div_ceil(self.pool.block_tokens())
        }
    }

    fn resume_paused(&mut self) {
        self.paused.sort_by_key(|e| e.session.ticket());
        while let Some(front) = self.paused.first() {
            if self.resume_need(front) > self.pool.free_blocks() {
                break;
            }
            let mut entry = self.paused.remove(0);
            match self.preempt {
                PreemptPolicy::SwapOut => {
                    let moved = entry
                        .session
                        .paged_kv_mut()
                        .expect("scheduler sessions are paged")
                        .resume();
                    self.stats.swapped_in_elems += moved;
                }
                PreemptPolicy::Recompute => {
                    let fed = entry.session.prompt().len() + entry.session.tokens().len() - 1;
                    entry.session.resume_by_recompute(self.model);
                    self.stats.recompute_tokens += fed as u64;
                }
            }
            self.stats.resumes += 1;
            self.active.push(entry);
            self.active.sort_by_key(|e| e.session.ticket());
        }
    }

    fn admit(&mut self) {
        while self.active.len() + self.paused.len() < self.max_active {
            let Some((_, request)) = self.backlog.front() else {
                break;
            };
            let need = request.prompt.len().div_ceil(self.pool.block_tokens()) + 1;
            if need > self.pool.total_blocks() {
                // Can never fit, even alone in an empty pool: fail it
                // (the client's reply channel drops) instead of
                // wedging the FIFO head forever.
                let (ticket, _) = self.backlog.pop_front().expect("front exists");
                self.failed.push(ticket);
                continue;
            }
            if need > self.pool.free_blocks() {
                break; // strict FIFO: no head-of-line bypass
            }
            let (ticket, request) = self.backlog.pop_front().expect("front exists");
            match self.admit_one(ticket, request) {
                Ok(entry) => {
                    self.stats.admitted += 1;
                    if entry.session.is_done() {
                        self.finished
                            .push((entry.session.ticket(), entry.session.into_reply()));
                    } else {
                        self.active.push(entry);
                        self.active.sort_by_key(|e| e.session.ticket());
                    }
                }
                Err(()) => self.failed.push(ticket),
            }
        }
    }

    /// Builds and prefills one session; a panic (empty prompt, context
    /// overflow, out-of-vocabulary token) is contained — the unwound
    /// cache's `Drop` releases every block it held, borrowed prefix
    /// blocks included, so a malformed request cannot leak pool memory.
    fn admit_one(&mut self, ticket: u64, request: DecodeRequest) -> Result<Entry<B>, ()> {
        let cfg = self.model.config();
        let shared = self
            .prefix
            .as_mut()
            .and_then(|index| index.lookup(&self.pool, &request.prompt));
        let shared_stats = shared.as_ref().map(|p| (p.num_blocks(), p.tokens()));
        let model = self.model;
        let sim = self.sim;
        let backend = self.backend.clone();
        let session_config = self.session_config;
        let pool = self.pool.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let cache = match shared {
                Some(prefix) => {
                    PagedKvCache::with_shared_prefix(&pool, cfg.layers, cfg.dim, prefix)
                }
                None => PagedKvCache::new(&pool, cfg.layers, cfg.dim),
            };
            let mut session = DecodeSession::new_paged(
                model,
                ticket,
                request.prompt,
                request.max_new_tokens,
                backend,
                session_config,
                cache,
            );
            session.prefill(model, sim);
            session
        }));
        match outcome {
            Ok(session) => {
                if let Some((blocks, tokens)) = shared_stats {
                    self.stats.prefix_hits += 1;
                    self.stats.prefix_shared_blocks += blocks as u64;
                    self.stats.prefix_shared_tokens += tokens as u64;
                }
                if let Some(index) = self.prefix.as_mut() {
                    let refs = session
                        .paged_kv()
                        .expect("scheduler sessions are paged")
                        .block_refs(session.prompt().len());
                    index.register(session.prompt(), refs);
                }
                Ok(Entry { session })
            }
            Err(_) => Err(()),
        }
    }

    /// Guarantees the pool can absorb every resident session's next
    /// token (a fresh block at a boundary, a copy-on-write of a shared
    /// block) by preempting the highest-ticket sessions until it can.
    fn reserve_for_step(&mut self) {
        loop {
            let need: usize = self
                .active
                .iter()
                .map(|e| {
                    e.session
                        .paged_kv()
                        .expect("scheduler sessions are paged")
                        .blocks_needed(1)
                })
                .sum();
            if need <= self.pool.free_blocks() {
                return;
            }
            assert!(
                self.active.len() > 1,
                "KV pool cannot cover a single session's next token — \
                 KvServeConfig::validate should have rejected this pool"
            );
            let resident: Vec<u64> = self.active.iter().map(|e| e.session.ticket()).collect();
            let victim_idx = self.active.len() - 1; // active is ticket-sorted
            let mut entry = self.active.remove(victim_idx);
            match self.preempt {
                PreemptPolicy::SwapOut => {
                    let moved = entry
                        .session
                        .paged_kv_mut()
                        .expect("scheduler sessions are paged")
                        .swap_out();
                    self.stats.swapped_out_elems += moved;
                }
                PreemptPolicy::Recompute => {
                    entry
                        .session
                        .paged_kv_mut()
                        .expect("scheduler sessions are paged")
                        .drop_resident();
                }
            }
            self.stats.preemptions += 1;
            self.stats.preemption_events.push(PreemptionEvent {
                victim: entry.session.ticket(),
                resident,
            });
            self.paused.push(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecoderConfig;
    use lt_core::{GaussianSampler, NativeBackend};

    fn model() -> DecoderLm {
        let mut rng = GaussianSampler::new(5);
        DecoderLm::new(DecoderConfig::tiny(), &mut rng)
    }

    fn run_to_completion<B: ComputeBackend + Clone>(
        sched: &mut KvScheduler<'_, B>,
    ) -> Vec<(u64, DecodeReply)> {
        let mut replies = Vec::new();
        while sched.has_work() {
            sched.tick();
            replies.extend(sched.drain_finished());
        }
        replies.sort_by_key(|&(t, _)| t);
        replies
    }

    #[test]
    #[should_panic(expected = "cannot hold one max_seq")]
    fn undersized_pool_is_rejected_at_construction() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        // tiny() has max_seq 48: 16-token blocks need ceil(48/16)+1 = 4.
        let kv = KvServeConfig {
            block_tokens: 16,
            pool_blocks: 3,
            ..KvServeConfig::default()
        };
        let _ = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 4);
    }

    #[test]
    #[should_panic(expected = "block_tokens must be positive")]
    fn zero_block_size_is_rejected() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let kv = KvServeConfig {
            block_tokens: 0,
            pool_blocks: 64,
            ..KvServeConfig::default()
        };
        let _ = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 4);
    }

    #[test]
    fn pool_blocks_derive_from_the_arch_kv_budget() {
        let cfg = DecoderConfig::tiny();
        let mut arch = ArchConfig::lt_base(8);
        arch.kv_pool_bytes = 1 << 20;
        let kv = KvServeConfig::default();
        // block = 2 * 2 layers * 16 tokens * 32 dim * 8 bits / 8 = 2048 B.
        assert_eq!(kv.block_bytes(&cfg, 8), 2048);
        assert_eq!(kv.resolved_pool_blocks(&cfg, &arch), 512);
    }

    #[test]
    fn a_starved_pool_preempts_highest_tickets_and_still_serves_everyone() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        // 13 blocks of 4 tokens; six 10-token decodes need 3 blocks each
        // once their contexts grow — more than the pool holds at once.
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 13,
            ..KvServeConfig::default()
        };
        let mut sched = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 6);
        for t in 0..6u64 {
            sched.submit(
                t,
                DecodeRequest {
                    prompt: vec![1, 2, 3, 4, 5],
                    max_new_tokens: 6,
                },
            );
        }
        let replies = run_to_completion(&mut sched);
        assert_eq!(replies.len(), 6, "every session finishes despite eviction");
        for (_, r) in &replies {
            assert_eq!(r.tokens.len(), 6);
        }
        let stats = sched.stats();
        assert!(stats.preemptions > 0, "the pool must have run dry");
        assert_eq!(stats.preemptions, stats.resumes, "everyone came back");
        assert!(stats.swapped_out_elems > 0);
        assert_eq!(stats.swapped_out_elems, stats.swapped_in_elems);
        for ev in &stats.preemption_events {
            assert_eq!(
                Some(ev.victim),
                ev.resident.iter().copied().max(),
                "victim must be the most recently admitted resident"
            );
        }
        assert_eq!(sched.pool().used_blocks(), 0, "all blocks returned");
    }

    #[test]
    fn prefix_sharing_skips_duplicate_prompt_blocks() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            prefix_sharing: true,
            ..KvServeConfig::default()
        };
        let mut sched = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 8);
        let prompt = vec![1usize, 2, 3, 4, 5, 6, 7, 8];
        for t in 0..4u64 {
            sched.submit(
                t,
                DecodeRequest {
                    prompt: prompt.clone(),
                    max_new_tokens: 4,
                },
            );
        }
        let replies = run_to_completion(&mut sched);
        assert_eq!(replies.len(), 4);
        let stats = sched.stats();
        assert_eq!(
            stats.prefix_hits, 3,
            "sessions 1-3 borrow session 0's blocks"
        );
        assert_eq!(stats.prefix_shared_tokens, 3 * prompt.len() as u64);
        assert!(stats.prefix_shared_blocks >= 3 * 2, "two full blocks each");
        // Sharing must not change the tokens: all four replies agree
        // (deterministic backend, identical prompts, greedy sampling).
        for (_, r) in &replies[1..] {
            assert_eq!(r.tokens, replies[0].1.tokens);
        }
    }
}
