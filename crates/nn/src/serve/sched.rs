//! Memory-pressure-aware decode scheduling over the paged KV pool: the
//! policy layer between the continuous-batching server and
//! [`crate::kv`]'s mechanism.
//!
//! [`KvScheduler`] owns one worker's [`BlockPool`] and decides, between
//! token ticks, which sessions are *resident*. Each [`KvScheduler::tick`]
//! runs four phases:
//!
//! 1. **Resume** — paused (preempted) sessions come back first, in
//!    ticket order, as soon as the pool can hold their blocks again.
//! 2. **Admit** — backlog requests enter strictly FIFO while the pool
//!    has room for their prompt (`ceil(prompt/block_tokens) + 1`
//!    blocks); prefix sharing, when enabled, lets a newcomer borrow the
//!    already-cached blocks of an identical prompt prefix instead of
//!    allocating fresh ones.
//! 3. **Reserve** — before stepping, the pool must cover every active
//!    session's worst-case next-token allocation; while it cannot, the
//!    *highest-ticket* (most recently admitted) session is preempted
//!    under the configured [`PreemptPolicy`].
//! 4. **Step + retire** — every resident session decodes one token
//!    (recording its trace) and finished sessions retire.
//!
//! Because paused tickets are always lower than backlog tickets (the
//! queue is monotonic) resume-before-admit is strict ticket priority,
//! and because preemption under [`PreemptPolicy::SwapOut`] neither
//! draws randomness nor touches a session's engine, a preempted-and
//! resumed session's reply is bit-identical to an uninterrupted run —
//! memory pressure changes *when* tokens are produced, never *which*.

use crate::decode::{
    DecodeReply, DecodeSession, DecoderConfig, DecoderLm, DraftLm, SessionConfig, SpecSessionStats,
};
use crate::kv::{BlockPool, PagedKvCache, PreemptPolicy, PrefixIndex};
use crate::serve::decode::DecodeRequest;
use lt_arch::{ArchConfig, Simulator};
use lt_core::{ComputeBackend, Trace};
use std::collections::VecDeque;

/// Paged-KV serving knobs (the `kv` section of
/// [`crate::serve::decode::DecodeServeConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct KvServeConfig {
    /// Tokens per KV block.
    pub block_tokens: usize,
    /// Blocks in each worker's pool; `0` derives the count from the
    /// architecture's `kv_pool_bytes` budget at the serving precision.
    pub pool_blocks: usize,
    /// Share identical prompt prefixes between overlapping sessions
    /// (copy-on-write protected). Off by default: exact only for
    /// deterministic engines, where recomputing a prefix equals
    /// reading its cached blocks.
    pub prefix_sharing: bool,
    /// What happens to a preempted session's blocks.
    pub preempt: PreemptPolicy,
}

impl Default for KvServeConfig {
    fn default() -> Self {
        KvServeConfig {
            block_tokens: 16,
            pool_blocks: 0,
            prefix_sharing: false,
            preempt: PreemptPolicy::SwapOut,
        }
    }
}

impl KvServeConfig {
    /// One KV block's byte footprint for `model` at `bits` precision.
    pub fn block_bytes(&self, model: &DecoderConfig, bits: u32) -> u64 {
        2 * (model.layers * self.block_tokens * model.dim) as u64 * bits as u64 / 8
    }

    /// The pool size in blocks: `pool_blocks` if set, else the
    /// architecture's `kv_pool_bytes` budget divided by the block size.
    pub fn resolved_pool_blocks(&self, model: &DecoderConfig, arch: &ArchConfig) -> usize {
        if self.pool_blocks > 0 {
            self.pool_blocks
        } else {
            (arch.kv_pool_bytes as u64 / self.block_bytes(model, arch.precision_bits).max(1))
                as usize
        }
    }

    /// Validates the configuration against a model and architecture and
    /// returns the resolved pool size — called at server construction
    /// so a pool that cannot hold even one full-context session is
    /// rejected before any worker starts.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero, or if the resolved pool is
    /// smaller than `ceil(max_seq / block_tokens) + 1` blocks (one
    /// maximal session plus a copy-on-write spare — the minimum that
    /// guarantees the reserve phase can always make one session
    /// resident).
    pub fn validate(&self, model: &DecoderConfig, arch: &ArchConfig) -> usize {
        assert!(self.block_tokens > 0, "kv.block_tokens must be positive");
        let blocks = self.resolved_pool_blocks(model, arch);
        let min = model.max_seq.div_ceil(self.block_tokens) + 1;
        assert!(
            blocks >= min,
            "KV pool of {blocks} blocks cannot hold one max_seq={} session \
             (needs at least {min} blocks of {} tokens)",
            model.max_seq,
            self.block_tokens
        );
        blocks
    }
}

/// One preemption, for the record: who was evicted and who was resident
/// when the pool ran dry. The victim is always the highest ticket —
/// `tests/kv_properties.rs` pins that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreemptionEvent {
    /// Ticket of the evicted session.
    pub victim: u64,
    /// Tickets resident at the moment of eviction (victim included).
    pub resident: Vec<u64>,
}

/// Cumulative [`KvScheduler`] counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KvSchedStats {
    /// Ticks that stepped at least one session.
    pub ticks: u64,
    /// Tokens produced by decode steps.
    pub decoded_tokens: u64,
    /// Sessions admitted (prefilled successfully).
    pub admitted: u64,
    /// Sessions evicted under memory pressure.
    pub preemptions: u64,
    /// Paused sessions brought back.
    pub resumes: u64,
    /// K/V elements copied out by swap-out preemptions.
    pub swapped_out_elems: u64,
    /// K/V elements copied back by resumes.
    pub swapped_in_elems: u64,
    /// Tokens re-prefilled by recompute resumes.
    pub recompute_tokens: u64,
    /// Admissions that borrowed a cached prefix.
    pub prefix_hits: u64,
    /// Blocks borrowed across all prefix hits (allocation savings).
    pub prefix_shared_blocks: u64,
    /// Tokens covered by borrowed prefixes (skipped KV writes).
    pub prefix_shared_tokens: u64,
    /// High-water mark of simultaneously resident sessions.
    pub peak_resident_sessions: usize,
    /// Aggregated speculation counters across every stepped session —
    /// acceptance accounting for the serving report (all zeros unless
    /// [`KvScheduler::with_speculation`] is on).
    pub spec: SpecSessionStats,
    /// Every preemption, in order.
    pub preemption_events: Vec<PreemptionEvent>,
}

/// What one [`KvScheduler::tick`] did: the per-session step traces (for
/// batched tick costing), the prefill work the tick carried (admission
/// prefills and chunked-prefill pieces), the same steps' one-at-a-time
/// cycles, and which tickets crossed a lifecycle boundary — everything
/// a serving frontend needs to stamp per-request TTFT and inter-token
/// latency on a simulated clock.
#[derive(Debug)]
pub struct TickOutcome {
    /// One recorded decode-step trace per stepped session, ticket order
    /// (aligned with [`TickOutcome::stepped`]).
    pub step_traces: Vec<Trace>,
    /// Prefill traces this tick executed: whole-prompt admission
    /// prefills, then chunk pieces of still-prefilling sessions, in
    /// execution order.
    pub prefill_traces: Vec<Trace>,
    /// Sum of the steps' individually replayed cycles (the batch-1
    /// comparison basis).
    pub sequential_cycles: u64,
    /// Tickets admitted this tick (session created, prefill started).
    pub admitted: Vec<u64>,
    /// Tickets whose *first token* was sampled this tick (prefill
    /// completed) — the TTFT boundary.
    pub first_tokens: Vec<u64>,
    /// Tickets that ran a decode step this tick — each an inter-token
    /// latency boundary (aligned with [`TickOutcome::step_traces`]).
    pub stepped: Vec<u64>,
    /// Tokens each stepped session emitted this tick, aligned with
    /// [`TickOutcome::stepped`] — always `1` in plain mode, up to
    /// `k + 1` when a speculative step's proposals were accepted.
    pub emitted: Vec<usize>,
    /// Draft-model traces of this tick's speculative steps, aligned
    /// with [`TickOutcome::stepped`] (empty unless speculation is on;
    /// a `k_eff = 0` fallback step contributes an empty trace). This
    /// is the speculation overhead a frontend costs *separately* from
    /// the target's verify work.
    pub draft_traces: Vec<Trace>,
}

struct Entry<B: ComputeBackend + Clone> {
    session: DecodeSession<B>,
}

/// What [`KvScheduler::admit_one`] yields: the resident entry plus, in
/// unchunked mode, the admission prefill's recorded trace.
type AdmitEntry<B> = (Entry<B>, Option<Trace>);

/// The per-worker paged-KV decode scheduler. See the [module
/// docs](self).
pub struct KvScheduler<'m, B: ComputeBackend + Clone> {
    model: &'m DecoderLm,
    sim: &'m Simulator,
    backend: B,
    session_config: SessionConfig,
    preempt: PreemptPolicy,
    /// Chunked-prefill size in tokens; `0` = whole-prompt prefill at
    /// admission (the original behavior).
    prefill_chunk: usize,
    /// Speculative decoding: `(k, draft model)` when enabled. Running
    /// sessions then advance by [`DecodeSession::spec_step`] instead of
    /// plain steps, and the reserve phase books `k + 1` worst-case
    /// tokens per session so the batched verify can never exhaust the
    /// pool mid-speculation.
    spec: Option<(usize, DraftLm)>,
    pool: BlockPool,
    prefix: Option<PrefixIndex>,
    max_active: usize,
    active: Vec<Entry<B>>,
    paused: Vec<Entry<B>>,
    backlog: VecDeque<(u64, DecodeRequest)>,
    finished: Vec<(u64, DecodeReply)>,
    failed: Vec<u64>,
    stats: KvSchedStats,
}

impl<B: ComputeBackend + Clone> std::fmt::Debug for KvScheduler<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvScheduler")
            .field("active", &self.active.len())
            .field("paused", &self.paused.len())
            .field("backlog", &self.backlog.len())
            .field("pool_free", &self.pool.free_blocks())
            .finish_non_exhaustive()
    }
}

impl<'m, B: ComputeBackend + Clone> KvScheduler<'m, B> {
    /// Creates a scheduler with its own block pool, validated against
    /// the model and the simulator's architecture (see
    /// [`KvServeConfig::validate`]).
    pub fn new(
        model: &'m DecoderLm,
        sim: &'m Simulator,
        backend: B,
        session_config: SessionConfig,
        kv: KvServeConfig,
        max_active: usize,
    ) -> Self {
        let cfg = model.config();
        let blocks = kv.validate(&cfg, sim.config());
        KvScheduler {
            model,
            sim,
            backend,
            session_config,
            preempt: kv.preempt,
            prefill_chunk: 0,
            spec: None,
            pool: BlockPool::new(blocks, cfg.layers, cfg.dim, kv.block_tokens),
            prefix: kv.prefix_sharing.then(PrefixIndex::new),
            max_active: max_active.max(1),
            active: Vec::new(),
            paused: Vec::new(),
            backlog: VecDeque::new(),
            finished: Vec::new(),
            failed: Vec::new(),
            stats: KvSchedStats::default(),
        }
    }

    /// Enables chunked prefill: admission feeds at most `chunk_tokens`
    /// prompt tokens, and each subsequent tick advances every
    /// still-prefilling session by one more chunk *alongside* the
    /// decode steps of running sessions — so a long prompt costs any
    /// running session at most one chunk of extra latency per token
    /// instead of its whole prefill. `0` restores whole-prompt prefill
    /// at admission.
    ///
    /// For deterministic backends without per-tensor fake quantization,
    /// replies are bit-identical to the unchunked path (see
    /// [`DecoderLm::prefill_chunk`]); only the latency schedule changes.
    pub fn with_prefill_chunk(mut self, chunk_tokens: usize) -> Self {
        self.prefill_chunk = chunk_tokens;
        self
    }

    /// The configured chunked-prefill size (`0` = unchunked).
    pub fn prefill_chunk(&self) -> usize {
        self.prefill_chunk
    }

    /// Enables speculative decoding with a *self-speculative* draft —
    /// the target's own bottom half ([`DraftLm::from_target`]). Each
    /// tick then advances every running session by one
    /// [`DecodeSession::spec_step`]: the draft proposes up to `k`
    /// tokens and the target verifies them all in one batched pass, so
    /// a session can emit up to `k + 1` tokens per tick while its
    /// reply stays bit-identical to plain decoding.
    ///
    /// The reserve phase books the worst case (`k_eff + 1` verify rows
    /// per session) *before* any session steps, so mid-speculation
    /// preemption is impossible by construction — a verify pass never
    /// finds the pool dry. `k = 0` leaves speculation off.
    pub fn with_speculation(self, k: usize) -> Self {
        let draft = DraftLm::from_target(self.model);
        self.with_speculation_draft(k, draft)
    }

    /// Enables speculative decoding with an explicit draft model (same
    /// contract as [`KvScheduler::with_speculation`]; the draft must
    /// share the target's vocabulary).
    pub fn with_speculation_draft(mut self, k: usize, draft: DraftLm) -> Self {
        self.spec = (k > 0).then_some((k, draft));
        self
    }

    /// The configured speculation depth (`0` = speculation off).
    pub fn speculation_k(&self) -> usize {
        self.spec.as_ref().map_or(0, |(k, _)| *k)
    }

    /// The scheduler's block pool.
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &KvSchedStats {
        &self.stats
    }

    /// Queues a request (admission happens inside [`KvScheduler::tick`],
    /// when the pool has room).
    pub fn submit(&mut self, ticket: u64, request: DecodeRequest) {
        self.backlog.push_back((ticket, request));
    }

    /// Whether any session is resident, paused, or waiting.
    pub fn has_work(&self) -> bool {
        !self.active.is_empty() || !self.paused.is_empty() || !self.backlog.is_empty()
    }

    /// In-flight slots still available (how many more submissions this
    /// scheduler wants before a tick).
    pub fn free_slots(&self) -> usize {
        self.max_active
            .saturating_sub(self.active.len() + self.paused.len() + self.backlog.len())
    }

    /// Takes the replies of every session that finished.
    pub fn drain_finished(&mut self) -> Vec<(u64, DecodeReply)> {
        std::mem::take(&mut self.finished)
    }

    /// Takes the tickets of requests that failed (malformed, or needing
    /// more KV blocks than the whole pool).
    pub fn drain_failed(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.failed)
    }

    /// One scheduling round: resume, admit, reserve (preempting if the
    /// pool cannot cover every resident session's next work), then
    /// advance every resident session — still-prefilling sessions by
    /// one chunk, running sessions by one decode step — and retire the
    /// finished. Returns `None` if nothing was admitted or resident.
    pub fn tick(&mut self) -> Option<TickOutcome> {
        self.resume_paused();
        let (admitted, mut prefill_traces, mut first_tokens) = self.admit();
        if self.active.is_empty() && admitted.is_empty() {
            return None;
        }
        self.stats.peak_resident_sessions =
            self.stats.peak_resident_sessions.max(self.active.len());
        self.reserve_for_step();

        let mut step_traces = Vec::with_capacity(self.active.len());
        let mut stepped = Vec::with_capacity(self.active.len());
        let mut emitted = Vec::with_capacity(self.active.len());
        let mut draft_traces = Vec::new();
        let mut sequential_cycles = 0;
        let spec = self.spec.as_ref();
        for entry in self.active.iter_mut() {
            let ticket = entry.session.ticket();
            if !entry.session.prefill_done() {
                // Chunked prefill: one bounded piece this tick, so the
                // decode steps below never wait out a whole prompt.
                prefill_traces.push(entry.session.prefill_partial(
                    self.model,
                    self.sim,
                    self.prefill_chunk,
                ));
                if entry.session.prefill_done() {
                    first_tokens.push(ticket);
                }
            } else if let Some((k, draft)) = spec {
                // Speculative step: the verify trace is the target's
                // executed work this tick; the draft trace is costed
                // separately (it is overhead, never folded into the
                // target's cycles). The reserve phase above already
                // booked the verify pass's k_eff + 1 transient rows.
                let report = entry.session.spec_step(self.model, draft, self.sim, *k);
                self.stats.spec.merge(&report.stats_delta());
                sequential_cycles += report.verify_cost.cycles + report.draft_cost.cycles;
                step_traces.push(report.verify_trace);
                draft_traces.push(report.draft_trace);
                stepped.push(ticket);
                emitted.push(report.outcome.emitted());
            } else {
                step_traces.push(entry.session.step(self.model, self.sim));
                stepped.push(ticket);
                emitted.push(1);
                if let Some(cost) = entry.session.last_step_cost() {
                    sequential_cycles += cost.cycles;
                }
            }
        }
        self.stats.decoded_tokens += emitted.iter().sum::<usize>() as u64;
        if !step_traces.is_empty() {
            self.stats.ticks += 1;
        }

        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].session.is_done() {
                let entry = self.active.remove(i);
                self.finished
                    .push((entry.session.ticket(), entry.session.into_reply()));
            } else {
                i += 1;
            }
        }
        Some(TickOutcome {
            step_traces,
            prefill_traces,
            sequential_cycles,
            admitted,
            first_tokens,
            stepped,
            emitted,
            draft_traces,
        })
    }

    /// Tokens the pool must absorb when `entry` next runs: one decode
    /// token for a running session (`k_eff + 1` in speculative mode —
    /// the batched verify transiently appends that many rows before
    /// rolling back, so reserving them up front makes mid-speculation
    /// preemption impossible by construction), the next chunk for a
    /// prefilling one.
    fn next_tokens(&self, entry: &Entry<B>) -> usize {
        if entry.session.prefill_done() {
            match &self.spec {
                Some((k, _)) => (*k).min(entry.session.remaining_tokens().saturating_sub(1)) + 1,
                None => 1,
            }
        } else {
            entry.session.prefill_remaining().min(self.prefill_chunk)
        }
    }

    /// Blocks a paused session needs to become resident again (restore
    /// plus one decode step).
    fn resume_need(&self, entry: &Entry<B>) -> usize {
        let kv = entry
            .session
            .paged_kv()
            .expect("scheduler sessions are paged");
        let pending = self.next_tokens(entry);
        if kv.is_swapped() {
            kv.blocks_needed(pending)
        } else {
            // Recompute: the cache is empty; the resume re-prefills
            // everything fed so far, then the tick appends its next work.
            (self.fed_tokens(entry) + pending).div_ceil(self.pool.block_tokens())
        }
    }

    /// Tokens already in (or owed to) `entry`'s KV cache: the full
    /// context for a running session, the chunks fed so far for a
    /// still-prefilling one.
    fn fed_tokens(&self, entry: &Entry<B>) -> usize {
        if entry.session.prefill_done() {
            entry.session.prompt().len() + entry.session.tokens().len() - 1
        } else {
            entry.session.prompt().len() - entry.session.prefill_remaining()
        }
    }

    fn resume_paused(&mut self) {
        self.paused.sort_by_key(|e| e.session.ticket());
        while let Some(front) = self.paused.first() {
            if self.resume_need(front) > self.pool.free_blocks() {
                break;
            }
            let mut entry = self.paused.remove(0);
            match self.preempt {
                PreemptPolicy::SwapOut => {
                    let moved = entry
                        .session
                        .paged_kv_mut()
                        .expect("scheduler sessions are paged")
                        .resume();
                    self.stats.swapped_in_elems += moved;
                }
                PreemptPolicy::Recompute => {
                    let fed = self.fed_tokens(&entry);
                    if fed > 0 {
                        entry.session.resume_by_recompute(self.model);
                    }
                    self.stats.recompute_tokens += fed as u64;
                }
            }
            self.stats.resumes += 1;
            self.active.push(entry);
            self.active.sort_by_key(|e| e.session.ticket());
        }
    }

    fn admit(&mut self) -> (Vec<u64>, Vec<Trace>, Vec<u64>) {
        let mut admitted = Vec::new();
        let mut prefill_traces = Vec::new();
        let mut first_tokens = Vec::new();
        while self.active.len() + self.paused.len() < self.max_active {
            let Some((_, request)) = self.backlog.front() else {
                break;
            };
            let need = request.prompt.len().div_ceil(self.pool.block_tokens()) + 1;
            if need > self.pool.total_blocks() {
                // Can never fit, even alone in an empty pool: fail it
                // (the client's reply channel drops) instead of
                // wedging the FIFO head forever.
                let (ticket, _) = self.backlog.pop_front().expect("front exists");
                self.failed.push(ticket);
                continue;
            }
            if need > self.pool.free_blocks() {
                break; // strict FIFO: no head-of-line bypass
            }
            let (ticket, request) = self.backlog.pop_front().expect("front exists");
            match self.admit_one(ticket, request) {
                Ok((entry, trace)) => {
                    self.stats.admitted += 1;
                    admitted.push(ticket);
                    if let Some(trace) = trace {
                        // Unchunked: admission ran the whole prefill and
                        // sampled the first token right here.
                        prefill_traces.push(trace);
                        first_tokens.push(ticket);
                    }
                    if entry.session.is_done() {
                        self.finished
                            .push((entry.session.ticket(), entry.session.into_reply()));
                    } else {
                        self.active.push(entry);
                        self.active.sort_by_key(|e| e.session.ticket());
                    }
                }
                Err(()) => self.failed.push(ticket),
            }
        }
        (admitted, prefill_traces, first_tokens)
    }

    /// Builds one session and — in unchunked mode — runs its whole
    /// prefill, returning the recorded trace. A panic (empty prompt,
    /// context overflow, out-of-vocabulary token) is contained — the
    /// unwound cache's `Drop` releases every block it held, borrowed
    /// prefix blocks included, so a malformed request cannot leak pool
    /// memory. In chunked mode the session is only *validated and
    /// created* here (no trace); [`KvScheduler::tick`]'s step phase
    /// feeds its chunks, and prefix sharing is bypassed because a
    /// borrowed prefix would desynchronize the chunk cursor from the
    /// cache length.
    fn admit_one(&mut self, ticket: u64, request: DecodeRequest) -> Result<AdmitEntry<B>, ()> {
        let cfg = self.model.config();
        let chunked = self.prefill_chunk > 0;
        let shared = if chunked {
            None
        } else {
            self.prefix
                .as_mut()
                .and_then(|index| index.lookup(&self.pool, &request.prompt))
        };
        let shared_stats = shared.as_ref().map(|p| (p.num_blocks(), p.tokens()));
        let model = self.model;
        let sim = self.sim;
        let backend = self.backend.clone();
        let session_config = self.session_config;
        let pool = self.pool.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            if chunked {
                // Later chunks run outside this catch_unwind, so reject
                // out-of-vocabulary tokens up front.
                assert!(
                    request.prompt.iter().all(|&t| t < cfg.vocab),
                    "prompt token out of vocabulary"
                );
            }
            let cache = match shared {
                Some(prefix) => {
                    PagedKvCache::with_shared_prefix(&pool, cfg.layers, cfg.dim, prefix)
                }
                None => PagedKvCache::new(&pool, cfg.layers, cfg.dim),
            };
            let mut session = DecodeSession::new_paged(
                model,
                ticket,
                request.prompt,
                request.max_new_tokens,
                backend,
                session_config,
                cache,
            );
            let trace = (!chunked).then(|| session.prefill(model, sim));
            (session, trace)
        }));
        match outcome {
            Ok((session, trace)) => {
                if let Some((blocks, tokens)) = shared_stats {
                    self.stats.prefix_hits += 1;
                    self.stats.prefix_shared_blocks += blocks as u64;
                    self.stats.prefix_shared_tokens += tokens as u64;
                }
                if !chunked {
                    if let Some(index) = self.prefix.as_mut() {
                        let refs = session
                            .paged_kv()
                            .expect("scheduler sessions are paged")
                            .block_refs(session.prompt().len());
                        index.register(session.prompt(), refs);
                    }
                }
                Ok((Entry { session }, trace))
            }
            Err(_) => Err(()),
        }
    }

    /// Guarantees the pool can absorb every resident session's next
    /// token (a fresh block at a boundary, a copy-on-write of a shared
    /// block) by preempting the highest-ticket sessions until it can.
    fn reserve_for_step(&mut self) {
        loop {
            let need: usize = self
                .active
                .iter()
                .map(|e| {
                    e.session
                        .paged_kv()
                        .expect("scheduler sessions are paged")
                        .blocks_needed(self.next_tokens(e))
                })
                .sum();
            if need <= self.pool.free_blocks() {
                return;
            }
            assert!(
                self.active.len() > 1,
                "KV pool cannot cover a single session's next token — \
                 KvServeConfig::validate should have rejected this pool"
            );
            let resident: Vec<u64> = self.active.iter().map(|e| e.session.ticket()).collect();
            let victim_idx = self.active.len() - 1; // active is ticket-sorted
            let mut entry = self.active.remove(victim_idx);
            match self.preempt {
                PreemptPolicy::SwapOut => {
                    let moved = entry
                        .session
                        .paged_kv_mut()
                        .expect("scheduler sessions are paged")
                        .swap_out();
                    self.stats.swapped_out_elems += moved;
                }
                PreemptPolicy::Recompute => {
                    entry
                        .session
                        .paged_kv_mut()
                        .expect("scheduler sessions are paged")
                        .drop_resident();
                }
            }
            self.stats.preemptions += 1;
            self.stats.preemption_events.push(PreemptionEvent {
                victim: entry.session.ticket(),
                resident,
            });
            self.paused.push(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecoderConfig;
    use lt_core::{GaussianSampler, NativeBackend};

    fn model() -> DecoderLm {
        let mut rng = GaussianSampler::new(5);
        DecoderLm::new(DecoderConfig::tiny(), &mut rng)
    }

    fn run_to_completion<B: ComputeBackend + Clone>(
        sched: &mut KvScheduler<'_, B>,
    ) -> Vec<(u64, DecodeReply)> {
        let mut replies = Vec::new();
        while sched.has_work() {
            sched.tick();
            replies.extend(sched.drain_finished());
        }
        replies.sort_by_key(|&(t, _)| t);
        replies
    }

    #[test]
    #[should_panic(expected = "cannot hold one max_seq")]
    fn undersized_pool_is_rejected_at_construction() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        // tiny() has max_seq 48: 16-token blocks need ceil(48/16)+1 = 4.
        let kv = KvServeConfig {
            block_tokens: 16,
            pool_blocks: 3,
            ..KvServeConfig::default()
        };
        let _ = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 4);
    }

    #[test]
    #[should_panic(expected = "block_tokens must be positive")]
    fn zero_block_size_is_rejected() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let kv = KvServeConfig {
            block_tokens: 0,
            pool_blocks: 64,
            ..KvServeConfig::default()
        };
        let _ = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 4);
    }

    #[test]
    fn pool_blocks_derive_from_the_arch_kv_budget() {
        let cfg = DecoderConfig::tiny();
        let mut arch = ArchConfig::lt_base(8);
        arch.kv_pool_bytes = 1 << 20;
        let kv = KvServeConfig::default();
        // block = 2 * 2 layers * 16 tokens * 32 dim * 8 bits / 8 = 2048 B.
        assert_eq!(kv.block_bytes(&cfg, 8), 2048);
        assert_eq!(kv.resolved_pool_blocks(&cfg, &arch), 512);
    }

    #[test]
    fn a_starved_pool_preempts_highest_tickets_and_still_serves_everyone() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        // 13 blocks of 4 tokens; six 10-token decodes need 3 blocks each
        // once their contexts grow — more than the pool holds at once.
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 13,
            ..KvServeConfig::default()
        };
        let mut sched = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 6);
        for t in 0..6u64 {
            sched.submit(
                t,
                DecodeRequest {
                    prompt: vec![1, 2, 3, 4, 5],
                    max_new_tokens: 6,
                },
            );
        }
        let replies = run_to_completion(&mut sched);
        assert_eq!(replies.len(), 6, "every session finishes despite eviction");
        for (_, r) in &replies {
            assert_eq!(r.tokens.len(), 6);
        }
        let stats = sched.stats();
        assert!(stats.preemptions > 0, "the pool must have run dry");
        assert_eq!(stats.preemptions, stats.resumes, "everyone came back");
        assert!(stats.swapped_out_elems > 0);
        assert_eq!(stats.swapped_out_elems, stats.swapped_in_elems);
        for ev in &stats.preemption_events {
            assert_eq!(
                Some(ev.victim),
                ev.resident.iter().copied().max(),
                "victim must be the most recently admitted resident"
            );
        }
        assert_eq!(sched.pool().used_blocks(), 0, "all blocks returned");
    }

    fn run_requests(
        chunk: usize,
        kv: KvServeConfig,
        max_active: usize,
        requests: &[(Vec<usize>, usize)],
    ) -> (Vec<(u64, DecodeReply)>, KvSchedStats) {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut sched = KvScheduler::new(
            &m,
            &sim,
            NativeBackend,
            SessionConfig::default(),
            kv,
            max_active,
        )
        .with_prefill_chunk(chunk);
        for (t, (prompt, max_new)) in requests.iter().enumerate() {
            sched.submit(
                t as u64,
                DecodeRequest {
                    prompt: prompt.clone(),
                    max_new_tokens: *max_new,
                },
            );
        }
        let replies = run_to_completion(&mut sched);
        (replies, sched.stats().clone())
    }

    #[test]
    fn chunked_prefill_replies_are_bit_identical_to_unchunked() {
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            ..KvServeConfig::default()
        };
        let requests: Vec<(Vec<usize>, usize)> = (0..5)
            .map(|i| {
                (
                    (0..(7 + 5 * i)).map(|t| (t * 3 + i) % 16).collect(),
                    3 + i % 4,
                )
            })
            .collect();
        let (whole, _) = run_requests(0, kv, 4, &requests);
        for chunk in [1, 3, 16] {
            let (chunked, stats) = run_requests(chunk, kv, 4, &requests);
            assert_eq!(chunked.len(), whole.len());
            for ((t_a, a), (t_b, b)) in whole.iter().zip(&chunked) {
                assert_eq!(t_a, t_b);
                assert_eq!(
                    a.tokens, b.tokens,
                    "chunk={chunk} changed ticket {t_a}'s reply"
                );
                assert_eq!(a.kv_cache_bytes, b.kv_cache_bytes);
            }
            assert_eq!(stats.admitted, requests.len() as u64);
        }
    }

    #[test]
    fn chunked_prefill_interleaves_decode_steps_with_a_long_prompt() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            ..KvServeConfig::default()
        };
        let mut sched = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 4)
            .with_prefill_chunk(2);
        // A short request gets running first…
        sched.submit(
            0,
            DecodeRequest {
                prompt: vec![1, 2, 3],
                max_new_tokens: 24,
            },
        );
        let first = sched.tick().expect("admission tick");
        assert_eq!(first.admitted, vec![0]);
        assert!(
            first.first_tokens.contains(&0) || !first.prefill_traces.is_empty(),
            "admission starts prefilling"
        );
        while !sched
            .tick()
            .expect("work remains")
            .first_tokens
            .contains(&0)
        {}
        // …then a 10x-longer prompt arrives mid-stream.
        sched.submit(
            1,
            DecodeRequest {
                prompt: (0..30).map(|t| t % 16).collect(),
                max_new_tokens: 2,
            },
        );
        let mut prefill_ticks = 0;
        loop {
            let out = sched.tick().expect("work remains");
            if out.first_tokens.contains(&1) {
                break;
            }
            if out.admitted.contains(&1) || !out.prefill_traces.is_empty() {
                prefill_ticks += 1;
                assert!(
                    out.stepped.contains(&0),
                    "session 0 must keep stepping while session 1 prefills in chunks"
                );
            }
        }
        assert!(
            prefill_ticks >= 10,
            "a 30-token prompt at chunk 2 needs >= 15 pieces, saw {prefill_ticks} ticks"
        );
        let replies = run_to_completion(&mut sched);
        assert_eq!(replies.len(), 2);
    }

    #[test]
    fn a_starved_pool_recovers_mid_prefill_sessions_under_both_policies() {
        for preempt in [PreemptPolicy::SwapOut, PreemptPolicy::Recompute] {
            let kv = KvServeConfig {
                block_tokens: 4,
                pool_blocks: 13,
                preempt,
                ..KvServeConfig::default()
            };
            let requests: Vec<(Vec<usize>, usize)> = (0..6)
                .map(|i| ((0..20).map(|t| (t + i) % 16).collect(), 4))
                .collect();
            let (whole, _) = run_requests(0, kv, 6, &requests);
            let (chunked, stats) = run_requests(3, kv, 6, &requests);
            assert!(stats.preemptions > 0, "{preempt:?}: pool must run dry");
            assert_eq!(whole.len(), 6);
            assert_eq!(chunked.len(), 6);
            for ((_, a), (_, b)) in whole.iter().zip(&chunked) {
                assert_eq!(a.tokens, b.tokens, "{preempt:?} broke chunked replies");
            }
        }
    }

    #[test]
    fn a_malformed_request_fails_cleanly_in_chunked_mode() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            ..KvServeConfig::default()
        };
        let mut sched = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 4)
            .with_prefill_chunk(2);
        sched.submit(
            0,
            DecodeRequest {
                prompt: vec![1, usize::MAX, 2], // out of vocabulary
                max_new_tokens: 4,
            },
        );
        sched.submit(
            1,
            DecodeRequest {
                prompt: vec![1, 2, 3, 4, 5],
                max_new_tokens: 4,
            },
        );
        let replies = run_to_completion(&mut sched);
        assert_eq!(sched.drain_failed(), vec![0]);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, 1);
        assert_eq!(sched.pool().used_blocks(), 0, "no leaked blocks");
    }

    fn run_requests_spec(
        k: usize,
        kv: KvServeConfig,
        max_active: usize,
        requests: &[(Vec<usize>, usize)],
    ) -> (Vec<(u64, DecodeReply)>, KvSchedStats) {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut sched = KvScheduler::new(
            &m,
            &sim,
            NativeBackend,
            SessionConfig::default(),
            kv,
            max_active,
        )
        .with_speculation(k);
        assert_eq!(sched.speculation_k(), k);
        for (t, (prompt, max_new)) in requests.iter().enumerate() {
            sched.submit(
                t as u64,
                DecodeRequest {
                    prompt: prompt.clone(),
                    max_new_tokens: *max_new,
                },
            );
        }
        let replies = run_to_completion(&mut sched);
        assert_eq!(sched.pool().used_blocks(), 0, "all blocks returned");
        (replies, sched.stats().clone())
    }

    #[test]
    fn speculative_scheduling_replies_are_bit_identical_even_under_memory_pressure() {
        // The same starved pool as the preemption test: speculation must
        // coexist with eviction, and — because the reserve phase books
        // the verify pass's k_eff + 1 transient rows before any session
        // steps — a batched verify can never find the pool dry. The
        // replies (tokens AND per-token costs) must match plain
        // scheduling bit-exactly for every k.
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 13,
            ..KvServeConfig::default()
        };
        let requests: Vec<(Vec<usize>, usize)> = (0..6)
            .map(|i| ((0..5).map(|t| (t * 2 + i) % 16).collect(), 6))
            .collect();
        let (plain, plain_stats) = run_requests(0, kv, 6, &requests);
        assert_eq!(plain_stats.spec, SpecSessionStats::default());
        for k in [1, 2, 4] {
            let (spec, stats) = run_requests_spec(k, kv, 6, &requests);
            assert_eq!(plain, spec, "k={k} changed a reply");
            assert!(stats.preemptions > 0, "k={k}: pressure must stay real");
            assert!(stats.spec.spec_steps > 0, "k={k}: speculation must run");
            assert!(stats.spec.proposed > 0);
            assert_eq!(
                stats.spec.accepted + stats.spec.rolled_back,
                stats.spec.proposed,
                "every proposal is either accepted or rolled back"
            );
            assert_eq!(
                stats.spec.emitted, stats.decoded_tokens,
                "k={k}: every decoded token came from a speculative step"
            );
            assert_eq!(stats.decoded_tokens, plain_stats.decoded_tokens);
            assert!(stats.spec.draft_cycles > 0, "draft overhead is itemized");
        }
    }

    #[test]
    fn accepted_proposals_save_whole_scheduler_ticks() {
        // One session in a roomy pool: a speculative step emits
        // `accepted + 1` tokens per tick, so the run takes exactly
        // `accepted` fewer ticks than plain scheduling — the whole
        // point of speculation, in the scheduler's own currency.
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            ..KvServeConfig::default()
        };
        let requests = vec![(vec![1usize, 2, 3, 4, 5], 16)];
        let (plain, plain_stats) = run_requests(0, kv, 1, &requests);
        let (spec, stats) = run_requests_spec(4, kv, 1, &requests);
        assert_eq!(plain, spec, "speculation never changes the reply");
        assert_eq!(stats.spec.emitted, plain_stats.decoded_tokens);
        assert_eq!(
            stats.ticks + stats.spec.accepted,
            plain_stats.ticks,
            "each accepted proposal saves exactly one tick"
        );
    }

    #[test]
    fn a_speculative_tick_reports_per_session_emission_and_draft_traces() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            ..KvServeConfig::default()
        };
        let mut sched = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 4)
            .with_speculation(3);
        for t in 0..2u64 {
            sched.submit(
                t,
                DecodeRequest {
                    prompt: vec![1, 2, 3],
                    max_new_tokens: 8,
                },
            );
        }
        // Unchunked admission prefills and then steps in the same tick,
        // so the first tick is already a speculative one.
        let out = sched.tick().expect("admission + first speculative tick");
        assert_eq!(out.admitted, vec![0, 1]);
        assert_eq!(out.stepped, vec![0, 1]);
        assert_eq!(
            out.emitted.len(),
            2,
            "one emission count per stepped session"
        );
        assert_eq!(
            out.draft_traces.len(),
            2,
            "one draft trace per stepped session"
        );
        assert!(out.emitted.iter().all(|&e| (1..=4).contains(&e)));
        assert!(
            out.draft_traces.iter().all(|t| !t.is_empty()),
            "k_eff > 0 here, so every session drafted"
        );
        assert_eq!(
            sched.stats().decoded_tokens,
            out.emitted.iter().sum::<usize>() as u64
        );
    }

    #[test]
    fn prefix_sharing_skips_duplicate_prompt_blocks() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let kv = KvServeConfig {
            block_tokens: 4,
            pool_blocks: 64,
            prefix_sharing: true,
            ..KvServeConfig::default()
        };
        let mut sched = KvScheduler::new(&m, &sim, NativeBackend, SessionConfig::default(), kv, 8);
        let prompt = vec![1usize, 2, 3, 4, 5, 6, 7, 8];
        for t in 0..4u64 {
            sched.submit(
                t,
                DecodeRequest {
                    prompt: prompt.clone(),
                    max_new_tokens: 4,
                },
            );
        }
        let replies = run_to_completion(&mut sched);
        assert_eq!(replies.len(), 4);
        let stats = sched.stats();
        assert_eq!(
            stats.prefix_hits, 3,
            "sessions 1-3 borrow session 0's blocks"
        );
        assert_eq!(stats.prefix_shared_tokens, 3 * prompt.len() as u64);
        assert!(stats.prefix_shared_blocks >= 3 * 2, "two full blocks each");
        // Sharing must not change the tokens: all four replies agree
        // (deterministic backend, identical prompts, greedy sampling).
        for (_, r) in &replies[1..] {
            assert_eq!(r.tokens, replies[0].1.tokens);
        }
    }
}
