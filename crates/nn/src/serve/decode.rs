//! Continuous-batching decode serving (paper Section VI-B's remedy,
//! executed): worker threads interleave prefill and per-token decode
//! steps across many in-flight requests, admitting newcomers *between
//! token steps* — not at request boundaries — so the machine always has
//! a full batch of single-token work even though requests start and end
//! at different times.
//!
//! Every scheduler tick advances every active [`DecodeSession`] by one
//! token and merges the sessions' recorded step traces into one
//! coalesced tick trace. Replaying that merged trace through the
//! accelerator model is the batching argument of Section VI-B made
//! executable: the per-session matrix-vector products (`[1, d] x [d, d]`
//! projections, `[1, dh] x [dh, ctx]` attention) coalesce into
//! multi-instance ops that fill hardware tiles a lone token would leave
//! idle, so the batched cycles-per-token drop below the one-at-a-time
//! cost — [`DecodeServer::batched_cycles`] vs.
//! [`DecodeServer::sequential_cycles`] quantifies exactly that on every
//! run.
//!
//! # Determinism
//!
//! A reply (token stream *and* per-token costs) is a pure function of
//! the model weights, the prompt, and `split_seed(seed, ticket)`. The
//! scheduler changes which sessions share a tick, never what a session
//! computes, so serving the same stream with 1, 2, or 4 workers — or a
//! different `max_active` — returns bit-identical replies
//! (`tests/runtime_determinism.rs`).

use crate::decode::{DecodeReply, DecodeSession, DecoderLm, SessionConfig};
use crate::quant::QuantConfig;
use lt_arch::{ArchConfig, RunReport, Simulator};
use lt_core::{ComputeBackend, Trace};
use lt_runtime::BatchQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One autoregressive generation request.
#[derive(Debug, Clone)]
pub struct DecodeRequest {
    /// Prompt token ids (must fit the model's vocabulary and context).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate (>= 1; the first comes from the
    /// prefill logits, the rest from decode steps).
    pub max_new_tokens: usize,
}

/// Decode-serving configuration.
#[derive(Debug, Clone)]
pub struct DecodeServeConfig {
    /// Worker threads, each holding its own clone of the weights and
    /// running its own continuous batch.
    pub workers: usize,
    /// Maximum sessions a worker keeps in flight at once (the
    /// continuous-batch width).
    pub max_active: usize,
    /// Root seed; session noise streams are `split_seed(seed, ticket)`.
    pub seed: u64,
    /// Operand fake-quantization applied to every forward pass.
    pub quant: QuantConfig,
    /// Accelerator model that costs every recorded trace (default:
    /// LT-B at 8 bits).
    pub arch: ArchConfig,
}

impl Default for DecodeServeConfig {
    fn default() -> Self {
        DecodeServeConfig {
            workers: 2,
            max_active: 8,
            seed: 0,
            quant: QuantConfig::fp32(),
            arch: ArchConfig::lt_base(8),
        }
    }
}

/// A handle to one in-flight decode request.
#[derive(Debug)]
pub struct PendingDecode {
    ticket: u64,
    rx: Receiver<DecodeReply>,
}

impl PendingDecode {
    /// The queue ticket (submission order, also the noise-stream index).
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Blocks until the reply (tokens + prefill and per-token costs).
    ///
    /// # Panics
    ///
    /// Panics if the server shut down before serving this request, or if
    /// the request was malformed (empty prompt, context overflow,
    /// out-of-vocabulary token) and its session panicked — other
    /// requests and the worker are unaffected.
    pub fn wait(self) -> DecodeReply {
        self.rx
            .recv()
            .expect("decode request failed or server dropped before replying")
    }
}

#[derive(Debug)]
struct Job {
    request: DecodeRequest,
    reply: Sender<DecodeReply>,
}

/// Merges one scheduler tick's per-session step traces into the batched
/// decode form ([`Trace::batch_rows`]: each session's `[1, k] x [k, n]`
/// matrix-vector products stack into `[active, k] x [k, n]` GEMMs) and
/// costs it — the replayed-cycle metric behind the "batching fixes
/// memory-bound decode" claim. Weights load once per batched op instead
/// of once per session, and the stacked rows fill tile rows a lone
/// token would leave idle, so for `n` equal-geometry sessions the
/// merged cycles are well below `n` times a lone session's step cycles.
pub fn batched_tick_cost(step_traces: &[Trace], sim: &Simulator) -> RunReport {
    sim.run_trace(&Trace::batch_rows(step_traces).coalesce())
}

/// The continuous-batching decode server. See the [module docs](self).
///
/// ```
/// use lt_core::{GaussianSampler, NativeBackend};
/// use lt_nn::decode::{DecoderConfig, DecoderLm};
/// use lt_nn::serve::decode::{DecodeRequest, DecodeServeConfig, DecodeServer};
///
/// let mut rng = GaussianSampler::new(1);
/// let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
/// let server = DecodeServer::new(model, NativeBackend, DecodeServeConfig::default());
/// let pending = server.submit(DecodeRequest { prompt: vec![1, 2, 3], max_new_tokens: 4 });
/// let reply = pending.wait();
/// assert_eq!(reply.tokens.len(), 4);
/// assert_eq!(reply.steps.len(), 3, "prefill covers the first token");
/// assert!(reply.steps.iter().all(|s| s.cycles > 0), "per-token replayed cost");
/// ```
#[derive(Debug)]
pub struct DecodeServer {
    queue: Arc<BatchQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    decoded_tokens: Arc<AtomicU64>,
    ticks: Arc<AtomicU64>,
    batched_cycles: Arc<AtomicU64>,
    sequential_cycles: Arc<AtomicU64>,
}

impl DecodeServer {
    /// Starts `config.workers` continuous-batching workers, each with
    /// its own clone of the model weights.
    pub fn new<B: ComputeBackend + Clone + Send + 'static>(
        model: DecoderLm,
        backend: B,
        config: DecodeServeConfig,
    ) -> Self {
        let queue: Arc<BatchQueue<Job>> = Arc::new(BatchQueue::new(config.max_active.max(1)));
        let served = Arc::new(AtomicU64::new(0));
        let decoded_tokens = Arc::new(AtomicU64::new(0));
        let ticks = Arc::new(AtomicU64::new(0));
        let batched_cycles = Arc::new(AtomicU64::new(0));
        let sequential_cycles = Arc::new(AtomicU64::new(0));
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let served = Arc::clone(&served);
                let decoded_tokens = Arc::clone(&decoded_tokens);
                let ticks = Arc::clone(&ticks);
                let batched_cycles = Arc::clone(&batched_cycles);
                let sequential_cycles = Arc::clone(&sequential_cycles);
                let model = model.clone();
                let backend = backend.clone();
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("lt-decode-worker-{w}"))
                    .spawn(move || {
                        worker_loop(
                            &model,
                            &backend,
                            &config,
                            &queue,
                            &served,
                            &decoded_tokens,
                            &ticks,
                            &batched_cycles,
                            &sequential_cycles,
                        )
                    })
                    .expect("failed to spawn decode worker")
            })
            .collect();
        DecodeServer {
            queue,
            workers,
            served,
            decoded_tokens,
            ticks,
            batched_cycles,
            sequential_cycles,
        }
    }

    /// Enqueues a request; returns immediately with a reply handle.
    pub fn submit(&self, request: DecodeRequest) -> PendingDecode {
        let (reply, rx) = channel();
        let ticket = self.queue.submit(Job { request, reply });
        PendingDecode { ticket, rx }
    }

    /// Requests fully served so far (malformed ones are drained, not
    /// counted).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Tokens produced by decode steps (excludes the prefill-sampled
    /// first token of each request — the memory-bound per-token regime).
    pub fn decoded_tokens(&self) -> u64 {
        self.decoded_tokens.load(Ordering::Relaxed)
    }

    /// Scheduler ticks executed; `decoded_tokens() / ticks()` is the
    /// realized continuous-batch width.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Replayed photonic cycles of the *merged* per-tick step traces —
    /// what the accelerator would spend running each tick's sessions as
    /// one batch.
    pub fn batched_cycles(&self) -> u64 {
        self.batched_cycles.load(Ordering::Relaxed)
    }

    /// Replayed photonic cycles of every session's step costed alone —
    /// what the accelerator would spend serving the same tokens one
    /// request at a time (batch 1).
    pub fn sequential_cycles(&self) -> u64 {
        self.sequential_cycles.load(Ordering::Relaxed)
    }

    /// Drains outstanding requests, stops the workers, and returns the
    /// number of requests served.
    pub fn shutdown(mut self) -> u64 {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.served()
    }
}

impl Drop for DecodeServer {
    fn drop(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One active session and its reply channel.
struct Active<B: ComputeBackend + Clone> {
    session: DecodeSession<B>,
    reply: Sender<DecodeReply>,
}

/// The continuous-batching worker: admit (blocking only when idle),
/// prefill newcomers, then advance *every* active session by one token
/// per tick, retiring sessions as they finish.
#[allow(clippy::too_many_arguments)] // counters are plain shared stats
fn worker_loop<B: ComputeBackend + Clone>(
    model: &DecoderLm,
    backend: &B,
    config: &DecodeServeConfig,
    queue: &BatchQueue<Job>,
    served: &AtomicU64,
    decoded_tokens: &AtomicU64,
    ticks: &AtomicU64,
    batched_cycles: &AtomicU64,
    sequential_cycles: &AtomicU64,
) {
    let sim = Simulator::new(config.arch.clone());
    let session_config = SessionConfig {
        seed: config.seed,
        quant: config.quant,
        kv_bits: config.arch.precision_bits,
    };
    let mut active: Vec<Active<B>> = Vec::new();
    loop {
        // Admission: block only when there is nothing to step; top up
        // free slots without blocking while a batch is running.
        let admitted = if active.is_empty() {
            match queue.next_batch() {
                Some(batch) => batch,
                None => break, // closed and drained
            }
        } else {
            queue
                .try_take(config.max_active.saturating_sub(active.len()))
                .unwrap_or_default()
        };
        for (ticket, job) in admitted {
            // Contain malformed requests (empty prompt, context
            // overflow, out-of-vocabulary token): the offending
            // client's sender is dropped — its `wait` panics with a
            // clear message — while the batch and the worker survive.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut session = DecodeSession::new(
                    model,
                    ticket,
                    job.request.prompt.clone(),
                    job.request.max_new_tokens,
                    backend.clone(),
                    session_config,
                );
                session.prefill(model, &sim);
                session
            }));
            if let Ok(session) = outcome {
                let entry = Active {
                    session,
                    reply: job.reply,
                };
                if entry.session.is_done() {
                    retire(entry, served);
                } else {
                    active.push(entry);
                }
            }
        }
        if active.is_empty() {
            continue;
        }

        // One interleaved tick: every active session decodes one token.
        let mut step_traces = Vec::with_capacity(active.len());
        for entry in active.iter_mut() {
            step_traces.push(entry.session.step(model, &sim));
            if let Some(cost) = entry.session.last_step_cost() {
                sequential_cycles.fetch_add(cost.cycles, Ordering::Relaxed);
            }
        }
        let tick_cost = batched_tick_cost(&step_traces, &sim);
        batched_cycles.fetch_add(tick_cost.cycles, Ordering::Relaxed);
        decoded_tokens.fetch_add(step_traces.len() as u64, Ordering::Relaxed);
        ticks.fetch_add(1, Ordering::Relaxed);

        // Retire finished sessions (their replies are complete).
        let mut i = 0;
        while i < active.len() {
            if active[i].session.is_done() {
                retire(active.remove(i), served);
            } else {
                i += 1;
            }
        }
    }
}

fn retire<B: ComputeBackend + Clone>(entry: Active<B>, served: &AtomicU64) {
    served.fetch_add(1, Ordering::Relaxed);
    // A client that dropped its handle just doesn't read the reply.
    let _ = entry.reply.send(entry.session.into_reply());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::DecoderConfig;
    use lt_core::{GaussianSampler, NativeBackend};
    use lt_dptc::DptcBackend;

    fn model() -> DecoderLm {
        let mut rng = GaussianSampler::new(5);
        DecoderLm::new(DecoderConfig::tiny(), &mut rng)
    }

    fn mixed_requests(n: usize) -> Vec<DecodeRequest> {
        (0..n)
            .map(|i| DecodeRequest {
                prompt: (0..(3 + i % 4)).map(|t| (i + t) % 16).collect(),
                max_new_tokens: 2 + i % 5,
            })
            .collect()
    }

    fn serve_all<B: ComputeBackend + Clone + Send + 'static>(
        backend: B,
        cfg: DecodeServeConfig,
        requests: &[DecodeRequest],
    ) -> Vec<DecodeReply> {
        let server = DecodeServer::new(model(), backend, cfg);
        let pending: Vec<PendingDecode> =
            requests.iter().map(|r| server.submit(r.clone())).collect();
        let replies: Vec<DecodeReply> = pending.into_iter().map(PendingDecode::wait).collect();
        assert_eq!(server.shutdown(), requests.len() as u64);
        replies
    }

    #[test]
    fn serves_mixed_decode_requests_with_per_token_costs() {
        let requests = mixed_requests(9);
        let replies = serve_all(NativeBackend, DecodeServeConfig::default(), &requests);
        for (req, r) in requests.iter().zip(&replies) {
            assert_eq!(r.tokens.len(), req.max_new_tokens);
            assert_eq!(r.steps.len(), req.max_new_tokens - 1);
            assert!(r.tokens.iter().all(|&t| t < 16));
            assert!(r.prefill.cycles > 0);
            assert!(r.steps.iter().all(|s| s.cycles > 0 && s.edp() > 0.0));
            assert!(r.kv_cache_bytes > 0);
            // Every per-token report says where its window went.
            assert!(r
                .steps
                .iter()
                .all(|s| s.utilization > 0.0 && s.stalls.total().value() > 0.0));
        }
    }

    #[test]
    fn replies_do_not_depend_on_worker_count_or_batch_width() {
        let requests = mixed_requests(8);
        let backend = DptcBackend::paper(8, 3);
        let base = serve_all(
            backend.clone(),
            DecodeServeConfig {
                workers: 1,
                max_active: 1,
                ..DecodeServeConfig::default()
            },
            &requests,
        );
        for (workers, max_active) in [(2, 4), (4, 8)] {
            let got = serve_all(
                backend.clone(),
                DecodeServeConfig {
                    workers,
                    max_active,
                    ..DecodeServeConfig::default()
                },
                &requests,
            );
            for (a, b) in base.iter().zip(&got) {
                assert_eq!(a, b, "workers={workers} max_active={max_active}");
            }
        }
    }

    #[test]
    fn a_malformed_request_does_not_poison_the_batch_or_the_worker() {
        let server = DecodeServer::new(
            model(),
            NativeBackend,
            DecodeServeConfig {
                workers: 1,
                ..DecodeServeConfig::default()
            },
        );
        let good_before = server.submit(DecodeRequest {
            prompt: vec![1, 2],
            max_new_tokens: 2,
        });
        let bad = server.submit(DecodeRequest {
            prompt: vec![],
            max_new_tokens: 2,
        });
        let overflow = server.submit(DecodeRequest {
            prompt: vec![0; 40],
            max_new_tokens: 20,
        });
        let good_after = server.submit(DecodeRequest {
            prompt: vec![3, 4, 5],
            max_new_tokens: 3,
        });
        assert_eq!(good_before.wait().tokens.len(), 2);
        assert_eq!(good_after.wait().tokens.len(), 3, "worker survived");
        assert!(std::panic::catch_unwind(move || bad.wait()).is_err());
        assert!(std::panic::catch_unwind(move || overflow.wait()).is_err());
        assert_eq!(server.shutdown(), 2, "only the good requests count");
    }

    #[test]
    fn batched_ticks_cost_fewer_cycles_than_one_at_a_time() {
        // The Section VI-B claim in the replayed-cycle metric: sixteen
        // equal-geometry sessions stepped as one continuous batch cost
        // fewer cycles than the same sixteen tokens decoded at batch 1.
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut sessions: Vec<DecodeSession<NativeBackend>> = (0..16)
            .map(|t| {
                DecodeSession::new(
                    &m,
                    t,
                    vec![1, 2, 3, 4],
                    4,
                    NativeBackend,
                    SessionConfig::default(),
                )
            })
            .collect();
        for s in sessions.iter_mut() {
            s.prefill(&m, &sim);
        }
        let traces: Vec<Trace> = sessions.iter_mut().map(|s| s.step(&m, &sim)).collect();
        let single: u64 = sessions
            .iter()
            .map(|s| s.last_step_cost().unwrap().cycles)
            .sum();
        let batched = batched_tick_cost(&traces, &sim).cycles;
        assert!(
            batched < single,
            "batch 16 must beat 16x batch 1: {batched} vs {single}"
        );
        // Tokens/s at batch 16 = 16 tokens / batched cycles, vs batch 1
        // = 1 token / (single/16) cycles: the ratio is single/batched.
        assert!(
            single as f64 / batched as f64 > 2.0,
            "tile filling should be worth well over 2x: {single}/{batched}"
        );
    }

    #[test]
    fn continuous_admission_interleaves_requests_mid_flight() {
        // One worker, wide batch: submit a long request, then while it
        // decodes, short ones join and finish — continuous batching (the
        // realized batch width exceeds 1 even with a single worker).
        let server = DecodeServer::new(
            model(),
            NativeBackend,
            DecodeServeConfig {
                workers: 1,
                max_active: 8,
                ..DecodeServeConfig::default()
            },
        );
        let long = server.submit(DecodeRequest {
            prompt: vec![1, 2, 3],
            max_new_tokens: 12,
        });
        let shorts: Vec<_> = (0..6)
            .map(|i| {
                server.submit(DecodeRequest {
                    prompt: vec![i % 16, (i + 1) % 16],
                    max_new_tokens: 3,
                })
            })
            .collect();
        assert_eq!(long.wait().tokens.len(), 12);
        for s in shorts {
            assert_eq!(s.wait().tokens.len(), 3);
        }
        assert_eq!(server.served(), 7);
        assert!(server.ticks() > 0);
        assert!(server.decoded_tokens() >= server.ticks(), "width >= 1");
        assert!(server.batched_cycles() <= server.sequential_cycles());
        server.shutdown();
    }
}
