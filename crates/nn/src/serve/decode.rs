//! Continuous-batching decode serving (paper Section VI-B's remedy,
//! executed): worker threads interleave prefill and per-token decode
//! steps across many in-flight requests, admitting newcomers *between
//! token steps* — not at request boundaries — so the machine always has
//! a full batch of single-token work even though requests start and end
//! at different times.
//!
//! Every scheduler tick advances every active
//! [`crate::decode::DecodeSession`] by one
//! token and merges the sessions' recorded step traces into one
//! coalesced tick trace. Replaying that merged trace through the
//! accelerator model is the batching argument of Section VI-B made
//! executable: the per-session matrix-vector products (`[1, d] x [d, d]`
//! projections, `[1, dh] x [dh, ctx]` attention) coalesce into
//! multi-instance ops that fill hardware tiles a lone token would leave
//! idle, so the batched cycles-per-token drop below the one-at-a-time
//! cost — [`DecodeServer::batched_cycles`] vs.
//! [`DecodeServer::sequential_cycles`] quantifies exactly that on every
//! run.
//!
//! # Determinism
//!
//! A reply (token stream *and* per-token costs) is a pure function of
//! the model weights, the prompt, and `split_seed(seed, ticket)`. The
//! scheduler changes which sessions share a tick, never what a session
//! computes, so serving the same stream with 1, 2, or 4 workers — or a
//! different `max_active` — returns bit-identical replies
//! (`tests/runtime_determinism.rs`).

use crate::decode::{DecodeReply, DecoderLm, DraftLm, SessionConfig};
use crate::quant::QuantConfig;
use crate::serve::sched::{KvScheduler, KvServeConfig};
use lt_arch::{ArchConfig, RunReport, Simulator};
use lt_core::{ComputeBackend, Trace};
use lt_runtime::{BatchQueue, ParallelBackend, ThreadPool, ThreadsConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One autoregressive generation request.
#[derive(Debug, Clone)]
pub struct DecodeRequest {
    /// Prompt token ids (must fit the model's vocabulary and context).
    pub prompt: Vec<usize>,
    /// Number of tokens to generate (>= 1; the first comes from the
    /// prefill logits, the rest from decode steps).
    pub max_new_tokens: usize,
}

/// Environment variable read by [`SpecConfig::from_env`].
pub const LT_SPEC_K_ENV: &str = "LT_SPEC_K";

/// Speculative-decoding knobs ([`DecodeServeConfig::spec`]).
#[derive(Debug, Clone, Default)]
pub struct SpecConfig {
    /// Draft tokens proposed per speculative step; `0` (the default)
    /// leaves speculation off and serving byte-for-byte on the plain
    /// decode path.
    pub k: usize,
    /// An explicit draft model; `None` derives the self-speculative
    /// draft — the target's own bottom half — via
    /// [`DraftLm::from_target`] at scheduler construction.
    pub draft: Option<DraftLm>,
}

impl SpecConfig {
    /// Speculation depth `k` with the self-speculative draft.
    pub fn with_k(k: usize) -> Self {
        SpecConfig { k, draft: None }
    }

    /// Reads `LT_SPEC_K` from the environment: unset, empty, or
    /// unparsable all mean `0` (speculation off), so a stray value can
    /// never silently change what a run computes — speculation is
    /// bit-identical to plain decoding, and a bad value merely keeps
    /// the plain path.
    pub fn from_env() -> Self {
        let k = std::env::var(LT_SPEC_K_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        SpecConfig::with_k(k)
    }

    /// Whether speculation is on.
    pub fn is_enabled(&self) -> bool {
        self.k > 0
    }

    /// Applies these knobs to a freshly built scheduler: identity when
    /// disabled, [`KvScheduler::with_speculation_draft`] with the
    /// explicit draft when one is set, the self-speculative default
    /// otherwise.
    pub fn apply<'m, B: ComputeBackend + Clone>(
        &self,
        sched: KvScheduler<'m, B>,
    ) -> KvScheduler<'m, B> {
        if !self.is_enabled() {
            return sched;
        }
        match &self.draft {
            Some(draft) => sched.with_speculation_draft(self.k, draft.clone()),
            None => sched.with_speculation(self.k),
        }
    }
}

/// Decode-serving configuration.
#[derive(Debug, Clone)]
pub struct DecodeServeConfig {
    /// Worker threads, each holding its own clone of the weights and
    /// running its own continuous batch.
    pub workers: usize,
    /// Maximum sessions a worker keeps in flight at once (the
    /// continuous-batch width).
    pub max_active: usize,
    /// Root seed; session noise streams are `split_seed(seed, ticket)`.
    pub seed: u64,
    /// Operand fake-quantization applied to every forward pass.
    pub quant: QuantConfig,
    /// Accelerator model that costs every recorded trace (default:
    /// LT-B at 8 bits).
    pub arch: ArchConfig,
    /// Paged KV-cache knobs: block size, per-worker pool size (or `0`
    /// to derive it from `arch.kv_pool_bytes`), prefix sharing, and the
    /// preemption policy. Validated at [`DecodeServer::new`].
    pub kv: KvServeConfig,
    /// Intra-GEMM parallelism: `threads > 1` fans every routed GEMM
    /// out as row-block jobs on one pool shared by all workers
    /// ([`lt_runtime::ParallelBackend`]); replies are bit-identical at
    /// every thread count. Default is sequential; read `LT_THREADS`
    /// with [`ThreadsConfig::from_env`].
    pub threads: ThreadsConfig,
    /// Chunked-prefill size in prompt tokens: `0` (default) prefills a
    /// whole prompt at admission; a positive chunk interleaves prefill
    /// pieces with running sessions' decode steps, bounding how long a
    /// long prompt can stall anyone else's next token (see
    /// [`KvScheduler::with_prefill_chunk`]). Replies are bit-identical
    /// either way for deterministic engines.
    pub prefill_chunk_tokens: usize,
    /// Speculative decoding: `spec.k > 0` makes every scheduler tick a
    /// draft-then-batched-verify round ([`KvScheduler::with_speculation`]),
    /// emitting up to `k + 1` tokens per session per tick with replies
    /// bit-identical to plain decoding. Read `LT_SPEC_K` with
    /// [`SpecConfig::from_env`].
    pub spec: SpecConfig,
}

impl Default for DecodeServeConfig {
    fn default() -> Self {
        DecodeServeConfig {
            workers: 2,
            max_active: 8,
            seed: 0,
            quant: QuantConfig::fp32(),
            arch: ArchConfig::lt_base(8),
            kv: KvServeConfig::default(),
            threads: ThreadsConfig::default(),
            prefill_chunk_tokens: 0,
            spec: SpecConfig::default(),
        }
    }
}

/// A handle to one in-flight decode request.
#[derive(Debug)]
pub struct PendingDecode {
    ticket: u64,
    rx: Receiver<DecodeReply>,
}

impl PendingDecode {
    /// The queue ticket (submission order, also the noise-stream index).
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Blocks until the reply (tokens + prefill and per-token costs).
    ///
    /// # Panics
    ///
    /// Panics if the server shut down before serving this request, or if
    /// the request was malformed (empty prompt, context overflow,
    /// out-of-vocabulary token) and its session panicked — other
    /// requests and the worker are unaffected.
    pub fn wait(self) -> DecodeReply {
        self.rx
            .recv()
            .expect("decode request failed or server dropped before replying")
    }
}

#[derive(Debug)]
struct Job {
    request: DecodeRequest,
    reply: Sender<DecodeReply>,
}

/// Merges one scheduler tick's per-session step traces into the batched
/// decode form ([`Trace::batch_rows`]: each session's `[1, k] x [k, n]`
/// matrix-vector products stack into `[active, k] x [k, n]` GEMMs) and
/// costs it — the replayed-cycle metric behind the "batching fixes
/// memory-bound decode" claim. Weights load once per batched op instead
/// of once per session, and the stacked rows fill tile rows a lone
/// token would leave idle, so for `n` equal-geometry sessions the
/// merged cycles are well below `n` times a lone session's step cycles.
pub fn batched_tick_cost(step_traces: &[Trace], sim: &Simulator) -> RunReport {
    sim.run_trace(&Trace::batch_rows(step_traces).coalesce())
}

/// The speculative twin of [`batched_tick_cost`]: merges one tick's
/// target verify traces *and* draft traces with
/// [`Trace::batch_rows_ragged`] — sessions verify at different contexts
/// and depths (`k_eff` shrinks near a request's end), so their
/// attention rows stack with the shorter contexts causally padded and
/// charged — and replays the merged trace. The draft's ops batch across
/// sessions too, but remain distinct ops from the target's (fewer layer
/// instances), so the draft overhead stays visible in the replay.
pub fn speculative_tick_cost(
    step_traces: &[Trace],
    draft_traces: &[Trace],
    sim: &Simulator,
) -> RunReport {
    sim.run_trace(&Trace::batch_rows_ragged(step_traces.iter().chain(draft_traces)).coalesce())
}

/// The continuous-batching decode server. See the [module docs](self).
///
/// ```
/// use lt_core::{GaussianSampler, NativeBackend};
/// use lt_nn::decode::{DecoderConfig, DecoderLm};
/// use lt_nn::serve::decode::{DecodeRequest, DecodeServeConfig, DecodeServer};
///
/// let mut rng = GaussianSampler::new(1);
/// let model = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
/// let server = DecodeServer::new(model, NativeBackend, DecodeServeConfig::default());
/// let pending = server.submit(DecodeRequest { prompt: vec![1, 2, 3], max_new_tokens: 4 });
/// let reply = pending.wait();
/// assert_eq!(reply.tokens.len(), 4);
/// assert_eq!(reply.steps.len(), 3, "prefill covers the first token");
/// assert!(reply.steps.iter().all(|s| s.cycles > 0), "per-token replayed cost");
/// ```
#[derive(Debug)]
pub struct DecodeServer {
    queue: Arc<BatchQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<ServerCounters>,
}

/// Shared server-wide counters, updated by the workers.
#[derive(Debug, Default)]
struct ServerCounters {
    served: AtomicU64,
    decoded_tokens: AtomicU64,
    ticks: AtomicU64,
    batched_cycles: AtomicU64,
    sequential_cycles: AtomicU64,
    preemptions: AtomicU64,
    resumes: AtomicU64,
    prefix_hits: AtomicU64,
    peak_resident: AtomicU64,
    schedule_hits: AtomicU64,
    schedule_misses: AtomicU64,
    spec_proposed: AtomicU64,
    spec_accepted: AtomicU64,
    draft_cycles: AtomicU64,
}

impl DecodeServer {
    /// Starts `config.workers` continuous-batching workers, each with
    /// its own clone of the model weights and its own paged KV block
    /// pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.kv` is invalid for this model and architecture
    /// (zero block size, or a pool too small to hold one full-context
    /// session — see [`KvServeConfig::validate`]).
    ///
    /// With [`DecodeServeConfig::threads`] parallel, the backend is
    /// wrapped in a [`ParallelBackend`] over one pool shared by every
    /// worker, so each step's GEMMs fan out as row-block jobs — with
    /// bit-identical replies, per the seed-partition contract.
    pub fn new<B: ComputeBackend + Clone + Send + Sync + 'static>(
        model: DecoderLm,
        backend: B,
        config: DecodeServeConfig,
    ) -> Self {
        if config.threads.is_parallel() {
            let pool = Arc::new(ThreadPool::new(config.threads.threads()));
            return DecodeServer::spawn(model, ParallelBackend::with_pool(backend, pool), config);
        }
        DecodeServer::spawn(model, backend, config)
    }

    /// The monomorphic worker bring-up both construction paths share.
    fn spawn<B: ComputeBackend + Clone + Send + 'static>(
        model: DecoderLm,
        backend: B,
        config: DecodeServeConfig,
    ) -> Self {
        // Reject impossible pools on the caller's thread, before any
        // worker starts.
        config.kv.validate(&model.config(), &config.arch);
        let queue: Arc<BatchQueue<Job>> = Arc::new(BatchQueue::new(config.max_active.max(1)));
        let counters = Arc::new(ServerCounters::default());
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let model = model.clone();
                let backend = backend.clone();
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("lt-decode-worker-{w}"))
                    .spawn(move || worker_loop(&model, &backend, &config, &queue, &counters))
                    .expect("failed to spawn decode worker")
            })
            .collect();
        DecodeServer {
            queue,
            workers,
            counters,
        }
    }

    /// Enqueues a request; returns immediately with a reply handle.
    pub fn submit(&self, request: DecodeRequest) -> PendingDecode {
        let (reply, rx) = channel();
        let ticket = self.queue.submit(Job { request, reply });
        PendingDecode { ticket, rx }
    }

    /// Requests fully served so far (malformed ones are drained, not
    /// counted).
    pub fn served(&self) -> u64 {
        self.counters.served.load(Ordering::Relaxed)
    }

    /// Tokens produced by decode steps (excludes the prefill-sampled
    /// first token of each request — the memory-bound per-token regime).
    pub fn decoded_tokens(&self) -> u64 {
        self.counters.decoded_tokens.load(Ordering::Relaxed)
    }

    /// Scheduler ticks executed; `decoded_tokens() / ticks()` is the
    /// realized continuous-batch width.
    pub fn ticks(&self) -> u64 {
        self.counters.ticks.load(Ordering::Relaxed)
    }

    /// Replayed photonic cycles of the *merged* per-tick step traces —
    /// what the accelerator would spend running each tick's sessions as
    /// one batch.
    pub fn batched_cycles(&self) -> u64 {
        self.counters.batched_cycles.load(Ordering::Relaxed)
    }

    /// Replayed photonic cycles of every session's step costed alone —
    /// what the accelerator would spend serving the same tokens one
    /// request at a time (batch 1).
    pub fn sequential_cycles(&self) -> u64 {
        self.counters.sequential_cycles.load(Ordering::Relaxed)
    }

    /// Sessions evicted from the KV pool under memory pressure.
    pub fn preemptions(&self) -> u64 {
        self.counters.preemptions.load(Ordering::Relaxed)
    }

    /// Preempted sessions brought back to residency.
    pub fn resumes(&self) -> u64 {
        self.counters.resumes.load(Ordering::Relaxed)
    }

    /// Admissions that borrowed a cached prompt prefix (only nonzero
    /// with `kv.prefix_sharing` on).
    pub fn prefix_hits(&self) -> u64 {
        self.counters.prefix_hits.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously KV-resident sessions on any
    /// one worker — how many decodes the pool actually held at once.
    pub fn peak_resident_sessions(&self) -> u64 {
        self.counters.peak_resident.load(Ordering::Relaxed)
    }

    /// Draft tokens proposed by speculative steps across all workers
    /// (zero unless [`DecodeServeConfig::spec`] is enabled).
    pub fn spec_proposed(&self) -> u64 {
        self.counters.spec_proposed.load(Ordering::Relaxed)
    }

    /// Draft proposals the target accepted.
    pub fn spec_accepted(&self) -> u64 {
        self.counters.spec_accepted.load(Ordering::Relaxed)
    }

    /// Replayed draft-model cycles — the speculation overhead, itemized
    /// separately from the target's batched/sequential cycles.
    pub fn draft_cycles(&self) -> u64 {
        self.counters.draft_cycles.load(Ordering::Relaxed)
    }

    /// Schedule-cache `(hits, misses)` summed across every worker's
    /// simulator ([`lt_arch::ScheduleCacheStats`]): per-token replay
    /// repeats the same GEMM shapes, so after warmup nearly every op
    /// costs a map lookup instead of a tile-plan rebuild.
    pub fn schedule_cache_hits_misses(&self) -> (u64, u64) {
        (
            self.counters.schedule_hits.load(Ordering::Relaxed),
            self.counters.schedule_misses.load(Ordering::Relaxed),
        )
    }

    /// Drains outstanding requests, stops the workers, and returns the
    /// number of requests served.
    pub fn shutdown(mut self) -> u64 {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.served()
    }
}

impl Drop for DecodeServer {
    fn drop(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The continuous-batching worker: a [`KvScheduler`] over this worker's
/// own block pool does the admission, reservation, preemption, and
/// stepping; the loop feeds it from the shared queue (blocking only
/// when the scheduler is idle) and routes finished replies back to
/// their clients. Malformed requests (empty prompt, context overflow,
/// out-of-vocabulary token) are contained by the scheduler — the
/// offending client's sender is dropped, its `wait` panics with a clear
/// message, and the worker survives.
fn worker_loop<B: ComputeBackend + Clone>(
    model: &DecoderLm,
    backend: &B,
    config: &DecodeServeConfig,
    queue: &BatchQueue<Job>,
    counters: &ServerCounters,
) {
    let sim = Simulator::new(config.arch.clone());
    let session_config = SessionConfig {
        seed: config.seed,
        quant: config.quant,
        kv_bits: config.arch.precision_bits,
    };
    let mut sched = config.spec.apply(
        KvScheduler::new(
            model,
            &sim,
            backend.clone(),
            session_config,
            config.kv,
            config.max_active,
        )
        .with_prefill_chunk(config.prefill_chunk_tokens),
    );
    let mut replies: HashMap<u64, Sender<DecodeReply>> = HashMap::new();
    // Scheduler counters already published to the shared totals.
    let (mut preempt_seen, mut resume_seen, mut prefix_seen) = (0u64, 0u64, 0u64);
    let (mut hits_seen, mut misses_seen) = (0u64, 0u64);
    let (mut proposed_seen, mut accepted_seen, mut draft_seen) = (0u64, 0u64, 0u64);
    loop {
        // Intake: block only when there is nothing to step or resume;
        // top up free in-flight slots without blocking otherwise.
        let admitted = if sched.has_work() {
            queue.try_take(sched.free_slots()).unwrap_or_default()
        } else {
            match queue.next_batch() {
                Some(batch) => batch,
                None => break, // closed and drained
            }
        };
        for (ticket, job) in admitted {
            replies.insert(ticket, job.reply);
            sched.submit(ticket, job.request);
        }

        if let Some(outcome) = sched.tick() {
            // Admission-only and prefill-only rounds (chunked mode)
            // carry no decode steps — don't count them as batch ticks.
            if !outcome.step_traces.is_empty() {
                let tick_cost = if config.spec.is_enabled() {
                    speculative_tick_cost(&outcome.step_traces, &outcome.draft_traces, &sim)
                } else {
                    batched_tick_cost(&outcome.step_traces, &sim)
                };
                counters
                    .batched_cycles
                    .fetch_add(tick_cost.cycles, Ordering::Relaxed);
                counters
                    .sequential_cycles
                    .fetch_add(outcome.sequential_cycles, Ordering::Relaxed);
                counters.decoded_tokens.fetch_add(
                    outcome.emitted.iter().sum::<usize>() as u64,
                    Ordering::Relaxed,
                );
                counters.ticks.fetch_add(1, Ordering::Relaxed);
            }
        }

        let stats = sched.stats();
        counters
            .preemptions
            .fetch_add(stats.preemptions - preempt_seen, Ordering::Relaxed);
        preempt_seen = stats.preemptions;
        counters
            .resumes
            .fetch_add(stats.resumes - resume_seen, Ordering::Relaxed);
        resume_seen = stats.resumes;
        counters
            .prefix_hits
            .fetch_add(stats.prefix_hits - prefix_seen, Ordering::Relaxed);
        prefix_seen = stats.prefix_hits;
        counters
            .peak_resident
            .fetch_max(stats.peak_resident_sessions as u64, Ordering::Relaxed);
        counters
            .spec_proposed
            .fetch_add(stats.spec.proposed - proposed_seen, Ordering::Relaxed);
        proposed_seen = stats.spec.proposed;
        counters
            .spec_accepted
            .fetch_add(stats.spec.accepted - accepted_seen, Ordering::Relaxed);
        accepted_seen = stats.spec.accepted;
        counters
            .draft_cycles
            .fetch_add(stats.spec.draft_cycles - draft_seen, Ordering::Relaxed);
        draft_seen = stats.spec.draft_cycles;
        let cache = sim.schedule_cache_stats();
        counters
            .schedule_hits
            .fetch_add(cache.hits - hits_seen, Ordering::Relaxed);
        hits_seen = cache.hits;
        counters
            .schedule_misses
            .fetch_add(cache.misses - misses_seen, Ordering::Relaxed);
        misses_seen = cache.misses;

        for (ticket, reply) in sched.drain_finished() {
            counters.served.fetch_add(1, Ordering::Relaxed);
            // A client that dropped its handle just doesn't read it.
            if let Some(tx) = replies.remove(&ticket) {
                let _ = tx.send(reply);
            }
        }
        for ticket in sched.drain_failed() {
            replies.remove(&ticket);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{DecodeSession, DecoderConfig};
    use lt_core::{GaussianSampler, NativeBackend};
    use lt_dptc::DptcBackend;

    fn model() -> DecoderLm {
        let mut rng = GaussianSampler::new(5);
        DecoderLm::new(DecoderConfig::tiny(), &mut rng)
    }

    fn mixed_requests(n: usize) -> Vec<DecodeRequest> {
        (0..n)
            .map(|i| DecodeRequest {
                prompt: (0..(3 + i % 4)).map(|t| (i + t) % 16).collect(),
                max_new_tokens: 2 + i % 5,
            })
            .collect()
    }

    fn serve_all<B: ComputeBackend + Clone + Send + Sync + 'static>(
        backend: B,
        cfg: DecodeServeConfig,
        requests: &[DecodeRequest],
    ) -> Vec<DecodeReply> {
        let server = DecodeServer::new(model(), backend, cfg);
        let pending: Vec<PendingDecode> =
            requests.iter().map(|r| server.submit(r.clone())).collect();
        let replies: Vec<DecodeReply> = pending.into_iter().map(PendingDecode::wait).collect();
        assert_eq!(server.shutdown(), requests.len() as u64);
        replies
    }

    #[test]
    fn serves_mixed_decode_requests_with_per_token_costs() {
        let requests = mixed_requests(9);
        let replies = serve_all(NativeBackend, DecodeServeConfig::default(), &requests);
        for (req, r) in requests.iter().zip(&replies) {
            assert_eq!(r.tokens.len(), req.max_new_tokens);
            assert_eq!(r.steps.len(), req.max_new_tokens - 1);
            assert!(r.tokens.iter().all(|&t| t < 16));
            assert!(r.prefill.cycles > 0);
            assert!(r.steps.iter().all(|s| s.cycles > 0 && s.edp() > 0.0));
            assert!(r.kv_cache_bytes > 0);
            // Every per-token report says where its window went.
            assert!(r
                .steps
                .iter()
                .all(|s| s.utilization > 0.0 && s.stalls.total().value() > 0.0));
        }
    }

    #[test]
    fn replies_do_not_depend_on_worker_count_or_batch_width() {
        let requests = mixed_requests(8);
        let backend = DptcBackend::paper(8, 3);
        let base = serve_all(
            backend.clone(),
            DecodeServeConfig {
                workers: 1,
                max_active: 1,
                ..DecodeServeConfig::default()
            },
            &requests,
        );
        for (workers, max_active) in [(2, 4), (4, 8)] {
            let got = serve_all(
                backend.clone(),
                DecodeServeConfig {
                    workers,
                    max_active,
                    ..DecodeServeConfig::default()
                },
                &requests,
            );
            for (a, b) in base.iter().zip(&got) {
                assert_eq!(a, b, "workers={workers} max_active={max_active}");
            }
        }
    }

    #[test]
    fn a_malformed_request_does_not_poison_the_batch_or_the_worker() {
        let server = DecodeServer::new(
            model(),
            NativeBackend,
            DecodeServeConfig {
                workers: 1,
                ..DecodeServeConfig::default()
            },
        );
        let good_before = server.submit(DecodeRequest {
            prompt: vec![1, 2],
            max_new_tokens: 2,
        });
        let bad = server.submit(DecodeRequest {
            prompt: vec![],
            max_new_tokens: 2,
        });
        let overflow = server.submit(DecodeRequest {
            prompt: vec![0; 40],
            max_new_tokens: 20,
        });
        let good_after = server.submit(DecodeRequest {
            prompt: vec![3, 4, 5],
            max_new_tokens: 3,
        });
        assert_eq!(good_before.wait().tokens.len(), 2);
        assert_eq!(good_after.wait().tokens.len(), 3, "worker survived");
        assert!(std::panic::catch_unwind(move || bad.wait()).is_err());
        assert!(std::panic::catch_unwind(move || overflow.wait()).is_err());
        assert_eq!(server.shutdown(), 2, "only the good requests count");
    }

    #[test]
    fn speculative_serving_replies_are_bit_identical_on_a_noisy_backend() {
        // The whole serving stack at k = 4 against the plain path, on
        // the noisy DPTC backend: speculation must change cycles and
        // counters, never replies — tokens, per-token costs, KV bytes.
        let requests = mixed_requests(8);
        let backend = DptcBackend::paper(8, 3);
        let plain = serve_all(
            backend.clone(),
            DecodeServeConfig {
                workers: 1,
                ..DecodeServeConfig::default()
            },
            &requests,
        );
        let server = DecodeServer::new(
            model(),
            backend,
            DecodeServeConfig {
                workers: 1,
                spec: SpecConfig::with_k(4),
                ..DecodeServeConfig::default()
            },
        );
        let pending: Vec<PendingDecode> =
            requests.iter().map(|r| server.submit(r.clone())).collect();
        let spec: Vec<DecodeReply> = pending.into_iter().map(PendingDecode::wait).collect();
        assert_eq!(plain, spec, "speculation never changes a reply");
        assert!(server.spec_proposed() > 0, "speculation must have run");
        assert!(server.spec_accepted() <= server.spec_proposed());
        assert!(server.draft_cycles() > 0, "draft overhead is itemized");
        assert_eq!(
            server.decoded_tokens(),
            plain.iter().map(|r| r.steps.len() as u64).sum()
        );
        server.shutdown();
    }

    #[test]
    fn spec_env_parsing_is_forgiving() {
        // `from_env` is exercised without mutating the process
        // environment (tests run concurrently): the parsing contract is
        // the same closed-form expression applied to captured values.
        let parse = |v: Option<&str>| {
            SpecConfig::with_k(v.and_then(|v| v.trim().parse::<usize>().ok()).unwrap_or(0))
        };
        assert!(!parse(None).is_enabled());
        assert!(!parse(Some("")).is_enabled());
        assert!(!parse(Some("banana")).is_enabled());
        assert!(!parse(Some("0")).is_enabled());
        assert_eq!(parse(Some(" 4 ")).k, 4);
        assert!(!SpecConfig::default().is_enabled(), "off by default");
    }

    #[test]
    fn batched_ticks_cost_fewer_cycles_than_one_at_a_time() {
        // The Section VI-B claim in the replayed-cycle metric: sixteen
        // equal-geometry sessions stepped as one continuous batch cost
        // fewer cycles than the same sixteen tokens decoded at batch 1.
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut sessions: Vec<DecodeSession<NativeBackend>> = (0..16)
            .map(|t| {
                DecodeSession::new(
                    &m,
                    t,
                    vec![1, 2, 3, 4],
                    4,
                    NativeBackend,
                    SessionConfig::default(),
                )
            })
            .collect();
        for s in sessions.iter_mut() {
            s.prefill(&m, &sim);
        }
        let traces: Vec<Trace> = sessions.iter_mut().map(|s| s.step(&m, &sim)).collect();
        let single: u64 = sessions
            .iter()
            .map(|s| s.last_step_cost().unwrap().cycles)
            .sum();
        let batched = batched_tick_cost(&traces, &sim).cycles;
        assert!(
            batched < single,
            "batch 16 must beat 16x batch 1: {batched} vs {single}"
        );
        // Tokens/s at batch 16 = 16 tokens / batched cycles, vs batch 1
        // = 1 token / (single/16) cycles: the ratio is single/batched.
        assert!(
            single as f64 / batched as f64 > 2.0,
            "tile filling should be worth well over 2x: {single}/{batched}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot hold one max_seq")]
    fn a_pool_too_small_for_one_session_is_rejected_before_workers_start() {
        let _ = DecodeServer::new(
            model(),
            NativeBackend,
            DecodeServeConfig {
                kv: KvServeConfig {
                    block_tokens: 16,
                    pool_blocks: 2, // tiny() needs ceil(48/16) + 1 = 4
                    ..KvServeConfig::default()
                },
                ..DecodeServeConfig::default()
            },
        );
    }

    #[test]
    fn a_pressured_server_preempts_but_replies_are_unchanged() {
        // Same requests through an ample pool and a starved pool: the
        // starved server must preempt (memory pressure is real) yet
        // reply bit-identically (swap-out moves bytes, not values).
        // Small prompts admit cheaply, then every context grows to 7
        // blocks — 8 x 7 = 56 blocks against a 25-block pool.
        let requests: Vec<DecodeRequest> = (0..8)
            .map(|i| DecodeRequest {
                prompt: vec![i % 16, (i + 3) % 16],
                max_new_tokens: 12,
            })
            .collect();
        let roomy = serve_all(
            NativeBackend,
            DecodeServeConfig {
                workers: 1,
                ..DecodeServeConfig::default()
            },
            &requests,
        );
        let server = DecodeServer::new(
            model(),
            NativeBackend,
            DecodeServeConfig {
                workers: 1,
                kv: KvServeConfig {
                    block_tokens: 2,
                    pool_blocks: 25,
                    ..KvServeConfig::default()
                },
                ..DecodeServeConfig::default()
            },
        );
        let pending: Vec<PendingDecode> =
            requests.iter().map(|r| server.submit(r.clone())).collect();
        let tight: Vec<DecodeReply> = pending.into_iter().map(PendingDecode::wait).collect();
        assert!(server.preemptions() > 0, "the small pool must evict");
        assert_eq!(server.preemptions(), server.resumes());
        assert!(server.peak_resident_sessions() >= 2, "still batching");
        server.shutdown();
        assert_eq!(
            roomy, tight,
            "preemption may delay tokens, never change them"
        );
    }

    #[test]
    fn continuous_admission_interleaves_requests_mid_flight() {
        // One worker, wide batch: submit a long request, then while it
        // decodes, short ones join and finish — continuous batching (the
        // realized batch width exceeds 1 even with a single worker).
        let server = DecodeServer::new(
            model(),
            NativeBackend,
            DecodeServeConfig {
                workers: 1,
                max_active: 8,
                ..DecodeServeConfig::default()
            },
        );
        let long = server.submit(DecodeRequest {
            prompt: vec![1, 2, 3],
            max_new_tokens: 12,
        });
        let shorts: Vec<_> = (0..6)
            .map(|i| {
                server.submit(DecodeRequest {
                    prompt: vec![i % 16, (i + 1) % 16],
                    max_new_tokens: 3,
                })
            })
            .collect();
        assert_eq!(long.wait().tokens.len(), 12);
        for s in shorts {
            assert_eq!(s.wait().tokens.len(), 3);
        }
        assert_eq!(server.served(), 7);
        assert!(server.ticks() > 0);
        assert!(server.decoded_tokens() >= server.ticks(), "width >= 1");
        assert!(server.batched_cycles() <= server.sequential_cycles());
        server.shutdown();
    }
}
