//! SLO-aware serving frontend: a deterministic, single-threaded event
//! loop over the paged-KV scheduler that stamps every request's
//! lifecycle — arrival, admission, prefill, token streaming,
//! completion — in *simulated* accelerator time.
//!
//! The wall clock of a host running the simulator is noise; the
//! latency that the paper's accelerator model predicts is signal. So
//! the frontend drives one [`KvScheduler`] tick at a time, merges each
//! tick's recorded traces ([`Trace::batch_rows`]) exactly like the
//! threaded [`crate::serve::decode::DecodeServer`] does, replays the
//! merged trace, and advances a [`CycleClock`] by the replayed latency.
//! Every timestamp below — TTFT, inter-token gaps, completion — is an
//! integer count of simulated **picoseconds** (the clock's native
//! resolution; a tiny model's whole run can fit inside one
//! microsecond), which makes the whole serving report bit-stable
//! across hosts, thread counts, and reruns: it can be asserted in CI.
//! Workload inputs (arrivals, deadlines) stay in microseconds at the
//! [`lt_runtime::loadgen`] boundary and convert exactly
//! (`1 us = 10^6 ps`).
//!
//! # Admission
//!
//! Arrivals enter a class-ordered [`BatchQueue`] via
//! [`BatchQueue::submit_with_class`], so an
//! [`SloClass::Interactive`] request overtakes waiting
//! [`SloClass::Batch`] work while FIFO order is kept within a class. A
//! request whose TTFT deadline is shorter than its prompt's *analytic
//! minimum prefill latency* ([`DecoderConfig::prefill_trace`] replayed
//! through the simulator — a lower bound that assumes zero queueing)
//! can never be served in time and is rejected at arrival instead of
//! wasting pool blocks to miss anyway.
//!
//! # Chunked prefill
//!
//! With [`DecodeServeConfig::prefill_chunk_tokens`] set, a long prompt
//! prefills in bounded pieces interleaved with everyone else's decode
//! steps (see [`KvScheduler::with_prefill_chunk`]), which caps the
//! inter-token latency a burst of long prompts can inflict on a
//! running session — `tests/serving_slo.rs` pins that bound, and pins
//! the replies bit-identical to the unchunked path.

use crate::decode::{DecoderConfig, DecoderLm, SessionConfig};
use crate::serve::decode::{DecodeRequest, DecodeServeConfig};
use crate::serve::sched::KvScheduler;
use lt_arch::{CycleClock, Simulator};
use lt_core::{ComputeBackend, Trace};
use lt_runtime::loadgen::{GenRequest, LatencyStats};
use lt_runtime::{BatchQueue, SloClass};
use std::collections::{BTreeMap, HashMap};

/// Picoseconds per microsecond (the loadgen/lifecycle unit boundary).
const PS_PER_US: u64 = 1_000_000;

/// Where a request ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Still in flight (only seen mid-run; a final report never holds it).
    Pending,
    /// Rejected at arrival: its TTFT deadline is below the prompt's
    /// analytic minimum prefill latency, so serving it could only miss.
    Rejected,
    /// Failed in the scheduler (malformed prompt, or a prompt needing
    /// more KV blocks than the whole pool).
    Failed,
    /// Served to completion.
    Completed,
}

/// One request's stamped lifecycle, every timestamp in simulated
/// picoseconds from trace start (tick-granular: events are stamped at
/// the end of the scheduler tick that produced them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestLifecycle {
    /// The request's id in the submitted trace.
    pub id: usize,
    /// Service class used for admission ordering.
    pub class: SloClass,
    /// TTFT deadline in **microseconds**, if the request carried one
    /// (kept in the loadgen's unit).
    pub ttft_deadline_us: Option<u64>,
    /// When the request arrived (entered the admission queue).
    pub arrival_ps: u64,
    /// When the frontend moved it from the queue into the scheduler.
    pub admitted_ps: Option<u64>,
    /// When its first token was sampled (prefill completed).
    pub first_token_ps: Option<u64>,
    /// When its last token was sampled.
    pub finished_ps: Option<u64>,
    /// Gaps between consecutive generated tokens, in order.
    pub itl_ps: Vec<u64>,
    /// The generated tokens (empty unless [`RequestOutcome::Completed`]).
    pub tokens: Vec<usize>,
    /// Final disposition.
    pub outcome: RequestOutcome,
}

impl RequestLifecycle {
    fn new(request: &GenRequest) -> Self {
        RequestLifecycle {
            id: request.id,
            class: request.class,
            ttft_deadline_us: request.ttft_deadline_us,
            arrival_ps: request.arrival_us * PS_PER_US,
            admitted_ps: None,
            first_token_ps: None,
            finished_ps: None,
            itl_ps: Vec::new(),
            tokens: Vec::new(),
            outcome: RequestOutcome::Pending,
        }
    }

    /// Time-to-first-token: first token stamp minus arrival.
    pub fn ttft_ps(&self) -> Option<u64> {
        self.first_token_ps.map(|t| t - self.arrival_ps)
    }

    /// Whether the first token landed within the deadline (a request
    /// without a deadline trivially hits; one without a first token
    /// trivially misses).
    pub fn met_deadline(&self) -> bool {
        match (self.ttft_deadline_us, self.ttft_ps()) {
            (Some(deadline_us), Some(ttft_ps)) => ttft_ps <= deadline_us * PS_PER_US,
            (None, Some(_)) => true,
            _ => false,
        }
    }
}

/// Aggregate serving metrics over one run — every field is a
/// deterministic integer function of the workload and the model, so
/// the whole struct can be compared against a committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingReport {
    /// Requests submitted.
    pub requests: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests rejected at arrival (impossible deadline).
    pub rejected: usize,
    /// Requests that failed in the scheduler.
    pub failed: usize,
    /// Completed requests whose TTFT met their deadline (deadline-less
    /// completions count as hits).
    pub deadline_hits: usize,
    /// Completed requests whose TTFT missed their deadline.
    pub deadline_misses: usize,
    /// TTFT percentiles over completed requests, picoseconds.
    pub ttft_ps: LatencyStats,
    /// Inter-token-latency percentiles over all completed requests'
    /// token gaps, picoseconds.
    pub itl_ps: LatencyStats,
    /// Tokens generated by completed requests.
    pub generated_tokens: u64,
    /// Simulated picoseconds from trace start to last completion.
    pub elapsed_ps: u64,
    /// Generated tokens per simulated second (integer floor).
    pub tokens_per_s: u64,
    /// Tokens per simulated second counting only deadline-hitting
    /// requests — the throughput that actually honored the SLO.
    pub goodput_tokens_per_s: u64,
    /// Scheduler preemptions during the run.
    pub preemptions: u64,
    /// Scheduler ticks that stepped at least one session.
    pub ticks: u64,
    /// Speculative steps executed (zero when speculation is off).
    pub spec_steps: u64,
    /// Draft tokens proposed across all speculative steps.
    pub spec_proposed: u64,
    /// Draft proposals the target accepted.
    pub spec_accepted: u64,
    /// Tokens emitted by speculative steps (accepted plus one
    /// bonus/correction per step).
    pub spec_emitted: u64,
    /// Replayed draft-model cycles — the speculation overhead,
    /// itemized, never folded into the target's cycles.
    pub draft_cycles: u64,
    /// Replayed target-model cycles in batched verify passes (and
    /// `k_eff = 0` fallback steps).
    pub verify_cycles: u64,
}

impl ServingReport {
    /// Fraction of draft proposals the target accepted (0 when no
    /// speculation ran).
    pub fn spec_acceptance_rate(&self) -> f64 {
        if self.spec_proposed == 0 {
            0.0
        } else {
            self.spec_accepted as f64 / self.spec_proposed as f64
        }
    }

    /// Share of the replayed speculative-decode cycles spent in the
    /// draft model — the overhead a real deployment pays for the
    /// verify batching (0 when no speculation ran).
    pub fn draft_overhead_share(&self) -> f64 {
        let total = self.draft_cycles + self.verify_cycles;
        if total == 0 {
            0.0
        } else {
            self.draft_cycles as f64 / total as f64
        }
    }

    /// Replayed cycles (draft + verify) per token the speculative
    /// steps emitted — the end-to-end cost-per-token of the
    /// speculative path (0 when no speculation ran).
    pub fn cycles_per_accepted_token(&self) -> f64 {
        if self.spec_emitted == 0 {
            0.0
        } else {
            (self.draft_cycles + self.verify_cycles) as f64 / self.spec_emitted as f64
        }
    }
}

/// The event-loop frontend. One instance runs one workload trace; see
/// the [module docs](self).
pub struct SloFrontend<'m, B: ComputeBackend + Clone> {
    sched: KvScheduler<'m, B>,
    sim: &'m Simulator,
    model_config: DecoderConfig,
    clock: CycleClock,
    records: BTreeMap<usize, RequestLifecycle>,
    ticket_of: HashMap<u64, usize>,
    last_token_ps: HashMap<u64, u64>,
    next_ticket: u64,
    min_prefill_ps: BTreeMap<usize, u64>,
}

impl<B: ComputeBackend + Clone> std::fmt::Debug for SloFrontend<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloFrontend")
            .field("now_ps", &self.clock.now_ps())
            .field("in_flight", &self.ticket_of.len())
            .finish_non_exhaustive()
    }
}

impl<'m, B: ComputeBackend + Clone> SloFrontend<'m, B> {
    /// Builds a frontend over `model`, costed by `sim` (which must be
    /// built from `config.arch`), running GEMMs through `backend`.
    /// `config.workers` is ignored: the frontend is a single
    /// deterministic event loop, which is what makes its latency
    /// stamps CI-gateable.
    pub fn new(
        model: &'m DecoderLm,
        sim: &'m Simulator,
        backend: B,
        config: &DecodeServeConfig,
    ) -> Self {
        let session_config = SessionConfig {
            seed: config.seed,
            quant: config.quant,
            kv_bits: config.arch.precision_bits,
        };
        let sched = config.spec.apply(
            KvScheduler::new(
                model,
                sim,
                backend,
                session_config,
                config.kv,
                config.max_active,
            )
            .with_prefill_chunk(config.prefill_chunk_tokens),
        );
        SloFrontend {
            sched,
            sim,
            model_config: model.config(),
            clock: CycleClock::new(),
            records: BTreeMap::new(),
            ticket_of: HashMap::new(),
            last_token_ps: HashMap::new(),
            next_ticket: 0,
            min_prefill_ps: BTreeMap::new(),
        }
    }

    /// The analytic lower bound on a prompt's prefill latency in
    /// picoseconds: [`DecoderConfig::prefill_trace`] replayed through
    /// the simulator, memoized per prompt length.
    fn min_prefill_ps(&mut self, prompt_len: usize) -> u64 {
        if let Some(&ps) = self.min_prefill_ps.get(&prompt_len) {
            return ps;
        }
        let trace = self.model_config.prefill_trace(prompt_len);
        let report = self.sim.run_trace(&trace);
        let ps = (report.latency.value() * 1e9).round() as u64;
        self.min_prefill_ps.insert(prompt_len, ps);
        ps
    }

    /// Whether `request`'s deadline is impossible even with zero
    /// queueing — grounds for rejection at arrival. Prompts the
    /// scheduler will fail anyway (empty, over-long) are not judged
    /// here.
    fn deadline_impossible(&mut self, request: &GenRequest) -> bool {
        let len = request.prompt.len();
        if len == 0 || len > self.model_config.max_seq {
            return false;
        }
        match request.ttft_deadline_us {
            Some(deadline_us) => {
                (deadline_us as u128) * (PS_PER_US as u128) < self.min_prefill_ps(len) as u128
            }
            None => false,
        }
    }

    /// Runs `requests` open-loop: each arrives at its own
    /// `arrival_us`, regardless of how the server is keeping up.
    /// Returns the per-request lifecycles (id order) and the aggregate
    /// report.
    pub fn run_open(mut self, requests: &[GenRequest]) -> (Vec<RequestLifecycle>, ServingReport) {
        let mut order: Vec<&GenRequest> = requests.iter().collect();
        order.sort_by_key(|r| (r.arrival_us, r.id));
        let queue: BatchQueue<usize> = BatchQueue::new(self.sched_capacity());
        let by_id: HashMap<usize, &GenRequest> = requests.iter().map(|r| (r.id, r)).collect();
        let mut next_arrival = 0usize;
        let mut queued = 0usize;
        loop {
            while next_arrival < order.len()
                && order[next_arrival].arrival_us * PS_PER_US <= self.clock.now_ps()
            {
                let request = order[next_arrival];
                next_arrival += 1;
                self.arrive(request, &queue, &mut queued);
            }
            self.admit_from(&queue, &by_id, &mut queued);
            if !self.advance_one_tick() {
                if next_arrival < order.len() {
                    // Idle: jump straight to the next arrival.
                    self.clock.advance_to_us(order[next_arrival].arrival_us);
                    continue;
                }
                if queued == 0 && !self.sched.has_work() {
                    break;
                }
                // No progress possible (a stuck backlog can only mean a
                // scheduler invariant broke): stop rather than spin.
                break;
            }
            self.settle();
        }
        self.finish()
    }

    /// Runs `requests` closed-loop with `concurrency` synthetic users:
    /// the first `concurrency` requests arrive immediately and each
    /// completion (or failure) releases the next request in id order —
    /// arrival timestamps in the trace are ignored.
    pub fn run_closed(
        mut self,
        requests: &[GenRequest],
        concurrency: usize,
    ) -> (Vec<RequestLifecycle>, ServingReport) {
        let concurrency = concurrency.max(1);
        let mut order: Vec<&GenRequest> = requests.iter().collect();
        order.sort_by_key(|r| r.id);
        let queue: BatchQueue<usize> = BatchQueue::new(self.sched_capacity());
        let by_id: HashMap<usize, &GenRequest> = requests.iter().map(|r| (r.id, r)).collect();
        let mut next = 0usize;
        let mut queued = 0usize;
        let mut in_flight = 0usize;
        loop {
            while next < order.len() && in_flight < concurrency {
                let request = order[next];
                next += 1;
                let before = queued;
                self.arrive_at_now(request, &queue, &mut queued);
                if queued > before {
                    in_flight += 1;
                }
            }
            self.admit_from(&queue, &by_id, &mut queued);
            if !self.advance_one_tick() {
                if queued == 0 && !self.sched.has_work() && next >= order.len() {
                    break;
                }
                if queued == 0 && !self.sched.has_work() {
                    continue; // release the next user(s)
                }
                break; // stuck backlog: stop rather than spin
            }
            let done = self.settle();
            in_flight = in_flight.saturating_sub(done);
        }
        self.finish()
    }

    /// Queue capacity hint for the admission [`BatchQueue`].
    fn sched_capacity(&self) -> usize {
        self.sched.free_slots().max(1)
    }

    /// Registers an arrival stamped at its own trace timestamp.
    fn arrive(&mut self, request: &GenRequest, queue: &BatchQueue<usize>, queued: &mut usize) {
        let mut record = RequestLifecycle::new(request);
        if self.deadline_impossible(request) {
            record.outcome = RequestOutcome::Rejected;
            self.records.insert(request.id, record);
            return;
        }
        self.records.insert(request.id, record);
        queue.submit_with_class(request.id, request.class);
        *queued += 1;
    }

    /// Registers an arrival stamped *now* (closed loop).
    fn arrive_at_now(
        &mut self,
        request: &GenRequest,
        queue: &BatchQueue<usize>,
        queued: &mut usize,
    ) {
        let mut record = RequestLifecycle::new(request);
        record.arrival_ps = self.clock.now_ps();
        if self.deadline_impossible(request) {
            record.outcome = RequestOutcome::Rejected;
            self.records.insert(request.id, record);
            return;
        }
        self.records.insert(request.id, record);
        queue.submit_with_class(request.id, request.class);
        *queued += 1;
    }

    /// Moves queued requests into the scheduler, class-priority first,
    /// up to the scheduler's free in-flight slots.
    fn admit_from(
        &mut self,
        queue: &BatchQueue<usize>,
        by_id: &HashMap<usize, &GenRequest>,
        queued: &mut usize,
    ) {
        let slots = self.sched.free_slots();
        if slots == 0 || *queued == 0 {
            return;
        }
        let Some(batch) = queue.try_take(slots) else {
            return;
        };
        let now = self.clock.now_ps();
        for (_, id) in batch {
            *queued -= 1;
            let request = by_id[&id];
            // Fresh monotonic scheduler tickets in admission order keep
            // the scheduler's ticket-ordering invariants intact even
            // though classes reorder the queue.
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            self.ticket_of.insert(ticket, id);
            self.records.get_mut(&id).expect("arrived").admitted_ps = Some(now);
            self.sched.submit(
                ticket,
                DecodeRequest {
                    prompt: request.prompt.clone(),
                    max_new_tokens: request.max_new_tokens,
                },
            );
        }
    }

    /// One scheduler tick: advances the clock by the merged tick
    /// trace's replayed latency and stamps first-token / inter-token
    /// boundaries. Returns whether the scheduler did anything.
    fn advance_one_tick(&mut self) -> bool {
        let Some(outcome) = self.sched.tick() else {
            return false;
        };
        if !outcome.prefill_traces.is_empty() || !outcome.step_traces.is_empty() {
            let traces = outcome
                .prefill_traces
                .iter()
                .chain(outcome.step_traces.iter());
            // Speculative ticks verify sessions at *different* contexts
            // and depths, so their attention rows only stack under the
            // ragged merge; the draft traces ride along as the costed
            // (and itemized) overhead. The plain path keeps the exact
            // merge so committed baselines are untouched.
            let merged = if self.sched.speculation_k() > 0 {
                Trace::batch_rows_ragged(traces.chain(outcome.draft_traces.iter())).coalesce()
            } else {
                Trace::batch_rows(traces).coalesce()
            };
            let cost = self.sim.run_trace(&merged);
            self.clock.advance(&cost);
        }
        let now = self.clock.now_ps();
        for ticket in outcome.first_tokens {
            let id = self.ticket_of[&ticket];
            let record = self.records.get_mut(&id).expect("admitted");
            record.first_token_ps = Some(now);
            self.last_token_ps.insert(ticket, now);
        }
        for (ticket, emitted) in outcome.stepped.iter().zip(&outcome.emitted) {
            let id = self.ticket_of[ticket];
            let last = self
                .last_token_ps
                .insert(*ticket, now)
                .expect("first token stamped");
            let record = self.records.get_mut(&id).expect("admitted");
            record.itl_ps.push(now - last);
            // A speculative step materializes its extra tokens at the
            // same tick boundary: the gap lands on the first one and
            // the accepted rest stream out with zero inter-token gap —
            // exactly the latency shape speculation buys.
            for _ in 1..*emitted {
                record.itl_ps.push(0);
            }
        }
        true
    }

    /// Retires finished and failed requests; returns how many left the
    /// system.
    fn settle(&mut self) -> usize {
        let now = self.clock.now_ps();
        let mut done = 0;
        for (ticket, reply) in self.sched.drain_finished() {
            let id = self.ticket_of.remove(&ticket).expect("admitted");
            self.last_token_ps.remove(&ticket);
            let record = self.records.get_mut(&id).expect("admitted");
            record.finished_ps = Some(now);
            record.tokens = reply.tokens;
            record.outcome = RequestOutcome::Completed;
            done += 1;
        }
        for ticket in self.sched.drain_failed() {
            let id = self.ticket_of.remove(&ticket).expect("admitted");
            self.last_token_ps.remove(&ticket);
            self.records.get_mut(&id).expect("admitted").outcome = RequestOutcome::Failed;
            done += 1;
        }
        done
    }

    /// Final sweep and aggregation.
    fn finish(mut self) -> (Vec<RequestLifecycle>, ServingReport) {
        self.settle();
        let stats = self.sched.stats().clone();
        let records: Vec<RequestLifecycle> = self.records.into_values().collect();
        let mut report = ServingReport {
            requests: records.len(),
            completed: 0,
            rejected: 0,
            failed: 0,
            deadline_hits: 0,
            deadline_misses: 0,
            ttft_ps: LatencyStats::default(),
            itl_ps: LatencyStats::default(),
            generated_tokens: 0,
            elapsed_ps: self.clock.now_ps(),
            tokens_per_s: 0,
            goodput_tokens_per_s: 0,
            preemptions: stats.preemptions,
            ticks: stats.ticks,
            spec_steps: stats.spec.spec_steps,
            spec_proposed: stats.spec.proposed,
            spec_accepted: stats.spec.accepted,
            spec_emitted: stats.spec.emitted,
            draft_cycles: stats.spec.draft_cycles,
            verify_cycles: stats.spec.verify_cycles,
        };
        let mut ttfts = Vec::new();
        let mut itls = Vec::new();
        let mut good_tokens = 0u64;
        for record in &records {
            match record.outcome {
                RequestOutcome::Completed => {
                    report.completed += 1;
                    report.generated_tokens += record.tokens.len() as u64;
                    if record.met_deadline() {
                        report.deadline_hits += 1;
                        good_tokens += record.tokens.len() as u64;
                    } else {
                        report.deadline_misses += 1;
                    }
                    if let Some(ttft) = record.ttft_ps() {
                        ttfts.push(ttft);
                    }
                    itls.extend_from_slice(&record.itl_ps);
                }
                RequestOutcome::Rejected => report.rejected += 1,
                _ => report.failed += 1,
            }
        }
        report.ttft_ps = LatencyStats::from_samples(&ttfts);
        report.itl_ps = LatencyStats::from_samples(&itls);
        // 1 s = 10^12 ps; u128 keeps token * 10^12 from overflowing.
        let elapsed = report.elapsed_ps.max(1) as u128;
        report.tokens_per_s =
            ((report.generated_tokens as u128 * 1_000_000_000_000) / elapsed) as u64;
        report.goodput_tokens_per_s = ((good_tokens as u128 * 1_000_000_000_000) / elapsed) as u64;
        (records, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::sched::KvServeConfig;
    use lt_core::{GaussianSampler, NativeBackend};
    use lt_runtime::loadgen::LoadgenConfig;

    fn model() -> DecoderLm {
        let mut rng = GaussianSampler::new(5);
        DecoderLm::new(DecoderConfig::tiny(), &mut rng)
    }

    fn config() -> DecodeServeConfig {
        DecodeServeConfig {
            max_active: 4,
            kv: KvServeConfig {
                block_tokens: 4,
                pool_blocks: 64,
                ..KvServeConfig::default()
            },
            ..DecodeServeConfig::default()
        }
    }

    fn request(id: usize, arrival_us: u64, class: SloClass, deadline: Option<u64>) -> GenRequest {
        GenRequest {
            id,
            arrival_us,
            prompt: vec![1, 2, 3, 4, 5],
            max_new_tokens: 3,
            class,
            ttft_deadline_us: deadline,
        }
    }

    #[test]
    fn an_open_loop_run_is_deterministic_and_serves_everyone() {
        let m = model();
        let cfg = config();
        let sim = Simulator::new(cfg.arch.clone());
        let requests = LoadgenConfig::smoke(11, 10).generate();
        let (rec_a, rep_a) = SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&requests);
        let (rec_b, rep_b) = SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&requests);
        assert_eq!(rep_a, rep_b, "same workload, same simulated metrics");
        assert_eq!(rec_a, rec_b, "same workload, same lifecycles");
        assert_eq!(rec_a.len(), 10);
        assert_eq!(rep_a.requests, 10);
        assert_eq!(rep_a.completed + rep_a.rejected + rep_a.failed, 10);
        assert!(rep_a.completed > 0, "the smoke workload must mostly serve");
        for r in &rec_a {
            if r.outcome == RequestOutcome::Completed {
                let admitted = r.admitted_ps.expect("completed implies admitted");
                let first = r.first_token_ps.expect("completed implies first token");
                let finished = r.finished_ps.expect("completed implies finished");
                assert!(admitted >= r.arrival_ps);
                assert!(first >= admitted);
                assert!(finished >= first);
                assert_eq!(
                    r.itl_ps.len() + 1,
                    r.tokens.len(),
                    "one gap per token after the first"
                );
            }
        }
    }

    #[test]
    fn impossible_deadlines_are_rejected_at_arrival() {
        let m = model();
        let cfg = config();
        let sim = Simulator::new(cfg.arch.clone());
        let requests = vec![
            request(0, 0, SloClass::Interactive, Some(0)), // can never prefill in 0 us
            request(1, 0, SloClass::Interactive, Some(10_000_000)),
        ];
        let (records, report) = SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&requests);
        assert_eq!(records[0].outcome, RequestOutcome::Rejected);
        assert_eq!(records[0].admitted_ps, None, "rejected before admission");
        assert_eq!(records[1].outcome, RequestOutcome::Completed);
        assert!(records[1].met_deadline());
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.deadline_hits, 1);
    }

    #[test]
    fn interactive_arrivals_overtake_waiting_batch_work() {
        let m = model();
        let mut cfg = config();
        cfg.max_active = 1; // serialize admissions so queue order is visible
        let sim = Simulator::new(cfg.arch.clone());
        let requests = vec![
            request(0, 0, SloClass::Batch, None),
            request(1, 0, SloClass::Batch, None),
            request(2, 0, SloClass::Interactive, None),
        ];
        let (records, report) = SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&requests);
        assert_eq!(report.completed, 3);
        let admitted = |id: usize| records[id].admitted_ps.expect("all complete");
        assert!(
            admitted(2) <= admitted(0) && admitted(0) <= admitted(1),
            "interactive jumps both batch requests; batch stays FIFO"
        );
    }

    #[test]
    fn a_speculative_run_serves_the_same_tokens_with_acceptance_accounting() {
        use crate::serve::decode::SpecConfig;
        let m = model();
        let cfg = config();
        let sim = Simulator::new(cfg.arch.clone());
        let requests = LoadgenConfig::smoke(11, 10).generate();
        let (plain_rec, plain_rep) =
            SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_open(&requests);
        let spec_cfg = DecodeServeConfig {
            spec: SpecConfig::with_k(4),
            ..cfg
        };
        let (spec_rec, spec_rep) =
            SloFrontend::new(&m, &sim, NativeBackend, &spec_cfg).run_open(&requests);
        assert_eq!(spec_rep.completed, plain_rep.completed);
        assert_eq!(spec_rep.generated_tokens, plain_rep.generated_tokens);
        for (a, b) in plain_rec.iter().zip(&spec_rec) {
            assert_eq!(a.tokens, b.tokens, "speculation never changes tokens");
            assert_eq!(a.outcome, b.outcome);
            if b.outcome == RequestOutcome::Completed {
                assert_eq!(
                    b.itl_ps.len() + 1,
                    b.tokens.len(),
                    "one gap per token after the first, even when a tick emits several"
                );
            }
        }
        assert_eq!(plain_rep.spec_steps, 0, "plain run has no speculation");
        assert_eq!(plain_rep.spec_acceptance_rate(), 0.0);
        assert!(spec_rep.spec_steps > 0, "speculative run must speculate");
        assert!(spec_rep.spec_proposed > 0);
        assert_eq!(
            spec_rep.spec_emitted,
            spec_rep.spec_accepted + spec_rep.spec_steps,
            "each step emits its accepted prefix plus one bonus/correction"
        );
        assert!(spec_rep.draft_cycles > 0, "draft overhead is itemized");
        assert!(spec_rep.verify_cycles > 0);
        let share = spec_rep.draft_overhead_share();
        assert!(share > 0.0 && share < 1.0, "draft share {share}");
        assert!(spec_rep.cycles_per_accepted_token() > 0.0);
        assert!(
            spec_rep.ticks <= plain_rep.ticks,
            "accepted tokens save ticks"
        );
        // Determinism of the whole speculative report.
        let (rec2, rep2) = SloFrontend::new(&m, &sim, NativeBackend, &spec_cfg).run_open(&requests);
        assert_eq!(spec_rep, rep2);
        assert_eq!(spec_rec, rec2);
    }

    #[test]
    fn a_closed_loop_run_serves_the_whole_trace() {
        let m = model();
        let cfg = config();
        let sim = Simulator::new(cfg.arch.clone());
        let requests = LoadgenConfig::smoke(3, 8).generate();
        let (records, report) =
            SloFrontend::new(&m, &sim, NativeBackend, &cfg).run_closed(&requests, 2);
        assert_eq!(records.len(), 8);
        assert_eq!(report.completed + report.rejected + report.failed, 8);
        assert!(report.completed > 0);
        assert!(report.elapsed_ps > 0);
        assert!(report.tokens_per_s > 0);
        // Closed loop re-stamps arrivals: they never precede trace start.
        for r in &records {
            if let Some(admitted) = r.admitted_ps {
                assert!(admitted >= r.arrival_ps);
            }
        }
    }
}
