//! Quantization-aware training support and true integer execution.
//!
//! The paper applies low-bit quantization to weights and activations
//! (LSQ-style \[15\]) and trains with noise injected. We implement symmetric
//! per-tensor fake quantization with a straight-through estimator: the
//! forward pass sees quantized values, the backward pass treats the
//! quantizer as identity.
//!
//! On top of that, [`IntegerQuant`] selects a *true* integer execution
//! path for weight-bearing layers: operands are encoded to i8/i4 codes
//! with grouped per-channel scales ([`lt_core::QuantizedMatrix`]) and
//! multiplied by [`lt_core::quantized_gemm`] with f32 accumulation —
//! the executable counterpart of the 8-bit/4-bit `ArchConfig` work
//! modes rather than a float emulation of them.

use crate::tensor::Tensor;
use lt_dptc::Quantizer;

/// True integer execution settings for weight-bearing layers.
///
/// When present on a [`QuantConfig`], every [`crate::layers::Linear`] product is
/// computed by [`lt_core::quantized_gemm`] over i8/i4 codes with grouped
/// per-channel scales: activations are quantized per-row, weights
/// per-column, both along the shared reduction dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegerQuant {
    /// Code bit-width: 4 or 8.
    pub bits: u32,
    /// Scale-group width along the reduction dimension (a trailing
    /// partial group is allowed).
    pub group: usize,
}

/// Default scale-group width for the integer path — matches the DPTC
/// tile depth used by the 8-bit/4-bit work modes.
pub const DEFAULT_INT_GROUP: usize = 32;

/// Fake-quantization configuration shared by a whole model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Bit-width; `None` disables quantization (fp32 reference).
    pub bits: Option<u32>,
    /// True integer execution for weight-bearing layers; `None` keeps
    /// the float engines (fake-quantized or exact per `bits`).
    pub integer: Option<IntegerQuant>,
}

impl QuantConfig {
    /// Full-precision (no quantization).
    pub fn fp32() -> Self {
        QuantConfig {
            bits: None,
            integer: None,
        }
    }

    /// `bits`-bit symmetric quantization of weights and activations.
    pub fn low_bit(bits: u32) -> Self {
        QuantConfig {
            bits: Some(bits),
            integer: None,
        }
    }

    /// True i8 execution of weight-bearing layers (the 8-bit work mode).
    pub fn int8() -> Self {
        Self::integer(8, DEFAULT_INT_GROUP)
    }

    /// True i4 execution of weight-bearing layers (the 4-bit work mode).
    pub fn int4() -> Self {
        Self::integer(4, DEFAULT_INT_GROUP)
    }

    /// True integer execution with an explicit bit-width and scale-group
    /// width. Fake quantization (`bits`) is off: the integer path already
    /// quantizes its own operands.
    pub fn integer(bits: u32, group: usize) -> Self {
        QuantConfig {
            bits: None,
            integer: Some(IntegerQuant { bits, group }),
        }
    }

    /// Fake-quantizes a tensor (per-tensor max-abs scale). Identity when
    /// disabled or when the tensor is all-zero.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        match self.bits {
            None => t.clone(),
            Some(bits) => {
                let q = Quantizer::new(bits);
                let scale = t.max_abs() as f64;
                if scale == 0.0 {
                    return t.clone();
                }
                t.map(|v| q.fake_quantize(v as f64, scale) as f32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_is_identity() {
        let t = Tensor::from_vec(1, 3, vec![0.1, -0.7, 0.33]);
        assert_eq!(QuantConfig::fp32().apply(&t), t);
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let t = Tensor::from_fn(4, 4, |i, j| ((i * 4 + j) as f32 / 8.0) - 1.0);
        let q = QuantConfig::low_bit(4).apply(&t);
        let scale = t.max_abs();
        let step = scale / 7.0;
        assert!(t.max_abs_diff(&q) <= step / 2.0 + 1e-6);
    }

    #[test]
    fn eight_bit_is_tighter_than_four_bit() {
        let t = Tensor::from_fn(8, 8, |i, j| (i as f32).sin() * (j as f32).cos());
        let e4 = t.max_abs_diff(&QuantConfig::low_bit(4).apply(&t));
        let e8 = t.max_abs_diff(&QuantConfig::low_bit(8).apply(&t));
        assert!(e8 < e4);
    }

    #[test]
    fn zero_tensor_passes_through() {
        let t = Tensor::zeros(2, 2);
        assert_eq!(QuantConfig::low_bit(4).apply(&t), t);
    }

    #[test]
    fn integer_modes_disable_fake_quantization() {
        for cfg in [QuantConfig::int8(), QuantConfig::int4()] {
            assert!(cfg.bits.is_none());
            let t = Tensor::from_vec(1, 3, vec![0.1, -0.7, 0.33]);
            assert_eq!(cfg.apply(&t), t);
        }
        assert_eq!(
            QuantConfig::int8().integer,
            Some(IntegerQuant {
                bits: 8,
                group: DEFAULT_INT_GROUP
            })
        );
        assert_eq!(QuantConfig::int4().integer.unwrap().bits, 4);
    }
}
