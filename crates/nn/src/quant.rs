//! Quantization-aware training support.
//!
//! The paper applies low-bit quantization to weights and activations
//! (LSQ-style \[15\]) and trains with noise injected. We implement symmetric
//! per-tensor fake quantization with a straight-through estimator: the
//! forward pass sees quantized values, the backward pass treats the
//! quantizer as identity.

use crate::tensor::Tensor;
use lt_dptc::Quantizer;

/// Fake-quantization configuration shared by a whole model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Bit-width; `None` disables quantization (fp32 reference).
    pub bits: Option<u32>,
}

impl QuantConfig {
    /// Full-precision (no quantization).
    pub fn fp32() -> Self {
        QuantConfig { bits: None }
    }

    /// `bits`-bit symmetric quantization of weights and activations.
    pub fn low_bit(bits: u32) -> Self {
        QuantConfig { bits: Some(bits) }
    }

    /// Fake-quantizes a tensor (per-tensor max-abs scale). Identity when
    /// disabled or when the tensor is all-zero.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        match self.bits {
            None => t.clone(),
            Some(bits) => {
                let q = Quantizer::new(bits);
                let scale = t.max_abs() as f64;
                if scale == 0.0 {
                    return t.clone();
                }
                t.map(|v| q.fake_quantize(v as f64, scale) as f32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_is_identity() {
        let t = Tensor::from_vec(1, 3, vec![0.1, -0.7, 0.33]);
        assert_eq!(QuantConfig::fp32().apply(&t), t);
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let t = Tensor::from_fn(4, 4, |i, j| ((i * 4 + j) as f32 / 8.0) - 1.0);
        let q = QuantConfig::low_bit(4).apply(&t);
        let scale = t.max_abs();
        let step = scale / 7.0;
        assert!(t.max_abs_diff(&q) <= step / 2.0 + 1e-6);
    }

    #[test]
    fn eight_bit_is_tighter_than_four_bit() {
        let t = Tensor::from_fn(8, 8, |i, j| (i as f32).sin() * (j as f32).cos());
        let e4 = t.max_abs_diff(&QuantConfig::low_bit(4).apply(&t));
        let e8 = t.max_abs_diff(&QuantConfig::low_bit(8).apply(&t));
        assert!(e8 < e4);
    }

    #[test]
    fn zero_tensor_passes_through() {
        let t = Tensor::zeros(2, 2);
        assert_eq!(QuantConfig::low_bit(4).apply(&t), t);
    }
}
