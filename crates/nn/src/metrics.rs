//! Classification metrics: confusion matrices and per-class statistics.
//!
//! The accuracy experiments report a single top-1 number, but debugging a
//! noisy analog backend needs to see *which* classes degrade — e.g.
//! whether photonic noise confuses adjacent blob quadrants.

use crate::engine::MatmulEngine;
use crate::layers::ForwardCtx;
use crate::model::Classifier;
use crate::quant::QuantConfig;
use crate::train::argmax;
use lt_photonics::noise::GaussianSampler;
use std::fmt;

/// A confusion matrix over `n` classes (`rows = true`, `cols = predicted`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix over `n` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one class");
        ConfusionMatrix {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.n
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.n && predicted < self.n, "label out of range");
        self.counts[truth * self.n + predicted] += 1;
    }

    /// Count at `(true, predicted)`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.n + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall top-1 accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.n).map(|i| self.count(i, i)).sum();
        correct as f64 / self.total().max(1) as f64
    }

    /// Recall of one class (diagonal over its row).
    pub fn recall(&self, class: usize) -> f64 {
        let row: u64 = (0..self.n).map(|j| self.count(class, j)).sum();
        if row == 0 {
            return 0.0;
        }
        self.count(class, class) as f64 / row as f64
    }

    /// Precision of one class (diagonal over its column).
    pub fn precision(&self, class: usize) -> f64 {
        let col: u64 = (0..self.n).map(|i| self.count(i, class)).sum();
        if col == 0 {
            return 0.0;
        }
        self.count(class, class) as f64 / col as f64
    }

    /// Macro-averaged F1 score.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        for c in 0..self.n {
            let p = self.precision(c);
            let r = self.recall(c);
            if p + r > 0.0 {
                sum += 2.0 * p * r / (p + r);
            }
        }
        sum / self.n as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "true\\pred ")?;
        for j in 0..self.n {
            write!(f, "{j:>6}")?;
        }
        writeln!(f)?;
        for i in 0..self.n {
            write!(f, "{i:>9} ")?;
            for j in 0..self.n {
                write!(f, "{:>6}", self.count(i, j))?;
            }
            writeln!(f, "   recall {:.2}", self.recall(i))?;
        }
        write!(
            f,
            "accuracy {:.3}, macro-F1 {:.3}",
            self.accuracy(),
            self.macro_f1()
        )
    }
}

/// Evaluates a classifier into a confusion matrix with an arbitrary
/// engine (exact / quantized / photonic).
pub fn confusion_matrix<I, M, S>(
    model: &mut M,
    data: &[(S, usize)],
    num_classes: usize,
    engine: &mut dyn MatmulEngine,
    quant: QuantConfig,
) -> ConfusionMatrix
where
    I: ?Sized,
    M: Classifier<I>,
    S: std::borrow::Borrow<I>,
{
    let mut rng = GaussianSampler::new(0);
    let mut cm = ConfusionMatrix::new(num_classes);
    for (input, label) in data {
        let mut ctx = ForwardCtx::inference(engine, quant, &mut rng);
        let logits = model.forward(input.borrow(), &mut ctx);
        cm.record(*label, argmax(&logits));
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let mut cm = ConfusionMatrix::new(3);
        for c in 0..3 {
            for _ in 0..10 {
                cm.record(c, c);
            }
        }
        assert_eq!(cm.total(), 30);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        for c in 0..3 {
            assert_eq!(cm.recall(c), 1.0);
            assert_eq!(cm.precision(c), 1.0);
        }
    }

    #[test]
    fn skewed_predictions() {
        let mut cm = ConfusionMatrix::new(2);
        // Class 0: 8 right, 2 wrong; class 1: 5 right, 5 wrong.
        for _ in 0..8 {
            cm.record(0, 0);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        for _ in 0..5 {
            cm.record(1, 1);
        }
        for _ in 0..5 {
            cm.record(1, 0);
        }
        assert!((cm.accuracy() - 0.65).abs() < 1e-12);
        assert!((cm.recall(0) - 0.8).abs() < 1e-12);
        assert!((cm.recall(1) - 0.5).abs() < 1e-12);
        assert!((cm.precision(0) - 8.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_has_zero_scores() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.precision(2), 0.0);
    }

    #[test]
    fn display_renders_rows() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(1, 0);
        let s = cm.to_string();
        assert!(s.contains("accuracy"));
        assert!(s.contains("recall"));
    }

    #[test]
    fn end_to_end_with_model() {
        use crate::data;
        use crate::engine::ExactEngine;
        use crate::model::{ModelConfig, VisionTransformer};
        let mut rng = GaussianSampler::new(9);
        let mut vit = VisionTransformer::new(
            ModelConfig::tiny_vision(),
            data::NUM_PATCHES,
            data::PATCH_DIM,
            &mut rng,
        );
        let test = data::vision_dataset(32, 1);
        let cm = confusion_matrix(&mut vit, &test, 4, &mut ExactEngine, QuantConfig::fp32());
        assert_eq!(cm.total(), 32);
        // Untrained model: accuracy is whatever it is, but bookkeeping
        // must be consistent.
        let diag: u64 = (0..4).map(|c| cm.count(c, c)).sum();
        assert!((cm.accuracy() - diag as f64 / 32.0).abs() < 1e-12);
    }
}
