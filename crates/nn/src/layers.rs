//! Trainable layers with hand-written backward passes.

use crate::engine::MatmulEngine;
use crate::quant::{IntegerQuant, QuantConfig};
use crate::tensor::Tensor;
use lt_core::trace::{NonGemmKind, Op, OpKind, TraceRecorder};
use lt_core::{quantized_gemm, QuantizedMatrix};
use lt_photonics::noise::GaussianSampler;

/// A trainable parameter with its gradient and Adam state.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient.
    pub grad: Tensor,
    m: Tensor,
    v: Tensor,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Tensor::zeros(r, c),
            m: Tensor::zeros(r, c),
            v: Tensor::zeros(r, c),
        }
    }

    /// Clears the gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.rows(), self.value.cols());
    }

    /// One Adam update (`t` is the 1-based step count).
    pub fn adam_step(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32, t: u64) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        for i in 0..self.value.data().len() {
            let g = self.grad.data()[i];
            let m = beta1 * self.m.data()[i] + (1.0 - beta1) * g;
            let v = beta2 * self.v.data()[i] + (1.0 - beta2) * g * g;
            self.m.data_mut()[i] = m;
            self.v.data_mut()[i] = v;
            let m_hat = m / bc1;
            let v_hat = v / bc2;
            self.value.data_mut()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.data().len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.data().is_empty()
    }
}

/// Per-forward execution context: which backend multiplies matrices, how
/// operands are quantized, whether training-time noise is injected, and
/// — optionally — where the executed ops are recorded.
///
/// When a [`TraceRecorder`] is attached ([`ForwardCtx::with_recorder`]),
/// every routed matmul is appended with its workload role and the
/// layers report their non-GEMM element counts, so a forward pass
/// leaves behind an `lt_core::Trace` of what it actually executed — the
/// input to `lt_arch::Simulator::run_trace`. Recording is pure
/// observability: it changes no numerics and costs two integer pushes
/// per op when enabled, nothing when not.
#[derive(Debug)]
pub struct ForwardCtx<'a> {
    /// Matmul backend (exact for training, photonic for noisy inference).
    pub engine: &'a mut dyn MatmulEngine,
    /// Operand fake-quantization (QAT).
    pub quant: QuantConfig,
    /// Training mode: enables noise-aware training injection.
    pub training: bool,
    /// Noise-aware training: relative std-dev of multiplicative Gaussian
    /// noise on matmul outputs (mimics Eq. 9's systematic term).
    pub train_noise_std: f32,
    /// Noise source for training-time injection.
    pub rng: &'a mut GaussianSampler,
    /// Optional op-trace sink (keep a clone to drain after the pass).
    pub recorder: Option<TraceRecorder>,
}

impl<'a> ForwardCtx<'a> {
    /// An inference context (no training noise, no recording).
    pub fn inference(
        engine: &'a mut dyn MatmulEngine,
        quant: QuantConfig,
        rng: &'a mut GaussianSampler,
    ) -> Self {
        ForwardCtx {
            engine,
            quant,
            training: false,
            train_noise_std: 0.0,
            rng,
            recorder: None,
        }
    }

    /// Attaches an op-trace recorder.
    pub fn with_recorder(mut self, recorder: TraceRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Records one op if a recorder is attached; a no-op otherwise.
    pub fn record(&self, op: Op) {
        if let Some(rec) = &self.recorder {
            rec.record(op);
        }
    }

    /// Reports a non-GEMM digital op (softmax / LayerNorm / GELU /
    /// residual) over `elems` elements.
    pub fn record_non_gemm(&self, kind: NonGemmKind, elems: u64) {
        self.record(Op::non_gemm(kind, elems));
    }

    /// Executes a (possibly noisy, possibly quantized) matmul, recorded
    /// as an untagged [`OpKind::Other`] product.
    pub fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        self.matmul_as(OpKind::Other, a, b)
    }

    /// As [`ForwardCtx::matmul`], recorded under the given workload role.
    pub fn matmul_as(&mut self, kind: OpKind, a: &Tensor, b: &Tensor) -> Tensor {
        let aq = self.quant.apply(a);
        let bq = self.quant.apply(b);
        self.matmul_prequantized_as(kind, &aq, &bq)
    }

    /// As [`ForwardCtx::matmul`] but for operands the caller has already
    /// fake-quantized (e.g. to cache them for backward) — skips the
    /// redundant re-quantization, still injects training noise.
    /// Quantization is idempotent, so the result is identical to
    /// [`ForwardCtx::matmul`] on the raw operands.
    pub fn matmul_prequantized(&mut self, aq: &Tensor, bq: &Tensor) -> Tensor {
        self.matmul_prequantized_as(OpKind::Other, aq, bq)
    }

    /// As [`ForwardCtx::matmul_prequantized`], recorded under the given
    /// workload role.
    pub fn matmul_prequantized_as(&mut self, kind: OpKind, aq: &Tensor, bq: &Tensor) -> Tensor {
        self.record(Op::gemm(kind, aq.rows(), aq.cols(), bq.cols()));
        let y = self.engine.matmul(aq, bq);
        self.apply_train_noise(y)
    }

    /// Executes a true integer matmul on pre-encoded operands: i8/i4
    /// codes with grouped per-channel scales, f32 accumulation
    /// ([`lt_core::quantized_gemm`]). Recorded under the given workload
    /// role exactly like the float paths, so integer traces carry the
    /// same op vocabulary; training noise (if any) is still injected on
    /// the accumulated output.
    pub fn matmul_integer_as(
        &mut self,
        kind: OpKind,
        aq: &QuantizedMatrix,
        bq: &QuantizedMatrix,
    ) -> Tensor {
        self.record(Op::gemm(kind, aq.rows(), aq.cols(), bq.cols()));
        let y = quantized_gemm(aq, bq);
        self.apply_train_noise(y)
    }

    fn apply_train_noise(&mut self, y: Tensor) -> Tensor {
        if self.training && self.train_noise_std > 0.0 {
            let std = self.train_noise_std;
            let rng = &mut *self.rng;
            y.map(|v| v * (1.0 + rng.sample() as f32 * std))
        } else {
            y
        }
    }
}

/// Encodes a `Linear` product's operands for the integer path:
/// activations per-row, weights per-column, grouped along the shared
/// reduction dimension.
fn encode_integer_operands(
    x: &Tensor,
    w: &Tensor,
    iq: IntegerQuant,
) -> (QuantizedMatrix, QuantizedMatrix) {
    (
        QuantizedMatrix::quantize_rows(&x.view(), iq.bits, iq.group),
        QuantizedMatrix::quantize_cols(&w.view(), iq.bits, iq.group),
    )
}

/// A fully connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight, `in x out`.
    pub w: Param,
    /// Bias, `1 x out`.
    pub b: Param,
    /// Workload role this linear's product records as (defaults to
    /// [`OpKind::Other`]; set via [`Linear::with_role`]).
    pub role: OpKind,
    cache_x: Option<Tensor>,
    cache_w: Option<Tensor>,
}

impl Linear {
    /// Xavier-style initialization.
    pub fn new(inputs: usize, outputs: usize, rng: &mut GaussianSampler) -> Self {
        let std = (2.0 / (inputs + outputs) as f32).sqrt();
        Linear {
            w: Param::new(Tensor::randn(inputs, outputs, std, rng)),
            b: Param::new(Tensor::zeros(1, outputs)),
            role: OpKind::Other,
            cache_x: None,
            cache_w: None,
        }
    }

    /// Tags the layer with its workload role, so recorded traces carry
    /// the same op vocabulary as the analytical ones.
    pub fn with_role(mut self, role: OpKind) -> Self {
        self.role = role;
        self
    }

    /// Forward pass; caches (quantized) operands for backward.
    ///
    /// Under an integer [`QuantConfig`] the product runs on i8/i4 codes
    /// via [`ForwardCtx::matmul_integer_as`]; the *dequantized* operands
    /// are cached, so backward remains a straight-through estimator
    /// through the integer encoder.
    pub fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        if let Some(iq) = ctx.quant.integer {
            let (xq, wq) = encode_integer_operands(x, &self.w.value, iq);
            let y = ctx
                .matmul_integer_as(self.role, &xq, &wq)
                .add_row_broadcast(&self.b.value);
            self.cache_x = Some(xq.dequantize());
            self.cache_w = Some(wq.dequantize());
            return y;
        }
        let xq = ctx.quant.apply(x);
        let wq = ctx.quant.apply(&self.w.value);
        let y = ctx
            .matmul_prequantized_as(self.role, &xq, &wq)
            .add_row_broadcast(&self.b.value);
        self.cache_x = Some(xq);
        self.cache_w = Some(wq);
        y
    }

    /// Inference-only forward pass: same numerics as [`Linear::forward`]
    /// (quantization, recording, training noise) but caches nothing, so
    /// it takes `&self` — the entry point the autoregressive decode path
    /// uses to let many concurrent sessions share one set of weights.
    pub fn infer(&self, x: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        if let Some(iq) = ctx.quant.integer {
            let (xq, wq) = encode_integer_operands(x, &self.w.value, iq);
            return ctx
                .matmul_integer_as(self.role, &xq, &wq)
                .add_row_broadcast(&self.b.value);
        }
        ctx.matmul_as(self.role, x, &self.w.value)
            .add_row_broadcast(&self.b.value)
    }

    /// Backward pass: accumulates `dW`, `db`, returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("Linear::forward not called");
        let w = self.cache_w.as_ref().expect("Linear::forward not called");
        self.w.grad.add_assign(&x.transpose().matmul(dy));
        self.b.grad.add_assign(&dy.col_sum());
        dy.matmul(&w.transpose())
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

/// Row-wise layer normalization with learned scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale `gamma`, `1 x dim`.
    pub gamma: Param,
    /// Shift `beta`, `1 x dim`.
    pub beta: Param,
    eps: f32,
    cache_xhat: Option<Tensor>,
    cache_inv_std: Option<Vec<f32>>,
}

impl LayerNorm {
    /// Identity-initialized LayerNorm over `dim` features.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Tensor::from_fn(1, dim, |_, _| 1.0)),
            beta: Param::new(Tensor::zeros(1, dim)),
            eps: 1e-5,
            cache_xhat: None,
            cache_inv_std: None,
        }
    }

    /// The shared normalization: row-wise `xhat = (x - mean) / std` and
    /// the per-row `1/std`, used by both the training and the decode
    /// path so their numerics can never drift apart.
    fn normalize(&self, x: &Tensor) -> (Tensor, Vec<f32>) {
        let (rows, cols) = x.shape();
        let mut xhat = Tensor::zeros(rows, cols);
        let mut inv_stds = Vec::with_capacity(rows);
        for i in 0..rows {
            let row = x.row(i);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            for j in 0..cols {
                xhat.set(i, j, (row[j] - mean) * inv_std);
            }
        }
        (xhat, inv_stds)
    }

    /// Applies the learned scale and shift to normalized rows.
    fn scale_shift(&self, xhat: &Tensor) -> Tensor {
        Tensor::from_fn(xhat.rows(), xhat.cols(), |i, j| {
            xhat.get(i, j) * self.gamma.value.get(0, j) + self.beta.value.get(0, j)
        })
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (xhat, inv_stds) = self.normalize(x);
        let y = self.scale_shift(&xhat);
        self.cache_xhat = Some(xhat);
        self.cache_inv_std = Some(inv_stds);
        y
    }

    /// Inference-only forward pass: identical numerics to
    /// [`LayerNorm::forward`] (same normalization core) but caches
    /// nothing, so it takes `&self` (shared weights across concurrent
    /// decode sessions).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.scale_shift(&self.normalize(x).0)
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let xhat = self
            .cache_xhat
            .as_ref()
            .expect("LayerNorm::forward not called");
        let inv_std = self
            .cache_inv_std
            .as_ref()
            .expect("LayerNorm::forward not called");
        let (rows, cols) = dy.shape();
        self.gamma.grad.add_assign(&xhat.hadamard(dy).col_sum());
        self.beta.grad.add_assign(&dy.col_sum());
        let mut dx = Tensor::zeros(rows, cols);
        for i in 0..rows {
            // dL/dxhat = dy * gamma
            let g: Vec<f32> = (0..cols)
                .map(|j| dy.get(i, j) * self.gamma.value.get(0, j))
                .collect();
            let mean_g = g.iter().sum::<f32>() / cols as f32;
            let mean_gx = (0..cols).map(|j| g[j] * xhat.get(i, j)).sum::<f32>() / cols as f32;
            for j in 0..cols {
                let v = (g[j] - mean_g - xhat.get(i, j) * mean_gx) * inv_std[i];
                dx.set(i, j, v);
            }
        }
        dx
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// GELU activation (tanh approximation, as used by Transformers).
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cache_x: Option<Tensor>,
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

impl Gelu {
    /// Creates the activation.
    pub fn new() -> Self {
        Gelu::default()
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        x.map(gelu_scalar)
    }

    /// Inference-only forward pass (no backward cache, `&self`).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        x.map(gelu_scalar)
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("Gelu::forward not called");
        x.map(gelu_grad_scalar).hadamard(dy)
    }
}

/// Row-wise softmax (used for attention probabilities).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = x.shape();
    let mut out = Tensor::zeros(rows, cols);
    for i in 0..rows {
        let row = x.row(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut denom = 0.0;
        let exps: Vec<f32> = row
            .iter()
            .map(|&v| {
                let e = (v - max).exp();
                denom += e;
                e
            })
            .collect();
        for j in 0..cols {
            out.set(i, j, exps[j] / denom);
        }
    }
    out
}

/// Backward of row-wise softmax: given `s = softmax(x)` and `ds`, returns
/// `dx`.
pub fn softmax_rows_backward(s: &Tensor, ds: &Tensor) -> Tensor {
    let (rows, cols) = s.shape();
    let mut dx = Tensor::zeros(rows, cols);
    for i in 0..rows {
        let dot: f32 = (0..cols).map(|j| ds.get(i, j) * s.get(i, j)).sum();
        for j in 0..cols {
            dx.set(i, j, s.get(i, j) * (ds.get(i, j) - dot));
        }
    }
    dx
}

/// Cross-entropy loss over logits `[batch, classes]`; returns the mean
/// loss and the gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if a label is out of range or the batch is empty.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (batch, classes) = logits.shape();
    assert_eq!(batch, labels.len(), "label count mismatch");
    assert!(batch > 0, "empty batch");
    let probs = softmax_rows(logits);
    let mut loss = 0.0;
    let mut grad = Tensor::zeros(batch, classes);
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        loss -= probs.get(i, label).max(1e-12).ln();
        for j in 0..classes {
            let indicator = if j == label { 1.0 } else { 0.0 };
            grad.set(i, j, (probs.get(i, j) - indicator) / batch as f32);
        }
    }
    (loss / batch as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;

    fn ctx_parts() -> (ExactEngine, GaussianSampler) {
        (ExactEngine, GaussianSampler::new(0))
    }

    /// Finite-difference check of a scalar loss w.r.t. one tensor entry.
    fn numerical_grad(f: &mut dyn FnMut(f32) -> f32, x0: f32) -> f32 {
        let h = 1e-3;
        (f(x0 + h) - f(x0 - h)) / (2.0 * h)
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = GaussianSampler::new(1);
        let x = Tensor::randn(3, 4, 1.0, &mut rng);
        let dy = Tensor::randn(3, 2, 1.0, &mut rng);
        let mut layer = Linear::new(4, 2, &mut rng);
        let w0 = layer.w.value.clone();

        let (mut eng, mut nrng) = ctx_parts();
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
        let _ = layer.forward(&x, &mut ctx);
        let dx = layer.backward(&dy);

        // Loss L = sum(y * dy); dL/dw and dL/dx should match numerics.
        let loss =
            |w: &Tensor, x: &Tensor| -> f32 { x.matmul(w).hadamard(&dy).data().iter().sum() };
        // Check one weight entry and one input entry.
        let got_dw = layer.w.grad.get(1, 0);
        let num_dw = numerical_grad(
            &mut |v| {
                let mut w = w0.clone();
                w.set(1, 0, v);
                loss(&w, &x)
            },
            w0.get(1, 0),
        );
        assert!((got_dw - num_dw).abs() < 1e-2, "dw {got_dw} vs {num_dw}");

        let got_dx = dx.get(2, 1);
        let num_dx = numerical_grad(
            &mut |v| {
                let mut xx = x.clone();
                xx.set(2, 1, v);
                loss(&w0, &xx)
            },
            x.get(2, 1),
        );
        assert!((got_dx - num_dx).abs() < 1e-2, "dx {got_dx} vs {num_dx}");
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut rng = GaussianSampler::new(2);
        let x = Tensor::randn(4, 16, 3.0, &mut rng).map(|v| v + 5.0);
        let mut ln = LayerNorm::new(16);
        let y = ln.forward(&x);
        for i in 0..4 {
            let mean: f32 = y.row(i).iter().sum::<f32>() / 16.0;
            let var: f32 = y
                .row(i)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 16.0;
            assert!(mean.abs() < 1e-4, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {i} var {var}");
        }
    }

    #[test]
    fn layernorm_gradient_matches_finite_differences() {
        let mut rng = GaussianSampler::new(3);
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let dy = Tensor::randn(2, 8, 1.0, &mut rng);
        let mut ln = LayerNorm::new(8);
        let _ = ln.forward(&x);
        let dx = ln.backward(&dy);

        let loss = |x: &Tensor| -> f32 {
            let mut ln2 = LayerNorm::new(8);
            ln2.forward(x).hadamard(&dy).data().iter().sum()
        };
        let got = dx.get(1, 3);
        let num = numerical_grad(
            &mut |v| {
                let mut xx = x.clone();
                xx.set(1, 3, v);
                loss(&xx)
            },
            x.get(1, 3),
        );
        assert!((got - num).abs() < 1e-2, "dx {got} vs {num}");
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert!((gelu_scalar(0.0)).abs() < 1e-7);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive ~ identity, large negative ~ 0.
        assert!((gelu_scalar(6.0) - 6.0).abs() < 1e-3);
        assert!(gelu_scalar(-6.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_gradient_matches_finite_differences() {
        for x0 in [-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let got = gelu_grad_scalar(x0);
            let num = numerical_grad(&mut |v| gelu_scalar(v), x0);
            assert!((got - num).abs() < 1e-3, "x={x0}: {got} vs {num}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_backward_matches_finite_differences() {
        let mut rng = GaussianSampler::new(4);
        let x = Tensor::randn(1, 5, 1.0, &mut rng);
        let ds = Tensor::randn(1, 5, 1.0, &mut rng);
        let s = softmax_rows(&x);
        let dx = softmax_rows_backward(&s, &ds);
        let loss = |x: &Tensor| softmax_rows(x).hadamard(&ds).data().iter().sum::<f32>();
        for j in 0..5 {
            let num = numerical_grad(
                &mut |v| {
                    let mut xx = x.clone();
                    xx.set(0, j, v);
                    loss(&xx)
                },
                x.get(0, j),
            );
            assert!((dx.get(0, j) - num).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_basics() {
        // A confidently correct prediction has near-zero loss.
        let logits = Tensor::from_vec(1, 3, vec![10.0, -5.0, -5.0]);
        let (loss, grad) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
        assert!(grad.get(0, 0) < 0.0 || grad.get(0, 0).abs() < 1e-3);
        // Uniform logits: loss = ln(classes).
        let logits = Tensor::zeros(1, 4);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn adam_reduces_quadratic_loss() {
        // Minimize ||w||^2 with Adam; it must shrink monotonically-ish.
        let mut p = Param::new(Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]));
        for t in 1..=200 {
            p.zero_grad();
            p.grad = p.value.scale(2.0);
            p.adam_step(0.05, 0.9, 0.999, 1e-8, t);
        }
        assert!(p.value.max_abs() < 0.05, "residual {}", p.value.max_abs());
    }

    #[test]
    fn integer_path_tracks_fp32_and_is_deterministic() {
        let mut rng = GaussianSampler::new(6);
        let x = Tensor::randn(3, 16, 1.0, &mut rng);
        let mut layer = Linear::new(16, 8, &mut rng);

        let (mut eng, mut nrng) = ctx_parts();
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
        let y_fp = layer.forward(&x, &mut ctx);

        let (mut eng, mut nrng) = ctx_parts();
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::int8(), &mut nrng);
        let y_i8 = layer.forward(&x, &mut ctx);
        // i8 with grouped scales stays close to fp32 on unit-scale data.
        assert!(
            y_fp.max_abs_diff(&y_i8) < 0.05,
            "i8 drift {}",
            y_fp.max_abs_diff(&y_i8)
        );
        // forward and infer share the encoder: bit-identical outputs.
        let (mut eng, mut nrng) = ctx_parts();
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::int8(), &mut nrng);
        assert_eq!(layer.infer(&x, &mut ctx), y_i8);
        // 4-bit is coarser but still bounded.
        let (mut eng, mut nrng) = ctx_parts();
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::int4(), &mut nrng);
        let y_i4 = layer.infer(&x, &mut ctx);
        assert!(y_fp.max_abs_diff(&y_i4) < 0.8);
        assert!(y_fp.max_abs_diff(&y_i4) > y_fp.max_abs_diff(&y_i8));
    }

    #[test]
    fn integer_path_records_gemm_ops() {
        let mut rng = GaussianSampler::new(7);
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let layer = Linear::new(8, 4, &mut rng).with_role(OpKind::Ffn1);
        let (mut eng, mut nrng) = ctx_parts();
        let rec = TraceRecorder::new();
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::int8(), &mut nrng)
            .with_recorder(rec.clone());
        let _ = layer.infer(&x, &mut ctx);
        let trace = rec.take();
        assert_eq!(trace.ops(), &[Op::gemm(OpKind::Ffn1, 2, 8, 4)]);
    }

    #[test]
    fn integer_backward_uses_dequantized_cache() {
        let mut rng = GaussianSampler::new(8);
        let x = Tensor::randn(2, 8, 1.0, &mut rng);
        let dy = Tensor::randn(2, 4, 1.0, &mut rng);
        let mut layer = Linear::new(8, 4, &mut rng);
        let (mut eng, mut nrng) = ctx_parts();
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::int8(), &mut nrng);
        let _ = layer.forward(&x, &mut ctx);
        let dx = layer.backward(&dy);
        // STE gradient through the dequantized weights: close to fp32's.
        let dx_ref = dy.matmul(&layer.w.value.transpose());
        assert!(dx.max_abs_diff(&dx_ref) < 0.05);
    }

    #[test]
    fn training_noise_perturbs_outputs() {
        let mut rng = GaussianSampler::new(5);
        let x = Tensor::randn(2, 4, 1.0, &mut rng);
        let mut layer = Linear::new(4, 4, &mut rng);
        let (mut eng, mut nrng) = ctx_parts();
        let mut ctx = ForwardCtx {
            engine: &mut eng,
            quant: QuantConfig::fp32(),
            training: true,
            train_noise_std: 0.05,
            rng: &mut nrng,
            recorder: None,
        };
        let y1 = layer.forward(&x, &mut ctx);
        let y2 = layer.forward(&x, &mut ctx);
        assert!(y1.max_abs_diff(&y2) > 0.0, "noise must differ per call");
    }
}
