//! Paged KV cache: a block-pool allocator, per-session block tables,
//! copy-on-write prefix sharing, and swap-out/recompute preemption —
//! the memory manager that turns decode's growing context into a
//! capacity question the hardware model can answer (how many sessions
//! fit a fixed pool before decode falls off the bandwidth cliff).
//!
//! The contiguous [`AttnKvCache`] grows
//! one flat buffer per layer per session: simple, but it can neither
//! share memory between sessions nor be preempted, and its reads were
//! invisible to the scheduler. This module replaces that path behind
//! two object-safe traits:
//!
//! * [`KvLayer`] — one layer's cache as attention sees it: append K/V
//!   rows (returning [`KvWrite`] stats so the caller can record the
//!   *actual* traffic, including copy-on-write and skipped shared
//!   rows), and gather the cached context back.
//! * [`ModelKv`] — the whole model's cache as the decoder sees it: one
//!   [`KvLayer`] per block of the stack.
//!
//! [`PagedKvCache`] implements both over a shared [`BlockPool`] of
//! fixed-size blocks. One block holds `block_tokens` tokens of K and V
//! for *every* layer (vLLM-style paging, one indirection per token
//! position), so allocation, sharing, copy-on-write, and swap all move
//! whole blocks — the block-granular traffic the op-trace records as
//! [`NonGemmKind::KvRead`]/`KvAppend` and `lt_arch::schedule` turns
//! into HBM bandwidth stalls.
//!
//! Prefix sharing is weak and self-correcting: a [`PrefixIndex`] entry
//! remembers `(block id, generation)` pairs; the pool bumps a block's
//! generation when it returns to the free list, so a stale entry can
//! never resurrect recycled memory. Borrowing retains the blocks
//! (refcount), and any write into a block with refcount > 1 copies it
//! first — copy-on-write never mutates memory another session can see.

use crate::attention::AttnKvCache;
use crate::tensor::Tensor;
use lt_core::trace::NonGemmKind;
use std::sync::{Arc, Mutex};

/// What one [`KvLayer::append`] actually did, in traffic terms: the
/// caller records `2 * rows_written * dim` elements of
/// [`NonGemmKind::KvAppend`] (skipped shared-prefix rows save their
/// write), plus `cow_elems` of both `KvRead` and `KvAppend` for every
/// block duplicated by copy-on-write (a copy reads and rewrites the
/// whole block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvWrite {
    /// Token rows whose K and V were actually written.
    pub rows_written: usize,
    /// Elements (K and V) duplicated by copy-on-write, block-granular.
    pub cow_elems: u64,
}

/// One layer's KV cache as the attention module drives it.
pub trait KvLayer {
    /// Tokens cached in this layer.
    fn context_len(&self) -> usize;
    /// Appends the K/V rows of newly seen tokens and reports the
    /// resulting memory traffic (see [`KvWrite`]).
    fn append(&mut self, k: &Tensor, v: &Tensor) -> KvWrite;
    /// The cached K rows, materialized `[context, dim]`.
    fn context_keys(&self) -> Tensor;
    /// The cached V rows, materialized `[context, dim]`.
    fn context_values(&self) -> Tensor;
}

impl KvLayer for AttnKvCache {
    fn context_len(&self) -> usize {
        self.len()
    }

    fn append(&mut self, k: &Tensor, v: &Tensor) -> KvWrite {
        let rows = k.rows();
        AttnKvCache::append(self, k, v);
        KvWrite {
            rows_written: rows,
            cow_elems: 0,
        }
    }

    fn context_keys(&self) -> Tensor {
        self.keys().clone()
    }

    fn context_values(&self) -> Tensor {
        self.values().clone()
    }
}

/// The whole model's KV cache as the decoder drives it: one layer view
/// per decoder block, a common context length, and the token-granular
/// byte accounting replies report (identical for the contiguous and
/// paged implementations, so replies stay comparable across paths).
pub trait ModelKv {
    /// Context length in tokens (identical across layers between passes).
    fn len(&self) -> usize;
    /// Whether no tokens are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Number of layers.
    fn num_layers(&self) -> usize;
    /// One layer's cache.
    fn layer_mut(&mut self, layer: usize) -> &mut dyn KvLayer;
    /// Token-granular footprint at `bits` operand precision: keys and
    /// values, every layer, the whole context.
    fn bytes(&self, bits: u32) -> u64;
}

/// What to do with a preempted session's KV blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptPolicy {
    /// Copy block contents to session-private swap storage and free the
    /// blocks; resume copies them back. Bit-exact for any backend (no
    /// recomputation), at the price of swap traffic.
    SwapOut,
    /// Drop the blocks; resume re-runs the prefill over everything fed
    /// so far. No swap traffic, but exact only for deterministic
    /// backends (a noisy engine re-rolls the cached values).
    Recompute,
}

/// Cumulative [`BlockPool`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Blocks handed out.
    pub allocs: u64,
    /// Blocks returned to the free list.
    pub frees: u64,
    /// Copy-on-write block duplications.
    pub cow_copies: u64,
    /// High-water mark of simultaneously used blocks.
    pub peak_used_blocks: usize,
}

#[derive(Debug)]
struct BlockSlot {
    refcount: u32,
    /// Bumped every time the block returns to the free list, so weak
    /// [`PrefixIndex`] entries can detect recycling.
    generation: u64,
    /// `[layer][slot][dim]` flattened; allocated lazily on first use.
    k: Vec<f32>,
    v: Vec<f32>,
}

#[derive(Debug)]
struct PoolInner {
    slots: Vec<BlockSlot>,
    free: Vec<usize>,
    stats: PoolStats,
}

/// A shared, refcounted pool of fixed-size KV blocks. Cloning the
/// handle shares the pool; block data is allocated lazily, so a large
/// pool costs memory proportional to its high-water mark, not its
/// capacity.
#[derive(Debug, Clone)]
pub struct BlockPool {
    inner: Arc<Mutex<PoolInner>>,
    layers: usize,
    dim: usize,
    block_tokens: usize,
}

impl BlockPool {
    /// A pool of `blocks` blocks, each holding `block_tokens` tokens of
    /// K and V across `layers` layers of width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(blocks: usize, layers: usize, dim: usize, block_tokens: usize) -> Self {
        assert!(
            blocks > 0 && layers > 0 && dim > 0 && block_tokens > 0,
            "BlockPool dimensions must be positive"
        );
        BlockPool {
            inner: Arc::new(Mutex::new(PoolInner {
                slots: (0..blocks)
                    .map(|_| BlockSlot {
                        refcount: 0,
                        generation: 0,
                        k: Vec::new(),
                        v: Vec::new(),
                    })
                    .collect(),
                // LIFO reuse keeps the touched working set small.
                free: (0..blocks).rev().collect(),
                stats: PoolStats::default(),
            })),
            layers,
            dim,
            block_tokens,
        }
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Layers per block.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Elements per block for K (and again for V): every layer's
    /// `block_tokens x dim` region.
    pub fn block_elems(&self) -> u64 {
        (self.layers * self.block_tokens * self.dim) as u64
    }

    /// One block's K+V footprint at `bits` operand precision.
    pub fn block_bytes(&self, bits: u32) -> u64 {
        2 * self.block_elems() * bits as u64 / 8
    }

    /// Total blocks in the pool.
    pub fn total_blocks(&self) -> usize {
        self.inner.lock().expect("pool poisoned").slots.len()
    }

    /// Blocks currently on the free list.
    pub fn free_blocks(&self) -> usize {
        self.inner.lock().expect("pool poisoned").free.len()
    }

    /// Blocks currently held by at least one table.
    pub fn used_blocks(&self) -> usize {
        let inner = self.inner.lock().expect("pool poisoned");
        inner.slots.len() - inner.free.len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("pool poisoned").stats
    }

    /// A block's current refcount (0 = free).
    pub fn refcount(&self, block: usize) -> u32 {
        self.inner.lock().expect("pool poisoned").slots[block].refcount
    }

    /// A block's current generation stamp.
    pub fn generation(&self, block: usize) -> u64 {
        self.inner.lock().expect("pool poisoned").slots[block].generation
    }

    /// Allocates one block (refcount 1), or `None` if the pool is
    /// exhausted — the signal the decode scheduler turns into
    /// admission back-pressure or preemption.
    pub fn alloc(&self) -> Option<usize> {
        let mut inner = self.inner.lock().expect("pool poisoned");
        self.alloc_locked(&mut inner)
    }

    fn alloc_locked(&self, inner: &mut PoolInner) -> Option<usize> {
        let id = inner.free.pop()?;
        let elems = self.block_elems() as usize;
        let slot = &mut inner.slots[id];
        debug_assert_eq!(slot.refcount, 0, "free block with live references");
        slot.refcount = 1;
        if slot.k.is_empty() {
            slot.k = vec![0.0; elems];
            slot.v = vec![0.0; elems];
        }
        inner.stats.allocs += 1;
        let used = inner.slots.len() - inner.free.len();
        inner.stats.peak_used_blocks = inner.stats.peak_used_blocks.max(used);
        Some(id)
    }

    /// Adds a reference to a live block.
    ///
    /// # Panics
    ///
    /// Panics if the block is free.
    pub fn retain(&self, block: usize) {
        let mut inner = self.inner.lock().expect("pool poisoned");
        assert!(inner.slots[block].refcount > 0, "retain of a free block");
        inner.slots[block].refcount += 1;
    }

    /// Drops a reference; when the last holder releases, the block
    /// returns to the free list and its generation bumps (staling any
    /// weak [`PrefixIndex`] entry that pointed at it). Returns whether
    /// the block was freed.
    ///
    /// # Panics
    ///
    /// Panics if the block is already free (double release).
    pub fn release(&self, block: usize) -> bool {
        let mut inner = self.inner.lock().expect("pool poisoned");
        let slot = &mut inner.slots[block];
        assert!(slot.refcount > 0, "double release of block {block}");
        slot.refcount -= 1;
        if slot.refcount == 0 {
            slot.generation += 1;
            inner.free.push(block);
            inner.stats.frees += 1;
            true
        } else {
            false
        }
    }

    /// Atomically validates that every `(block, generation)` pair is
    /// still live and un-recycled, and retains them all. Returns false
    /// (retaining nothing) if any pair is stale — the weak-borrow
    /// primitive behind prefix sharing.
    pub fn try_retain_all(&self, blocks: &[(usize, u64)]) -> bool {
        let mut inner = self.inner.lock().expect("pool poisoned");
        let valid = blocks.iter().all(|&(id, generation)| {
            inner
                .slots
                .get(id)
                .is_some_and(|s| s.refcount > 0 && s.generation == generation)
        });
        if valid {
            for &(id, _) in blocks {
                inner.slots[id].refcount += 1;
            }
        }
        valid
    }

    /// Duplicates a block into a fresh one (copy-on-write): allocates,
    /// copies the whole K/V payload, and releases the caller's
    /// reference to the original. Returns the new block id and the
    /// elements copied (K + V), or `None` if the pool is exhausted.
    pub fn cow(&self, block: usize) -> Option<(usize, u64)> {
        let mut inner = self.inner.lock().expect("pool poisoned");
        let new = self.alloc_locked(&mut inner)?;
        let (k, v) = {
            let src = &inner.slots[block];
            (src.k.clone(), src.v.clone())
        };
        inner.slots[new].k = k;
        inner.slots[new].v = v;
        let src = &mut inner.slots[block];
        assert!(src.refcount > 0, "copy-on-write of a free block");
        src.refcount -= 1;
        if src.refcount == 0 {
            src.generation += 1;
            inner.free.push(block);
            inner.stats.frees += 1;
        }
        inner.stats.cow_copies += 1;
        Some((new, 2 * self.block_elems()))
    }

    /// Writes one token row (K and V) of `layer` at `slot` within
    /// `block`.
    fn write_row(&self, block: usize, layer: usize, slot: usize, k: &[f32], v: &[f32]) {
        debug_assert_eq!(k.len(), self.dim);
        let mut inner = self.inner.lock().expect("pool poisoned");
        let base = (layer * self.block_tokens + slot) * self.dim;
        let s = &mut inner.slots[block];
        s.k[base..base + self.dim].copy_from_slice(k);
        s.v[base..base + self.dim].copy_from_slice(v);
    }

    /// Gathers `rows` tokens of `layer` from the block sequence into a
    /// contiguous `[rows, dim]` K and V pair — the materialization the
    /// attention step reads. Copies are exact (f32 to f32), so a paged
    /// gather is bit-identical to a contiguous cache read.
    fn gather(&self, blocks: &[usize], layer: usize, rows: usize) -> (Tensor, Tensor) {
        let inner = self.inner.lock().expect("pool poisoned");
        let mut k = vec![0.0f32; rows * self.dim];
        let mut v = vec![0.0f32; rows * self.dim];
        for pos in 0..rows {
            let block = blocks[pos / self.block_tokens];
            let slot = pos % self.block_tokens;
            let base = (layer * self.block_tokens + slot) * self.dim;
            let s = &inner.slots[block];
            k[pos * self.dim..(pos + 1) * self.dim].copy_from_slice(&s.k[base..base + self.dim]);
            v[pos * self.dim..(pos + 1) * self.dim].copy_from_slice(&s.v[base..base + self.dim]);
        }
        (
            Tensor::from_vec(rows, self.dim, k),
            Tensor::from_vec(rows, self.dim, v),
        )
    }

    /// Clones a block's full K/V payload (swap-out).
    fn export(&self, block: usize) -> (Vec<f32>, Vec<f32>) {
        let inner = self.inner.lock().expect("pool poisoned");
        (inner.slots[block].k.clone(), inner.slots[block].v.clone())
    }

    /// Allocates a block and restores a swapped payload into it.
    fn import(&self, k: Vec<f32>, v: Vec<f32>) -> Option<usize> {
        let mut inner = self.inner.lock().expect("pool poisoned");
        let id = self.alloc_locked(&mut inner)?;
        inner.slots[id].k = k;
        inner.slots[id].v = v;
        Some(id)
    }
}

/// Per-session table state shared by the cache and its layer views.
#[derive(Debug)]
struct TableState {
    /// Block ids covering the context, in sequence order.
    blocks: Vec<usize>,
    /// Tokens appended so far, per layer (layers advance one forward
    /// pass at a time, so fills differ at most transiently mid-pass).
    layer_fill: Vec<usize>,
    /// Leading tokens borrowed from a shared prefix: appends below this
    /// position skip their write (the rows are already cached).
    shared_tokens: usize,
    /// Swap-out storage (block payloads, in block order) when preempted.
    swapped: Option<Vec<(Vec<f32>, Vec<f32>)>>,
}

/// One layer's view of a [`PagedKvCache`] (the [`KvLayer`] the decoder
/// blocks drive).
#[derive(Debug)]
pub struct PagedKvLayer {
    pool: BlockPool,
    table: Arc<Mutex<TableState>>,
    layer: usize,
}

impl KvLayer for PagedKvLayer {
    fn context_len(&self) -> usize {
        self.table.lock().expect("table poisoned").layer_fill[self.layer]
    }

    fn append(&mut self, k: &Tensor, v: &Tensor) -> KvWrite {
        assert_eq!(k.shape(), v.shape(), "K/V shape mismatch");
        assert_eq!(k.cols(), self.pool.dim(), "K/V width mismatch");
        let bt = self.pool.block_tokens();
        let mut t = self.table.lock().expect("table poisoned");
        assert!(t.swapped.is_none(), "append to a swapped-out KV cache");
        let mut write = KvWrite::default();
        for r in 0..k.rows() {
            let pos = t.layer_fill[self.layer];
            let bi = pos / bt;
            if bi == t.blocks.len() {
                // First layer to reach a fresh block allocates it for
                // the whole stack (one indirection per position).
                let id = self.pool.alloc().expect(
                    "KV block pool exhausted mid-pass — the scheduler must reserve \
                     capacity before stepping",
                );
                t.blocks.push(id);
            }
            if pos >= t.shared_tokens {
                // Writing into a block another table can see would leak
                // our rows into their context: copy it first.
                if self.pool.refcount(t.blocks[bi]) > 1 {
                    let (new, copied) = self
                        .pool
                        .cow(t.blocks[bi])
                        .expect("KV block pool exhausted during copy-on-write");
                    t.blocks[bi] = new;
                    write.cow_elems += copied;
                }
                self.pool
                    .write_row(t.blocks[bi], self.layer, pos % bt, k.row(r), v.row(r));
                write.rows_written += 1;
            }
            t.layer_fill[self.layer] += 1;
        }
        write
    }

    fn context_keys(&self) -> Tensor {
        let t = self.table.lock().expect("table poisoned");
        self.pool
            .gather(&t.blocks, self.layer, t.layer_fill[self.layer])
            .0
    }

    fn context_values(&self) -> Tensor {
        let t = self.table.lock().expect("table poisoned");
        self.pool
            .gather(&t.blocks, self.layer, t.layer_fill[self.layer])
            .1
    }
}

/// A prefix borrowed from the [`PrefixIndex`]: block references already
/// retained on behalf of the borrower.
#[derive(Debug)]
pub struct SharedPrefix {
    blocks: Vec<usize>,
    tokens: usize,
}

impl SharedPrefix {
    /// Tokens covered by the borrowed blocks.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Borrowed blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// The paged whole-model KV cache: a block table over a shared
/// [`BlockPool`], one [`PagedKvLayer`] view per decoder block.
#[derive(Debug)]
pub struct PagedKvCache {
    pool: BlockPool,
    table: Arc<Mutex<TableState>>,
    layers: Vec<PagedKvLayer>,
}

impl PagedKvCache {
    /// An empty paged cache for a model of `layers` blocks of width
    /// `dim`, drawing blocks from `pool`.
    ///
    /// # Panics
    ///
    /// Panics if the pool geometry disagrees with the model's.
    pub fn new(pool: &BlockPool, layers: usize, dim: usize) -> Self {
        assert_eq!(pool.layers(), layers, "pool/model layer mismatch");
        assert_eq!(pool.dim(), dim, "pool/model width mismatch");
        let table = Arc::new(Mutex::new(TableState {
            blocks: Vec::new(),
            layer_fill: vec![0; layers],
            shared_tokens: 0,
            swapped: None,
        }));
        let layer_views = (0..layers)
            .map(|layer| PagedKvLayer {
                pool: pool.clone(),
                table: Arc::clone(&table),
                layer,
            })
            .collect();
        PagedKvCache {
            pool: pool.clone(),
            table,
            layers: layer_views,
        }
    }

    /// An empty cache that starts with `prefix.tokens` leading tokens
    /// borrowed from already-cached blocks (see [`PrefixIndex::lookup`],
    /// which retained them). The context length starts at zero — the
    /// prefill still runs over the whole prompt — but appends below the
    /// shared position skip their writes, and any write into a still
    /// shared block copies it first.
    pub fn with_shared_prefix(
        pool: &BlockPool,
        layers: usize,
        dim: usize,
        prefix: SharedPrefix,
    ) -> Self {
        let cache = Self::new(pool, layers, dim);
        {
            let mut t = cache.table.lock().expect("table poisoned");
            t.blocks = prefix.blocks;
            t.shared_tokens = prefix.tokens;
        }
        cache
    }

    /// The pool this cache draws from.
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }

    /// Blocks currently resident (0 while swapped out).
    pub fn resident_blocks(&self) -> usize {
        self.table.lock().expect("table poisoned").blocks.len()
    }

    /// Block-granular resident footprint at `bits` precision (what the
    /// pool actually holds for this session, as opposed to the
    /// token-granular [`ModelKv::bytes`]).
    pub fn resident_block_bytes(&self, bits: u32) -> u64 {
        self.resident_blocks() as u64 * self.pool.block_bytes(bits)
    }

    /// Leading tokens borrowed from a shared prefix.
    pub fn shared_tokens(&self) -> usize {
        self.table.lock().expect("table poisoned").shared_tokens
    }

    /// Whether the cache is swapped out (preempted).
    pub fn is_swapped(&self) -> bool {
        self.table.lock().expect("table poisoned").swapped.is_some()
    }

    /// New blocks an append of `extra` tokens may allocate: fresh
    /// blocks past the table's end, plus one for a potential
    /// copy-on-write of the block the next write lands in. This is what
    /// the scheduler reserves before stepping.
    pub fn blocks_needed(&self, extra: usize) -> usize {
        let bt = self.pool.block_tokens();
        let t = self.table.lock().expect("table poisoned");
        if let Some(swapped) = &t.swapped {
            // Resuming restores every swapped block before any append.
            return swapped.len()
                + (t.len_max() + extra)
                    .div_ceil(bt)
                    .saturating_sub(swapped.len());
        }
        let len = t.len_max();
        let mut needed = (len + extra).div_ceil(bt).saturating_sub(t.blocks.len());
        if let Some(&block) = t.blocks.get(len / bt) {
            if self.pool.refcount(block) > 1 {
                needed += 1;
            }
        }
        needed
    }

    /// References to the blocks covering the first `tokens` positions,
    /// stamped with their current generations — what a
    /// [`PrefixIndex::register`] entry stores.
    pub fn block_refs(&self, tokens: usize) -> Vec<(usize, u64)> {
        let bt = self.pool.block_tokens();
        let t = self.table.lock().expect("table poisoned");
        let blocks = tokens.div_ceil(bt).min(t.blocks.len());
        t.blocks[..blocks]
            .iter()
            .map(|&id| (id, self.pool.generation(id)))
            .collect()
    }

    /// Preempts by copy: clones every resident block's payload into
    /// session-private storage and releases the blocks. Returns the
    /// elements moved (K + V) — swap traffic for the scheduler's
    /// bookkeeping. Resuming ([`PagedKvCache::resume`]) is bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if already swapped out.
    pub fn swap_out(&mut self) -> u64 {
        let mut t = self.table.lock().expect("table poisoned");
        assert!(t.swapped.is_none(), "double swap-out");
        let payloads: Vec<_> = t.blocks.iter().map(|&id| self.pool.export(id)).collect();
        let moved = 2 * self.pool.block_elems() * payloads.len() as u64;
        for id in t.blocks.drain(..) {
            self.pool.release(id);
        }
        // The payloads are now private copies: the shared-prefix link is
        // broken, so future appends must not skip writes.
        t.shared_tokens = 0;
        t.swapped = Some(payloads);
        moved
    }

    /// Preempts by discard: releases every resident block and resets
    /// the table to empty (context length returns to zero) so a
    /// recompute-on-resume can re-run the prefill. Returns the blocks
    /// released.
    pub fn drop_resident(&mut self) -> usize {
        let mut t = self.table.lock().expect("table poisoned");
        let dropped = t.blocks.len();
        for id in t.blocks.drain(..) {
            self.pool.release(id);
        }
        t.layer_fill.iter_mut().for_each(|f| *f = 0);
        t.shared_tokens = 0;
        t.swapped = None;
        dropped
    }

    /// Rolls the cache back to its first `len` tokens — the KV rollback
    /// of speculative decoding, discarding the rows of rejected draft
    /// positions. Clamps every layer's fill, releases now-empty tail
    /// blocks back to the pool (a freed block's generation bumps, so
    /// any weak [`PrefixIndex`] entry that pointed at it stales), and
    /// clamps the shared-prefix watermark. A tail block another table
    /// still shares only loses this table's reference — truncation
    /// writes nothing, so it is copy-on-write-safe by construction.
    /// Returns the blocks released. No-op when already at most `len`
    /// tokens long.
    ///
    /// # Panics
    ///
    /// Panics if the cache is swapped out.
    pub fn truncate(&mut self, len: usize) -> usize {
        let bt = self.pool.block_tokens();
        let mut t = self.table.lock().expect("table poisoned");
        assert!(t.swapped.is_none(), "truncate of a swapped-out KV cache");
        if len >= t.len_max() {
            return 0;
        }
        let keep = len.div_ceil(bt).min(t.blocks.len());
        let released = t.blocks.len() - keep;
        for id in t.blocks.drain(keep..) {
            self.pool.release(id);
        }
        for fill in t.layer_fill.iter_mut() {
            *fill = (*fill).min(len);
        }
        t.shared_tokens = t.shared_tokens.min(len);
        released
    }

    /// Restores a swapped-out cache: reallocates blocks and copies the
    /// payloads back. Returns the elements moved. The caller must have
    /// reserved capacity ([`PagedKvCache::blocks_needed`]).
    ///
    /// # Panics
    ///
    /// Panics if not swapped out, or if the pool cannot supply the
    /// blocks (the scheduler failed to reserve).
    pub fn resume(&mut self) -> u64 {
        let mut t = self.table.lock().expect("table poisoned");
        let payloads = t.swapped.take().expect("resume without swap-out");
        let moved = 2 * self.pool.block_elems() * payloads.len() as u64;
        for (k, v) in payloads {
            let id = self
                .pool
                .import(k, v)
                .expect("KV block pool exhausted during resume — reserve before resuming");
            t.blocks.push(id);
        }
        moved
    }
}

impl Drop for PagedKvCache {
    fn drop(&mut self) {
        let mut t = self.table.lock().expect("table poisoned");
        for id in t.blocks.drain(..) {
            self.pool.release(id);
        }
    }
}

impl TableState {
    /// Context length across layers (they agree between passes; mid-pass
    /// the earliest layers lead).
    fn len_max(&self) -> usize {
        self.layer_fill.iter().copied().max().unwrap_or(0)
    }
}

impl ModelKv for PagedKvCache {
    fn len(&self) -> usize {
        self.table.lock().expect("table poisoned").len_max()
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn layer_mut(&mut self, layer: usize) -> &mut dyn KvLayer {
        &mut self.layers[layer]
    }

    fn bytes(&self, bits: u32) -> u64 {
        2 * self.layers.len() as u64 * self.len() as u64 * self.pool.dim() as u64 * bits as u64 / 8
    }
}

/// Traffic a [`KvWrite`] implies at the recording layer, as
/// `(kind, elems)` pairs — shared by the attention module (which
/// records them) and tests (which pin them).
pub fn kv_write_traffic(write: KvWrite, dim: usize) -> Vec<(NonGemmKind, u64)> {
    let mut ops = Vec::new();
    let written = 2 * (write.rows_written * dim) as u64;
    if written > 0 {
        ops.push((NonGemmKind::KvAppend, written));
    }
    if write.cow_elems > 0 {
        // A copy-on-write reads the whole source block and writes the
        // whole destination block.
        ops.push((NonGemmKind::KvRead, write.cow_elems));
        ops.push((NonGemmKind::KvAppend, write.cow_elems));
    }
    ops
}

/// A weak index from prompt prefixes to the blocks that cache them.
/// Entries hold no references: they are validated against the pool's
/// generation stamps at lookup and pruned when stale, so the index can
/// never keep memory alive or resurrect recycled blocks.
#[derive(Debug, Default)]
pub struct PrefixIndex {
    entries: Vec<PrefixEntry>,
}

#[derive(Debug)]
struct PrefixEntry {
    key: Vec<usize>,
    blocks: Vec<(usize, u64)>,
}

impl PrefixIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registered entries (live or stale — staleness is only discovered
    /// at lookup).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remembers that `prompt`'s tokens are cached in `blocks`
    /// (generation-stamped; see [`PagedKvCache::block_refs`]). An
    /// existing entry for the same prompt is replaced.
    pub fn register(&mut self, prompt: &[usize], blocks: Vec<(usize, u64)>) {
        if blocks.is_empty() {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == prompt) {
            e.blocks = blocks;
        } else {
            self.entries.push(PrefixEntry {
                key: prompt.to_vec(),
                blocks,
            });
        }
    }

    /// Finds the longest registered prefix of `prompt` whose blocks are
    /// all still live and un-recycled, retains them on behalf of the
    /// caller, and returns the borrow. Stale entries found on the way
    /// are pruned.
    pub fn lookup(&mut self, pool: &BlockPool, prompt: &[usize]) -> Option<SharedPrefix> {
        loop {
            let best = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.key.len() <= prompt.len() && prompt.starts_with(&e.key))
                .max_by_key(|(_, e)| e.key.len())
                .map(|(i, _)| i)?;
            if pool.try_retain_all(&self.entries[best].blocks) {
                let e = &self.entries[best];
                return Some(SharedPrefix {
                    blocks: e.blocks.iter().map(|&(id, _)| id).collect(),
                    tokens: e.key.len(),
                });
            }
            self.entries.remove(best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tokens(cache: &mut PagedKvCache, layer: usize, tokens: usize, seed: f32) -> KvWrite {
        let dim = cache.pool.dim();
        let k = Tensor::from_fn(tokens, dim, |i, j| seed + (i * dim + j) as f32);
        let v = Tensor::from_fn(tokens, dim, |i, j| -seed - (i * dim + j) as f32);
        cache.layer_mut(layer).append(&k, &v)
    }

    #[test]
    fn paged_append_and_gather_round_trip() {
        let pool = BlockPool::new(8, 2, 4, 3);
        let mut cache = PagedKvCache::new(&pool, 2, 4);
        for layer in 0..2 {
            let w = write_tokens(&mut cache, layer, 7, 10.0 * layer as f32);
            assert_eq!(w.rows_written, 7);
            assert_eq!(w.cow_elems, 0);
        }
        assert_eq!(cache.len(), 7);
        assert_eq!(cache.resident_blocks(), 3, "ceil(7/3) blocks");
        for layer in 0..2 {
            let k = cache.layer_mut(layer).context_keys();
            assert_eq!(k.shape(), (7, 4));
            assert_eq!(k.get(6, 3), 10.0 * layer as f32 + (6 * 4 + 3) as f32);
        }
        assert_eq!(pool.used_blocks(), 3);
        drop(cache);
        assert_eq!(pool.used_blocks(), 0, "drop releases every block");
        assert_eq!(pool.free_blocks(), 8);
    }

    #[test]
    fn prefix_sharing_skips_writes_and_cow_protects_the_owner() {
        let pool = BlockPool::new(8, 1, 2, 4);
        let mut index = PrefixIndex::new();
        let prompt = vec![1usize, 2, 3, 4, 5, 6]; // 6 tokens: 1.5 blocks

        let mut a = PagedKvCache::new(&pool, 1, 2);
        let w = write_tokens(&mut a, 0, 6, 0.0);
        assert_eq!(w.rows_written, 6);
        index.register(&prompt, a.block_refs(6));

        let shared = index.lookup(&pool, &prompt).expect("live entry");
        assert_eq!((shared.tokens(), shared.num_blocks()), (6, 2));
        let mut b = PagedKvCache::with_shared_prefix(&pool, 1, 2, shared);
        let w = write_tokens(&mut b, 0, 6, 99.0);
        assert_eq!(w.rows_written, 0, "all six rows already cached");
        assert_eq!(w.cow_elems, 0);
        assert_eq!(b.len(), 6);
        // B reads A's values, bit for bit.
        let (ka, kb) = (a.layer_mut(0).context_keys(), b.layer_mut(0).context_keys());
        assert_eq!(ka, kb);
        assert_eq!(pool.used_blocks(), 2, "no extra blocks for B");

        // B continues past the prefix into the shared partial block:
        // copy-on-write, and A's view must not change.
        let before = a.layer_mut(0).context_keys();
        let w = write_tokens(&mut b, 0, 1, 50.0);
        assert_eq!(w.rows_written, 1);
        assert_eq!(w.cow_elems, 2 * pool.block_elems(), "one block copied");
        assert_eq!(a.layer_mut(0).context_keys(), before, "A unchanged");
        assert_eq!(b.layer_mut(0).context_keys().get(6, 0), 50.0);
        assert_eq!(pool.stats().cow_copies, 1);
    }

    #[test]
    fn stale_prefix_entries_are_pruned_not_resurrected() {
        let pool = BlockPool::new(4, 1, 2, 2);
        let mut index = PrefixIndex::new();
        let prompt = vec![7usize, 7, 7, 7];
        {
            let mut a = PagedKvCache::new(&pool, 1, 2);
            write_tokens(&mut a, 0, 4, 0.0);
            index.register(&prompt, a.block_refs(4));
        } // A drops: blocks freed, generations bumped.
        assert_eq!(pool.free_blocks(), 4);
        assert!(index.lookup(&pool, &prompt).is_none(), "stale entry");
        assert!(index.is_empty(), "pruned");
    }

    #[test]
    fn swap_out_and_resume_restore_contents_exactly() {
        let pool = BlockPool::new(6, 2, 4, 2);
        let mut cache = PagedKvCache::new(&pool, 2, 4);
        for layer in 0..2 {
            write_tokens(&mut cache, layer, 5, layer as f32);
        }
        let before: Vec<Tensor> = (0..2).map(|l| cache.layer_mut(l).context_keys()).collect();
        let moved = cache.swap_out();
        assert_eq!(moved, 2 * pool.block_elems() * 3);
        assert!(cache.is_swapped());
        assert_eq!(pool.used_blocks(), 0, "swap-out frees the blocks");
        assert_eq!(cache.len(), 5, "context length survives swap");
        assert_eq!(cache.blocks_needed(0), 3);
        let restored = cache.resume();
        assert_eq!(restored, moved);
        for (l, want) in before.iter().enumerate() {
            assert_eq!(&cache.layer_mut(l).context_keys(), want);
        }
    }

    #[test]
    fn blocks_needed_counts_fresh_blocks_and_cow() {
        let pool = BlockPool::new(8, 1, 2, 4);
        let mut cache = PagedKvCache::new(&pool, 1, 2);
        assert_eq!(cache.blocks_needed(1), 1, "first token needs a block");
        write_tokens(&mut cache, 0, 4, 0.0);
        assert_eq!(cache.blocks_needed(1), 1, "block boundary");
        write_tokens(&mut cache, 0, 1, 1.0);
        assert_eq!(cache.blocks_needed(1), 0, "room in the last block");
        // Share the table's blocks: the next write must budget a CoW.
        let mut index = PrefixIndex::new();
        index.register(&[1, 2, 3, 4, 5], cache.block_refs(5));
        let shared = index.lookup(&pool, &[1, 2, 3, 4, 5]).unwrap();
        let other = PagedKvCache::with_shared_prefix(&pool, 1, 2, shared);
        assert_eq!(cache.blocks_needed(1), 1, "CoW needs a spare block");
        drop(other);
    }

    #[test]
    fn truncate_frees_tail_blocks_and_restores_the_pool_exactly() {
        let pool = BlockPool::new(8, 2, 4, 3);
        let mut cache = PagedKvCache::new(&pool, 2, 4);
        for layer in 0..2 {
            write_tokens(&mut cache, layer, 4, layer as f32);
        }
        let free_before = pool.free_blocks();
        let kept: Vec<Tensor> = (0..2)
            .map(|l| {
                let k = cache.layer_mut(l).context_keys();
                Tensor::from_fn(4, 4, |i, j| k.get(i, j))
            })
            .collect();
        // Speculate 5 tokens past the 4-token context: 9 tokens = 3 blocks.
        for layer in 0..2 {
            write_tokens(&mut cache, layer, 5, 100.0 + layer as f32);
        }
        assert_eq!(cache.resident_blocks(), 3);
        let released = cache.truncate(4);
        assert_eq!(released, 1, "ceil(4/3) = 2 blocks survive the rollback");
        assert_eq!(cache.len(), 4);
        assert_eq!(
            pool.free_blocks(),
            free_before,
            "rollback restores the pool free-count exactly"
        );
        for (l, want) in kept.iter().enumerate() {
            assert_eq!(&cache.layer_mut(l).context_keys(), want);
        }
        // And the cache keeps working: re-append after rollback.
        write_tokens(&mut cache, 0, 2, 7.0);
        assert_eq!(cache.layer_mut(0).context_len(), 6);
        assert_eq!(cache.truncate(6), 0, "no-op at or past the current length");
    }

    #[test]
    fn truncate_stales_prefix_entries_and_respects_sharing() {
        let pool = BlockPool::new(8, 1, 2, 2);
        let mut index = PrefixIndex::new();
        let prompt = vec![1usize, 2, 3, 4, 5, 6];
        let mut a = PagedKvCache::new(&pool, 1, 2);
        write_tokens(&mut a, 0, 6, 0.0);
        index.register(&prompt, a.block_refs(6));
        let shared = index.lookup(&pool, &prompt).expect("live entry");
        let mut b = PagedKvCache::with_shared_prefix(&pool, 1, 2, shared);
        write_tokens(&mut b, 0, 6, 9.0);

        // B rolls back into the shared region: its references go, A's
        // blocks stay live and untouched.
        let a_view = a.layer_mut(0).context_keys();
        b.truncate(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.shared_tokens(), 2, "shared watermark clamps");
        assert_eq!(a.layer_mut(0).context_keys(), a_view, "A unchanged");
        {
            let still = index.lookup(&pool, &prompt);
            assert!(still.is_some(), "A's registration is still valid");
            // Route the borrow through a cache so its refs release again.
            drop(PagedKvCache::with_shared_prefix(
                &pool,
                1,
                2,
                still.unwrap(),
            ));
        }

        // A truncates to nothing: its blocks free, generations bump, and
        // the index entry built on them stales away.
        a.truncate(0);
        assert_eq!(a.len(), 0);
        assert!(index.lookup(&pool, &prompt).is_none(), "entry staled");
        assert!(index.is_empty(), "stale entry pruned");
    }

    #[test]
    fn kv_write_traffic_names_the_recorded_ops() {
        assert_eq!(
            kv_write_traffic(
                KvWrite {
                    rows_written: 3,
                    cow_elems: 0
                },
                8
            ),
            vec![(NonGemmKind::KvAppend, 48)]
        );
        assert_eq!(
            kv_write_traffic(
                KvWrite {
                    rows_written: 0,
                    cow_elems: 64
                },
                8
            ),
            vec![(NonGemmKind::KvRead, 64), (NonGemmKind::KvAppend, 64)]
        );
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_rejected() {
        let pool = BlockPool::new(2, 1, 1, 1);
        let id = pool.alloc().unwrap();
        pool.release(id);
        pool.release(id);
    }
}
