//! Deterministic synthetic datasets.
//!
//! Stand-ins for ImageNet (DeiT) and SST-2 (BERT) — see DESIGN.md,
//! Substitution 2. Both tasks are built to *require attention*: the vision
//! task needs a global comparison across patches, and the text task needs
//! token-to-token matching across positions.

use crate::tensor::Tensor;
use lt_photonics::noise::GaussianSampler;

/// Image side length of the synthetic vision task.
pub const IMAGE_SIZE: usize = 16;
/// Patch side length (16 patches of 4x4 pixels).
pub const PATCH_SIZE: usize = 4;

/// Number of patches per image.
pub const NUM_PATCHES: usize = (IMAGE_SIZE / PATCH_SIZE) * (IMAGE_SIZE / PATCH_SIZE);
/// Values per patch.
pub const PATCH_DIM: usize = PATCH_SIZE * PATCH_SIZE;

/// A labelled vision sample: `[NUM_PATCHES, PATCH_DIM]` patches.
pub type VisionSample = (Tensor, usize);
/// A labelled text sample: fixed-length token ids.
pub type TextSample = (Vec<usize>, usize);

/// Synthetic vision task: a bright Gaussian blob sits in one of the four
/// image quadrants on top of pixel noise; the label is the quadrant
/// (class 0..3). Classifying it requires comparing brightness *globally*
/// across patches — a natural fit for self-attention.
pub fn vision_dataset(n: usize, seed: u64) -> Vec<VisionSample> {
    let mut rng = GaussianSampler::new(seed);
    (0..n)
        .map(|_| {
            let label = rng.below(4);
            let (qy, qx) = (label / 2, label % 2);
            // Blob centre inside the labelled quadrant (margin 2 px).
            let cy = qy as f64 * 8.0 + rng.uniform_in(2.0, 6.0);
            let cx = qx as f64 * 8.0 + rng.uniform_in(2.0, 6.0);
            let sigma = rng.uniform_in(1.2, 2.0);
            let mut image = [[0.0f32; IMAGE_SIZE]; IMAGE_SIZE];
            for (y, row) in image.iter_mut().enumerate() {
                for (x, px) in row.iter_mut().enumerate() {
                    let d2 = (y as f64 - cy).powi(2) + (x as f64 - cx).powi(2);
                    let blob = (-d2 / (2.0 * sigma * sigma)).exp();
                    *px = (blob + rng.normal(0.0, 0.2)) as f32;
                }
            }
            (patchify(&image), label)
        })
        .collect()
}

/// Flattens a 16x16 image into the `[NUM_PATCHES, PATCH_DIM]` layout the
/// ViT consumes.
pub fn patchify(image: &[[f32; IMAGE_SIZE]; IMAGE_SIZE]) -> Tensor {
    let per_side = IMAGE_SIZE / PATCH_SIZE;
    Tensor::from_fn(NUM_PATCHES, PATCH_DIM, |p, d| {
        let (py, px) = (p / per_side, p % per_side);
        let (dy, dx) = (d / PATCH_SIZE, d % PATCH_SIZE);
        image[py * PATCH_SIZE + dy][px * PATCH_SIZE + dx]
    })
}

/// Vocabulary size of the synthetic text task.
pub const VOCAB: usize = 16;
/// Sequence length of the synthetic text task.
pub const SEQ_LEN: usize = 12;

/// Synthetic text task ("copy detection"): label 1 iff the *first* token
/// reappears anywhere later in the sequence. Solving it requires attending
/// from later positions back to position 0 — a pure attention task that
/// bag-of-words models cannot solve.
pub fn text_dataset(n: usize, seed: u64) -> Vec<TextSample> {
    let mut rng = GaussianSampler::new(seed);
    (0..n)
        .map(|_| {
            let label = rng.below(2);
            let first = rng.below(VOCAB);
            let mut tokens = vec![first];
            for _ in 1..SEQ_LEN {
                // Fill with tokens different from `first`.
                let mut t = rng.below(VOCAB);
                while t == first {
                    t = rng.below(VOCAB);
                }
                tokens.push(t);
            }
            if label == 1 {
                // Plant a copy of the first token at a random later spot.
                let pos = 1 + rng.below(SEQ_LEN - 1);
                tokens[pos] = first;
            }
            (tokens, label)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vision_dataset_is_deterministic_and_balanced() {
        let a = vision_dataset(200, 42);
        let b = vision_dataset(200, 42);
        assert_eq!(a.len(), 200);
        for ((ta, la), (tb, lb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(ta, tb);
        }
        let mut counts = [0usize; 4];
        for (_, l) in &a {
            counts[*l] += 1;
        }
        assert!(counts.iter().all(|&c| c > 20), "counts {counts:?}");
    }

    #[test]
    fn blob_quadrant_is_brightest() {
        // The labelled quadrant should usually contain the max pixel.
        let data = vision_dataset(100, 7);
        let mut hits = 0;
        for (patches, label) in &data {
            // Patch indices of each quadrant (2x2 patches per quadrant).
            let mut best_patch = 0;
            let mut best = f32::NEG_INFINITY;
            for p in 0..NUM_PATCHES {
                let m = patches
                    .row(p)
                    .iter()
                    .fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                if m > best {
                    best = m;
                    best_patch = p;
                }
            }
            let (py, px) = (best_patch / 4, best_patch % 4);
            let quadrant = (py / 2) * 2 + (px / 2);
            if quadrant == *label {
                hits += 1;
            }
        }
        assert!(
            hits > 85,
            "blob found in labelled quadrant {hits}/100 times"
        );
    }

    #[test]
    fn text_labels_match_construction() {
        for (tokens, label) in text_dataset(300, 9) {
            let first = tokens[0];
            let repeats = tokens[1..].contains(&first);
            assert_eq!(repeats, label == 1, "tokens {tokens:?} label {label}");
        }
    }

    #[test]
    fn text_dataset_is_roughly_balanced() {
        let data = text_dataset(400, 11);
        let ones = data.iter().filter(|(_, l)| *l == 1).count();
        assert!((120..280).contains(&ones), "positives {ones}/400");
    }

    #[test]
    fn patchify_layout() {
        let mut image = [[0.0f32; IMAGE_SIZE]; IMAGE_SIZE];
        image[0][0] = 1.0; // patch 0, offset 0
        image[4][4] = 2.0; // patch 5 (row 1, col 1), offset 0
        image[3][7] = 3.0; // patch 1 (row 0, col 1), row 3 col 3 => offset 15
        let p = patchify(&image);
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(5, 0), 2.0);
        assert_eq!(p.get(1, 15), 3.0);
    }
}
