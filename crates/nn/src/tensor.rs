//! The NN stack's tensor type — a thin alias over the workspace-wide
//! [`lt_core::Matrix`].
//!
//! The seed carried its own row-major `f32` matrix here, incompatible
//! with the ragged `Vec<Vec<f64>>` the photonic simulators used. Both
//! are gone: every layer, engine, and experiment now shares
//! [`lt_core::Matrix`], and `Tensor` is simply its single-precision
//! alias. All the familiar methods (`from_fn`, `randn`, `matmul`,
//! `transpose`, `col_slice`, ...) live on the shared type.
//!
//! ```
//! use lt_nn::Tensor;
//! let t = Tensor::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
//! assert_eq!(t.get(1, 2), 5.0);
//! assert_eq!(t.transpose().get(2, 1), 5.0);
//! ```

/// A dense 2-D tensor (matrix), row-major `f32` — alias of
/// [`lt_core::Matrix32`].
pub type Tensor = lt_core::Matrix32;

#[cfg(test)]
mod tests {
    use super::*;
    use lt_core::GaussianSampler;

    #[test]
    fn matmul_matches_reference() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = GaussianSampler::new(1);
        let t = Tensor::randn(5, 7, 1.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_transpose_identity() {
        // (A B)^T == B^T A^T
        let mut rng = GaussianSampler::new(2);
        let a = Tensor::randn(4, 6, 1.0, &mut rng);
        let b = Tensor::randn(6, 3, 1.0, &mut rng);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert!(left.max_abs_diff(&right) < 1e-5);
    }

    #[test]
    fn broadcast_and_elementwise() {
        let x = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.hadamard(&x).data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(x.col_sum().data(), &[4.0, 6.0]);
        assert_eq!(x.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn col_slice_round_trip() {
        let x = Tensor::from_fn(3, 8, |i, j| (i * 8 + j) as f32);
        let block = x.col_slice(2, 4);
        assert_eq!(block.shape(), (3, 4));
        assert_eq!(block.get(1, 0), 10.0);
        let mut y = Tensor::zeros(3, 8);
        y.set_col_slice(2, &block);
        assert_eq!(y.get(2, 3), x.get(2, 3));
        assert_eq!(y.get(0, 0), 0.0);
    }

    #[test]
    fn stats_helpers() {
        let x = Tensor::from_vec(1, 4, vec![-3.0, 1.0, 2.0, -0.5]);
        assert_eq!(x.max_abs(), 3.0);
        assert!((x.mean() + 0.125).abs() < 1e-7);
    }

    #[test]
    fn widening_round_trip_through_the_backend_type() {
        let mut rng = GaussianSampler::new(3);
        let x = Tensor::randn(3, 5, 1.0, &mut rng);
        assert_eq!(x.to_f64().to_f32(), x);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn bad_matmul_rejected() {
        Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }
}
