//! A minimal row-major `f32` matrix.

use lt_photonics::noise::GaussianSampler;
use std::fmt;

/// A dense 2-D tensor (matrix), row-major.
///
/// ```
/// use lt_nn::Tensor;
/// let t = Tensor::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
/// assert_eq!(t.get(1, 2), 5.0);
/// assert_eq!(t.transpose().get(2, 1), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows x cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from a generator function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Tensor { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Tensor { rows, cols, data }
    }

    /// Gaussian-initialized tensor (mean 0, the given std), deterministic
    /// per seed source.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut GaussianSampler) -> Self {
        Tensor::from_fn(rows, cols, |_, _| rng.sample() as f32 * std)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self x rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (l, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[l * n..(l + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(m, n, out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        Tensor::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Element-wise sum with another tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// In-place element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Adds a row vector to every row (broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias.cols() != self.cols()` or `bias.rows() != 1`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), self.cols, "bias width mismatch");
        Tensor::from_fn(self.rows, self.cols, |i, j| self.get(i, j) + bias.get(0, j))
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|v| v * s).collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Applies a function element-wise.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Sums each column into a `1 x cols` row vector.
    pub fn col_sum(&self) -> Tensor {
        let mut out = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[j] += self.get(i, j);
            }
        }
        Tensor::from_vec(1, self.cols, out)
    }

    /// Extracts a contiguous block of columns `[start, start + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the tensor width.
    pub fn col_slice(&self, start: usize, width: usize) -> Tensor {
        assert!(start + width <= self.cols, "column slice out of bounds");
        Tensor::from_fn(self.rows, width, |i, j| self.get(i, start + j))
    }

    /// Writes a block into the given column offset.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_col_slice(&mut self, start: usize, block: &Tensor) {
        assert_eq!(block.rows(), self.rows, "row count mismatch");
        assert!(start + block.cols() <= self.cols, "column slice out of bounds");
        for i in 0..block.rows() {
            for j in 0..block.cols() {
                self.set(i, start + j, block.get(i, j));
            }
        }
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Largest absolute difference from another tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>8.4} ", self.get(i, j))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        write!(f, "{}]", if self.rows > 6 { "  ...\n" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_reference() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = GaussianSampler::new(1);
        let t = Tensor::randn(5, 7, 1.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_transpose_identity() {
        // (A B)^T == B^T A^T
        let mut rng = GaussianSampler::new(2);
        let a = Tensor::randn(4, 6, 1.0, &mut rng);
        let b = Tensor::randn(6, 3, 1.0, &mut rng);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert!(left.max_abs_diff(&right) < 1e-5);
    }

    #[test]
    fn broadcast_and_elementwise() {
        let x = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!(x.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.hadamard(&x).data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(x.col_sum().data(), &[4.0, 6.0]);
        assert_eq!(x.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn col_slice_round_trip() {
        let x = Tensor::from_fn(3, 8, |i, j| (i * 8 + j) as f32);
        let block = x.col_slice(2, 4);
        assert_eq!(block.shape(), (3, 4));
        assert_eq!(block.get(1, 0), 10.0);
        let mut y = Tensor::zeros(3, 8);
        y.set_col_slice(2, &block);
        assert_eq!(y.get(2, 3), x.get(2, 3));
        assert_eq!(y.get(0, 0), 0.0);
    }

    #[test]
    fn stats_helpers() {
        let x = Tensor::from_vec(1, 4, vec![-3.0, 1.0, 2.0, -0.5]);
        assert_eq!(x.max_abs(), 3.0);
        assert!((x.mean() + 0.125).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn bad_matmul_rejected() {
        Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }
}
