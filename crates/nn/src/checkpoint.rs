//! Model checkpointing: save/load all parameters to a simple binary
//! format.
//!
//! The paper's artifact ships a trained DeiT checkpoint so reviewers can
//! skip the 2-day training run; this module provides the same workflow for
//! our models. The format is deliberately simple (magic, version, tensor
//! count, then `rows/cols/f32-LE data` per tensor, in `visit_params`
//! order) with no external serialization crates.

use crate::layers::Param;
use crate::model::Classifier;
use crate::tensor::Tensor;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"LTCKPT01";

/// Errors produced when loading a checkpoint.
#[derive(Debug)]
pub enum LoadCheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a checkpoint (bad magic).
    BadMagic,
    /// The checkpoint's tensor count or shapes do not match the model.
    ShapeMismatch {
        /// Parameter index where the mismatch occurred.
        index: usize,
        /// Shape stored in the checkpoint.
        stored: (usize, usize),
        /// Shape the model expects.
        expected: (usize, usize),
    },
    /// Fewer/more tensors in the file than the model has parameters.
    CountMismatch {
        /// Tensor count in the checkpoint.
        stored: usize,
        /// Parameter count of the model.
        expected: usize,
    },
}

impl fmt::Display for LoadCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadCheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            LoadCheckpointError::BadMagic => write!(f, "not a lightening-transformer checkpoint"),
            LoadCheckpointError::ShapeMismatch { index, stored, expected } => write!(
                f,
                "parameter {index} shape mismatch: checkpoint has {stored:?}, model expects {expected:?}"
            ),
            LoadCheckpointError::CountMismatch { stored, expected } => write!(
                f,
                "checkpoint holds {stored} tensors but the model has {expected} parameters"
            ),
        }
    }
}

impl std::error::Error for LoadCheckpointError {}

impl From<io::Error> for LoadCheckpointError {
    fn from(e: io::Error) -> Self {
        LoadCheckpointError::Io(e)
    }
}

/// Serializes every parameter of a model to a writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save<I: ?Sized, M: Classifier<I>, W: Write>(model: &mut M, mut writer: W) -> io::Result<()> {
    let mut tensors: Vec<(usize, usize, Vec<f32>)> = Vec::new();
    model.visit_params(&mut |p: &mut Param| {
        tensors.push((p.value.rows(), p.value.cols(), p.value.data().to_vec()));
    });
    writer.write_all(MAGIC)?;
    writer.write_all(&(tensors.len() as u64).to_le_bytes())?;
    for (rows, cols, data) in tensors {
        writer.write_all(&(rows as u64).to_le_bytes())?;
        writer.write_all(&(cols as u64).to_le_bytes())?;
        for v in data {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores every parameter of a model from a reader. The model must have
/// been constructed with the same architecture.
///
/// # Errors
///
/// Returns [`LoadCheckpointError`] on I/O failure, bad magic, or any
/// count/shape mismatch (the model is left partially updated in that
/// case — reload or rebuild it).
pub fn load<I: ?Sized, M: Classifier<I>, R: Read>(
    model: &mut M,
    mut reader: R,
) -> Result<(), LoadCheckpointError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadCheckpointError::BadMagic);
    }
    let mut u64buf = [0u8; 8];
    reader.read_exact(&mut u64buf)?;
    let stored = u64::from_le_bytes(u64buf) as usize;

    let mut expected = 0usize;
    model.visit_params(&mut |_| expected += 1);
    if stored != expected {
        return Err(LoadCheckpointError::CountMismatch { stored, expected });
    }

    // Read all tensors first, then install (keeps borrowck simple and
    // detects truncated files before touching the model).
    let mut tensors = Vec::with_capacity(stored);
    for _ in 0..stored {
        reader.read_exact(&mut u64buf)?;
        let rows = u64::from_le_bytes(u64buf) as usize;
        reader.read_exact(&mut u64buf)?;
        let cols = u64::from_le_bytes(u64buf) as usize;
        let mut data = vec![0f32; rows * cols];
        let mut f32buf = [0u8; 4];
        for v in &mut data {
            reader.read_exact(&mut f32buf)?;
            *v = f32::from_le_bytes(f32buf);
        }
        tensors.push(Tensor::from_vec(rows, cols, data));
    }

    let mut index = 0usize;
    let mut mismatch: Option<LoadCheckpointError> = None;
    model.visit_params(&mut |p: &mut Param| {
        if mismatch.is_some() {
            return;
        }
        let t = &tensors[index];
        if t.shape() != p.value.shape() {
            mismatch = Some(LoadCheckpointError::ShapeMismatch {
                index,
                stored: t.shape(),
                expected: p.value.shape(),
            });
            return;
        }
        p.value = t.clone();
        index += 1;
    });
    match mismatch {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use crate::engine::ExactEngine;
    use crate::layers::ForwardCtx;
    use crate::model::{ModelConfig, TextClassifier, VisionTransformer};
    use crate::quant::QuantConfig;
    use lt_photonics::noise::GaussianSampler;

    fn logits_of(vit: &mut VisionTransformer, sample: &Tensor) -> Tensor {
        let mut eng = ExactEngine;
        let mut rng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut rng);
        vit.forward(sample, &mut ctx)
    }

    #[test]
    fn save_load_round_trip_preserves_outputs() {
        let mut rng = GaussianSampler::new(1);
        let mut original = VisionTransformer::new(
            ModelConfig::tiny_vision(),
            data::NUM_PATCHES,
            data::PATCH_DIM,
            &mut rng,
        );
        let sample = data::vision_dataset(1, 2).remove(0).0;
        let before = logits_of(&mut original, &sample);

        let mut buf = Vec::new();
        save(&mut original, &mut buf).unwrap();

        // A differently-initialized model of the same architecture.
        let mut rng2 = GaussianSampler::new(999);
        let mut restored = VisionTransformer::new(
            ModelConfig::tiny_vision(),
            data::NUM_PATCHES,
            data::PATCH_DIM,
            &mut rng2,
        );
        assert!(logits_of(&mut restored, &sample).max_abs_diff(&before) > 1e-3);
        load(&mut restored, buf.as_slice()).unwrap();
        let after = logits_of(&mut restored, &sample);
        assert!(after.max_abs_diff(&before) < 1e-7);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut rng = GaussianSampler::new(3);
        let mut model = TextClassifier::new(
            ModelConfig::tiny_text(),
            data::VOCAB,
            data::SEQ_LEN,
            &mut rng,
        );
        let junk = b"NOTACKPT.......".to_vec();
        match load(&mut model, junk.as_slice()) {
            Err(LoadCheckpointError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn wrong_architecture_rejected() {
        let mut rng = GaussianSampler::new(4);
        let mut vision = VisionTransformer::new(
            ModelConfig::tiny_vision(),
            data::NUM_PATCHES,
            data::PATCH_DIM,
            &mut rng,
        );
        let mut buf = Vec::new();
        save(&mut vision, &mut buf).unwrap();

        let mut text = TextClassifier::new(
            ModelConfig::tiny_text(),
            data::VOCAB,
            data::SEQ_LEN,
            &mut rng,
        );
        let err = load(&mut text, buf.as_slice()).unwrap_err();
        // The two architectures differ in parameter count (and would also
        // differ in shapes); either structured error is acceptable.
        assert!(
            matches!(
                err,
                LoadCheckpointError::CountMismatch { .. }
                    | LoadCheckpointError::ShapeMismatch { .. }
            ),
            "expected a structural mismatch error, got: {err}"
        );
    }

    #[test]
    fn truncated_file_is_an_io_error() {
        let mut rng = GaussianSampler::new(5);
        let mut model = VisionTransformer::new(
            ModelConfig::tiny_vision(),
            data::NUM_PATCHES,
            data::PATCH_DIM,
            &mut rng,
        );
        let mut buf = Vec::new();
        save(&mut model, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        match load(&mut model, buf.as_slice()) {
            Err(LoadCheckpointError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
