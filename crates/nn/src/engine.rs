//! Matmul execution engines — thin `f32` adapters over the workspace's
//! pluggable [`ComputeBackend`]s.
//!
//! Inference can execute every matrix product on any backend: the exact
//! shared kernel ([`ExactEngine`]), the quantized-but-noiseless digital
//! reference of Fig. 14 ([`QuantizedEngine`]), the noisy photonic DPTC
//! ([`PhotonicEngine`]), or *any* other [`ComputeBackend`] — including
//! the MZI/MRR/PCM baselines — via the generic [`BackendEngine`]. The
//! engines only widen `f32 -> f64`, delegate, and narrow back; all
//! compute semantics live in the backends.

use crate::tensor::Tensor;
use lt_core::{ComputeBackend, Matrix64, RunCtx};
use lt_dptc::{DptcBackend, NoiseModel};
use std::fmt;

/// A pluggable matrix-multiplication engine for the `f32` NN stack.
///
/// Engines may be stateful (stochastic backends advance their noise
/// stream every call), hence `&mut self`.
pub trait MatmulEngine: fmt::Debug {
    /// Computes `a x b`.
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor;

    /// A short human-readable backend name.
    fn name(&self) -> &str;
}

/// Widens, delegates to a [`ComputeBackend`], and narrows back.
fn run_backend(backend: &dyn ComputeBackend, ctx: &mut RunCtx, a: &Tensor, b: &Tensor) -> Tensor {
    let a64 = a.to_f64();
    let b64 = b.to_f64();
    backend.gemm(a64.view(), b64.view(), ctx).to_f32()
}

/// Adapts any [`ComputeBackend`] into a [`MatmulEngine`], carrying the
/// [`RunCtx`] that keeps stochastic backends reproducible per-run.
///
/// ```
/// use lt_core::NativeBackend;
/// use lt_nn::engine::{BackendEngine, MatmulEngine};
/// use lt_nn::Tensor;
///
/// let mut engine = BackendEngine::new(NativeBackend, 0);
/// let a = Tensor::from_fn(2, 3, |i, j| (i + j) as f32);
/// let b = Tensor::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
/// assert_eq!(engine.matmul(&a, &b), a.matmul(&b));
/// assert_eq!(engine.name(), "native");
/// ```
#[derive(Debug, Clone)]
pub struct BackendEngine<B> {
    backend: B,
    ctx: RunCtx,
    /// Reused f64 staging buffers (widened operands + backend output).
    /// Per-token decode issues the same shapes every step, so after the
    /// first pass the widen/narrow adapter allocates nothing beyond the
    /// returned f32 tensor ([`lt_core::kernel::tiled_gemm_into`]).
    a64: Matrix64,
    b64: Matrix64,
    out64: Matrix64,
}

impl<B: ComputeBackend> BackendEngine<B> {
    /// Wraps a backend with a root seed for its noise stream.
    pub fn new(backend: B, seed: u64) -> Self {
        BackendEngine {
            backend,
            ctx: RunCtx::new(seed),
            a64: Matrix64::zeros(0, 0),
            b64: Matrix64::zeros(0, 0),
            out64: Matrix64::zeros(0, 0),
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Number of matmuls executed so far.
    pub fn calls(&self) -> u64 {
        self.ctx.calls()
    }
}

impl<B: ComputeBackend> MatmulEngine for BackendEngine<B> {
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        // Stage through the engine-owned scratch: widen in place, run
        // the backend's `gemm_into`, narrow into the returned tensor.
        // Bit-identical to `run_backend` (gemm_into's contract); the
        // only allocation left in steady state is the f32 result.
        a.to_f64_into(&mut self.a64);
        b.to_f64_into(&mut self.b64);
        self.backend.gemm_into(
            self.a64.view(),
            self.b64.view(),
            &mut self.ctx,
            &mut self.out64,
        );
        self.out64.to_f32()
    }

    fn name(&self) -> &str {
        self.backend.name()
    }
}

/// Exact execution on the shared kernel at fp32 (the "GPU" reference).
///
/// This is the one engine that stays in single precision end to end:
/// it runs `lt_core`'s shared kernel directly on the `f32` tensors, so
/// the "digital fp32 reference" accuracies keep fp32 accumulation
/// semantics and the training hot path pays no widening copies. Wrap
/// [`lt_core::NativeBackend`] in a [`BackendEngine`] when `f64`
/// reference numerics are wanted instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactEngine;

impl MatmulEngine for ExactEngine {
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        a.matmul(b)
    }

    fn name(&self) -> &str {
        "exact"
    }
}

/// Exact execution on operands quantized to `bits` — the digital
/// quantized reference accuracy ("GPU" lines in Figs. 14-15). A thin
/// adapter over [`DptcBackend::quantized`].
#[derive(Debug, Clone, Copy)]
pub struct QuantizedEngine {
    /// Operand bit-width.
    pub bits: u32,
}

impl MatmulEngine for QuantizedEngine {
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        let backend = DptcBackend::quantized(self.bits);
        run_backend(&backend, &mut RunCtx::new(0), a, b)
    }

    fn name(&self) -> &str {
        "quantized-exact"
    }
}

/// Photonic execution: tiled through a DPTC core with the paper's noise
/// model, via [`DptcBackend`]. Every call advances the seed stream so
/// noise realizations are fresh but the whole run stays reproducible.
#[derive(Debug, Clone)]
pub struct PhotonicEngine {
    backend: DptcBackend,
    ctx: RunCtx,
}

impl PhotonicEngine {
    /// A paper-default engine: `n_lambda`-wavelength core, paper noise.
    pub fn paper(bits: u32, n_lambda: usize, seed: u64) -> Self {
        let config = lt_dptc::DptcConfig::new(12, 12, n_lambda.max(1));
        let backend = DptcBackend::new(config, lt_dptc::Fidelity::paper_noisy(seed), bits);
        PhotonicEngine {
            backend,
            ctx: RunCtx::new(seed),
        }
    }

    /// Overrides the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.backend = self.backend.with_noise(noise);
        self
    }

    /// The wrapped photonic backend.
    pub fn backend(&self) -> &DptcBackend {
        &self.backend
    }

    /// The number of WDM channels in use.
    pub fn wavelengths(&self) -> usize {
        self.backend.core().config().nlambda
    }

    /// The DAC bit-width driven onto the modulators.
    pub fn bits(&self) -> u32 {
        self.backend.bits()
    }

    /// Number of matmuls executed so far.
    pub fn calls(&self) -> u64 {
        self.ctx.calls()
    }
}

impl MatmulEngine for PhotonicEngine {
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        run_backend(&self.backend, &mut self.ctx, a, b)
    }

    fn name(&self) -> &str {
        "photonic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_core::{GaussianSampler, NativeBackend};

    fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = GaussianSampler::new(seed);
        (
            Tensor::randn(m, k, 0.5, &mut rng),
            Tensor::randn(k, n, 0.5, &mut rng),
        )
    }

    #[test]
    fn exact_engine_is_plain_matmul() {
        let (a, b) = rand_pair(5, 7, 3, 1);
        assert_eq!(ExactEngine.matmul(&a, &b), a.matmul(&b));
    }

    #[test]
    fn quantized_engine_tracks_exact() {
        let (a, b) = rand_pair(8, 16, 8, 2);
        let exact = a.matmul(&b);
        let q = QuantizedEngine { bits: 8 }.matmul(&a, &b);
        let scale = exact.max_abs();
        assert!(q.max_abs_diff(&exact) < 0.1 * scale.max(1.0));
    }

    #[test]
    fn photonic_engine_tracks_exact_with_bounded_error() {
        let (a, b) = rand_pair(12, 24, 12, 3);
        let exact = a.matmul(&b);
        let got = PhotonicEngine::paper(8, 12, 11).matmul(&a, &b);
        // Relative to the output scale, analog error is a few percent.
        let rel = got.max_abs_diff(&exact) / exact.max_abs().max(1e-3);
        assert!(rel < 0.35, "relative photonic error {rel}");
    }

    #[test]
    fn photonic_noise_advances_between_calls() {
        let (a, b) = rand_pair(4, 12, 4, 4);
        let mut eng = PhotonicEngine::paper(8, 12, 5);
        let first = eng.matmul(&a, &b);
        let second = eng.matmul(&a, &b);
        assert!(first.max_abs_diff(&second) > 0.0, "fresh noise per call");
        assert_eq!(eng.calls(), 2);
    }

    #[test]
    fn photonic_runs_are_reproducible() {
        let (a, b) = rand_pair(4, 12, 4, 6);
        let r1 = PhotonicEngine::paper(8, 12, 7).matmul(&a, &b);
        let r2 = PhotonicEngine::paper(8, 12, 7).matmul(&a, &b);
        assert_eq!(r1, r2);
    }

    #[test]
    fn fewer_wavelengths_still_work() {
        let (a, b) = rand_pair(6, 20, 6, 8);
        let exact = a.matmul(&b);
        let got = PhotonicEngine::paper(8, 6, 9).matmul(&a, &b);
        let rel = got.max_abs_diff(&exact) / exact.max_abs().max(1e-3);
        assert!(rel < 0.4, "6-wavelength relative error {rel}");
    }

    #[test]
    fn generic_backend_engine_swaps_compute() {
        // The same workload runs on the exact kernel and the photonic
        // core by swapping the wrapped backend — the API redesign's whole
        // point.
        let (a, b) = rand_pair(10, 15, 9, 10);
        let mut native = BackendEngine::new(NativeBackend, 0);
        let mut photonic = BackendEngine::new(DptcBackend::paper(8, 3), 3);
        let exact = native.matmul(&a, &b);
        let noisy = photonic.matmul(&a, &b);
        assert_eq!(native.name(), "native");
        assert_eq!(photonic.name(), "dptc-analytic");
        let rel = noisy.max_abs_diff(&exact) / exact.max_abs().max(1e-3);
        assert!(rel < 0.5, "relative error across backends {rel}");
    }
}
