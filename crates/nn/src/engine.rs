//! Matmul execution engines.
//!
//! Inference can execute every matrix product on one of three backends:
//! exact fp32 (the "GPU" reference), exact-with-quantization (the paper's
//! "quantized models running on GPU" baseline of Fig. 14), or the photonic
//! backend that tiles the product through [`lt_dptc::Dptc`] with the
//! noisy analytic transfer of paper Eq. 9.

use crate::tensor::Tensor;
use lt_dptc::{Dptc, DptcConfig, NoiseModel};
use std::fmt;

/// A pluggable matrix-multiplication backend.
///
/// Engines may be stateful (the photonic engine advances its noise stream
/// every call), hence `&mut self`.
pub trait MatmulEngine: fmt::Debug {
    /// Computes `a x b`.
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor;

    /// A short human-readable backend name.
    fn name(&self) -> &str;
}

/// Exact fp32 execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactEngine;

impl MatmulEngine for ExactEngine {
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        a.matmul(b)
    }

    fn name(&self) -> &str {
        "exact"
    }
}

/// Exact execution on operands quantized to `bits` — the digital
/// quantized reference accuracy ("GPU" lines in Figs. 14-15).
#[derive(Debug, Clone, Copy)]
pub struct QuantizedEngine {
    /// Operand bit-width.
    pub bits: u32,
}

impl MatmulEngine for QuantizedEngine {
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        let core = Dptc::new(DptcConfig::lt_paper());
        let (m, k) = a.shape();
        let n = b.cols();
        let af: Vec<f64> = a.data().iter().map(|&v| v as f64).collect();
        let bf: Vec<f64> = b.data().iter().map(|&v| v as f64).collect();
        let out = core.gemm_exact_quantized(&af, &bf, m, k, n, self.bits);
        Tensor::from_vec(m, n, out.into_iter().map(|v| v as f32).collect())
    }

    fn name(&self) -> &str {
        "quantized-exact"
    }
}

/// Photonic execution: tiled through a DPTC core with the paper's noise
/// model. Every call advances the seed so noise realizations are fresh but
/// the whole run stays reproducible.
#[derive(Debug, Clone)]
pub struct PhotonicEngine {
    core: Dptc,
    /// Operand bit-width driven onto the modulators.
    pub bits: u32,
    /// The injected non-idealities.
    pub noise: NoiseModel,
    seed: u64,
    calls: u64,
}

impl PhotonicEngine {
    /// A paper-default engine: `n_lambda`-wavelength core, paper noise.
    pub fn paper(bits: u32, n_lambda: usize, seed: u64) -> Self {
        PhotonicEngine {
            core: Dptc::new(DptcConfig::new(12, 12, n_lambda.max(1))),
            bits,
            noise: NoiseModel::paper_default(),
            seed,
            calls: 0,
        }
    }

    /// Overrides the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The number of WDM channels in use.
    pub fn wavelengths(&self) -> usize {
        self.core.config().nlambda
    }

    /// Number of matmuls executed so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl MatmulEngine for PhotonicEngine {
    fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let af: Vec<f64> = a.data().iter().map(|&v| v as f64).collect();
        let bf: Vec<f64> = b.data().iter().map(|&v| v as f64).collect();
        let call_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.calls);
        self.calls += 1;
        let out = self
            .core
            .gemm(&af, &bf, m, k, n, self.bits, &self.noise, call_seed);
        Tensor::from_vec(m, n, out.into_iter().map(|v| v as f32).collect())
    }

    fn name(&self) -> &str {
        "photonic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_photonics::noise::GaussianSampler;

    fn rand_pair(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = GaussianSampler::new(seed);
        (
            Tensor::randn(m, k, 0.5, &mut rng),
            Tensor::randn(k, n, 0.5, &mut rng),
        )
    }

    #[test]
    fn exact_engine_is_plain_matmul() {
        let (a, b) = rand_pair(5, 7, 3, 1);
        assert_eq!(ExactEngine.matmul(&a, &b), a.matmul(&b));
    }

    #[test]
    fn quantized_engine_tracks_exact() {
        let (a, b) = rand_pair(8, 16, 8, 2);
        let exact = a.matmul(&b);
        let q = QuantizedEngine { bits: 8 }.matmul(&a, &b);
        let scale = exact.max_abs();
        assert!(q.max_abs_diff(&exact) < 0.1 * scale.max(1.0));
    }

    #[test]
    fn photonic_engine_tracks_exact_with_bounded_error() {
        let (a, b) = rand_pair(12, 24, 12, 3);
        let exact = a.matmul(&b);
        let got = PhotonicEngine::paper(8, 12, 11).matmul(&a, &b);
        // Relative to the output scale, analog error is a few percent.
        let rel = got.max_abs_diff(&exact) / exact.max_abs().max(1e-3);
        assert!(rel < 0.35, "relative photonic error {rel}");
    }

    #[test]
    fn photonic_noise_advances_between_calls() {
        let (a, b) = rand_pair(4, 12, 4, 4);
        let mut eng = PhotonicEngine::paper(8, 12, 5);
        let first = eng.matmul(&a, &b);
        let second = eng.matmul(&a, &b);
        assert!(first.max_abs_diff(&second) > 0.0, "fresh noise per call");
        assert_eq!(eng.calls(), 2);
    }

    #[test]
    fn photonic_runs_are_reproducible() {
        let (a, b) = rand_pair(4, 12, 4, 6);
        let r1 = PhotonicEngine::paper(8, 12, 7).matmul(&a, &b);
        let r2 = PhotonicEngine::paper(8, 12, 7).matmul(&a, &b);
        assert_eq!(r1, r2);
    }

    #[test]
    fn fewer_wavelengths_still_work() {
        let (a, b) = rand_pair(6, 20, 6, 8);
        let exact = a.matmul(&b);
        let got = PhotonicEngine::paper(8, 6, 9).matmul(&a, &b);
        let rel = got.max_abs_diff(&exact) / exact.max_abs().max(1e-3);
        assert!(rel < 0.4, "6-wavelength relative error {rel}");
    }
}
