//! Model assemblies: the encoder block, a tiny ViT (the DeiT stand-in),
//! and a tiny bidirectional text classifier (the BERT stand-in).

use crate::attention::MultiHeadAttention;
use crate::kv::KvLayer;
use crate::layers::{ForwardCtx, Gelu, LayerNorm, Linear, Param};
use crate::tensor::Tensor;
use lt_core::trace::{NonGemmKind, OpKind};
use lt_photonics::noise::GaussianSampler;

/// A pre-LN Transformer encoder block (paper Eq. 1):
/// `x' = x + MHA(LN(x)); y = x' + FFN(LN(x'))`.
#[derive(Debug, Clone)]
pub struct EncoderBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn1: Linear,
    gelu: Gelu,
    ffn2: Linear,
}

impl EncoderBlock {
    /// Creates a block with the given width, head count, and FFN width.
    pub fn new(dim: usize, heads: usize, ffn_dim: usize, rng: &mut GaussianSampler) -> Self {
        EncoderBlock {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, rng),
            ln2: LayerNorm::new(dim),
            ffn1: Linear::new(dim, ffn_dim, rng).with_role(OpKind::Ffn1),
            gelu: Gelu::new(),
            ffn2: Linear::new(ffn_dim, dim, rng).with_role(OpKind::Ffn2),
        }
    }

    /// Scales this block's *residual contribution* by `gain`: the
    /// attention out-projection and the FFN down-projection (weights
    /// and biases), leaving the skip path untouched, so the block
    /// computes `x + gain * delta(x)` in both halves. Used to give
    /// synthetic random-weight decoders the trained-LM property that
    /// deeper blocks refine rather than overhaul the prediction (see
    /// `DecoderLm::taper_deep_blocks`).
    pub fn scale_residual(&mut self, gain: f32) {
        for lin in [&mut self.attn.wo, &mut self.ffn2] {
            for v in lin.w.value.data_mut() {
                *v *= gain;
            }
            for v in lin.b.value.data_mut() {
                *v *= gain;
            }
        }
    }

    /// Forward pass over `[tokens, dim]`. Non-GEMM work (the two
    /// LayerNorms, the GELU, and both residual additions) reports its
    /// element counts to the context's trace recorder, if any.
    pub fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let elems = (x.rows() * x.cols()) as u64;
        let attn_out = {
            ctx.record_non_gemm(NonGemmKind::LayerNorm, elems);
            let normed = self.ln1.forward(x);
            self.attn.forward(&normed, ctx)
        };
        ctx.record_non_gemm(NonGemmKind::Residual, elems);
        let x1 = x.add(&attn_out);
        let ffn_out = {
            ctx.record_non_gemm(NonGemmKind::LayerNorm, elems);
            let normed = self.ln2.forward(&x1);
            let h = self.ffn1.forward(&normed, ctx);
            ctx.record_non_gemm(NonGemmKind::Gelu, (h.rows() * h.cols()) as u64);
            let h = self.gelu.forward(&h);
            self.ffn2.forward(&h, ctx)
        };
        ctx.record_non_gemm(NonGemmKind::Residual, elems);
        x1.add(&ffn_out)
    }

    /// Causal prefill of a whole prompt, filling this layer's KV cache —
    /// the block body of the autoregressive decode path (inference-only,
    /// `&self`, so concurrent decode sessions share one set of weights).
    /// The cache is any [`KvLayer`] — the contiguous
    /// [`crate::attention::AttnKvCache`] or one layer of a paged
    /// [`crate::kv::PagedKvCache`].
    pub fn prefill(&self, x: &Tensor, cache: &mut dyn KvLayer, ctx: &mut ForwardCtx<'_>) -> Tensor {
        self.decode_pass(x, ctx, |attn, normed, ctx| attn.prefill(normed, cache, ctx))
    }

    /// Causal prefill of one chunk of a prompt against this layer's KV
    /// cache (`x: [t, dim]` holding the tokens at positions
    /// `cache.context_len() ..`); see
    /// [`MultiHeadAttention::prefill_chunk`].
    pub fn prefill_chunk(
        &self,
        x: &Tensor,
        cache: &mut dyn KvLayer,
        ctx: &mut ForwardCtx<'_>,
    ) -> Tensor {
        self.decode_pass(x, ctx, |attn, normed, ctx| {
            attn.prefill_chunk(normed, cache, ctx)
        })
    }

    /// One single-token decode step against this layer's KV cache
    /// (`x: [1, dim]`, inference-only).
    pub fn decode_step(
        &self,
        x: &Tensor,
        cache: &mut dyn KvLayer,
        ctx: &mut ForwardCtx<'_>,
    ) -> Tensor {
        self.decode_pass(x, ctx, |attn, normed, ctx| {
            attn.decode_step(normed, cache, ctx)
        })
    }

    /// The shared pre-LN block body of the two cache-driven passes; only
    /// the attention inner call differs.
    fn decode_pass(
        &self,
        x: &Tensor,
        ctx: &mut ForwardCtx<'_>,
        attend: impl FnOnce(&MultiHeadAttention, &Tensor, &mut ForwardCtx<'_>) -> Tensor,
    ) -> Tensor {
        let elems = (x.rows() * x.cols()) as u64;
        ctx.record_non_gemm(NonGemmKind::LayerNorm, elems);
        let attn_out = attend(&self.attn, &self.ln1.infer(x), ctx);
        ctx.record_non_gemm(NonGemmKind::Residual, elems);
        let x1 = x.add(&attn_out);
        ctx.record_non_gemm(NonGemmKind::LayerNorm, elems);
        let h = self.ffn1.infer(&self.ln2.infer(&x1), ctx);
        ctx.record_non_gemm(NonGemmKind::Gelu, (h.rows() * h.cols()) as u64);
        let ffn_out = self.ffn2.infer(&self.gelu.infer(&h), ctx);
        ctx.record_non_gemm(NonGemmKind::Residual, elems);
        x1.add(&ffn_out)
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        // y = x1 + ffn(ln2(x1))
        let dffn = self.ffn2.backward(dy);
        let dgelu = self.gelu.backward(&dffn);
        let dnorm2 = self.ffn1.backward(&dgelu);
        let mut dx1 = self.ln2.backward(&dnorm2);
        dx1.add_assign(dy);
        // x1 = x + attn(ln1(x))
        let dattn = self.attn.backward(&dx1);
        let mut dx = self.ln1.backward(&dattn);
        dx.add_assign(&dx1);
        dx
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.ffn1.visit_params(f);
        self.ffn2.visit_params(f);
    }
}

/// A model that classifies an input into one of `classes`.
///
/// Implemented by [`VisionTransformer`] (input: patch matrix) and
/// [`TextClassifier`] (input: token ids); the shared training loop in
/// [`crate::train`] is generic over this trait.
pub trait Classifier<I: ?Sized> {
    /// Computes `[1, classes]` logits.
    fn forward(&mut self, input: &I, ctx: &mut ForwardCtx<'_>) -> Tensor;
    /// Backpropagates from the logits gradient.
    fn backward(&mut self, dlogits: &Tensor);
    /// Visits every trainable parameter.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total trainable parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

/// Geometry of the tiny experiment models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Embedding width.
    pub dim: usize,
    /// Encoder blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN hidden width.
    pub ffn_dim: usize,
    /// Output classes.
    pub classes: usize,
}

impl ModelConfig {
    /// The default vision stand-in: dim 32, 2 layers, 4 heads, FFN 64.
    pub fn tiny_vision() -> Self {
        ModelConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            ffn_dim: 64,
            classes: 4,
        }
    }

    /// The default text stand-in: dim 32, 2 layers, 4 heads, FFN 64.
    pub fn tiny_text() -> Self {
        ModelConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            ffn_dim: 64,
            classes: 2,
        }
    }
}

/// A tiny Vision Transformer: patch embedding, CLS token, learned
/// positional embedding, encoder blocks, and a classification head.
#[derive(Debug, Clone)]
pub struct VisionTransformer {
    config: ModelConfig,
    patch_embed: Linear,
    cls_token: Param,
    pos_embed: Param,
    blocks: Vec<EncoderBlock>,
    ln_f: LayerNorm,
    head: Linear,
    cache_tokens: usize,
}

impl VisionTransformer {
    /// Creates a ViT for inputs of `num_patches` patches of `patch_dim`
    /// values each.
    pub fn new(
        config: ModelConfig,
        num_patches: usize,
        patch_dim: usize,
        rng: &mut GaussianSampler,
    ) -> Self {
        VisionTransformer {
            config,
            patch_embed: Linear::new(patch_dim, config.dim, rng).with_role(OpKind::PatchEmbed),
            cls_token: Param::new(Tensor::randn(1, config.dim, 0.02, rng)),
            pos_embed: Param::new(Tensor::randn(num_patches + 1, config.dim, 0.02, rng)),
            blocks: (0..config.layers)
                .map(|_| EncoderBlock::new(config.dim, config.heads, config.ffn_dim, rng))
                .collect(),
            ln_f: LayerNorm::new(config.dim),
            head: Linear::new(config.dim, config.classes, rng).with_role(OpKind::Classifier),
            cache_tokens: 0,
        }
    }

    /// The model geometry.
    pub fn config(&self) -> ModelConfig {
        self.config
    }
}

impl Classifier<Tensor> for VisionTransformer {
    fn forward(&mut self, patches: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let embedded = self.patch_embed.forward(patches, ctx);
        // Prepend the CLS token and add positions.
        let tokens = embedded.rows() + 1;
        self.cache_tokens = tokens;
        let mut x = Tensor::zeros(tokens, self.config.dim);
        for j in 0..self.config.dim {
            x.set(0, j, self.cls_token.value.get(0, j));
        }
        for i in 0..embedded.rows() {
            for j in 0..self.config.dim {
                x.set(i + 1, j, embedded.get(i, j));
            }
        }
        let x = x.add(&self.pos_embed.value);
        let mut h = x;
        for block in &mut self.blocks {
            h = block.forward(&h, ctx);
        }
        ctx.record_non_gemm(NonGemmKind::LayerNorm, (h.rows() * h.cols()) as u64);
        let h = self.ln_f.forward(&h);
        // Classify from the CLS token.
        let cls = Tensor::from_fn(1, self.config.dim, |_, j| h.get(0, j));
        self.head.forward(&cls, ctx)
    }

    fn backward(&mut self, dlogits: &Tensor) {
        let dcls = self.head.backward(dlogits);
        let tokens = self.cache_tokens;
        let mut dh = Tensor::zeros(tokens, self.config.dim);
        for j in 0..self.config.dim {
            dh.set(0, j, dcls.get(0, j));
        }
        let mut dx = self.ln_f.backward(&dh);
        for block in self.blocks.iter_mut().rev() {
            dx = block.backward(&dx);
        }
        // Positions and CLS.
        self.pos_embed.grad.add_assign(&dx);
        for j in 0..self.config.dim {
            let g = self.cls_token.grad.get(0, j) + dx.get(0, j);
            self.cls_token.grad.set(0, j, g);
        }
        // Patch embedding.
        let dembed = Tensor::from_fn(tokens - 1, self.config.dim, |i, j| dx.get(i + 1, j));
        let _ = self.patch_embed.backward(&dembed);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.patch_embed.visit_params(f);
        f(&mut self.cls_token);
        f(&mut self.pos_embed);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

/// A tiny bidirectional text classifier: token embedding table, learned
/// positions, encoder blocks, mean pooling, and a classification head.
#[derive(Debug, Clone)]
pub struct TextClassifier {
    config: ModelConfig,
    /// Embedding table, `vocab x dim`.
    pub embed: Param,
    pos_embed: Param,
    blocks: Vec<EncoderBlock>,
    ln_f: LayerNorm,
    head: Linear,
    cache_tokens: Vec<usize>,
}

impl TextClassifier {
    /// Creates a classifier for sequences of exactly `seq_len` tokens over
    /// a `vocab`-symbol alphabet.
    pub fn new(
        config: ModelConfig,
        vocab: usize,
        seq_len: usize,
        rng: &mut GaussianSampler,
    ) -> Self {
        TextClassifier {
            config,
            embed: Param::new(Tensor::randn(vocab, config.dim, 0.1, rng)),
            pos_embed: Param::new(Tensor::randn(seq_len, config.dim, 0.02, rng)),
            blocks: (0..config.layers)
                .map(|_| EncoderBlock::new(config.dim, config.heads, config.ffn_dim, rng))
                .collect(),
            ln_f: LayerNorm::new(config.dim),
            head: Linear::new(config.dim, config.classes, rng).with_role(OpKind::Classifier),
            cache_tokens: Vec::new(),
        }
    }

    /// The model geometry.
    pub fn config(&self) -> ModelConfig {
        self.config
    }
}

impl Classifier<[usize]> for TextClassifier {
    fn forward(&mut self, tokens: &[usize], ctx: &mut ForwardCtx<'_>) -> Tensor {
        assert_eq!(
            tokens.len(),
            self.pos_embed.value.rows(),
            "sequence length mismatch"
        );
        self.cache_tokens = tokens.to_vec();
        let x = Tensor::from_fn(tokens.len(), self.config.dim, |i, j| {
            self.embed.value.get(tokens[i], j) + self.pos_embed.value.get(i, j)
        });
        let mut h = x;
        for block in &mut self.blocks {
            h = block.forward(&h, ctx);
        }
        ctx.record_non_gemm(NonGemmKind::LayerNorm, (h.rows() * h.cols()) as u64);
        let h = self.ln_f.forward(&h);
        // First-token pooling (BERT's [CLS]-style readout).
        let pooled = Tensor::from_fn(1, self.config.dim, |_, j| h.get(0, j));
        self.head.forward(&pooled, ctx)
    }

    fn backward(&mut self, dlogits: &Tensor) {
        let dpooled = self.head.backward(dlogits);
        let n = self.cache_tokens.len();
        let dh = Tensor::from_fn(n, self.config.dim, |i, j| {
            if i == 0 {
                dpooled.get(0, j)
            } else {
                0.0
            }
        });
        let mut dx = self.ln_f.backward(&dh);
        for block in self.blocks.iter_mut().rev() {
            dx = block.backward(&dx);
        }
        self.pos_embed.grad.add_assign(&dx);
        for (i, &tok) in self.cache_tokens.iter().enumerate() {
            for j in 0..self.config.dim {
                let g = self.embed.grad.get(tok, j) + dx.get(i, j);
                self.embed.grad.set(tok, j, g);
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.embed);
        f(&mut self.pos_embed);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::quant::QuantConfig;

    #[test]
    fn vit_forward_shapes() {
        let mut rng = GaussianSampler::new(1);
        let mut vit = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
        let patches = Tensor::randn(16, 16, 1.0, &mut rng);
        let mut eng = ExactEngine;
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
        let logits = vit.forward(&patches, &mut ctx);
        assert_eq!(logits.shape(), (1, 4));
    }

    #[test]
    fn text_forward_shapes() {
        let mut rng = GaussianSampler::new(2);
        let mut model = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);
        let tokens = vec![1usize, 5, 3, 9, 0, 2, 7, 7, 4, 11, 6, 8];
        let mut eng = ExactEngine;
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
        let logits = model.forward(&tokens, &mut ctx);
        assert_eq!(logits.shape(), (1, 2));
    }

    #[test]
    fn param_counts_are_sane() {
        let mut rng = GaussianSampler::new(3);
        let mut vit = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
        let n = vit.param_count();
        // dim 32, 2 blocks: ~30-40k parameters.
        assert!((15_000..60_000).contains(&n), "ViT params {n}");
    }

    #[test]
    fn vit_gradients_flow_to_every_param() {
        let mut rng = GaussianSampler::new(4);
        let mut vit = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
        let patches = Tensor::randn(16, 16, 1.0, &mut rng);
        let mut eng = ExactEngine;
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
        let logits = vit.forward(&patches, &mut ctx);
        let (_, dlogits) = crate::layers::cross_entropy(&logits, &[1]);
        vit.backward(&dlogits);
        let mut zero_grads = 0;
        let mut total = 0;
        vit.visit_params(&mut |p| {
            total += 1;
            if p.grad.max_abs() == 0.0 {
                zero_grads += 1;
            }
        });
        assert!(total > 20, "should visit many params, got {total}");
        assert!(
            zero_grads <= 1, // cls-token grad can be tiny but not zero; allow one straggler
            "{zero_grads}/{total} params received no gradient"
        );
    }

    #[test]
    fn encoder_block_gradient_matches_finite_differences() {
        let mut rng = GaussianSampler::new(5);
        let mut block = EncoderBlock::new(8, 2, 16, &mut rng);
        let x = Tensor::randn(5, 8, 0.7, &mut rng);
        let dy = Tensor::randn(5, 8, 1.0, &mut rng);

        let loss = |b: &mut EncoderBlock, x: &Tensor| -> f32 {
            let mut eng = ExactEngine;
            let mut nrng = GaussianSampler::new(0);
            let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
            b.forward(x, &mut ctx).hadamard(&dy).data().iter().sum()
        };
        let _ = loss(&mut block, &x);
        let dx = block.backward(&dy);

        let h = 1e-2f32;
        for &(i, j) in &[(0usize, 0usize), (2, 3), (4, 7)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + h);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - h);
            let num = (loss(&mut block.clone(), &xp) - loss(&mut block.clone(), &xm)) / (2.0 * h);
            let got = dx.get(i, j);
            assert!(
                (got - num).abs() < 0.05 * num.abs().max(1.0),
                "dx[{i},{j}] {got} vs numeric {num}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sequence length mismatch")]
    fn wrong_sequence_length_rejected() {
        let mut rng = GaussianSampler::new(6);
        let mut model = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);
        let mut eng = ExactEngine;
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
        let _ = model.forward(&[1usize, 2, 3], &mut ctx);
    }
}
