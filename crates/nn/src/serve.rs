//! A batching, multi-threaded inference server over any
//! [`ComputeBackend`] — the software analogue of the accelerator's
//! batched execution (Section IV: weights are loaded once per layer and
//! reused across the whole batch).
//!
//! Concurrent clients [`Server::submit`] mixed vision (DeiT stand-in)
//! and text (BERT stand-in) requests; a [`lt_runtime::BatchQueue`]
//! coalesces them into FIFO batches that worker threads drain. Each
//! worker holds its own clone of the model weights (loaded once, reused
//! for every request it serves) and runs whole transformer forward
//! passes with every GEMM routed through the configured backend — wrap
//! the backend in [`lt_runtime::ParallelBackend`] to also parallelize
//! inside each GEMM.
//!
//! What coalescing amortizes today: queue synchronization (one lock
//! round per batch, not per request) and weight residency (a worker
//! streams a whole batch through its already-loaded weights). Requests
//! within a batch still execute as individual forward passes; fusing a
//! batch's per-layer products into single stacked GEMMs (the backends
//! already expose [`ComputeBackend::gemm_batch`] for it) requires
//! batched model forwards and is the natural next step on top of this
//! queue.
//!
//! # Per-request hardware cost
//!
//! Every forward pass records its op trace ([`lt_core::TraceRecorder`])
//! while executing, and the worker replays the coalesced trace through
//! an [`lt_arch::Simulator`] built from [`ServeConfig::arch`]. The
//! [`Reply`] therefore carries, next to the logits, a [`RunReport`]
//! (photonic cycles, itemized energy, latency, EDP — and, since the
//! tile-schedule refactor, the achieved MAC utilization plus a
//! [`lt_arch::StallBreakdown`] saying whether the request was
//! compute-bound, bandwidth-bound, or pipeline-fill-bound): the serving
//! layer answers "what would this request cost on the accelerator, and
//! why" for free, per ticket.
//!
//! # Determinism
//!
//! A request's logits depend only on the model weights, the input, and
//! the server's root seed mixed with the request *ticket*
//! ([`lt_core::backend::split_seed`]) — never on worker count, batch
//! boundaries, or completion order. Serving the same stream twice (or
//! with a different `workers`/`max_batch` configuration) returns
//! bit-identical logits, enforced by `tests/runtime_determinism.rs`.
//! The attached cost is invariant the same way: the recorded trace is a
//! function of model geometry and input shape alone, and the simulator
//! is deterministic.

pub mod decode;
pub mod lifecycle;
pub mod sched;

use crate::engine::BackendEngine;
use crate::layers::ForwardCtx;
use crate::model::{Classifier, TextClassifier, VisionTransformer};
use crate::quant::QuantConfig;
use crate::tensor::Tensor;
use lt_arch::{ArchConfig, RunReport, Simulator};
use lt_core::backend::split_seed;
use lt_core::{ComputeBackend, GaussianSampler, Trace, TraceRecorder};
use lt_runtime::{BatchQueue, ParallelBackend, ThreadPool, ThreadsConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One inference request: an image (patch matrix) for the vision model
/// or a token sequence for the text model.
#[derive(Debug, Clone)]
pub enum Request {
    /// Patches for the [`VisionTransformer`], `[num_patches, patch_dim]`.
    Vision(Tensor),
    /// Token ids for the [`TextClassifier`] (exactly its `seq_len`).
    Text(Vec<usize>),
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each holding its own copy of the weights.
    pub workers: usize,
    /// Maximum requests a worker drains from the queue at once.
    pub max_batch: usize,
    /// Root seed; request noise streams are `split_seed(seed, ticket)`.
    pub seed: u64,
    /// Operand fake-quantization applied to every forward pass.
    pub quant: QuantConfig,
    /// Accelerator model that costs every request's recorded trace
    /// (default: LT-B at 8 bits, the paper's high-accuracy point).
    pub arch: ArchConfig,
    /// Intra-GEMM parallelism: `threads > 1` fans every routed GEMM
    /// out as row-block jobs on one pool shared by all workers
    /// ([`lt_runtime::ParallelBackend`]); replies are bit-identical at
    /// every thread count. Default is sequential; read `LT_THREADS`
    /// with [`ThreadsConfig::from_env`].
    pub threads: ThreadsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            seed: 0,
            quant: QuantConfig::fp32(),
            arch: ArchConfig::lt_base(8),
            threads: ThreadsConfig::default(),
        }
    }
}

/// A served response: the logits plus the hardware cost of the request's
/// recorded op trace replayed through the accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// `[1, classes]` logits.
    pub logits: Tensor,
    /// Cycles, itemized energy, and latency of the recorded trace on
    /// [`ServeConfig::arch`] (EDP via [`RunReport::edp`]).
    pub cost: RunReport,
    /// The coalesced op trace the forward pass actually executed — the
    /// evidence behind `cost`, and the input a scheduler or DSE loop
    /// can re-cost under a different [`ArchConfig`].
    pub trace: Trace,
}

/// A handle to one in-flight request.
#[derive(Debug)]
pub struct PendingReply {
    ticket: u64,
    rx: Receiver<Reply>,
}

impl PendingReply {
    /// The queue ticket (submission order, also the noise-stream index).
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Blocks until the reply (logits + hardware cost) arrives.
    ///
    /// # Panics
    ///
    /// Panics if the server was shut down before serving this request,
    /// or if the request itself was malformed (e.g. a wrong-length
    /// token sequence) and its forward pass panicked — other requests
    /// and the worker are unaffected.
    pub fn wait(self) -> Reply {
        self.rx
            .recv()
            .expect("request failed or server dropped before replying")
    }
}

#[derive(Debug)]
struct Job {
    request: Request,
    reply: Sender<Reply>,
}

/// The batching inference server. See the [module docs](self).
///
/// ```
/// use lt_core::NativeBackend;
/// use lt_nn::model::{ModelConfig, TextClassifier, VisionTransformer};
/// use lt_nn::serve::{Request, ServeConfig, Server};
/// use lt_nn::Tensor;
/// use lt_core::GaussianSampler;
///
/// let mut rng = GaussianSampler::new(1);
/// let vision = VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng);
/// let text = TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng);
/// let server = Server::new(vision, text, NativeBackend, ServeConfig::default());
///
/// let image = Tensor::from_fn(16, 16, |i, j| ((i * 16 + j) as f32 * 0.01).sin());
/// let pending = server.submit(Request::Vision(image));
/// let reply = pending.wait();
/// assert_eq!(reply.logits.shape(), (1, 4));
/// // Every reply carries the hardware cost of its recorded op trace.
/// assert!(reply.cost.energy.total().value() > 0.0);
/// assert!(reply.cost.edp() > 0.0);
/// ```
#[derive(Debug)]
pub struct Server {
    queue: Arc<BatchQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    batches: Arc<AtomicU64>,
}

impl Server {
    /// Starts `config.workers` worker threads, each with its own clone
    /// of the two models (weights loaded once per worker, amortized
    /// across every request that worker serves). The backend type is
    /// consumed by the workers, so the handle itself is not generic.
    ///
    /// With [`ServeConfig::threads`] parallel, the backend is wrapped
    /// in a [`ParallelBackend`] over one pool shared by every worker,
    /// so each GEMM inside a forward pass fans out as row-block jobs —
    /// with bit-identical replies, per the seed-partition contract.
    pub fn new<B: ComputeBackend + Clone + Send + Sync + 'static>(
        vision: VisionTransformer,
        text: TextClassifier,
        backend: B,
        config: ServeConfig,
    ) -> Self {
        if config.threads.is_parallel() {
            let pool = Arc::new(ThreadPool::new(config.threads.threads()));
            return Server::spawn(
                vision,
                text,
                ParallelBackend::with_pool(backend, pool),
                config,
            );
        }
        Server::spawn(vision, text, backend, config)
    }

    /// The monomorphic worker bring-up both construction paths share.
    fn spawn<B: ComputeBackend + Clone + Send + 'static>(
        vision: VisionTransformer,
        text: TextClassifier,
        backend: B,
        config: ServeConfig,
    ) -> Self {
        let queue: Arc<BatchQueue<Job>> = Arc::new(BatchQueue::new(config.max_batch.max(1)));
        let served = Arc::new(AtomicU64::new(0));
        let batches = Arc::new(AtomicU64::new(0));
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let served = Arc::clone(&served);
                let batches = Arc::clone(&batches);
                let mut vision = vision.clone();
                let mut text = text.clone();
                let backend = backend.clone();
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("lt-serve-worker-{w}"))
                    .spawn(move || {
                        // One simulator per worker, built once and reused
                        // to cost every request it serves.
                        let sim = Simulator::new(config.arch.clone());
                        while let Some(batch) = queue.next_batch() {
                            batches.fetch_add(1, Ordering::Relaxed);
                            for (ticket, job) in batch {
                                // Contain per-request panics (wrong
                                // sequence length, out-of-range token
                                // id, ...): the offending client's
                                // reply sender is dropped — its `wait`
                                // panics with a clear message — while
                                // the rest of the batch and the worker
                                // survive. Model forward caches are
                                // overwritten on every pass, so the
                                // clones stay valid after an unwind.
                                let outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        serve_one(
                                            &mut vision,
                                            &mut text,
                                            &backend,
                                            &config,
                                            &sim,
                                            ticket,
                                            &job.request,
                                        )
                                    }));
                                if let Ok(reply) = outcome {
                                    served.fetch_add(1, Ordering::Relaxed);
                                    // A client that dropped its handle
                                    // just doesn't read the reply.
                                    let _ = job.reply.send(reply);
                                }
                            }
                        }
                    })
                    .expect("failed to spawn serve worker")
            })
            .collect();
        Server {
            queue,
            workers,
            served,
            batches,
        }
    }

    /// Enqueues a request; returns immediately with a reply handle.
    pub fn submit(&self, request: Request) -> PendingReply {
        let (reply, rx) = channel();
        let ticket = self.queue.submit(Job { request, reply });
        PendingReply { ticket, rx }
    }

    /// Requests served *successfully* so far (a request whose forward
    /// pass panicked — malformed input — is drained but not counted).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Batches drained so far; `served() / batches()` is the realized
    /// coalescing factor.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Drains outstanding requests, stops the workers, and returns the
    /// total number of requests served successfully.
    pub fn shutdown(mut self) -> u64 {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.served()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Runs one request's whole forward pass with its ticket-derived noise
/// streams, records the executed op trace, and costs it on the
/// accelerator model. Free-standing (rather than a closure) so the
/// determinism contract is easy to audit: everything stochastic flows
/// from `split_seed(config.seed, ticket)`, and the cost is a pure
/// function of the recorded trace.
fn serve_one<B: ComputeBackend + Clone>(
    vision: &mut VisionTransformer,
    text: &mut TextClassifier,
    backend: &B,
    config: &ServeConfig,
    sim: &Simulator,
    ticket: u64,
    request: &Request,
) -> Reply {
    let mut engine = BackendEngine::new(backend.clone(), split_seed(config.seed, ticket));
    // The training-noise RNG is unused at inference but part of the ctx;
    // seed it off the same stream for full reproducibility.
    let mut rng = GaussianSampler::new(split_seed(!config.seed, ticket));
    let recorder = TraceRecorder::new();
    let mut ctx =
        ForwardCtx::inference(&mut engine, config.quant, &mut rng).with_recorder(recorder.clone());
    let logits = match request {
        Request::Vision(patches) => vision.forward(patches, &mut ctx),
        Request::Text(tokens) => text.forward(&tokens[..], &mut ctx),
    };
    // Coalesce before costing: merged instances fill hardware tiles the
    // way the paper's batched mapping assumes (per-head products etc.).
    let trace = recorder.take().coalesce();
    let cost = sim.run_trace(&trace);
    Reply {
        logits,
        cost,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use lt_core::NativeBackend;
    use lt_dptc::DptcBackend;

    fn models() -> (VisionTransformer, TextClassifier) {
        let mut rng = GaussianSampler::new(7);
        (
            VisionTransformer::new(ModelConfig::tiny_vision(), 16, 16, &mut rng),
            TextClassifier::new(ModelConfig::tiny_text(), 16, 12, &mut rng),
        )
    }

    fn mixed_requests(n: usize) -> Vec<Request> {
        let mut rng = GaussianSampler::new(11);
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    Request::Text((0..12).map(|t| (i + t) % 16).collect())
                } else {
                    Request::Vision(Tensor::randn(16, 16, 1.0, &mut rng))
                }
            })
            .collect()
    }

    fn serve_all<B: ComputeBackend + Clone + Send + Sync + 'static>(
        backend: B,
        cfg: ServeConfig,
        requests: &[Request],
    ) -> Vec<Reply> {
        let (vision, text) = models();
        let server = Server::new(vision, text, backend, cfg);
        let pending: Vec<PendingReply> =
            requests.iter().map(|r| server.submit(r.clone())).collect();
        let replies: Vec<Reply> = pending.into_iter().map(PendingReply::wait).collect();
        assert_eq!(server.shutdown(), requests.len() as u64);
        replies
    }

    #[test]
    fn serves_mixed_requests_with_correct_shapes_and_costs() {
        let requests = mixed_requests(9);
        let replies = serve_all(NativeBackend, ServeConfig::default(), &requests);
        for (req, r) in requests.iter().zip(&replies) {
            match req {
                Request::Vision(_) => assert_eq!(r.logits.shape(), (1, 4)),
                Request::Text(_) => assert_eq!(r.logits.shape(), (1, 2)),
            }
            assert!(r.cost.cycles > 0, "photonic cycles attached");
            assert!(r.cost.energy.total().value() > 0.0, "energy attached");
            assert!(r.cost.latency.value() > 0.0, "latency attached");
            assert!(r.cost.edp() > 0.0, "EDP attached");
            assert!(
                r.cost.utilization > 0.0 && r.cost.utilization <= 1.0,
                "utilization attached"
            );
            assert!(
                (r.cost.stalls.total().value() - r.cost.latency.value()).abs()
                    <= 1e-9 * r.cost.latency.value(),
                "the stall breakdown accounts for the whole window"
            );
            assert!(!r.trace.is_empty(), "trace attached");
            assert!(
                r.cost.energy.digital.value() > 0.0,
                "non-GEMM work is costed too"
            );
        }
        // Same model + same input shape => same cost; different model
        // geometry => different cost.
        let vision_costs: Vec<_> = requests
            .iter()
            .zip(&replies)
            .filter(|(req, _)| matches!(req, Request::Vision(_)))
            .map(|(_, r)| r.cost)
            .collect();
        assert!(vision_costs.windows(2).all(|w| w[0] == w[1]));
        let text_cost = requests
            .iter()
            .zip(&replies)
            .find(|(req, _)| matches!(req, Request::Text(_)))
            .map(|(_, r)| r.cost)
            .unwrap();
        assert_ne!(text_cost, vision_costs[0], "geometry shows in the cost");
    }

    #[test]
    fn results_and_costs_do_not_depend_on_worker_count_or_batch_size() {
        let requests = mixed_requests(8);
        let backend = DptcBackend::paper(8, 3);
        let base = serve_all(
            backend.clone(),
            ServeConfig {
                workers: 1,
                max_batch: 1,
                ..ServeConfig::default()
            },
            &requests,
        );
        for (workers, max_batch) in [(2, 4), (4, 8)] {
            let got = serve_all(
                backend.clone(),
                ServeConfig {
                    workers,
                    max_batch,
                    ..ServeConfig::default()
                },
                &requests,
            );
            for (a, b) in base.iter().zip(&got) {
                // Reply equality covers logits, cost, and trace at once.
                assert_eq!(a, b, "workers={workers} max_batch={max_batch}");
            }
        }
    }

    #[test]
    fn a_malformed_request_does_not_poison_the_batch_or_the_worker() {
        let (vision, text) = models();
        let server = Server::new(
            vision,
            text,
            NativeBackend,
            ServeConfig {
                workers: 1,
                max_batch: 4,
                ..ServeConfig::default()
            },
        );
        let good_before = server.submit(Request::Text(vec![0; 12]));
        let bad = server.submit(Request::Text(vec![0; 11])); // wrong seq_len
        let good_after = server.submit(Request::Text(vec![1; 12]));
        assert_eq!(good_before.wait().logits.shape(), (1, 2));
        assert_eq!(good_after.wait().logits.shape(), (1, 2), "worker survived");
        let failed = std::panic::catch_unwind(move || bad.wait());
        assert!(failed.is_err(), "malformed request reports failure");
        assert_eq!(server.shutdown(), 2, "only the two good requests count");
    }

    #[test]
    fn tickets_are_submission_ordered() {
        let (vision, text) = models();
        let server = Server::new(vision, text, NativeBackend, ServeConfig::default());
        let a = server.submit(Request::Text(vec![0; 12]));
        let b = server.submit(Request::Text(vec![1; 12]));
        assert!(a.ticket() < b.ticket());
        a.wait();
        b.wait();
    }
}
