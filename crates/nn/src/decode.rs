//! Executable autoregressive decode (paper Section VI-B): a KV-cached
//! decoder LM, incremental per-token forward passes, and per-token
//! hardware costing through the trace IR.
//!
//! The paper argues LLM decoding is memory-bound at batch 1 and that
//! batching is the remedy — but until this module the repo only modeled
//! that analytically (`lt_workloads::DecodeTrace`). Here the decode loop
//! actually runs: [`DecoderLm::prefill`] runs the causal prompt pass and
//! fills a [`KvCache`], [`DecoderLm::decode_step`] appends one token's
//! K/V and attends over the cached context, and every pass records its
//! op trace (the matrix-vector `[1, dh] x [dh, context]` attention
//! shapes, the `[1, d] x [d, d]` projections, the KV-append traffic) so
//! [`lt_arch::Simulator::run_trace`] can cost each generated token.
//! `tests/trace_crossval.rs` pins the recorded decode-step trace against
//! the analytical `DecodeTrace::gemm_trace()` dims and MACs.
//!
//! [`DecodeSession`] wraps one request's full lifecycle (prefill, then
//! token-by-token steps with greedy sampling) with the same per-ticket
//! seed discipline as the classifier server, so token streams are
//! bit-identical no matter how sessions are scheduled — the property the
//! continuous-batching server in [`crate::serve::decode`] relies on.

use crate::attention::AttnKvCache;
use crate::engine::BackendEngine;
use crate::kv::{KvLayer, ModelKv, PagedKvCache};
use crate::layers::{ForwardCtx, Linear, Param};
use crate::model::EncoderBlock;
use crate::quant::QuantConfig;
use crate::tensor::Tensor;
use lt_arch::{RunReport, Simulator, StallBreakdown};
use lt_core::backend::split_seed;
use lt_core::trace::{NonGemmKind, OpKind};
use lt_core::{ComputeBackend, GaussianSampler, Op, Trace, TraceRecorder};

/// Geometry of a decoder-only language model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderConfig {
    /// Embedding width.
    pub dim: usize,
    /// Decoder blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN hidden width.
    pub ffn_dim: usize,
    /// Vocabulary size (embedding rows and LM-head columns).
    pub vocab: usize,
    /// Maximum sequence length (positions the model knows).
    pub max_seq: usize,
}

impl DecoderConfig {
    /// The default tiny GPT-style stand-in: dim 32, 2 layers, 4 heads,
    /// FFN 64, 16-symbol vocabulary, 48 positions.
    pub fn tiny() -> Self {
        DecoderConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            ffn_dim: 64,
            vocab: 16,
            max_seq: 48,
        }
    }

    /// The self-speculative draft geometry: the first half of the
    /// decoder stack (at least one block) over the *same* embedding
    /// width, head count, vocabulary, and context window. Sharing the
    /// vocabulary keeps draft proposals in the target's token space (one
    /// tokenizer), and sharing the width lets [`DraftLm::from_target`]
    /// reuse the target's own embeddings and LM head, which is what
    /// makes greedy agreement high enough for speculation to pay.
    pub fn draft(&self) -> Self {
        DecoderConfig {
            layers: (self.layers / 2).max(1),
            ..*self
        }
    }

    /// The op trace an *unchunked* causal prefill of `tokens` prompt
    /// tokens records, built analytically from the geometry (no forward
    /// pass, no weights). Prefill cost is a pure function of shapes, so
    /// replaying this trace through a simulator yields exactly the cost
    /// [`DecodeSession::prefill`] would report for a contiguous,
    /// non-shared cache — which makes it the exact minimum
    /// time-to-first-token an admission controller can promise
    /// (`tests/trace_crossval.rs`-style pinning lives in this module's
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero or exceeds `max_seq`.
    pub fn prefill_trace(&self, tokens: usize) -> Trace {
        assert!(
            tokens > 0 && tokens <= self.max_seq,
            "prefill of {tokens} tokens outside 1..={}",
            self.max_seq
        );
        let (t, dim, layers) = (tokens, self.dim, self.layers);
        let dh = dim / self.heads;
        let per_heads = self.heads * layers;
        let elems = (t * dim) as u64;
        let mut trace = Trace::new();
        for op in [
            Op::gemm_n(OpKind::QkvProj, t, dim, dim, 3 * layers),
            Op::gemm_n(OpKind::AttnQk, t, dh, t, per_heads),
            Op::gemm_n(OpKind::AttnAv, t, t, dh, per_heads),
            Op::gemm_n(OpKind::OutProj, t, dim, dim, layers),
            Op::gemm_n(OpKind::Ffn1, t, dim, self.ffn_dim, layers),
            Op::gemm_n(OpKind::Ffn2, t, self.ffn_dim, dim, layers),
            Op::gemm(OpKind::LmHead, 1, dim, self.vocab),
            Op::non_gemm(NonGemmKind::Softmax, (t * t) as u64 * per_heads as u64),
            Op::non_gemm(NonGemmKind::KvAppend, 2 * elems * layers as u64),
            // Two LayerNorms per block plus the final head norm (one row).
            Op::non_gemm(
                NonGemmKind::LayerNorm,
                2 * elems * layers as u64 + dim as u64,
            ),
            Op::non_gemm(NonGemmKind::Residual, 2 * elems * layers as u64),
            Op::non_gemm(NonGemmKind::Gelu, (t * self.ffn_dim * layers) as u64),
        ] {
            trace.push(op);
        }
        trace.coalesce()
    }
}

/// The whole model's KV cache: one [`AttnKvCache`] per layer, all at the
/// same context length.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    layers: Vec<AttnKvCache>,
    dim: usize,
}

impl KvCache {
    /// An empty cache for a model of `layers` blocks of width `dim`.
    pub fn new(layers: usize, dim: usize) -> Self {
        KvCache {
            layers: (0..layers).map(|_| AttnKvCache::new(dim)).collect(),
            dim,
        }
    }

    /// Context length in tokens (identical across layers).
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, AttnKvCache::len)
    }

    /// Whether no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-layer caches.
    pub fn layers_mut(&mut self) -> &mut [AttnKvCache] {
        &mut self.layers
    }

    /// Rolls every layer back to its first `len` tokens — the
    /// contiguous-cache half of speculative-decoding rollback (no-op
    /// when already that short).
    pub fn truncate(&mut self, len: usize) {
        for layer in &mut self.layers {
            layer.truncate(len);
        }
    }

    /// Cache footprint in bytes at `bits` operand precision: keys and
    /// values, every layer, the whole context — the
    /// `DecodeTrace::kv_cache_bytes` accounting, now measured on a live
    /// cache instead of derived from hyper-parameters.
    pub fn bytes(&self, bits: u32) -> u64 {
        2 * self.layers.len() as u64 * self.len() as u64 * self.dim as u64 * bits as u64 / 8
    }
}

impl ModelKv for KvCache {
    fn len(&self) -> usize {
        KvCache::len(self)
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn layer_mut(&mut self, layer: usize) -> &mut dyn KvLayer {
        &mut self.layers[layer]
    }

    fn bytes(&self, bits: u32) -> u64 {
        KvCache::bytes(self, bits)
    }
}

/// A decoder-only (GPT-style) language model over the same tiny-layer
/// stack as the classifiers: token + learned positional embedding,
/// pre-LN causal blocks, final LayerNorm, and a vocabulary LM head.
///
/// All forward entry points are inference-only (`&self`), so one model
/// value can be shared by many concurrent [`DecodeSession`]s.
#[derive(Debug, Clone)]
pub struct DecoderLm {
    config: DecoderConfig,
    /// Token embedding table, `vocab x dim`.
    pub embed: Param,
    pos_embed: Param,
    blocks: Vec<EncoderBlock>,
    ln_f: crate::layers::LayerNorm,
    lm_head: Linear,
}

impl DecoderLm {
    /// Creates a model with Xavier-style random weights.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads` or any size is zero.
    pub fn new(config: DecoderConfig, rng: &mut GaussianSampler) -> Self {
        assert!(
            config.vocab > 0 && config.max_seq > 0,
            "vocab and max_seq must be positive"
        );
        DecoderLm {
            config,
            embed: Param::new(Tensor::randn(config.vocab, config.dim, 0.1, rng)),
            pos_embed: Param::new(Tensor::randn(config.max_seq, config.dim, 0.02, rng)),
            blocks: (0..config.layers)
                .map(|_| EncoderBlock::new(config.dim, config.heads, config.ffn_dim, rng))
                .collect(),
            ln_f: crate::layers::LayerNorm::new(config.dim),
            lm_head: Linear::new(config.dim, config.vocab, rng).with_role(OpKind::LmHead),
        }
    }

    /// The model geometry.
    pub fn config(&self) -> DecoderConfig {
        self.config
    }

    /// Tapers the residual gain of the blocks the self-speculative
    /// draft drops (everything past [`DecoderConfig::draft`]`.layers`)
    /// by `gain`, via [`EncoderBlock::scale_residual`].
    ///
    /// Trained transformers have the property that deeper blocks
    /// *refine* the next-token argmax rather than overhaul it — the
    /// property layer-truncated drafting's acceptance rate rests on.
    /// Random init lacks that structure entirely (truncation agrees at
    /// chance level), so speculation workloads in this repo build it in
    /// explicitly with this knob and then *report* the resulting
    /// acceptance rate, never assume it. Speculation's correctness
    /// contract (bit-identity to plain greedy decoding) holds at any
    /// gain, including 1.0 (untapered).
    pub fn taper_deep_blocks(&mut self, gain: f32) {
        let keep = self.config.draft().layers;
        for block in &mut self.blocks[keep..] {
            block.scale_residual(gain);
        }
    }

    /// A fresh, empty KV cache sized for this model.
    pub fn empty_cache(&self) -> KvCache {
        KvCache::new(self.config.layers, self.config.dim)
    }

    /// Embeds `tokens` starting at position `start`.
    fn embed_at(&self, tokens: &[usize], start: usize) -> Tensor {
        Tensor::from_fn(tokens.len(), self.config.dim, |i, j| {
            self.embed.value.get(tokens[i], j) + self.pos_embed.value.get(start + i, j)
        })
    }

    /// Causal prefill over a whole prompt: fills `cache` with every
    /// prompt token's K/V and returns the `[1, vocab]` logits of the
    /// *last* position (the distribution of the first generated token).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty, exceeds `max_seq`, a token id is
    /// out of vocabulary, or `cache` is non-empty.
    pub fn prefill(
        &self,
        prompt: &[usize],
        cache: &mut dyn ModelKv,
        ctx: &mut ForwardCtx<'_>,
    ) -> Tensor {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(cache.is_empty(), "prefill expects an empty KV cache");
        assert!(
            prompt.len() <= self.config.max_seq,
            "prompt length {} exceeds max_seq {}",
            prompt.len(),
            self.config.max_seq
        );
        let mut h = self.embed_at(prompt, 0);
        for (i, block) in self.blocks.iter().enumerate() {
            h = block.prefill(&h, cache.layer_mut(i), ctx);
        }
        self.logits_at_last(&h, ctx)
    }

    /// Causal prefill of one *chunk* of a prompt: feeds the tokens at
    /// positions `cache.len() .. cache.len() + tokens.len()` through
    /// every block's [`EncoderBlock::prefill_chunk`], appending their
    /// K/V, and returns the chunk's `[t, dim]` final hidden states.
    /// Unlike [`DecoderLm::prefill`] this does *not* run the LM head —
    /// only the last chunk of a prompt needs logits; call
    /// [`DecoderLm::logits_at_last`] on the returned hidden states then.
    ///
    /// For deterministic backends without per-tensor fake quantization,
    /// feeding a prompt in any chunking produces a cache and logits
    /// bit-identical to one whole-prompt [`DecoderLm::prefill`] (every
    /// layer computes row-independently and the causal mask hides the
    /// missing future either way).
    ///
    /// # Panics
    ///
    /// Panics if the chunk is empty or would overflow `max_seq`.
    pub fn prefill_chunk(
        &self,
        tokens: &[usize],
        cache: &mut dyn ModelKv,
        ctx: &mut ForwardCtx<'_>,
    ) -> Tensor {
        assert!(!tokens.is_empty(), "empty prefill chunk");
        let start = cache.len();
        assert!(
            start + tokens.len() <= self.config.max_seq,
            "chunk at {} + {} exceeds max_seq {}",
            start,
            tokens.len(),
            self.config.max_seq
        );
        let mut h = self.embed_at(tokens, start);
        for (i, block) in self.blocks.iter().enumerate() {
            h = block.prefill_chunk(&h, cache.layer_mut(i), ctx);
        }
        h
    }

    /// `[1, vocab]` logits of the last row of `h` (final LayerNorm +
    /// LM head) — the step that turns a prefill's hidden states into
    /// the first generated token's distribution.
    pub fn logits_at_last(&self, h: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let last = Tensor::from_fn(1, self.config.dim, |_, j| h.get(h.rows() - 1, j));
        self.head_logits(&last, ctx)
    }

    /// One decode step: feeds the single `token` at the next position,
    /// appends its K/V to `cache`, and returns `[1, vocab]` logits.
    ///
    /// # Panics
    ///
    /// Panics if the context is full (`cache.len() == max_seq`), the
    /// cache is empty (prefill first), or the token is out of vocabulary.
    pub fn decode_step(
        &self,
        token: usize,
        cache: &mut dyn ModelKv,
        ctx: &mut ForwardCtx<'_>,
    ) -> Tensor {
        let pos = cache.len();
        assert!(pos > 0, "decode_step before prefill");
        assert!(pos < self.config.max_seq, "context window full at {pos}");
        let mut h = self.embed_at(&[token], pos);
        for (i, block) in self.blocks.iter().enumerate() {
            h = block.decode_step(&h, cache.layer_mut(i), ctx);
        }
        self.head_logits(&h, ctx)
    }

    /// Final LayerNorm + LM head over a `[1, dim]` hidden state.
    fn head_logits(&self, h: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        ctx.record_non_gemm(NonGemmKind::LayerNorm, (h.rows() * h.cols()) as u64);
        self.lm_head.infer(&self.ln_f.infer(h), ctx)
    }

    /// One batched *verification* pass of speculative decoding: feeds
    /// the `k + 1` positions in `tokens` (the last committed token
    /// followed by the draft's `k` proposals) through the decoder in a
    /// single chunked pass and returns their `[k + 1, vocab]` logits.
    /// Row `i` is the target's next-token distribution after
    /// `tokens[..=i]` — exactly what `k + 1` successive
    /// [`DecoderLm::decode_step`] calls would produce (bit-identical on
    /// deterministic backends: every layer computes row-independently
    /// under the causal mask).
    ///
    /// The hardware payoff is the recorded shapes: one
    /// `[k+1, dh] x [dh, ctx]` QK, one `[k+1, ctx] x [ctx, dh]` AV, and
    /// a row-stacked `[k+1, dim] x [dim, vocab]` LM head per pass, so
    /// the target's weights stream over HBM once per `k + 1` positions
    /// instead of once per token — the whole point on a decode path
    /// that is ~81% bandwidth-stalled at batch 1.
    ///
    /// All `k + 1` K/V rows are appended to `cache`; the caller rolls
    /// rejected positions back with [`KvCache::truncate`] /
    /// [`PagedKvCache::truncate`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, `cache` is empty (prefill first),
    /// or the pass would overflow `max_seq`.
    pub fn verify_step(
        &self,
        tokens: &[usize],
        cache: &mut dyn ModelKv,
        ctx: &mut ForwardCtx<'_>,
    ) -> Tensor {
        assert!(!cache.is_empty(), "verify_step before prefill");
        let h = self.prefill_chunk(tokens, cache, ctx);
        self.head_logits(&h, ctx)
    }
}

/// The draft model of speculative decoding: a shallower [`DecoderLm`]
/// sharing the target's vocabulary and embedding space, cheap enough
/// that proposing `k` tokens costs a fraction of one target step.
///
/// [`DraftLm::from_target`] builds the *self-speculative* draft the
/// serving stack uses by default: the target's own embeddings, first
/// half of its blocks ([`DecoderConfig::draft`]), final LayerNorm, and
/// LM head, all weight-shared. Because the decoder is residual, the
/// truncated stack's hidden states track the full stack's closely, so
/// greedy agreement stays high without training a separate model.
#[derive(Debug, Clone)]
pub struct DraftLm {
    model: DecoderLm,
}

impl DraftLm {
    /// Builds the self-speculative draft: the first
    /// [`DecoderConfig::draft`]`.layers` blocks of `target` with its
    /// embeddings, final LayerNorm, and LM head, weights copied.
    pub fn from_target(target: &DecoderLm) -> Self {
        let config = target.config.draft();
        DraftLm {
            model: DecoderLm {
                config,
                embed: target.embed.clone(),
                pos_embed: target.pos_embed.clone(),
                blocks: target.blocks[..config.layers].to_vec(),
                ln_f: target.ln_f.clone(),
                lm_head: target.lm_head.clone(),
            },
        }
    }

    /// Wraps an arbitrary decoder as a draft (e.g. an independently
    /// trained small model). Its vocabulary and context window must
    /// match the target's.
    pub fn from_model(model: DecoderLm) -> Self {
        DraftLm { model }
    }

    /// The draft decoder itself.
    pub fn model(&self) -> &DecoderLm {
        &self.model
    }

    /// The draft geometry.
    pub fn config(&self) -> DecoderConfig {
        self.model.config
    }
}

/// Greedy (argmax) sampling over `[1, vocab]` logits; ties resolve to
/// the lowest token id, so sampling is fully deterministic.
///
/// # Panics
///
/// Panics if `logits` has no columns.
pub fn greedy(logits: &Tensor) -> usize {
    let row = logits.row(0);
    assert!(!row.is_empty(), "empty logits");
    let mut best = 0;
    for (j, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = j;
        }
    }
    best
}

/// The longest-prefix greedy agreement of one speculative step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecOutcome {
    /// Draft proposals accepted (`0..=k`).
    pub accepted: usize,
    /// The token emitted at the first non-agreeing position: the
    /// target's correction when a proposal is rejected, or the free
    /// "bonus" token from the extra verified position when every
    /// proposal is accepted.
    pub bonus_token: usize,
    /// Rejected draft positions whose K/V rows were rolled back
    /// (`k - accepted`).
    pub rollback: usize,
}

impl SpecOutcome {
    /// Tokens this speculative step emitted (`accepted + 1`).
    pub fn emitted(&self) -> usize {
        self.accepted + 1
    }
}

/// One speculative step's outcome plus its itemized hardware cost:
/// the draft model's trace (the overhead a real deployment pays) and
/// the target's batched verify trace, each replayed on the simulator.
#[derive(Debug, Clone)]
pub struct SpecStepReport {
    /// Longest-prefix agreement outcome.
    pub outcome: SpecOutcome,
    /// Draft-model ops: cache catch-up plus the `k` draft steps.
    pub draft_trace: Trace,
    /// Target-model ops: the one batched verify pass (or the plain
    /// decode step when speculation degenerated to `k_eff = 0`).
    pub verify_trace: Trace,
    /// [`SpecStepReport::draft_trace`] replayed on the simulator.
    pub draft_cost: RunReport,
    /// [`SpecStepReport::verify_trace`] replayed on the simulator.
    pub verify_cost: RunReport,
}

impl SpecStepReport {
    /// The counter increments this one step contributes — what a
    /// scheduler folds into an aggregate [`SpecSessionStats`] without
    /// waiting for the session to retire.
    pub fn stats_delta(&self) -> SpecSessionStats {
        SpecSessionStats {
            spec_steps: 1,
            proposed: (self.outcome.accepted + self.outcome.rollback) as u64,
            accepted: self.outcome.accepted as u64,
            emitted: self.outcome.emitted() as u64,
            rolled_back: self.outcome.rollback as u64,
            draft_cycles: self.draft_cost.cycles,
            verify_cycles: self.verify_cost.cycles,
        }
    }
}

/// Cumulative speculation counters of one session — the acceptance
/// accounting [`crate::serve::sched::KvSchedStats`] and the serving
/// report aggregate across requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecSessionStats {
    /// Speculative steps taken (including `k_eff = 0` fallbacks).
    pub spec_steps: u64,
    /// Draft tokens proposed.
    pub proposed: u64,
    /// Draft tokens accepted.
    pub accepted: u64,
    /// Tokens emitted by speculative steps (accepted + bonus/correction).
    pub emitted: u64,
    /// K/V rows rolled back (rejected positions).
    pub rolled_back: u64,
    /// Replayed draft-model cycles — the speculation overhead,
    /// itemized, never folded into the target's cycles.
    pub draft_cycles: u64,
    /// Replayed target-model cycles (verify passes + fallback steps).
    pub verify_cycles: u64,
}

impl SpecSessionStats {
    /// Merges another session's counters into this one.
    pub fn merge(&mut self, other: &SpecSessionStats) {
        self.spec_steps += other.spec_steps;
        self.proposed += other.proposed;
        self.accepted += other.accepted;
        self.emitted += other.emitted;
        self.rolled_back += other.rolled_back;
        self.draft_cycles += other.draft_cycles;
        self.verify_cycles += other.verify_cycles;
    }

    /// Fraction of draft proposals the target accepted (0 when none
    /// were proposed).
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// Per-session draft-model state: the draft's own KV cache and noise
/// streams, kept in sync with the committed token stream.
#[derive(Debug)]
struct SpecState<B: ComputeBackend + Clone> {
    engine: BackendEngine<B>,
    rng: GaussianSampler,
    cache: KvCache,
}

/// Seed salt separating the draft model's noise streams from the
/// session's own (both still derive from `(seed, ticket)` only, so
/// speculation stays deterministic under any scheduling).
const DRAFT_SEED_SALT: u64 = 0xD12A_F75E_C0DE_CAFE;

/// The served result of one decode request: the generated tokens plus
/// the hardware cost of every forward pass that produced them — one
/// [`RunReport`] for the prefill and one per decoded token, each the
/// replay of that pass's recorded op trace through the accelerator
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeReply {
    /// The prompt that was served.
    pub prompt: Vec<usize>,
    /// Generated tokens, in order (`max_new_tokens` of them).
    pub tokens: Vec<usize>,
    /// Cost of the causal prompt pass (covers the first generated token).
    pub prefill: RunReport,
    /// Per-token costs of the decode steps (tokens 2..): `steps[i]` is
    /// the replayed cost of generating `tokens[i + 1]` against a context
    /// of `prompt.len() + i + 1` cached tokens.
    pub steps: Vec<RunReport>,
    /// Final KV-cache footprint in bytes at the serving precision.
    pub kv_cache_bytes: u64,
}

impl DecodeReply {
    /// Photonic cycles of the decode steps only (the per-token regime).
    pub fn decode_cycles(&self) -> u64 {
        self.steps.iter().map(|r| r.cycles).sum()
    }

    /// Merged cost of everything (prefill + every decode step).
    pub fn total(&self) -> RunReport {
        let mut all = self.prefill;
        for step in &self.steps {
            all.merge(step);
        }
        all
    }

    /// Merged cost of the decode steps only — the memory-bound
    /// per-token regime the paper's Section VI-B is about, without the
    /// compute-bound prefill averaging it away.
    pub fn decode_total(&self) -> RunReport {
        let mut all = RunReport::default();
        for step in &self.steps {
            all.merge(step);
        }
        all
    }

    /// Stall itemization of the decode steps: *why* each generated
    /// token took its cycles (photonic compute vs. HBM bandwidth vs.
    /// pipeline fill), summed over the per-token regime.
    pub fn decode_stalls(&self) -> StallBreakdown {
        self.decode_total().stalls
    }

    /// Achieved MAC utilization over the decode steps (time-weighted).
    pub fn decode_utilization(&self) -> f64 {
        self.decode_total().utilization
    }
}

/// Per-session execution settings shared by every session of one
/// serving run: the root seed, operand quantization, and the precision
/// the KV footprint is reported at.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Root seed; the session's streams derive via `split_seed(seed, ticket)`.
    pub seed: u64,
    /// Operand fake-quantization applied to every forward pass.
    pub quant: QuantConfig,
    /// Operand precision (bits) used for the KV-cache byte accounting.
    pub kv_bits: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            seed: 0,
            quant: QuantConfig::fp32(),
            kv_bits: 8,
        }
    }
}

/// A session's KV storage: the original contiguous per-layer buffers, or
/// a block table over a shared paged pool (which adds prefix sharing and
/// preemption; see [`crate::kv`]).
#[derive(Debug)]
pub enum SessionKv {
    /// Contiguous per-layer buffers ([`KvCache`]).
    Contiguous(KvCache),
    /// Block table over a shared [`crate::kv::BlockPool`].
    Paged(PagedKvCache),
}

impl SessionKv {
    fn as_model(&mut self) -> &mut dyn ModelKv {
        match self {
            SessionKv::Contiguous(c) => c,
            SessionKv::Paged(p) => p,
        }
    }

    fn bytes(&self, bits: u32) -> u64 {
        match self {
            SessionKv::Contiguous(c) => ModelKv::bytes(c, bits),
            SessionKv::Paged(p) => ModelKv::bytes(p, bits),
        }
    }

    /// Speculative rollback on whichever cache path the session uses.
    fn truncate(&mut self, len: usize) {
        match self {
            SessionKv::Contiguous(c) => c.truncate(len),
            SessionKv::Paged(p) => {
                p.truncate(len);
            }
        }
    }
}

/// One request's decode lifecycle: prefill once, then step until
/// `max_new_tokens` are generated, recording and costing every pass.
///
/// Everything stochastic flows from `split_seed(seed, ticket)` — the
/// same discipline as the classifier server — so the token stream and
/// every attached cost are bit-identical regardless of how many other
/// sessions run interleaved with this one, on how many workers.
#[derive(Debug)]
pub struct DecodeSession<B: ComputeBackend + Clone> {
    ticket: u64,
    prompt: Vec<usize>,
    max_new_tokens: usize,
    quant: QuantConfig,
    engine: BackendEngine<B>,
    rng: GaussianSampler,
    cache: SessionKv,
    tokens: Vec<usize>,
    prefill_cost: Option<RunReport>,
    /// Prompt tokens already prefilled via [`DecodeSession::prefill_partial`].
    prefill_fed: usize,
    /// Accumulated cost of partial chunks until the prefill completes.
    prefill_accum: Option<RunReport>,
    step_costs: Vec<RunReport>,
    kv_bits: u32,
    /// Root seed (pre-split), kept to derive the draft's streams lazily.
    seed: u64,
    /// Draft-model state, created on the first [`DecodeSession::spec_step`].
    spec: Option<SpecState<B>>,
    spec_stats: SpecSessionStats,
}

impl<B: ComputeBackend + Clone> DecodeSession<B> {
    /// Creates a session for `prompt`, generating `max_new_tokens`.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty, `max_new_tokens` is zero, or the
    /// full sequence would overflow the model's context window.
    pub fn new(
        model: &DecoderLm,
        ticket: u64,
        prompt: Vec<usize>,
        max_new_tokens: usize,
        backend: B,
        config: SessionConfig,
    ) -> Self {
        let cache = SessionKv::Contiguous(model.empty_cache());
        Self::with_cache(
            model,
            ticket,
            prompt,
            max_new_tokens,
            backend,
            config,
            cache,
        )
    }

    /// Creates a session whose KV lives in `cache` — a paged block table
    /// over a shared pool (possibly seeded with a shared prefix). Seeds,
    /// sampling, and costs follow the exact same discipline as
    /// [`DecodeSession::new`], so for a pool large enough to avoid
    /// preemption the reply is bit-identical to the contiguous path.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DecodeSession::new`].
    pub fn new_paged(
        model: &DecoderLm,
        ticket: u64,
        prompt: Vec<usize>,
        max_new_tokens: usize,
        backend: B,
        config: SessionConfig,
        cache: PagedKvCache,
    ) -> Self {
        Self::with_cache(
            model,
            ticket,
            prompt,
            max_new_tokens,
            backend,
            config,
            SessionKv::Paged(cache),
        )
    }

    fn with_cache(
        model: &DecoderLm,
        ticket: u64,
        prompt: Vec<usize>,
        max_new_tokens: usize,
        backend: B,
        config: SessionConfig,
        cache: SessionKv,
    ) -> Self {
        assert!(!prompt.is_empty(), "empty prompt");
        assert!(max_new_tokens > 0, "must generate at least one token");
        assert!(
            prompt.len() + max_new_tokens - 1 <= model.config().max_seq,
            "prompt {} + {} new tokens overflows max_seq {}",
            prompt.len(),
            max_new_tokens,
            model.config().max_seq
        );
        DecodeSession {
            ticket,
            prompt,
            max_new_tokens,
            quant: config.quant,
            engine: BackendEngine::new(backend, split_seed(config.seed, ticket)),
            rng: GaussianSampler::new(split_seed(!config.seed, ticket)),
            cache,
            tokens: Vec::with_capacity(max_new_tokens),
            prefill_cost: None,
            prefill_fed: 0,
            prefill_accum: None,
            step_costs: Vec::new(),
            kv_bits: config.kv_bits,
            seed: config.seed,
            spec: None,
            spec_stats: SpecSessionStats::default(),
        }
    }

    /// The session's queue ticket.
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// The session's prompt (what a prefix-sharing index keys on).
    pub fn prompt(&self) -> &[usize] {
        &self.prompt
    }

    /// Tokens generated so far.
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }

    /// Tokens still to generate (`max_new_tokens` minus what is out) —
    /// what a speculative scheduler clamps `k` against.
    pub fn remaining_tokens(&self) -> usize {
        self.max_new_tokens - self.tokens.len()
    }

    /// The paged KV cache, if this session uses one — the handle the
    /// memory-pressure scheduler drives for reservation
    /// ([`PagedKvCache::blocks_needed`]) and preemption.
    pub fn paged_kv(&self) -> Option<&PagedKvCache> {
        match &self.cache {
            SessionKv::Paged(p) => Some(p),
            SessionKv::Contiguous(_) => None,
        }
    }

    /// Mutable access to the paged KV cache, if any (swap-out / resume).
    pub fn paged_kv_mut(&mut self) -> Option<&mut PagedKvCache> {
        match &mut self.cache {
            SessionKv::Paged(p) => Some(p),
            SessionKv::Contiguous(_) => None,
        }
    }

    /// Rebuilds a paged KV cache that was dropped by a
    /// [`crate::kv::PreemptPolicy::Recompute`] preemption: re-runs the
    /// causal prefill over everything fed so far (prompt plus all but
    /// the last sampled token) on a *clone* of the session's engine, so
    /// the session's own noise stream is untouched. Returns the recorded
    /// recompute trace (real work — the scheduler costs it).
    ///
    /// Exact for deterministic backends; a noisy engine re-rolls the
    /// cached values (which is why the swap-out policy is the default).
    ///
    /// A session preempted *mid-prefill* (chunked prefill) recomputes
    /// only the chunks fed so far, via [`DecoderLm::prefill_chunk`] (no
    /// LM head — the first token has not been sampled yet); chunking
    /// then continues from where it stopped.
    ///
    /// # Panics
    ///
    /// Panics if the session is not paged, has fed nothing yet, or its
    /// cache is not empty (recompute resumes a dropped cache).
    pub fn resume_by_recompute(&mut self, model: &DecoderLm) -> Trace {
        let fed: Vec<usize> = if self.prefill_cost.is_some() {
            let mut fed = self.prompt.clone();
            fed.extend_from_slice(&self.tokens[..self.tokens.len() - 1]);
            fed
        } else {
            assert!(self.prefill_fed > 0, "recompute before any prefill chunk");
            self.prompt[..self.prefill_fed].to_vec()
        };
        let done = self.prefill_cost.is_some();
        let quant = self.quant;
        let mut engine = self.engine.clone();
        let mut rng = GaussianSampler::new(split_seed(self.ticket, !0));
        let cache = match &mut self.cache {
            SessionKv::Paged(p) => p,
            SessionKv::Contiguous(_) => panic!("recompute on a contiguous session"),
        };
        assert!(cache.is_empty(), "recompute expects a dropped cache");
        let recorder = TraceRecorder::new();
        let mut ctx =
            ForwardCtx::inference(&mut engine, quant, &mut rng).with_recorder(recorder.clone());
        if done {
            model.prefill(&fed, cache, &mut ctx);
        } else {
            model.prefill_chunk(&fed, cache, &mut ctx);
        }
        recorder.take().coalesce()
    }

    /// Whether all `max_new_tokens` have been generated.
    pub fn is_done(&self) -> bool {
        self.tokens.len() >= self.max_new_tokens
    }

    /// The replayed cost of the most recent decode step, if any ran.
    pub fn last_step_cost(&self) -> Option<&RunReport> {
        self.step_costs.last()
    }

    /// Runs the causal prompt pass: fills the KV cache, samples the
    /// first token, and costs the recorded trace on `sim`. Returns the
    /// coalesced prefill trace (for schedulers that aggregate tick
    /// traffic).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn prefill(&mut self, model: &DecoderLm, sim: &Simulator) -> Trace {
        assert!(self.prefill_cost.is_none(), "prefill already ran");
        assert_eq!(self.prefill_fed, 0, "prefill after partial chunks");
        let prompt = std::mem::take(&mut self.prompt);
        let (logits, trace) = self.recorded_pass(model, |model, ctx, cache| {
            model.prefill(&prompt, cache, ctx)
        });
        self.prompt = prompt;
        let cost = sim.run_trace(&trace);
        self.prefill_cost = Some(cost);
        self.tokens.push(greedy(&logits));
        trace
    }

    /// Whether the prefill (whole or chunked) has completed and the
    /// first token has been sampled.
    pub fn prefill_done(&self) -> bool {
        self.prefill_cost.is_some()
    }

    /// Prompt tokens not yet prefilled (the whole prompt before any
    /// prefill ran; zero once [`DecodeSession::prefill_done`]).
    pub fn prefill_remaining(&self) -> usize {
        if self.prefill_done() {
            0
        } else {
            self.prompt.len() - self.prefill_fed
        }
    }

    /// Feeds the next chunk of up to `chunk_tokens` prompt tokens —
    /// the unit of *chunked prefill*, letting a scheduler interleave a
    /// long prompt with decode steps of running sessions instead of
    /// stalling them for the whole prompt pass. On the final chunk the
    /// first token is sampled and the session's prefill cost becomes
    /// the merged cost of every chunk; until then
    /// [`DecodeSession::prefill_done`] stays false. Returns the chunk's
    /// coalesced trace.
    ///
    /// For deterministic backends without per-tensor fake quantization
    /// the sampled tokens are bit-identical to the unchunked
    /// [`DecodeSession::prefill`] path; the *cost* legitimately differs
    /// (smaller GEMMs plus prior-context KV re-reads).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_tokens` is zero or the prefill already finished.
    pub fn prefill_partial(
        &mut self,
        model: &DecoderLm,
        sim: &Simulator,
        chunk_tokens: usize,
    ) -> Trace {
        assert!(chunk_tokens > 0, "chunk must hold at least one token");
        assert!(self.prefill_cost.is_none(), "prefill already ran");
        let prompt = std::mem::take(&mut self.prompt);
        let end = (self.prefill_fed + chunk_tokens).min(prompt.len());
        let chunk = &prompt[self.prefill_fed..end];
        let is_final = end == prompt.len();
        let (out, trace) = self.recorded_pass(model, |model, ctx, cache| {
            let h = model.prefill_chunk(chunk, cache, ctx);
            if is_final {
                model.logits_at_last(&h, ctx)
            } else {
                h
            }
        });
        self.prompt = prompt;
        self.prefill_fed = end;
        let cost = sim.run_trace(&trace);
        match &mut self.prefill_accum {
            Some(acc) => acc.merge(&cost),
            None => self.prefill_accum = Some(cost),
        }
        if is_final {
            self.prefill_cost = self.prefill_accum.take();
            self.tokens.push(greedy(&out));
        }
        trace
    }

    /// Runs one decode step (feeding the last sampled token), samples
    /// the next token, and appends the step's replayed cost. Returns the
    /// coalesced step trace.
    ///
    /// # Panics
    ///
    /// Panics if called before [`DecodeSession::prefill`] or after the
    /// session [`DecodeSession::is_done`].
    pub fn step(&mut self, model: &DecoderLm, sim: &Simulator) -> Trace {
        assert!(self.prefill_cost.is_some(), "step before prefill");
        assert!(!self.is_done(), "session already finished");
        let last = *self.tokens.last().expect("prefill sampled a token");
        let (logits, trace) = self.recorded_pass(model, |model, ctx, cache| {
            model.decode_step(last, cache, ctx)
        });
        self.step_costs.push(sim.run_trace(&trace));
        self.tokens.push(greedy(&logits));
        trace
    }

    /// One *speculative* decode step: the draft proposes up to `k`
    /// tokens, the target verifies them all (plus the bonus position)
    /// in one batched [`DecoderLm::verify_step`] pass, rejected
    /// positions roll back, and `accepted + 1` tokens are emitted.
    ///
    /// The emitted stream is bit-identical to plain
    /// [`DecodeSession::step`] decoding for any `k`, on any backend —
    /// the pinned lossless-greedy contract. Acceptance is judged
    /// against per-position target steps replayed on the session's own
    /// engine (the identical call sequence — hence identical noise
    /// stream — as non-speculative decoding), while the batched verify
    /// pass runs on a *clone* of the engine and supplies the hardware
    /// trace speculative hardware actually executes. On deterministic
    /// backends the two agree exactly (`tests/speculative.rs`); on
    /// noisy backends the batched pass is the costed execution and the
    /// per-position replay defines the tokens.
    ///
    /// `k` clamps to `min(k, remaining - 1)` near the end of the
    /// request so the session never over-generates; at zero this falls
    /// back to one plain step (costed as such).
    ///
    /// Call with the same `draft` every step; the draft's KV cache,
    /// engine, and noise streams persist inside the session, seeded
    /// from `(seed, ticket)` only, so speculation is deterministic
    /// under any scheduling.
    ///
    /// # Panics
    ///
    /// Panics if called before the prefill finished or after the
    /// session [`DecodeSession::is_done`].
    pub fn spec_step(
        &mut self,
        model: &DecoderLm,
        draft: &DraftLm,
        sim: &Simulator,
        k: usize,
    ) -> SpecStepReport {
        assert!(self.prefill_cost.is_some(), "spec_step before prefill");
        assert!(!self.is_done(), "session already finished");
        self.spec_stats.spec_steps += 1;
        let remaining = self.max_new_tokens - self.tokens.len();
        let k_eff = k.min(remaining - 1);
        if k_eff == 0 {
            let verify_trace = self.step(model, sim);
            let verify_cost = *self.step_costs.last().expect("step recorded its cost");
            self.spec_stats.emitted += 1;
            self.spec_stats.verify_cycles += verify_cost.cycles;
            return SpecStepReport {
                outcome: SpecOutcome {
                    accepted: 0,
                    bonus_token: *self.tokens.last().expect("step sampled a token"),
                    rollback: 0,
                },
                draft_trace: Trace::new(),
                verify_trace,
                draft_cost: RunReport::default(),
                verify_cost,
            };
        }

        // --- Draft: propose k_eff tokens on the draft's own streams.
        if self.spec.is_none() {
            let cfg = draft.config();
            self.spec = Some(SpecState {
                engine: BackendEngine::new(
                    self.engine.backend().clone(),
                    split_seed(self.seed ^ DRAFT_SEED_SALT, self.ticket),
                ),
                rng: GaussianSampler::new(split_seed(!(self.seed ^ DRAFT_SEED_SALT), self.ticket)),
                cache: KvCache::new(cfg.layers, cfg.dim),
            });
        }
        // The draft cache must hold everything committed but the last
        // token (which the first draft step feeds). After the first
        // catch-up this is maintained incrementally by the truncate at
        // the end of every spec step, so the chunk is usually empty.
        let synced = self.prompt.len() + self.tokens.len() - 1;
        let last = *self.tokens.last().expect("prefill sampled a token");
        let draft_recorder = TraceRecorder::new();
        let drafts = {
            let spec = self.spec.as_mut().expect("just initialized");
            let mut ctx = ForwardCtx::inference(&mut spec.engine, self.quant, &mut spec.rng)
                .with_recorder(draft_recorder.clone());
            if spec.cache.len() < synced {
                let seq: Vec<usize> = self
                    .prompt
                    .iter()
                    .chain(&self.tokens)
                    .copied()
                    .take(synced)
                    .collect();
                draft
                    .model()
                    .prefill_chunk(&seq[spec.cache.len()..], &mut spec.cache, &mut ctx);
            }
            let mut cur = last;
            let mut drafts = Vec::with_capacity(k_eff);
            for _ in 0..k_eff {
                let logits = draft.model().decode_step(cur, &mut spec.cache, &mut ctx);
                cur = greedy(&logits);
                drafts.push(cur);
            }
            drafts
        };
        let draft_trace = draft_recorder.take().coalesce();

        // --- Verify: one batched pass on a clone of the session's
        // engine, so the session's own noise stream is untouched.
        let mut verify_tokens = Vec::with_capacity(k_eff + 1);
        verify_tokens.push(last);
        verify_tokens.extend_from_slice(&drafts);
        let verify_recorder = TraceRecorder::new();
        let base = self.cache.as_model().len();
        {
            let mut engine = self.engine.clone();
            let mut rng = GaussianSampler::new(split_seed(self.ticket, !0));
            let mut ctx = ForwardCtx::inference(&mut engine, self.quant, &mut rng)
                .with_recorder(verify_recorder.clone());
            model.verify_step(&verify_tokens, self.cache.as_model(), &mut ctx);
        }
        // Roll back ALL verify rows (this is the per-step rollback that
        // frees paged tail blocks); the authoritative replay below
        // re-appends the accepted ones on the session's own noise
        // stream, keeping the cache bit-identical to plain decoding.
        self.cache.truncate(base);
        let verify_trace = verify_recorder.take().coalesce();

        // --- Commit: per-position target steps on the session's own
        // engine, stopping at the first token that disagrees with the
        // draft (that token is the correction) or after the bonus
        // position when every proposal agreed.
        let mut accepted = 0;
        let mut emitted = 0;
        let bonus_token = loop {
            let fed = *self.tokens.last().expect("stream is non-empty");
            let (logits, trace) = self.recorded_pass(model, |model, ctx, cache| {
                model.decode_step(fed, cache, ctx)
            });
            // Per-token cost attribution stays the batch-1 replay of the
            // authoritative step — bit-identical to plain decoding, so a
            // reply's `steps` never depends on `k`. The speculative
            // execution's own cost is itemized in the returned report.
            self.step_costs.push(sim.run_trace(&trace));
            let token = greedy(&logits);
            self.tokens.push(token);
            emitted += 1;
            if emitted <= k_eff && token == drafts[emitted - 1] {
                accepted += 1;
                continue;
            }
            break token;
        };

        // Keep the agreeing prefix of the draft's speculated rows, drop
        // the rest (contiguous-cache rollback on the draft side). The
        // kept rows are exactly the committed tokens, so the draft is
        // already synced for the next step.
        let spec = self.spec.as_mut().expect("spec state exists");
        spec.cache.truncate(synced + emitted);

        let draft_cost = sim.run_trace(&draft_trace);
        let verify_cost = sim.run_trace(&verify_trace);
        self.spec_stats.proposed += k_eff as u64;
        self.spec_stats.accepted += accepted as u64;
        self.spec_stats.emitted += emitted as u64;
        self.spec_stats.rolled_back += (k_eff - accepted) as u64;
        self.spec_stats.draft_cycles += draft_cost.cycles;
        self.spec_stats.verify_cycles += verify_cost.cycles;
        SpecStepReport {
            outcome: SpecOutcome {
                accepted,
                bonus_token,
                rollback: k_eff - accepted,
            },
            draft_trace,
            verify_trace,
            draft_cost,
            verify_cost,
        }
    }

    /// Cumulative speculation counters (all zeros for plain sessions).
    pub fn spec_stats(&self) -> SpecSessionStats {
        self.spec_stats
    }

    /// Runs one recorded forward pass and returns its logits and
    /// coalesced trace.
    fn recorded_pass(
        &mut self,
        model: &DecoderLm,
        pass: impl FnOnce(&DecoderLm, &mut ForwardCtx<'_>, &mut dyn ModelKv) -> Tensor,
    ) -> (Tensor, Trace) {
        let recorder = TraceRecorder::new();
        let mut ctx = ForwardCtx::inference(&mut self.engine, self.quant, &mut self.rng)
            .with_recorder(recorder.clone());
        let logits = pass(model, &mut ctx, self.cache.as_model());
        (logits, recorder.take().coalesce())
    }

    /// Consumes the session into its reply.
    ///
    /// # Panics
    ///
    /// Panics if the session has not finished.
    pub fn into_reply(self) -> DecodeReply {
        assert!(self.is_done(), "session not finished");
        DecodeReply {
            kv_cache_bytes: self.cache.bytes(self.kv_bits),
            prompt: self.prompt,
            tokens: self.tokens,
            prefill: self.prefill_cost.expect("prefill ran"),
            steps: self.step_costs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_arch::ArchConfig;
    use lt_core::{NativeBackend, Op};
    use lt_dptc::DptcBackend;

    fn model() -> DecoderLm {
        let mut rng = GaussianSampler::new(9);
        DecoderLm::new(DecoderConfig::tiny(), &mut rng)
    }

    fn run_session(seed: u64, prompt: Vec<usize>, n: usize) -> DecodeReply {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut s = DecodeSession::new(
            &m,
            3,
            prompt,
            n,
            DptcBackend::paper(8, 5),
            SessionConfig {
                seed,
                ..SessionConfig::default()
            },
        );
        s.prefill(&m, &sim);
        while !s.is_done() {
            s.step(&m, &sim);
        }
        s.into_reply()
    }

    #[test]
    fn decode_generates_the_requested_tokens_with_per_token_costs() {
        let reply = run_session(1, vec![1, 2, 3, 4], 5);
        assert_eq!(reply.tokens.len(), 5);
        assert!(reply.tokens.iter().all(|&t| t < 16), "tokens in vocab");
        assert_eq!(reply.steps.len(), 4, "one step per token after prefill");
        assert!(reply.prefill.cycles > 0);
        for step in &reply.steps {
            assert!(step.cycles > 0, "every token carries replayed cycles");
            assert!(step.energy.total().value() > 0.0);
            assert!(step.energy.digital.value() > 0.0, "KV/softmax traffic");
        }
        // Context grows every step, so later steps can never get cheaper
        // in cycles than the first (monotone attention context).
        assert!(reply.steps.last().unwrap().cycles >= reply.steps[0].cycles);
        // 4 prompt + 5 generated - 1 unfed final token = 8 cached.
        assert_eq!(reply.kv_cache_bytes, 2 * 2 * 8 * 32 * 8 / 8);
        assert_eq!(
            reply.total().cycles,
            reply.prefill.cycles + reply.decode_cycles()
        );
    }

    #[test]
    fn replies_itemize_why_the_tokens_took_their_cycles() {
        let reply = run_session(2, vec![1, 2, 3, 4], 4);
        // Every window is fully accounted: compute + bandwidth + fill.
        for r in std::iter::once(&reply.prefill).chain(&reply.steps) {
            let total = r.stalls.total().value();
            assert!(
                (total - r.latency.value()).abs() <= 1e-9 * total.max(1e-12),
                "stall slices must partition the window"
            );
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
        let decode = reply.decode_total();
        assert_eq!(decode.cycles, reply.decode_cycles());
        assert_eq!(decode.stalls, reply.decode_stalls());
        assert_eq!(decode.utilization, reply.decode_utilization());
        // The tiny validation decoder keeps its weights tiny, so the
        // per-token regime stays classifiable either way — but the
        // numbers must be present and self-consistent.
        assert!(reply.decode_stalls().total().value() > 0.0);
    }

    #[test]
    fn same_seed_is_bit_identical_and_different_seeds_diverge_in_cost_free_ways() {
        let a = run_session(7, vec![1, 2, 3], 4);
        let b = run_session(7, vec![1, 2, 3], 4);
        assert_eq!(a, b, "same seed: identical tokens and costs");
        let c = run_session(8, vec![1, 2, 3], 4);
        // Different noise realization may change tokens, but the trace
        // geometry (hence the cost) depends only on shapes.
        assert_eq!(a.prefill, c.prefill, "cost is a function of shape");
        assert_eq!(a.steps, c.steps);
    }

    #[test]
    fn recorded_step_trace_has_matrix_vector_attention_shapes() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut s = DecodeSession::new(
            &m,
            0,
            vec![1, 2, 3, 4, 5],
            2,
            NativeBackend,
            SessionConfig::default(),
        );
        s.prefill(&m, &sim);
        let trace = s.step(&m, &sim);
        // The step attends over 6 cached tokens (5 prompt + 1 new).
        let cfg = m.config();
        let dh = cfg.dim / cfg.heads;
        let expect_qk = Op::gemm_n(OpKind::AttnQk, 1, dh, 6, cfg.heads * cfg.layers);
        let expect_av = Op::gemm_n(OpKind::AttnAv, 1, 6, dh, cfg.heads * cfg.layers);
        assert!(trace.ops().contains(&expect_qk), "{:?}", trace.ops());
        assert!(trace.ops().contains(&expect_av), "{:?}", trace.ops());
        assert!(trace.ops().contains(&Op::gemm_n(
            OpKind::QkvProj,
            1,
            cfg.dim,
            cfg.dim,
            3 * cfg.layers
        )));
        assert!(trace
            .ops()
            .contains(&Op::gemm(OpKind::LmHead, 1, cfg.dim, cfg.vocab)));
        let kv: u64 = trace
            .ops()
            .iter()
            .filter_map(|op| match *op {
                Op::NonGemm {
                    kind: NonGemmKind::KvAppend,
                    elems,
                } => Some(elems),
                _ => None,
            })
            .sum();
        assert_eq!(kv, 2 * (cfg.dim as u64) * cfg.layers as u64);
    }

    #[test]
    fn recorded_prefill_trace_has_full_prompt_shapes() {
        // Pins prefill's recorded ops so the causal prompt pass cannot
        // silently drift from the encoder-style attention recording
        // (prefill deliberately re-implements the forward loop with
        // masking + cache filling; this test names any divergence).
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut s = DecodeSession::new(
            &m,
            0,
            vec![1, 2, 3, 4, 5],
            2,
            NativeBackend,
            SessionConfig::default(),
        );
        let trace = s.prefill(&m, &sim);
        let cfg = m.config();
        let (t, dh) = (5, cfg.dim / cfg.heads);
        let per_heads = cfg.heads * cfg.layers;
        for expect in [
            Op::gemm_n(OpKind::QkvProj, t, cfg.dim, cfg.dim, 3 * cfg.layers),
            Op::gemm_n(OpKind::AttnQk, t, dh, t, per_heads),
            Op::gemm_n(OpKind::AttnAv, t, t, dh, per_heads),
            Op::gemm_n(OpKind::OutProj, t, cfg.dim, cfg.dim, cfg.layers),
            Op::gemm_n(OpKind::Ffn1, t, cfg.dim, cfg.ffn_dim, cfg.layers),
            Op::gemm_n(OpKind::Ffn2, t, cfg.ffn_dim, cfg.dim, cfg.layers),
            Op::gemm(OpKind::LmHead, 1, cfg.dim, cfg.vocab),
            Op::non_gemm(NonGemmKind::Softmax, (t * t * per_heads) as u64),
            Op::non_gemm(NonGemmKind::KvAppend, 2 * (t * cfg.dim * cfg.layers) as u64),
        ] {
            assert!(
                trace.ops().contains(&expect),
                "missing {expect:?} in {:?}",
                trace.ops()
            );
        }
    }

    #[test]
    fn prefill_matches_step_by_step_decoding() {
        // Decoding with a cache must equal recomputing from scratch: the
        // logits after prefill(p) + k steps equal prefill(p ++ generated[..k])
        // on a fresh cache (causality makes the suffix irrelevant).
        let m = model();
        let mut rng = GaussianSampler::new(0);
        let quant = QuantConfig::fp32();
        let mut eng = crate::engine::ExactEngine;
        let prompt = vec![3usize, 1, 4, 1, 5];

        let mut cache = m.empty_cache();
        let mut ctx = ForwardCtx::inference(&mut eng, quant, &mut rng);
        let l0 = m.prefill(&prompt, &mut cache, &mut ctx);
        let t0 = greedy(&l0);
        let l1 = m.decode_step(t0, &mut cache, &mut ctx);

        let mut full = prompt.clone();
        full.push(t0);
        let mut fresh = m.empty_cache();
        let mut ctx2 = ForwardCtx::inference(&mut eng, quant, &mut rng);
        let l1_scratch = m.prefill(&full, &mut fresh, &mut ctx2);
        assert!(
            l1.max_abs_diff(&l1_scratch) < 1e-4,
            "incremental vs from-scratch logits diverged: {}",
            l1.max_abs_diff(&l1_scratch)
        );
    }

    #[test]
    fn chunked_prefill_is_bit_identical_to_whole_prompt_prefill() {
        // The chunked-prefill contract: for a deterministic backend at
        // fp32, feeding the prompt in any chunking yields the same
        // first token, the same subsequent stream, and the same KV
        // footprint as the one-shot prefill — bit for bit.
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let prompt: Vec<usize> = (0..17).map(|i| (i * 5 + 2) % 16).collect();
        let run = |chunk: Option<usize>| {
            let mut s = DecodeSession::new(
                &m,
                11,
                prompt.clone(),
                6,
                NativeBackend,
                SessionConfig::default(),
            );
            match chunk {
                None => {
                    s.prefill(&m, &sim);
                }
                Some(c) => {
                    assert_eq!(s.prefill_remaining(), prompt.len());
                    while !s.prefill_done() {
                        s.prefill_partial(&m, &sim, c);
                    }
                    assert_eq!(s.prefill_remaining(), 0);
                }
            }
            while !s.is_done() {
                s.step(&m, &sim);
            }
            s.into_reply()
        };
        let whole = run(None);
        for chunk in [1, 3, 4, 16, 17, 64] {
            let chunked = run(Some(chunk));
            assert_eq!(chunked.tokens, whole.tokens, "chunk {chunk}: tokens");
            assert_eq!(chunked.steps, whole.steps, "chunk {chunk}: step costs");
            assert_eq!(
                chunked.kv_cache_bytes, whole.kv_cache_bytes,
                "chunk {chunk}: KV footprint"
            );
        }
        // A chunk >= the prompt records the same trace as the one-shot
        // path bar the KvRead of prior context (there is none), so even
        // the prefill cost agrees.
        assert_eq!(run(Some(64)).prefill, whole.prefill);
    }

    #[test]
    fn chunked_prefill_accumulates_cost_across_chunks() {
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut s = DecodeSession::new(
            &m,
            0,
            vec![1, 2, 3, 4, 5, 6, 7],
            2,
            NativeBackend,
            SessionConfig::default(),
        );
        let mut chunk_costs = RunReport::default();
        while !s.prefill_done() {
            let trace = s.prefill_partial(&m, &sim, 3);
            chunk_costs.merge(&sim.run_trace(&trace));
            assert!(s.tokens().len() <= 1, "no token before the final chunk");
        }
        let reply = {
            while !s.is_done() {
                s.step(&m, &sim);
            }
            s.into_reply()
        };
        assert_eq!(reply.prefill, chunk_costs, "prefill cost = sum of chunks");
        assert!(reply.prefill.cycles > 0);
    }

    #[test]
    fn analytic_prefill_trace_costs_exactly_like_the_recorded_pass() {
        // The admission controller's deadline check rests on this:
        // DecoderConfig::prefill_trace(t) replayed through the simulator
        // equals the real unchunked prefill cost of any t-token prompt.
        let m = model();
        let sim = Simulator::new(ArchConfig::lt_base(8));
        for t in [1usize, 2, 5, 13, 40] {
            let mut s = DecodeSession::new(
                &m,
                0,
                (0..t).map(|i| i % 16).collect(),
                1,
                NativeBackend,
                SessionConfig::default(),
            );
            let recorded = s.prefill(&m, &sim);
            let analytic = m.config().prefill_trace(t);
            assert_eq!(
                analytic.ops(),
                recorded.ops(),
                "analytic trace must match the recorded coalesced ops at t={t}"
            );
            assert_eq!(sim.run_trace(&analytic), sim.run_trace(&recorded));
        }
    }

    fn spec_session(
        seed: u64,
        prompt: Vec<usize>,
        n: usize,
        k: usize,
    ) -> (DecodeReply, SpecSessionStats) {
        let m = model();
        let draft = DraftLm::from_target(&m);
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut s = DecodeSession::new(
            &m,
            3,
            prompt,
            n,
            DptcBackend::paper(8, 5),
            SessionConfig {
                seed,
                ..SessionConfig::default()
            },
        );
        s.prefill(&m, &sim);
        while !s.is_done() {
            s.spec_step(&m, &draft, &sim, k);
        }
        let stats = s.spec_stats();
        (s.into_reply(), stats)
    }

    #[test]
    fn speculative_stream_is_bit_identical_to_plain_decoding_on_a_noisy_backend() {
        // The pinned lossless contract: greedy speculation emits the
        // same tokens as plain greedy decoding for every k, even on the
        // stochastic DPTC backend, and leaves the same KV footprint.
        for seed in [1, 7] {
            let base = run_session(seed, vec![1, 2, 3, 4], 9);
            for k in [1, 2, 4, 8] {
                let (reply, stats) = spec_session(seed, vec![1, 2, 3, 4], 9, k);
                assert_eq!(reply.tokens, base.tokens, "seed {seed} k {k}: tokens");
                assert_eq!(
                    reply.kv_cache_bytes, base.kv_cache_bytes,
                    "seed {seed} k {k}: KV footprint"
                );
                // One token per emission, every step accounted.
                assert_eq!(stats.emitted as usize, reply.tokens.len() - 1);
                assert!(stats.accepted <= stats.proposed);
                assert_eq!(stats.rolled_back, stats.proposed - stats.accepted);
                assert!(stats.verify_cycles > 0);
            }
        }
    }

    #[test]
    fn the_self_speculative_draft_earns_its_keep_on_a_tapered_model() {
        // On a depth-tapered model (the trained-LM refinement stand-in,
        // see `taper_deep_blocks`) the weight-shared half-depth draft
        // must agree with the target often enough for speculation to
        // pay — and its cycles must be itemized, not hidden.
        let mut rng = GaussianSampler::new(9);
        let mut m = DecoderLm::new(DecoderConfig::tiny(), &mut rng);
        m.taper_deep_blocks(0.25);
        let draft = DraftLm::from_target(&m);
        let sim = Simulator::new(ArchConfig::lt_base(8));
        let mut s = DecodeSession::new(
            &m,
            3,
            vec![1, 2, 3, 4],
            30,
            NativeBackend,
            SessionConfig::default(),
        );
        s.prefill(&m, &sim);
        while !s.is_done() {
            s.spec_step(&m, &draft, &sim, 4);
        }
        let stats = s.spec_stats();
        assert!(stats.proposed > 0);
        assert!(
            stats.acceptance_rate() > 0.25,
            "draft agreement too low to speculate: {}",
            stats.acceptance_rate()
        );
        assert!(stats.draft_cycles > 0, "draft overhead is accounted");
        assert!(stats.verify_cycles > 0);
    }

    #[test]
    fn verify_step_rows_match_successive_decode_steps() {
        // One batched verify pass over [last, d1, d2, d3] produces the
        // same per-position logits as four matrix-vector decode steps —
        // row independence under the causal mask.
        let m = model();
        let quant = QuantConfig::fp32();
        let mut rng = GaussianSampler::new(0);
        let mut eng = crate::engine::ExactEngine;
        let prompt = vec![3usize, 1, 4, 1, 5];
        let toks = vec![2usize, 7, 1, 8];

        let mut cache = m.empty_cache();
        let mut ctx = ForwardCtx::inference(&mut eng, quant, &mut rng);
        m.prefill(&prompt, &mut cache, &mut ctx);
        let batched = m.verify_step(&toks, &mut cache, &mut ctx);
        assert_eq!((batched.rows(), batched.cols()), (4, 16));

        let mut cache2 = m.empty_cache();
        let mut ctx2 = ForwardCtx::inference(&mut eng, quant, &mut rng);
        m.prefill(&prompt, &mut cache2, &mut ctx2);
        for (i, &t) in toks.iter().enumerate() {
            let row = m.decode_step(t, &mut cache2, &mut ctx2);
            let diff: f32 = (0..16)
                .map(|j| (batched.get(i, j) - row.get(0, j)).abs())
                .fold(0.0, f32::max);
            assert!(diff < 1e-5, "row {i} diverged by {diff}");
        }
        // Both paths cached the same context.
        assert_eq!(cache.len(), cache2.len());
    }

    #[test]
    fn spec_rollback_restores_the_contiguous_cache_bit_exactly() {
        let m = model();
        let mut rng = GaussianSampler::new(4);
        let quant = QuantConfig::fp32();
        let mut eng = crate::engine::ExactEngine;
        let mut cache = m.empty_cache();
        let mut ctx = ForwardCtx::inference(&mut eng, quant, &mut rng);
        m.prefill(&[1, 2, 3], &mut cache, &mut ctx);
        let before = cache.clone();
        m.verify_step(&[4, 5, 6], &mut cache, &mut ctx);
        assert_eq!(cache.len(), 6);
        cache.truncate(3);
        assert_eq!(cache, before, "rollback must be bit-exact");
    }

    #[test]
    fn draft_geometry_halves_the_stack_and_shares_the_token_space() {
        let cfg = DecoderConfig::tiny();
        let d = cfg.draft();
        assert_eq!(d.layers, 1);
        assert_eq!((d.dim, d.heads, d.vocab, d.max_seq), (32, 4, 16, 48));
        // Depth-1 configs cannot shrink to zero layers.
        assert_eq!(d.draft().layers, 1);
        let m = model();
        let draft = DraftLm::from_target(&m);
        assert_eq!(draft.config().layers, 1);
        assert_eq!(draft.model().config().vocab, m.config().vocab);
    }

    #[test]
    fn greedy_is_argmax_with_lowest_index_ties() {
        let l = Tensor::from_vec(1, 4, vec![0.1, 0.9, 0.9, 0.2]);
        assert_eq!(greedy(&l), 1);
        let l = Tensor::from_vec(1, 3, vec![-1.0, -2.0, -0.5]);
        assert_eq!(greedy(&l), 2);
    }

    #[test]
    #[should_panic(expected = "overflows max_seq")]
    fn context_overflow_rejected_at_session_creation() {
        let m = model();
        let _ = DecodeSession::new(
            &m,
            0,
            vec![0; 40],
            20,
            NativeBackend,
            SessionConfig::default(),
        );
    }
}
