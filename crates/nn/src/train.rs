//! Seeded training and evaluation loops.
//!
//! Training is always *digital* (exact matmuls) with QAT fake-quantization
//! and noise-aware output perturbation — the paper's training recipe.
//! Evaluation can run on any [`MatmulEngine`], which is how the photonic
//! accuracy experiments of Figs. 14-15 are produced.

use crate::engine::{ExactEngine, MatmulEngine};
use crate::layers::{cross_entropy, ForwardCtx};
use crate::model::Classifier;
use crate::quant::QuantConfig;
use crate::tensor::Tensor;
use lt_photonics::noise::GaussianSampler;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Operand fake-quantization during training (QAT).
    pub quant: QuantConfig,
    /// Noise-aware training: relative std of multiplicative output noise.
    pub train_noise_std: f32,
    /// RNG seed (shuffling + noise).
    pub seed: u64,
}

impl TrainConfig {
    /// A fast default: 8 epochs, batch 16, lr 3e-3, fp32, no noise.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 3e-3,
            quant: QuantConfig::fp32(),
            train_noise_std: 0.0,
            seed: 0,
        }
    }

    /// The paper-style recipe: QAT at `bits` with noise-aware training.
    pub fn noise_aware(bits: u32) -> Self {
        TrainConfig {
            quant: QuantConfig::low_bit(bits),
            train_noise_std: 0.05,
            ..Self::quick()
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss.
    pub loss: f32,
    /// Training accuracy.
    pub accuracy: f64,
}

/// Trains a classifier on a labelled dataset. Returns per-epoch stats.
///
/// `I` is the per-sample input type (`Tensor` for vision, `[usize]` for
/// text).
pub fn train<I, M, S>(model: &mut M, data: &[(S, usize)], cfg: &TrainConfig) -> Vec<EpochStats>
where
    I: ?Sized,
    M: Classifier<I>,
    S: std::borrow::Borrow<I>,
{
    let mut rng = GaussianSampler::new(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut step: u64 = 0;
    let mut stats = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i + 1));
        }
        let mut epoch_loss = 0.0;
        let mut correct = 0usize;
        let mut in_batch = 0usize;
        for &idx in &order {
            let (input, label) = &data[idx];
            let mut engine = ExactEngine;
            let mut ctx = ForwardCtx {
                engine: &mut engine,
                quant: cfg.quant,
                training: true,
                train_noise_std: cfg.train_noise_std,
                rng: &mut rng,
                recorder: None,
            };
            let logits = model.forward(input.borrow(), &mut ctx);
            if argmax(&logits) == *label {
                correct += 1;
            }
            let (loss, dlogits) = cross_entropy(&logits, &[*label]);
            epoch_loss += loss;
            model.backward(&dlogits);
            in_batch += 1;
            if in_batch == cfg.batch_size {
                step += 1;
                apply_adam(model, cfg.lr, step);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            step += 1;
            apply_adam(model, cfg.lr, step);
        }
        stats.push(EpochStats {
            loss: epoch_loss / data.len() as f32,
            accuracy: correct as f64 / data.len() as f64,
        });
    }
    stats
}

fn apply_adam<I: ?Sized, M: Classifier<I>>(model: &mut M, lr: f32, step: u64) {
    model.visit_params(&mut |p| {
        p.adam_step(lr, 0.9, 0.999, 1e-8, step);
        p.zero_grad();
    });
}

/// Evaluates classification accuracy on a dataset with an arbitrary
/// matmul engine (exact, quantized, or photonic).
pub fn evaluate<I, M, S>(
    model: &mut M,
    data: &[(S, usize)],
    engine: &mut dyn MatmulEngine,
    quant: QuantConfig,
) -> f64
where
    I: ?Sized,
    M: Classifier<I>,
    S: std::borrow::Borrow<I>,
{
    let mut rng = GaussianSampler::new(0);
    let mut correct = 0usize;
    for (input, label) in data {
        let mut ctx = ForwardCtx::inference(engine, quant, &mut rng);
        let logits = model.forward(input.borrow(), &mut ctx);
        if argmax(&logits) == *label {
            correct += 1;
        }
    }
    correct as f64 / data.len().max(1) as f64
}

/// Index of the largest logit in a `[1, classes]` tensor.
pub fn argmax(logits: &Tensor) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (j, &v) in logits.row(0).iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use crate::engine::PhotonicEngine;
    use crate::model::{ModelConfig, TextClassifier, VisionTransformer};

    #[test]
    fn vit_learns_the_vision_task() {
        let mut rng = GaussianSampler::new(10);
        let mut vit = VisionTransformer::new(
            ModelConfig::tiny_vision(),
            data::NUM_PATCHES,
            data::PATCH_DIM,
            &mut rng,
        );
        let train_set = data::vision_dataset(256, 1);
        let test_set = data::vision_dataset(128, 2);
        // The ziggurat sampler (PR 7) reshuffled every seeded draw; at the
        // quick recipe's full 8 epochs the run generalizes with margin
        // (test 0.77), where 6 epochs now lands just under the bar.
        let cfg = TrainConfig::quick();
        let stats = train(&mut vit, &train_set, &cfg);
        assert!(
            stats.last().unwrap().accuracy > 0.7,
            "train accuracy {:?}",
            stats.last().unwrap()
        );
        let acc = evaluate(&mut vit, &test_set, &mut ExactEngine, QuantConfig::fp32());
        assert!(acc > 0.65, "test accuracy {acc}");
    }

    #[test]
    fn text_model_learns_copy_detection() {
        let mut rng = GaussianSampler::new(20);
        let mut model = TextClassifier::new(
            ModelConfig::tiny_text(),
            data::VOCAB,
            data::SEQ_LEN,
            &mut rng,
        );
        let train_set = data::text_dataset(1024, 3);
        let test_set = data::text_dataset(128, 4);
        let cfg = TrainConfig {
            epochs: 16,
            lr: 2e-3,
            ..TrainConfig::quick()
        };
        let stats = train(&mut model, &train_set, &cfg);
        assert!(
            stats.last().unwrap().accuracy > 0.75,
            "train accuracy {:?}",
            stats.last().unwrap()
        );
        let acc = evaluate(&mut model, &test_set, &mut ExactEngine, QuantConfig::fp32());
        assert!(acc > 0.7, "test accuracy {acc}");
    }

    #[test]
    fn photonic_inference_stays_close_to_digital() {
        // The Fig. 14/15 claim in miniature: with paper noise, photonic
        // accuracy is within a few points of the quantized digital model.
        let mut rng = GaussianSampler::new(30);
        let mut vit = VisionTransformer::new(
            ModelConfig::tiny_vision(),
            data::NUM_PATCHES,
            data::PATCH_DIM,
            &mut rng,
        );
        let train_set = data::vision_dataset(384, 5);
        let test_set = data::vision_dataset(64, 6);
        let cfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::noise_aware(8)
        };
        let _ = train(&mut vit, &train_set, &cfg);
        let quant = QuantConfig::low_bit(8);
        let digital = evaluate(&mut vit, &test_set, &mut ExactEngine, quant);
        let mut photonic = PhotonicEngine::paper(8, 12, 99);
        let optical = evaluate(&mut vit, &test_set, &mut photonic, quant);
        assert!(digital > 0.6, "digital accuracy {digital}");
        assert!(
            optical >= digital - 0.15,
            "photonic accuracy {optical} vs digital {digital}"
        );
    }

    #[test]
    fn training_is_seed_deterministic() {
        let build = || {
            let mut rng = GaussianSampler::new(40);
            VisionTransformer::new(
                ModelConfig::tiny_vision(),
                data::NUM_PATCHES,
                data::PATCH_DIM,
                &mut rng,
            )
        };
        let train_set = data::vision_dataset(64, 7);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::quick()
        };
        let mut m1 = build();
        let s1 = train(&mut m1, &train_set, &cfg);
        let mut m2 = build();
        let s2 = train(&mut m2, &train_set, &cfg);
        assert_eq!(s1, s2, "same seed must give identical training curves");
    }

    #[test]
    fn argmax_picks_largest() {
        let t = Tensor::from_vec(1, 4, vec![0.1, 0.9, -0.5, 0.89]);
        assert_eq!(argmax(&t), 1);
    }
}
