//! Multi-head self-attention with a hand-written backward pass.
//!
//! This is the workload the whole paper is about: `Q K^T` and `A V` are
//! *dynamic* matrix products whose operands are activations. When executed
//! with the photonic engine, both operands of those products go through
//! DPTC encoding, quantization, and noise — exactly the scenario prior
//! weight-static photonic accelerators cannot serve.

use crate::kv::{kv_write_traffic, KvLayer};
use crate::layers::{softmax_rows, softmax_rows_backward, ForwardCtx, Linear, Param};
use crate::tensor::Tensor;
use lt_core::trace::{NonGemmKind, OpKind};
use lt_photonics::noise::GaussianSampler;

/// Multi-head self-attention over a `[tokens, dim]` sequence.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    dim: usize,
    heads: usize,
    /// Q projection.
    pub wq: Linear,
    /// K projection.
    pub wk: Linear,
    /// V projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Vec<Tensor>, // per head
}

/// One layer's KV cache for autoregressive decode (paper Section VI-B):
/// the K and V projections of every token seen so far, all heads
/// concatenated (`[context, dim]` each), appended one token at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct AttnKvCache {
    k: Tensor,
    v: Tensor,
}

impl AttnKvCache {
    /// An empty cache for a `dim`-wide layer.
    pub fn new(dim: usize) -> Self {
        AttnKvCache {
            k: Tensor::zeros(0, dim),
            v: Tensor::zeros(0, dim),
        }
    }

    /// Context length in tokens.
    pub fn len(&self) -> usize {
        self.k.rows()
    }

    /// Whether no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached K rows, `[context, dim]`.
    pub fn keys(&self) -> &Tensor {
        &self.k
    }

    /// The cached V rows, `[context, dim]`.
    pub fn values(&self) -> &Tensor {
        &self.v
    }

    /// Appends the K/V rows of newly seen tokens (in place — a decode
    /// step pays for its own row, not for recopying the whole context).
    ///
    /// # Panics
    ///
    /// Panics if `k` and `v` shapes disagree with each other or the cache.
    pub fn append(&mut self, k: &Tensor, v: &Tensor) {
        assert_eq!(k.shape(), v.shape(), "K/V shape mismatch");
        self.k.extend_rows(k);
        self.v.extend_rows(v);
    }

    /// Rolls the cache back to its first `len` tokens, discarding the
    /// K/V rows of rejected speculative positions (no-op when already
    /// that short).
    pub fn truncate(&mut self, len: usize) {
        self.k.truncate_rows(len);
        self.v.truncate_rows(len);
    }
}

impl MultiHeadAttention {
    /// Creates an attention module.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, rng: &mut GaussianSampler) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim {dim} not divisible by heads {heads}"
        );
        MultiHeadAttention {
            dim,
            heads,
            wq: Linear::new(dim, dim, rng).with_role(OpKind::QkvProj),
            wk: Linear::new(dim, dim, rng).with_role(OpKind::QkvProj),
            wv: Linear::new(dim, dim, rng).with_role(OpKind::QkvProj),
            wo: Linear::new(dim, dim, rng).with_role(OpKind::OutProj),
            cache: None,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Forward pass over `x: [tokens, dim]`.
    pub fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx<'_>) -> Tensor {
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.forward(x, ctx);
        let k = self.wk.forward(x, ctx);
        let v = self.wv.forward(x, ctx);

        let tokens = x.rows();
        let mut concat = Tensor::zeros(tokens, self.dim);
        let mut probs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = q.col_slice(h * dh, dh);
            let kh = k.col_slice(h * dh, dh);
            let vh = v.col_slice(h * dh, dh);
            // Q K^T — a dynamic-dynamic product (through the engine).
            let scores = ctx
                .matmul_as(OpKind::AttnQk, &qh, &kh.transpose())
                .scale(scale);
            ctx.record_non_gemm(NonGemmKind::Softmax, (scores.rows() * scores.cols()) as u64);
            let a = softmax_rows(&scores);
            // A V — the second dynamic product.
            let oh = ctx.matmul_as(OpKind::AttnAv, &a, &vh);
            concat.set_col_slice(h * dh, &oh);
            probs.push(a);
        }
        self.cache = Some(AttnCache { q, k, v, probs });
        self.wo.forward(&concat, ctx)
    }

    /// Causal (masked) prefill over a whole prompt `x: [tokens, dim]`,
    /// filling `cache` with every token's K/V rows. Inference-only
    /// (`&self`): concurrent decode sessions share one set of weights.
    ///
    /// Records the same GEMM shapes as [`MultiHeadAttention::forward`]
    /// (the mask changes values, not dims) plus the KV-cache append
    /// traffic.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is non-empty (prefill starts a sequence).
    pub fn prefill(&self, x: &Tensor, cache: &mut dyn KvLayer, ctx: &mut ForwardCtx<'_>) -> Tensor {
        assert_eq!(cache.context_len(), 0, "prefill expects an empty KV cache");
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.infer(x, ctx);
        let k = self.wk.infer(x, ctx);
        let v = self.wv.infer(x, ctx);
        // Record what the cache actually wrote: a shared prefix skips
        // its rows' writes, a copy-on-write pays for the block copy.
        let write = cache.append(&k, &v);
        for (kind, elems) in kv_write_traffic(write, self.dim) {
            ctx.record_non_gemm(kind, elems);
        }

        let tokens = x.rows();
        let mut concat = Tensor::zeros(tokens, self.dim);
        for h in 0..self.heads {
            let qh = q.col_slice(h * dh, dh);
            let kh = k.col_slice(h * dh, dh);
            let vh = v.col_slice(h * dh, dh);
            let mut scores = ctx
                .matmul_as(OpKind::AttnQk, &qh, &kh.transpose())
                .scale(scale);
            // Causal mask: token i may not attend to tokens j > i.
            for i in 0..tokens {
                for j in (i + 1)..tokens {
                    scores.set(i, j, f32::NEG_INFINITY);
                }
            }
            ctx.record_non_gemm(NonGemmKind::Softmax, (tokens * tokens) as u64);
            let a = softmax_rows(&scores);
            let oh = ctx.matmul_as(OpKind::AttnAv, &a, &vh);
            concat.set_col_slice(h * dh, &oh);
        }
        self.wo.infer(&concat, ctx)
    }

    /// Causal prefill of one *chunk* of a prompt (`x: [t, dim]`, the
    /// tokens at positions `prior .. prior + t` where `prior` is the
    /// cache's current context length): appends the chunk's K/V rows
    /// and attends each chunk query over the whole cached context under
    /// the causal mask. Chunked prefill interleaves these pieces with
    /// decode ticks so a long prompt cannot monopolize the engine.
    ///
    /// On an empty cache with `t` = the whole prompt this computes
    /// bit-identically to [`MultiHeadAttention::prefill`] for
    /// deterministic backends (same per-row GEMMs, same mask); the
    /// *recorded trace* differs in that prior context streams back as
    /// [`NonGemmKind::KvRead`] (there is none when `prior == 0`) and
    /// attention reads K/V through the cache rather than the fresh
    /// projections — which is why [`MultiHeadAttention::prefill`]
    /// remains the whole-prompt fast path.
    pub fn prefill_chunk(
        &self,
        x: &Tensor,
        cache: &mut dyn KvLayer,
        ctx: &mut ForwardCtx<'_>,
    ) -> Tensor {
        let prior = cache.context_len();
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.infer(x, ctx);
        let k = self.wk.infer(x, ctx);
        let v = self.wv.infer(x, ctx);
        let write = cache.append(&k, &v);
        for (kind, elems) in kv_write_traffic(write, self.dim) {
            ctx.record_non_gemm(kind, elems);
        }
        // Only the *prior* context streams back from HBM; the chunk's
        // own K/V rows were just produced on-chip.
        if prior > 0 {
            ctx.record_non_gemm(NonGemmKind::KvRead, 2 * (prior * self.dim) as u64);
        }

        let tokens = x.rows();
        let context = cache.context_len();
        debug_assert_eq!(context, prior + tokens);
        let keys = cache.context_keys();
        let values = cache.context_values();
        let mut concat = Tensor::zeros(tokens, self.dim);
        for h in 0..self.heads {
            let qh = q.col_slice(h * dh, dh);
            let kh = keys.col_slice(h * dh, dh);
            let vh = values.col_slice(h * dh, dh);
            let mut scores = ctx
                .matmul_as(OpKind::AttnQk, &qh, &kh.transpose())
                .scale(scale);
            // Causal mask in global positions: chunk row i sits at
            // position prior + i and may not attend past itself.
            for i in 0..tokens {
                for j in (prior + i + 1)..context {
                    scores.set(i, j, f32::NEG_INFINITY);
                }
            }
            ctx.record_non_gemm(NonGemmKind::Softmax, (tokens * context) as u64);
            let a = softmax_rows(&scores);
            let oh = ctx.matmul_as(OpKind::AttnAv, &a, &vh);
            concat.set_col_slice(h * dh, &oh);
        }
        self.wo.infer(&concat, ctx)
    }

    /// One autoregressive decode step: appends the new token's K/V to
    /// `cache` and attends its query over the whole cached context —
    /// the per-token matrix-vector regime of paper Section VI-B. The
    /// recorded `Q K^T` is `[1, dh] x [dh, context]` and `A V` is
    /// `[1, context] x [context, dh]` per head, exactly the analytical
    /// `DecodeTrace` shapes at batch 1.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a single `[1, dim]` token row.
    pub fn decode_step(
        &self,
        x: &Tensor,
        cache: &mut dyn KvLayer,
        ctx: &mut ForwardCtx<'_>,
    ) -> Tensor {
        assert_eq!(x.shape(), (1, self.dim), "decode step takes one token");
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.infer(x, ctx);
        let k = self.wk.infer(x, ctx);
        let v = self.wv.infer(x, ctx);
        let write = cache.append(&k, &v);
        for (kind, elems) in kv_write_traffic(write, self.dim) {
            ctx.record_non_gemm(kind, elems);
        }

        let context = cache.context_len();
        // Decode attends over the whole cached context: every cached
        // K and V row streams back through HBM each step.
        ctx.record_non_gemm(NonGemmKind::KvRead, 2 * (context * self.dim) as u64);
        let keys = cache.context_keys();
        let values = cache.context_values();
        let mut concat = Tensor::zeros(1, self.dim);
        for h in 0..self.heads {
            let qh = q.col_slice(h * dh, dh);
            let kh = keys.col_slice(h * dh, dh);
            let vh = values.col_slice(h * dh, dh);
            let scores = ctx
                .matmul_as(OpKind::AttnQk, &qh, &kh.transpose())
                .scale(scale);
            ctx.record_non_gemm(NonGemmKind::Softmax, context as u64);
            let a = softmax_rows(&scores);
            let oh = ctx.matmul_as(OpKind::AttnAv, &a, &vh);
            concat.set_col_slice(h * dh, &oh);
        }
        self.wo.infer(&concat, ctx)
    }

    /// Backward pass; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("MultiHeadAttention::forward not called");
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let dconcat = self.wo.backward(dy);
        let tokens = dconcat.rows();
        let mut dq = Tensor::zeros(tokens, self.dim);
        let mut dk = Tensor::zeros(tokens, self.dim);
        let mut dv = Tensor::zeros(tokens, self.dim);
        for h in 0..self.heads {
            let doh = dconcat.col_slice(h * dh, dh);
            let a = &cache.probs[h];
            let qh = cache.q.col_slice(h * dh, dh);
            let kh = cache.k.col_slice(h * dh, dh);
            let vh = cache.v.col_slice(h * dh, dh);

            let da = doh.matmul(&vh.transpose());
            let dvh = a.transpose().matmul(&doh);
            let dscores = softmax_rows_backward(a, &da).scale(scale);
            let dqh = dscores.matmul(&kh);
            let dkh = dscores.transpose().matmul(&qh);

            dq.set_col_slice(h * dh, &dqh);
            dk.set_col_slice(h * dh, &dkh);
            dv.set_col_slice(h * dh, &dvh);
        }
        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }

    /// Visits all parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactEngine;
    use crate::quant::QuantConfig;

    fn forward_loss(attn: &mut MultiHeadAttention, x: &Tensor, dy: &Tensor) -> f32 {
        let mut eng = ExactEngine;
        let mut rng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut rng);
        attn.forward(x, &mut ctx).hadamard(dy).data().iter().sum()
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = GaussianSampler::new(1);
        let mut attn = MultiHeadAttention::new(16, 4, &mut rng);
        let x = Tensor::randn(7, 16, 1.0, &mut rng);
        let mut eng = ExactEngine;
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
        let y = attn.forward(&x, &mut ctx);
        assert_eq!(y.shape(), (7, 16));
    }

    #[test]
    fn attention_probabilities_are_row_stochastic() {
        let mut rng = GaussianSampler::new(2);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::randn(5, 8, 1.0, &mut rng);
        let mut eng = ExactEngine;
        let mut nrng = GaussianSampler::new(0);
        let mut ctx = ForwardCtx::inference(&mut eng, QuantConfig::fp32(), &mut nrng);
        let _ = attn.forward(&x, &mut ctx);
        for a in &attn.cache.as_ref().unwrap().probs {
            assert_eq!(a.shape(), (5, 5));
            for i in 0..5 {
                let sum: f32 = a.row(i).iter().sum();
                assert!((sum - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = GaussianSampler::new(3);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::randn(4, 8, 0.8, &mut rng);
        let dy = Tensor::randn(4, 8, 1.0, &mut rng);

        let _ = forward_loss(&mut attn, &x, &dy);
        let dx = attn.backward(&dy);

        let h = 1e-2f32;
        for &(i, j) in &[(0usize, 0usize), (1, 3), (3, 7), (2, 5)] {
            let mut xp = x.clone();
            xp.set(i, j, x.get(i, j) + h);
            let mut xm = x.clone();
            xm.set(i, j, x.get(i, j) - h);
            let lp = forward_loss(&mut attn.clone(), &xp, &dy);
            let lm = forward_loss(&mut attn.clone(), &xm, &dy);
            let num = (lp - lm) / (2.0 * h);
            let got = dx.get(i, j);
            assert!(
                (got - num).abs() < 0.05 * num.abs().max(1.0),
                "dx[{i},{j}] = {got} vs numeric {num}"
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = GaussianSampler::new(4);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::randn(4, 8, 0.8, &mut rng);
        let dy = Tensor::randn(4, 8, 1.0, &mut rng);
        let _ = forward_loss(&mut attn, &x, &dy);
        let _ = attn.backward(&dy);
        let got = attn.wq.w.grad.get(2, 3);

        let h = 1e-2f32;
        let w0 = attn.wq.w.value.get(2, 3);
        let mut ap = attn.clone();
        ap.wq.w.value.set(2, 3, w0 + h);
        let mut am = attn.clone();
        am.wq.w.value.set(2, 3, w0 - h);
        let num = (forward_loss(&mut ap, &x, &dy) - forward_loss(&mut am, &x, &dy)) / (2.0 * h);
        assert!(
            (got - num).abs() < 0.05 * num.abs().max(1.0),
            "dWq = {got} vs numeric {num}"
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_head_count_rejected() {
        let mut rng = GaussianSampler::new(5);
        MultiHeadAttention::new(10, 3, &mut rng);
    }
}
