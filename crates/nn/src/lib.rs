//! Pure-Rust neural network stack for the Lightening-Transformer accuracy
//! experiments (paper Section V-E, Figs. 14-15).
//!
//! The paper trains low-bit DeiT/BERT models with noise-aware training and
//! evaluates them with every GEMM routed through the noisy analytic DPTC
//! transform (Eq. 9). Reproducing that end to end needs a training stack,
//! so this crate implements one from scratch:
//!
//! * [`tensor`] — the `f32` tensor alias over the workspace-wide
//!   [`lt_core::Matrix`]
//! * [`layers`] — Linear / LayerNorm / GELU / softmax with hand-written
//!   backward passes
//! * [`attention`] — multi-head self-attention (forward + backward)
//! * [`model`] — a tiny ViT for images and a tiny bidirectional text
//!   classifier (the DeiT / BERT stand-ins; see DESIGN.md Substitution 2)
//! * [`quant`] — symmetric fake-quantization with straight-through
//!   estimators (QAT)
//! * [`train`] — Adam, seeded mini-batch training, noise-aware training
//! * [`engine`] — thin `f32` adapters over the workspace's pluggable
//!   [`lt_core::ComputeBackend`]s: exact, quantized-exact, photonic
//!   (tiled through [`lt_dptc::DptcBackend`] with Eq. 9 noise), and the
//!   generic [`engine::BackendEngine`] for any other backend
//! * [`data`] — deterministic synthetic vision / text datasets
//! * [`serve`] — a batching, multi-threaded inference server: mixed
//!   DeiT/BERT-style requests coalesced through
//!   [`lt_runtime::BatchQueue`] and executed on worker threads over any
//!   backend (wrap it in [`lt_runtime::ParallelBackend`] for intra-GEMM
//!   parallelism); every [`serve::Reply`] carries the request's recorded
//!   op trace and its hardware cost ([`lt_arch::RunReport`])
//!
//! Forward passes speak the op-trace IR: attach an
//! [`lt_core::TraceRecorder`] to a [`layers::ForwardCtx`]
//! and the pass records every GEMM (with its workload role) and every
//! non-GEMM element count while computing — the record half of the
//! record→replay pipeline that `lt_arch::Simulator::run_trace` completes.
//!
//! # Example
//!
//! ```
//! use lt_nn::tensor::Tensor;
//! use lt_nn::engine::{ExactEngine, MatmulEngine, PhotonicEngine};
//!
//! let a = Tensor::from_fn(4, 8, |i, j| ((i + j) as f32 * 0.1).sin());
//! let b = Tensor::from_fn(8, 3, |i, j| ((i * j) as f32 * 0.1).cos());
//! let exact = ExactEngine.matmul(&a, &b);
//! let mut photonic = PhotonicEngine::paper(4, 12, 7);
//! let noisy = photonic.matmul(&a, &b);
//! // The photonic result tracks the exact one to within analog error.
//! let err = exact.max_abs_diff(&noisy);
//! assert!(err < 0.8, "photonic matmul error {err}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![allow(clippy::needless_range_loop)] // index loops are the idiom for matrix kernels

pub mod attention;
pub mod checkpoint;
pub mod data;
pub mod decode;
pub mod engine;
pub mod kv;
pub mod layers;
pub mod metrics;
pub mod model;
pub mod quant;
pub mod serve;
pub mod tensor;
pub mod train;

pub use decode::{
    DecodeReply, DecodeSession, DecoderConfig, DecoderLm, DraftLm, KvCache, SessionConfig,
    SpecOutcome, SpecSessionStats, SpecStepReport,
};
pub use engine::{BackendEngine, ExactEngine, MatmulEngine, PhotonicEngine, QuantizedEngine};
pub use kv::{BlockPool, KvLayer, ModelKv, PagedKvCache, PreemptPolicy, PrefixIndex};
pub use model::{TextClassifier, VisionTransformer};
pub use quant::{IntegerQuant, QuantConfig};
pub use serve::decode::{DecodeRequest, DecodeServeConfig, DecodeServer, SpecConfig};
pub use serve::lifecycle::{RequestLifecycle, RequestOutcome, ServingReport, SloFrontend};
pub use serve::sched::{KvScheduler, KvServeConfig};
pub use serve::{Reply, Request, ServeConfig, Server};
pub use tensor::Tensor;
