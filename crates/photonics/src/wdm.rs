//! Wavelength-division multiplexing machinery.
//!
//! The DPTC encodes each input pair `(x_i, y_i)` on its own DWDM channel
//! (paper Section III-A). This module provides the channel grid, the
//! wavelength-dependent device response ("dispersion") model of Section
//! III-C, and the FSR-limited channel-count bound of Eq. 10.

use crate::constants::{CENTER_WAVELENGTH_NM, DWDM_CHANNEL_SPACING_NM, SPEED_OF_LIGHT_M_PER_S};
use crate::units::{Nanometers, TeraHertz};

/// Speed of light expressed in nm * THz (so `lambda_nm = C / f_thz`).
const C_NM_THZ: f64 = SPEED_OF_LIGHT_M_PER_S * 1e-3;

/// A DWDM wavelength grid: `n` channels spaced evenly around a centre
/// wavelength.
///
/// ```
/// use lt_photonics::wdm::WavelengthGrid;
/// let grid = WavelengthGrid::dwdm(12);
/// assert_eq!(grid.len(), 12);
/// // The grid is symmetric around 1550 nm.
/// let mean: f64 = grid.wavelengths_nm().iter().sum::<f64>() / 12.0;
/// assert!((mean - 1550.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WavelengthGrid {
    center_nm: f64,
    spacing_nm: f64,
    wavelengths_nm: Vec<f64>,
}

impl WavelengthGrid {
    /// Creates the paper's grid: `n` channels at 0.4 nm spacing centred on
    /// 1550 nm.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn dwdm(n: usize) -> Self {
        Self::new(
            n,
            Nanometers(CENTER_WAVELENGTH_NM),
            Nanometers(DWDM_CHANNEL_SPACING_NM),
        )
    }

    /// Creates a grid of `n` channels with an arbitrary centre and spacing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the spacing is not positive.
    pub fn new(n: usize, center: Nanometers, spacing: Nanometers) -> Self {
        assert!(n > 0, "a wavelength grid needs at least one channel");
        assert!(spacing.value() > 0.0, "channel spacing must be positive");
        let mid = (n as f64 - 1.0) / 2.0;
        let wavelengths_nm = (0..n)
            .map(|i| center.value() + (i as f64 - mid) * spacing.value())
            .collect();
        WavelengthGrid {
            center_nm: center.value(),
            spacing_nm: spacing.value(),
            wavelengths_nm,
        }
    }

    /// Number of channels in the grid.
    pub fn len(&self) -> usize {
        self.wavelengths_nm.len()
    }

    /// Whether the grid has no channels (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.wavelengths_nm.is_empty()
    }

    /// The centre wavelength in nanometers.
    pub fn center_nm(&self) -> f64 {
        self.center_nm
    }

    /// Channel spacing in nanometers.
    pub fn spacing_nm(&self) -> f64 {
        self.spacing_nm
    }

    /// The channel wavelengths in nanometers, ascending.
    pub fn wavelengths_nm(&self) -> &[f64] {
        &self.wavelengths_nm
    }

    /// The detuning of each channel from the grid centre, in nanometers.
    pub fn detunings_nm(&self) -> Vec<f64> {
        self.wavelengths_nm
            .iter()
            .map(|w| w - self.center_nm)
            .collect()
    }

    /// Largest absolute detuning from the centre, in nanometers.
    pub fn max_detuning_nm(&self) -> f64 {
        self.detunings_nm()
            .into_iter()
            .fold(0.0f64, |acc, d| acc.max(d.abs()))
    }
}

/// Maximum number of WDM channels that fit inside a resonator's free
/// spectral range (paper Eq. 10).
///
/// With the microdisk's FSR of 5.6 THz around 1550 nm and 0.4 nm channel
/// spacing this gives the paper's figure of 112 wavelengths.
///
/// ```
/// use lt_photonics::wdm::max_channels_in_fsr;
/// use lt_photonics::units::{Nanometers, TeraHertz};
/// let n = max_channels_in_fsr(TeraHertz(5.6), Nanometers(1550.0), Nanometers(0.4));
/// assert_eq!(n.channels, 112);
/// ```
pub fn max_channels_in_fsr(
    fsr: TeraHertz,
    center: Nanometers,
    spacing: Nanometers,
) -> FsrChannelBound {
    let f0_thz = C_NM_THZ / center.value();
    let lambda_left = C_NM_THZ / (f0_thz + fsr.value() / 2.0);
    let lambda_right = C_NM_THZ / (f0_thz - fsr.value() / 2.0);
    let span = lambda_right - lambda_left;
    FsrChannelBound {
        lambda_left_nm: lambda_left,
        lambda_right_nm: lambda_right,
        channels: (span / spacing.value()).floor() as usize,
    }
}

/// Result of the Eq. 10 channel-count bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsrChannelBound {
    /// Short-wavelength edge of the FSR window (`lambda_l` in the paper).
    pub lambda_left_nm: f64,
    /// Long-wavelength edge of the FSR window (`lambda_r` in the paper).
    pub lambda_right_nm: f64,
    /// Number of channels at the given spacing that fit in the window.
    pub channels: usize,
}

/// Wavelength-dependent device response ("WDM dispersion") model.
///
/// Even broadband couplers and phase shifters respond slightly differently
/// across wavelengths. Following Section III-C of the paper:
///
/// * the directional coupler's power coupling factor is
///   `kappa(lambda) = sin^2(pi * Lc(lambda0) / (4 * Lc(lambda)))` with
///   `kappa(lambda0) = 1/2`, and
/// * the phase-shifter response scales as `phi(lambda) = phi0 * lambda0 / lambda`
///   (from `delta_phi = 2 pi delta_n_eff L / lambda`).
///
/// We model the 100% coupling length as
/// `Lc(lambda) = Lc(lambda0) * (lambda0 / lambda)^m`; the exponent `m` is
/// calibrated so that the furthest channel of a 25-wavelength sweep differs
/// from the centre by the paper's ~1.8% in `kappa` (Fig. 3a) and ~0.28
/// degrees in phase (Fig. 3b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispersionModel {
    center_nm: f64,
    coupling_length_exponent: f64,
}

impl DispersionModel {
    /// The exponent calibrated against the paper's Fig. 3 (see module docs).
    pub const PAPER_COUPLING_LENGTH_EXPONENT: f64 = 3.7;

    /// Creates the paper-calibrated model around 1550 nm.
    pub fn paper() -> Self {
        DispersionModel {
            center_nm: CENTER_WAVELENGTH_NM,
            coupling_length_exponent: Self::PAPER_COUPLING_LENGTH_EXPONENT,
        }
    }

    /// Creates a model with a custom centre wavelength and coupling-length
    /// exponent.
    ///
    /// # Panics
    ///
    /// Panics if the centre wavelength is not positive.
    pub fn new(center: Nanometers, coupling_length_exponent: f64) -> Self {
        assert!(center.value() > 0.0, "centre wavelength must be positive");
        DispersionModel {
            center_nm: center.value(),
            coupling_length_exponent,
        }
    }

    /// A dispersion-free model: every wavelength sees the ideal response.
    pub fn ideal() -> Self {
        DispersionModel {
            center_nm: CENTER_WAVELENGTH_NM,
            coupling_length_exponent: 0.0,
        }
    }

    /// Power coupling factor `kappa(lambda)` of a nominally 50:50 coupler.
    pub fn coupling_factor(&self, lambda_nm: f64) -> f64 {
        let r = (lambda_nm / self.center_nm).powf(self.coupling_length_exponent);
        let s = (std::f64::consts::FRAC_PI_4 * r).sin();
        s * s
    }

    /// Amplitude cross-coupling coefficient `k = sqrt(kappa)`.
    pub fn cross_coefficient(&self, lambda_nm: f64) -> f64 {
        self.coupling_factor(lambda_nm).sqrt()
    }

    /// Amplitude through coefficient `t = sqrt(1 - kappa)`.
    pub fn through_coefficient(&self, lambda_nm: f64) -> f64 {
        (1.0 - self.coupling_factor(lambda_nm)).sqrt()
    }

    /// Actual phase shift delivered at `lambda` by a shifter tuned to
    /// `nominal_rad` at the centre wavelength.
    pub fn phase_shift(&self, nominal_rad: f64, lambda_nm: f64) -> f64 {
        if self.coupling_length_exponent == 0.0 {
            // Ideal model: no wavelength dependence at all.
            return nominal_rad;
        }
        nominal_rad * self.center_nm / lambda_nm
    }

    /// The dispersion-induced phase error (radians) relative to nominal.
    pub fn phase_error(&self, nominal_rad: f64, lambda_nm: f64) -> f64 {
        self.phase_shift(nominal_rad, lambda_nm) - nominal_rad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn grid_is_symmetric_and_sorted() {
        let g = WavelengthGrid::dwdm(25);
        let w = g.wavelengths_nm();
        assert_eq!(w.len(), 25);
        assert!((w[12] - 1550.0).abs() < 1e-9, "middle channel at centre");
        assert!((w[0] - (1550.0 - 12.0 * 0.4)).abs() < 1e-9);
        assert!(w.windows(2).all(|p| p[1] > p[0]));
        assert!((g.max_detuning_nm() - 4.8).abs() < 1e-9);
    }

    #[test]
    fn even_grid_straddles_center() {
        let g = WavelengthGrid::dwdm(12);
        let d = g.detunings_nm();
        assert!((d[5] + 0.2).abs() < 1e-9);
        assert!((d[6] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn eq10_reproduces_paper_window() {
        let b = max_channels_in_fsr(TeraHertz(5.6), Nanometers(1550.0), Nanometers(0.4));
        assert!(
            (b.lambda_left_nm - 1527.88).abs() < 0.02,
            "lambda_l {} nm",
            b.lambda_left_nm
        );
        assert!(
            (b.lambda_right_nm - 1572.76).abs() < 0.02,
            "lambda_r {} nm",
            b.lambda_right_nm
        );
        assert_eq!(b.channels, 112);
    }

    #[test]
    fn dispersion_at_center_is_ideal() {
        let d = DispersionModel::paper();
        assert!((d.coupling_factor(1550.0) - 0.5).abs() < 1e-12);
        assert!((d.phase_shift(-FRAC_PI_2, 1550.0) + FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn kappa_deviation_matches_fig3a() {
        // Furthest channel of the 25-wavelength sweep: +-4.8 nm.
        let d = DispersionModel::paper();
        let kappa = d.coupling_factor(1554.8);
        let rel = (kappa - 0.5).abs() / 0.5;
        assert!(
            (rel - 0.018).abs() < 0.002,
            "relative kappa deviation {rel}, expected ~1.8%"
        );
    }

    #[test]
    fn phase_deviation_matches_fig3b() {
        let d = DispersionModel::paper();
        let err = d.phase_error(-FRAC_PI_2, 1554.8).to_degrees().abs();
        assert!(
            (err - 0.28).abs() < 0.01,
            "phase deviation {err} deg, expected ~0.28 deg"
        );
    }

    #[test]
    fn t_and_k_remain_normalized() {
        let d = DispersionModel::paper();
        for lambda in WavelengthGrid::dwdm(25).wavelengths_nm() {
            let t = d.through_coefficient(*lambda);
            let k = d.cross_coefficient(*lambda);
            assert!((t * t + k * k - 1.0).abs() < 1e-12, "lossless coupler");
        }
    }

    #[test]
    fn ideal_model_has_no_dispersion() {
        let d = DispersionModel::ideal();
        assert!((d.coupling_factor(1400.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.phase_error(1.0, 1400.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_grid_rejected() {
        WavelengthGrid::dwdm(0);
    }
}
