//! Optical link-budget accounting.
//!
//! The laser must overcome every insertion loss between source and
//! photodetector. This module accumulates per-stage losses and answers
//! "how much optical power must enter the link so that the detector still
//! sees its sensitivity floor" — the quantity that drives the laser-power
//! entries of the paper's power breakdowns (Fig. 8) and the MZI baseline's
//! ruinous laser cost (Fig. 11).

use crate::units::{Decibels, MilliWatts};
use std::fmt;

/// An itemized optical loss budget from laser to photodetector.
///
/// ```
/// use lt_photonics::LinkBudget;
/// use lt_photonics::units::Decibels;
/// let mut budget = LinkBudget::new();
/// budget.add("MZM", Decibels(1.2));
/// budget.add("broadcast 1:12", Decibels(11.99));
/// assert!((budget.total().value() - 13.19).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinkBudget {
    stages: Vec<(String, Decibels)>,
}

impl LinkBudget {
    /// Creates an empty budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named loss stage.
    pub fn add(&mut self, name: impl Into<String>, loss: Decibels) -> &mut Self {
        self.stages.push((name.into(), loss));
        self
    }

    /// Adds a named loss stage repeated `count` times.
    pub fn add_repeated(
        &mut self,
        name: impl Into<String>,
        loss: Decibels,
        count: usize,
    ) -> &mut Self {
        self.stages.push((name.into(), loss * count as f64));
        self
    }

    /// The itemized stages.
    pub fn stages(&self) -> &[(String, Decibels)] {
        &self.stages
    }

    /// Total end-to-end loss.
    pub fn total(&self) -> Decibels {
        self.stages.iter().map(|(_, l)| *l).sum()
    }

    /// End-to-end power transmission factor.
    pub fn transmission(&self) -> f64 {
        self.total().to_linear()
    }

    /// Optical power required at the link input so the detector sees at
    /// least `required_at_detector`.
    pub fn required_input_power(&self, required_at_detector: MilliWatts) -> MilliWatts {
        MilliWatts(required_at_detector.value() / self.transmission())
    }
}

impl fmt::Display for LinkBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, loss) in &self.stages {
            writeln!(f, "  {name:<28} {:>8.2}", loss)?;
        }
        write!(f, "  {:<28} {:>8.2}", "TOTAL", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_budget_is_transparent() {
        let b = LinkBudget::new();
        assert_eq!(b.total().value(), 0.0);
        assert_eq!(b.transmission(), 1.0);
    }

    #[test]
    fn losses_accumulate_in_db() {
        let mut b = LinkBudget::new();
        b.add("a", Decibels(3.0)).add("b", Decibels(7.0));
        assert!((b.total().value() - 10.0).abs() < 1e-12);
        assert!((b.transmission() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn repeated_stages_multiply() {
        let mut b = LinkBudget::new();
        b.add_repeated("mzi stage", Decibels(1.2), 24);
        assert!((b.total().value() - 28.8).abs() < 1e-12);
    }

    #[test]
    fn required_input_power_compensates_loss() {
        let mut b = LinkBudget::new();
        b.add("loss", Decibels(20.0));
        let need = b.required_input_power(MilliWatts(0.003_162));
        assert!((need.value() - 0.3162).abs() < 1e-3);
    }

    #[test]
    fn display_lists_stages_and_total() {
        let mut b = LinkBudget::new();
        b.add("MZM", Decibels(1.2));
        let s = b.to_string();
        assert!(s.contains("MZM"));
        assert!(s.contains("TOTAL"));
    }
}
