//! A minimal complex-number type for optical field arithmetic.
//!
//! The circuit-level DDot simulation propagates complex electric-field
//! amplitudes through device transfer matrices. We implement the small
//! amount of complex arithmetic needed here rather than pulling in an
//! external numerics crate (see DESIGN.md Section 6).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// ```
/// use lt_photonics::Complex;
/// let j = Complex::I;
/// assert_eq!(j * j, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The imaginary unit `j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a unit-magnitude phasor `e^{j theta}`.
    pub fn from_phase(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates a phasor with the given magnitude and phase.
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Complex {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// Squared magnitude `|z|^2` — what a photodetector measures.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Phase angle in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < EPS && (q.im - a.im).abs() < EPS);
    }

    #[test]
    fn phasor_identities() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let z = Complex::from_phase(FRAC_PI_2);
        assert!((z.re).abs() < EPS && (z.im - 1.0).abs() < EPS);
        let z = Complex::from_phase(PI);
        assert!((z.re + 1.0).abs() < EPS && z.im.abs() < EPS);
        // e^{-j pi/2} == -j, the DDot phase shifter.
        let z = Complex::from_phase(-FRAC_PI_2);
        assert!((z - (-Complex::I)).norm() < EPS);
    }

    #[test]
    fn norm_and_arg() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
        assert!((z.norm_sqr() - 4.0).abs() < EPS);
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex::new(3.0, -4.0);
        let n = z * z.conj();
        assert!((n.re - 25.0).abs() < EPS && n.im.abs() < EPS);
    }

    #[test]
    fn sum_of_phasors() {
        let zs = [
            Complex::from_phase(0.0),
            Complex::from_phase(std::f64::consts::PI),
        ];
        let s: Complex = zs.into_iter().sum();
        assert!(s.norm() < EPS, "opposite phasors cancel");
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }
}
