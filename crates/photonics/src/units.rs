//! Physical unit newtypes.
//!
//! The architecture models mix quantities that are all `f64` underneath
//! (decibels, milliwatts, square micrometers, nanometers, ...). Newtypes keep
//! them from being confused with each other ([C-NEWTYPE]) while staying free
//! to convert at the boundaries.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw value of the quantity.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// A power ratio or loss expressed in decibels.
    ///
    /// Insertion losses in the paper's Table III are given in dB; link budgets
    /// add them. Use [`Decibels::to_linear`] to convert to a transmission
    /// factor.
    Decibels,
    "dB"
);

unit_newtype!(
    /// Electrical or optical power in milliwatts.
    MilliWatts,
    "mW"
);

unit_newtype!(
    /// Electrical or optical power in watts.
    Watts,
    "W"
);

unit_newtype!(
    /// Energy in picojoules.
    PicoJoules,
    "pJ"
);

unit_newtype!(
    /// Energy in millijoules (the unit of the paper's Table V).
    MilliJoules,
    "mJ"
);

unit_newtype!(
    /// Chip area in square micrometers.
    SquareMicrometers,
    "um^2"
);

unit_newtype!(
    /// Chip area in square millimeters (the unit of the paper's Fig. 7).
    SquareMillimeters,
    "mm^2"
);

unit_newtype!(
    /// Wavelength in nanometers.
    Nanometers,
    "nm"
);

unit_newtype!(
    /// Frequency in gigahertz.
    GigaHertz,
    "GHz"
);

unit_newtype!(
    /// Frequency in terahertz (free spectral ranges are quoted in THz).
    TeraHertz,
    "THz"
);

unit_newtype!(
    /// Time in picoseconds (one photonic core cycle is 200 ps at 5 GHz).
    Picoseconds,
    "ps"
);

unit_newtype!(
    /// Time in milliseconds (the unit of the paper's latency results).
    Milliseconds,
    "ms"
);

impl Decibels {
    /// Converts a dB loss into a linear transmission factor in `(0, 1]` for
    /// positive dB values (and `>1` for gains).
    ///
    /// ```
    /// use lt_photonics::units::Decibels;
    /// let three_db = Decibels(3.0103);
    /// assert!((three_db.to_linear() - 0.5).abs() < 1e-4);
    /// ```
    pub fn to_linear(self) -> f64 {
        10f64.powf(-self.0 / 10.0)
    }

    /// Builds a dB quantity from a linear transmission factor.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is not strictly positive.
    pub fn from_linear(linear: f64) -> Self {
        assert!(linear > 0.0, "linear transmission must be positive");
        Decibels(-10.0 * linear.log10())
    }
}

impl MilliWatts {
    /// Converts to watts.
    pub fn to_watts(self) -> Watts {
        Watts(self.0 / 1e3)
    }

    /// Converts an absolute power level to dBm.
    ///
    /// # Panics
    ///
    /// Panics if the power is not strictly positive.
    pub fn to_dbm(self) -> f64 {
        assert!(self.0 > 0.0, "power must be positive to express in dBm");
        10.0 * self.0.log10()
    }

    /// Builds a power level from dBm. `-25 dBm` (the paper's photodetector
    /// sensitivity) is about 3.16 uW.
    ///
    /// ```
    /// use lt_photonics::units::MilliWatts;
    /// let sens = MilliWatts::from_dbm(-25.0);
    /// assert!((sens.value() - 0.00316).abs() < 1e-4);
    /// ```
    pub fn from_dbm(dbm: f64) -> Self {
        MilliWatts(10f64.powf(dbm / 10.0))
    }
}

impl Watts {
    /// Converts to milliwatts.
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(self.0 * 1e3)
    }
}

impl SquareMicrometers {
    /// Converts to square millimeters.
    pub fn to_mm2(self) -> SquareMillimeters {
        SquareMillimeters(self.0 / 1e6)
    }

    /// Builds an area from a rectangular footprint in micrometers.
    pub fn from_footprint(width_um: f64, height_um: f64) -> Self {
        SquareMicrometers(width_um * height_um)
    }
}

impl SquareMillimeters {
    /// Converts to square micrometers.
    pub fn to_um2(self) -> SquareMicrometers {
        SquareMicrometers(self.0 * 1e6)
    }
}

impl Picoseconds {
    /// Converts to milliseconds.
    pub fn to_ms(self) -> Milliseconds {
        Milliseconds(self.0 * 1e-9)
    }

    /// Converts to seconds.
    pub fn to_seconds(self) -> f64 {
        self.0 * 1e-12
    }
}

impl Milliseconds {
    /// Converts to seconds.
    pub fn to_seconds(self) -> f64 {
        self.0 * 1e-3
    }

    /// Converts to picoseconds.
    pub fn to_ps(self) -> Picoseconds {
        Picoseconds(self.0 * 1e9)
    }
}

impl GigaHertz {
    /// Period of one cycle at this clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn period(self) -> Picoseconds {
        assert!(self.0 > 0.0, "frequency must be positive");
        Picoseconds(1e3 / self.0)
    }

    /// Converts to hertz.
    pub fn to_hz(self) -> f64 {
        self.0 * 1e9
    }
}

impl TeraHertz {
    /// Converts to hertz.
    pub fn to_hz(self) -> f64 {
        self.0 * 1e12
    }
}

/// Energy = power x time, in convenient units.
impl Mul<Picoseconds> for MilliWatts {
    type Output = PicoJoules;
    fn mul(self, rhs: Picoseconds) -> PicoJoules {
        // mW * ps = 1e-3 W * 1e-12 s = 1e-15 J = 1e-3 pJ
        PicoJoules(self.0 * rhs.0 * 1e-3)
    }
}

impl Mul<Milliseconds> for Watts {
    type Output = MilliJoules;
    fn mul(self, rhs: Milliseconds) -> MilliJoules {
        // W * ms = 1e-3 J = 1 mJ
        MilliJoules(self.0 * rhs.0)
    }
}

impl PicoJoules {
    /// Converts to millijoules.
    pub fn to_millijoules(self) -> MilliJoules {
        MilliJoules(self.0 * 1e-9)
    }
}

impl MilliJoules {
    /// Converts to picojoules.
    pub fn to_picojoules(self) -> PicoJoules {
        PicoJoules(self.0 * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_round_trip() {
        for db in [0.0, 0.33, 0.95, 1.2, 3.0, 10.0, 28.0] {
            let lin = Decibels(db).to_linear();
            let back = Decibels::from_linear(lin);
            assert!((back.value() - db).abs() < 1e-9, "{db} dB round trip");
        }
    }

    #[test]
    fn zero_db_is_unity() {
        assert_eq!(Decibels(0.0).to_linear(), 1.0);
    }

    #[test]
    fn dbm_reference_points() {
        assert!((MilliWatts::from_dbm(0.0).value() - 1.0).abs() < 1e-12);
        assert!((MilliWatts::from_dbm(10.0).value() - 10.0).abs() < 1e-9);
        assert!((MilliWatts(1.0).to_dbm() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn energy_units_compose() {
        // 1 mW for 200 ps = 0.2 pJ.
        let e = MilliWatts(1.0) * Picoseconds(200.0);
        assert!((e.value() - 0.2).abs() < 1e-12);
        // 1 W for 1 ms = 1 mJ.
        let e = Watts(1.0) * Milliseconds(1.0);
        assert!((e.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clock_period() {
        let p = GigaHertz(5.0).period();
        assert!((p.value() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn area_conversion() {
        let a = SquareMicrometers(11_000.0).to_mm2();
        assert!((a.value() - 0.011).abs() < 1e-12);
        let back = a.to_um2();
        assert!((back.value() - 11_000.0).abs() < 1e-9);
    }

    #[test]
    fn unit_sums_and_arithmetic() {
        let total: Decibels = [Decibels(0.33), Decibels(0.95), Decibels(1.2)]
            .into_iter()
            .sum();
        assert!((total.value() - 2.48).abs() < 1e-12);
        assert_eq!(Decibels(2.0) + Decibels(1.0), Decibels(3.0));
        assert_eq!(Decibels(2.0) - Decibels(1.0), Decibels(1.0));
        assert_eq!(Decibels(2.0) * 3.0, Decibels(6.0));
        assert_eq!(Decibels(6.0) / 3.0, Decibels(2.0));
        assert!((Decibels(6.0) / Decibels(3.0) - 2.0).abs() < 1e-12);
        assert_eq!(-Decibels(1.5), Decibels(-1.5));
        assert_eq!(Decibels(-1.5).abs(), Decibels(1.5));
        assert_eq!(Decibels(1.0).max(Decibels(2.0)), Decibels(2.0));
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(format!("{:.2}", Decibels(1.234)), "1.23 dB");
        assert_eq!(format!("{}", MilliWatts(3.0)), "3 mW");
    }

    #[test]
    fn latency_conversions() {
        let cycle = Picoseconds(200.0);
        assert!((cycle.to_seconds() - 200e-12).abs() < 1e-24);
        let ms = Milliseconds(1.94e-2);
        assert!((ms.to_seconds() - 1.94e-5).abs() < 1e-12);
        assert!((ms.to_ps().value() - 1.94e7).abs() < 1e-3);
    }
}
