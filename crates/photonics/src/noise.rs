//! Deterministic Gaussian noise source (re-exported from [`lt_core`]).
//!
//! The sampler lives in the `lt-core` foundation crate so that the matrix
//! type and the compute backends can draw reproducible noise without a
//! dependency on this crate; this module re-exports it under its
//! historical path so `lt_photonics::noise::GaussianSampler` keeps
//! working.

pub use lt_core::noise::GaussianSampler;
