//! Physical constants and paper-wide defaults.

/// Speed of light in vacuum, meters per second.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// The paper's centre wavelength (DWDM C-band), nanometers.
pub const CENTER_WAVELENGTH_NM: f64 = 1550.0;

/// The paper's DWDM channel spacing, nanometers (Dense WDM standard \[24\]).
pub const DWDM_CHANNEL_SPACING_NM: f64 = 0.4;

/// Photonic tensor core clock, GHz ("clocked at 5 GHz for a conservative
/// assumption", Section IV-A).
pub const PTC_CLOCK_GHZ: f64 = 5.0;

/// Low-speed electrical clock domain, MHz (Fig. 4).
pub const LOW_CLOCK_MHZ: f64 = 500.0;

/// Default data precision of the photonic datapath, bits (Section IV-A).
pub const DEFAULT_PRECISION_BITS: u32 = 4;

/// Analog-domain temporal accumulation depth: A/D conversion happens once
/// every this many analog accumulation steps (Section IV-C2).
pub const TEMPORAL_ACCUM_DEPTH: u32 = 3;

/// Laser wall-plug efficiency (Table III, on-chip laser \[58\]).
pub const LASER_WALL_PLUG_EFFICIENCY: f64 = 0.2;

/// Frequency of the centre wavelength in Hz.
pub fn center_frequency_hz() -> f64 {
    SPEED_OF_LIGHT_M_PER_S / (CENTER_WAVELENGTH_NM * 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_frequency_is_about_193_thz() {
        let f = center_frequency_hz();
        assert!((f / 1e12 - 193.41).abs() < 0.05, "got {} THz", f / 1e12);
    }
}
