//! Mixed-signal converters: DAC, ADC, TIA.
//!
//! Cross-domain signal conversion is the key bottleneck of photonic systems
//! (paper Section IV-C). The reference designs in Table III are 8-bit parts;
//! following \[26\] the paper scales their power with bit-width and sampling
//! frequency, which we reproduce in [`Dac::scaled_power`] /
//! [`Adc::scaled_power`].

use crate::units::{GigaHertz, MilliWatts, SquareMicrometers};

/// Power scaling shared by both converters: linear in sampling frequency and
/// exponential (`2^b`) in bit-width, relative to the reference design point.
fn scale_power(
    reference: MilliWatts,
    ref_bits: u32,
    ref_rate: GigaHertz,
    bits: u32,
    rate: GigaHertz,
) -> MilliWatts {
    let freq_factor = rate.value() / ref_rate.value();
    let bit_factor = 2f64.powi(bits as i32) / 2f64.powi(ref_bits as i32);
    reference * (freq_factor * bit_factor)
}

/// A digital-to-analog converter driving one MZM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dac {
    /// Reference precision, bits.
    pub ref_bits: u32,
    /// Reference power at the reference sample rate.
    pub ref_power: MilliWatts,
    /// Reference sample rate.
    pub ref_rate: GigaHertz,
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl Dac {
    /// Table III values (\[7\]): 8-bit, 50 mW @ 14 GS/s, 11,000 um^2.
    pub fn paper() -> Self {
        Dac {
            ref_bits: 8,
            ref_power: MilliWatts(50.0),
            ref_rate: GigaHertz(14.0),
            area: SquareMicrometers(11_000.0),
        }
    }

    /// Power at the photonic system's operating point.
    ///
    /// ```
    /// use lt_photonics::devices::Dac;
    /// use lt_photonics::units::GigaHertz;
    /// // 4-bit at the 5 GHz PTC clock: 50 mW * (5/14) * 2^-4 ~ 1.12 mW.
    /// let p = Dac::paper().scaled_power(4, GigaHertz(5.0));
    /// assert!((p.value() - 1.116).abs() < 0.01);
    /// ```
    pub fn scaled_power(&self, bits: u32, rate: GigaHertz) -> MilliWatts {
        scale_power(self.ref_power, self.ref_bits, self.ref_rate, bits, rate)
    }
}

/// An analog-to-digital converter digitizing one photocurrent channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    /// Reference precision, bits.
    pub ref_bits: u32,
    /// Reference power at the reference sample rate.
    pub ref_power: MilliWatts,
    /// Reference sample rate.
    pub ref_rate: GigaHertz,
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl Adc {
    /// Table III values (\[32\]): 8-bit, 14.8 mW @ 10 GS/s, 2,850 um^2.
    pub fn paper() -> Self {
        Adc {
            ref_bits: 8,
            ref_power: MilliWatts(14.8),
            ref_rate: GigaHertz(10.0),
            area: SquareMicrometers(2_850.0),
        }
    }

    /// Power at the photonic system's operating point. Analog-domain
    /// temporal accumulation lets the ADC run at `clock / depth`, which is
    /// exactly how the paper's Section IV-C2 trims ADC cost.
    pub fn scaled_power(&self, bits: u32, rate: GigaHertz) -> MilliWatts {
        scale_power(self.ref_power, self.ref_bits, self.ref_rate, bits, rate)
    }
}

/// A transimpedance amplifier boosting photocurrent before the ADC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tia {
    /// Power per channel.
    pub power: MilliWatts,
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl Tia {
    /// Table III values (\[43\]): 3 mW, <50 um^2.
    pub fn paper() -> Self {
        Tia {
            power: MilliWatts(3.0),
            area: SquareMicrometers(50.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_points_are_fixed() {
        let dac = Dac::paper();
        let p = dac.scaled_power(8, GigaHertz(14.0));
        assert!((p.value() - 50.0).abs() < 1e-9);
        let adc = Adc::paper();
        let p = adc.scaled_power(8, GigaHertz(10.0));
        assert!((p.value() - 14.8).abs() < 1e-9);
    }

    #[test]
    fn four_bit_dac_is_16x_cheaper() {
        let dac = Dac::paper();
        let p8 = dac.scaled_power(8, GigaHertz(5.0));
        let p4 = dac.scaled_power(4, GigaHertz(5.0));
        assert!((p8.value() / p4.value() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn temporal_accumulation_cuts_adc_rate() {
        let adc = Adc::paper();
        let full = adc.scaled_power(4, GigaHertz(5.0));
        let accum = adc.scaled_power(4, GigaHertz(5.0 / 3.0));
        assert!((full.value() / accum.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eight_bit_dacs_dominate() {
        // The power-breakdown claim of Fig. 8: at 8-bit, the per-DAC power
        // is ~17.9 mW at 5 GHz, > 50% of system power once multiplied out.
        let p = Dac::paper().scaled_power(8, GigaHertz(5.0));
        assert!((p.value() - 17.857).abs() < 0.01);
    }
}
