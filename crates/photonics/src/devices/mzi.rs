//! Mach-Zehnder interferometer: the programmable 2x2 unitary of the
//! MZI-array baseline (paper Section II-B).

use crate::complex::Complex;
use crate::devices::{DirectionalCoupler, MemsPhaseShifter};
use crate::units::{Decibels, SquareMicrometers};

/// A Mach-Zehnder interferometer: two cascaded 50:50 couplers with an
/// internal phase `theta` (between the couplers) and an external phase
/// `phi` (on one input). Sweeping `(theta, phi)` realizes an arbitrary
/// SU(2) rotation (up to global phase) — the building block of the
/// Reck/Clements meshes used by \[47\].
///
/// ```
/// use lt_photonics::devices::MachZehnderInterferometer;
/// use lt_photonics::Complex;
/// // theta = pi gives the identity-like bar state; theta = 0 the cross state.
/// let bar = MachZehnderInterferometer::ideal(std::f64::consts::PI, 0.0);
/// let (o0, o1) = bar.propagate(Complex::ONE, Complex::ZERO);
/// assert!(o0.norm_sqr() > 0.99 && o1.norm_sqr() < 1e-9);
/// let cross = MachZehnderInterferometer::ideal(0.0, 0.0);
/// let (o0, o1) = cross.propagate(Complex::ONE, Complex::ZERO);
/// assert!(o0.norm_sqr() < 1e-9 && o1.norm_sqr() > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachZehnderInterferometer {
    theta: f64,
    phi: f64,
    coupler: DirectionalCoupler,
    shifter_loss: Decibels,
}

impl MachZehnderInterferometer {
    /// A lossless, dispersion-free MZI with the given internal/external
    /// phases.
    pub fn ideal(theta: f64, phi: f64) -> Self {
        MachZehnderInterferometer {
            theta,
            phi,
            coupler: DirectionalCoupler::ideal_50_50(),
            shifter_loss: Decibels(0.0),
        }
    }

    /// An MZI built from the paper's devices: Table III couplers and MEMS
    /// phase shifters (low loss, but 2 us to reprogram).
    pub fn paper(theta: f64, phi: f64) -> Self {
        MachZehnderInterferometer {
            theta,
            phi,
            coupler: DirectionalCoupler::paper(),
            shifter_loss: MemsPhaseShifter::paper().insertion_loss,
        }
    }

    /// Internal phase.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// External phase.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Per-pass insertion loss (two couplers + two shifter passes).
    pub fn insertion_loss(&self) -> Decibels {
        self.coupler.insertion_loss() * 2.0 + self.shifter_loss * 2.0
    }

    /// Device footprint (two couplers + two MEMS shifters; the dominant
    /// term is the shifters' 100 x 45 um^2 each — MZIs are *bulky*).
    pub fn area(&self) -> SquareMicrometers {
        SquareMicrometers(
            2.0 * self.coupler.area().value() + 2.0 * MemsPhaseShifter::paper().area.value(),
        )
    }

    /// Propagates two input fields at the centre wavelength.
    pub fn propagate(&self, in0: Complex, in1: Complex) -> (Complex, Complex) {
        let lambda = crate::constants::CENTER_WAVELENGTH_NM;
        // Matched shifters sit on both arms (push-pull), so their loss is
        // common-mode.
        let a = self.shifter_loss.to_linear().sqrt();
        let in0 = in0 * Complex::from_phase(self.phi) * a;
        let in1 = in1 * a;
        let (mid0, mid1) = self.coupler.couple(in0, in1, lambda);
        let mid0 = mid0 * Complex::from_phase(self.theta) * a;
        let mid1 = mid1 * a;
        self.coupler.couple(mid0, mid1, lambda)
    }

    /// The 2x2 transfer matrix `[[t00, t01], [t10, t11]]`.
    pub fn transfer_matrix(&self) -> [[Complex; 2]; 2] {
        let (a0, a1) = self.propagate(Complex::ONE, Complex::ZERO);
        let (b0, b1) = self.propagate(Complex::ZERO, Complex::ONE);
        [[a0, b0], [a1, b1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn ideal_mzi_is_unitary() {
        for &(theta, phi) in &[(0.3, 0.7), (1.1, -0.4), (PI, FRAC_PI_2), (0.0, 0.0)] {
            let mzi = MachZehnderInterferometer::ideal(theta, phi);
            let m = mzi.transfer_matrix();
            // Columns orthonormal.
            let c0 = m[0][0].norm_sqr() + m[1][0].norm_sqr();
            let c1 = m[0][1].norm_sqr() + m[1][1].norm_sqr();
            let cross = m[0][0].conj() * m[0][1] + m[1][0].conj() * m[1][1];
            assert!((c0 - 1.0).abs() < 1e-12, "theta {theta}: |col0| {c0}");
            assert!((c1 - 1.0).abs() < 1e-12);
            assert!(cross.norm() < 1e-12, "columns must be orthogonal");
        }
    }

    #[test]
    fn theta_steers_the_split_ratio() {
        // Power to the cross port goes as cos^2(theta/2).
        for theta in [0.0, 0.5, 1.0, 2.0, PI] {
            let mzi = MachZehnderInterferometer::ideal(theta, 0.0);
            let (o0, _o1) = mzi.propagate(Complex::ONE, Complex::ZERO);
            let expect = (theta / 2.0).cos().powi(2);
            assert!(
                (o0.norm_sqr() - (1.0 - expect)).abs() < 1e-9
                    || (o0.norm_sqr() - expect).abs() < 1e-9,
                "theta {theta}: p0 {}",
                o0.norm_sqr()
            );
        }
    }

    #[test]
    fn paper_mzi_loss_is_about_1_3_db() {
        let mzi = MachZehnderInterferometer::paper(0.4, 0.0);
        let il = mzi.insertion_loss().value();
        assert!((il - 1.32).abs() < 1e-9, "IL {il} dB");
        // And the propagated power matches the IL budget.
        let m = mzi.transfer_matrix();
        let p = m[0][0].norm_sqr() + m[1][0].norm_sqr();
        assert!((p - Decibels(il).to_linear()).abs() < 1e-9);
    }

    #[test]
    fn mzi_is_bulky() {
        // ~9000 um^2 per MZI vs ~13 um^2 per DDot coupler: the footprint
        // argument of paper Section V-C.
        let mzi_area = MachZehnderInterferometer::paper(0.0, 0.0).area().value();
        let dc_area = DirectionalCoupler::paper().area().value();
        assert!(mzi_area > 500.0 * dc_area);
    }
}
