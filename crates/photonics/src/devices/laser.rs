//! Light sources: on-chip laser and the Kerr micro-comb that seeds the WDM
//! channels.

use crate::units::{Decibels, MilliWatts, SquareMicrometers};

/// An on-chip laser characterized by its wall-plug efficiency.
///
/// The laser power is set to meet the minimum power requirement of the
/// photodetector considering total system loss, then scaled with the output
/// precision requirement (paper Section V-A): each extra output bit doubles
/// the required detected power (one more bit of SNR in the shot-noise
/// limited regime), which reproduces the 16x laser-power jump from 4-bit
/// (0.77 W) to 8-bit (12.3 W) on LT-B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laser {
    /// Fraction of electrical power converted to optical power.
    pub wall_plug_efficiency: f64,
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl Laser {
    /// Table III values (\[58\]): 20% wall-plug efficiency, 400 x 300 um^2.
    pub fn paper() -> Self {
        Laser {
            wall_plug_efficiency: 0.2,
            area: SquareMicrometers::from_footprint(400.0, 300.0),
        }
    }

    /// Electrical power needed to deliver `optical` watts of laser light.
    ///
    /// # Panics
    ///
    /// Panics if the wall-plug efficiency is not in `(0, 1]`.
    pub fn electrical_power(&self, optical: MilliWatts) -> MilliWatts {
        assert!(
            self.wall_plug_efficiency > 0.0 && self.wall_plug_efficiency <= 1.0,
            "wall-plug efficiency must be in (0, 1]"
        );
        optical / self.wall_plug_efficiency
    }

    /// Electrical laser power required for `n_signals` optical signals, each
    /// of which must arrive at its photodetector above `pd_sensitivity`
    /// after `path_loss` of attenuation, at `bits` of output precision
    /// (relative to the 4-bit baseline).
    pub fn required_power(
        &self,
        n_signals: usize,
        pd_sensitivity: MilliWatts,
        path_loss: Decibels,
        bits: u32,
    ) -> MilliWatts {
        let per_signal_at_pd = pd_sensitivity.value();
        let loss_factor = 1.0 / path_loss.to_linear();
        let precision_factor = 2f64.powi(bits as i32 - 4);
        let optical =
            MilliWatts(per_signal_at_pd * loss_factor * precision_factor * n_signals as f64);
        self.electrical_power(optical)
    }
}

/// A Kerr frequency micro-comb providing the multi-wavelength carrier
/// (Table III, \[62\]). Behaviourally it is a multi-wavelength source; its
/// cost contribution here is the (large) footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroComb {
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl MicroComb {
    /// Table III values: 1,184 x 1,184 um^2.
    pub fn paper() -> Self {
        MicroComb {
            area: SquareMicrometers::from_footprint(1_184.0, 1_184.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_plug_divides_power() {
        let laser = Laser::paper();
        let p = laser.electrical_power(MilliWatts(100.0));
        assert!((p.value() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn precision_scaling_is_2_per_bit() {
        let laser = Laser::paper();
        let sens = MilliWatts::from_dbm(-25.0);
        let p4 = laser.required_power(100, sens, Decibels(10.0), 4);
        let p8 = laser.required_power(100, sens, Decibels(10.0), 8);
        assert!((p8.value() / p4.value() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn loss_scales_exponentially() {
        let laser = Laser::paper();
        let sens = MilliWatts::from_dbm(-25.0);
        let p10 = laser.required_power(1, sens, Decibels(10.0), 4);
        let p20 = laser.required_power(1, sens, Decibels(20.0), 4);
        assert!((p20.value() / p10.value() - 10.0).abs() < 1e-9);
    }
}
