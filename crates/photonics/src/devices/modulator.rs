//! Mach-Zehnder modulator: the high-speed full-range operand encoder.

use crate::complex::Complex;
use crate::units::{Decibels, MilliWatts, SquareMicrometers};

/// A push-pull Mach-Zehnder modulator.
///
/// With equal splitting and differential phase shifts `+phi` / `-phi` on the
/// two arms, the output field is `E_out = E_in * cos(phi)` (paper Section
/// II-B). Sweeping `phi` over `[0, pi]` therefore encodes the full range
/// `[-1, 1]` — the sign lives in the optical phase, which is what lets DDot
/// process signed operands by interference.
///
/// ```
/// use lt_photonics::devices::MachZehnderModulator;
/// let mzm = MachZehnderModulator::ideal();
/// let e = mzm.encode(-0.5);
/// assert!((e.re + 0.5).abs() < 1e-12, "negative values flip the field sign");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachZehnderModulator {
    insertion_loss: Decibels,
    tuning_power: MilliWatts,
    area: SquareMicrometers,
    /// Encoding (E-O switching) time, seconds; ~10 ps in the paper.
    encoding_time_s: f64,
}

impl MachZehnderModulator {
    /// Table III values: tuning 2.25 mW \[13\], IL 1.2 dB \[2\],
    /// 260 x 20 um^2 \[2\]; ~10 ps dynamic operand switching (Section III-A).
    pub fn paper() -> Self {
        MachZehnderModulator {
            insertion_loss: Decibels(1.2),
            tuning_power: MilliWatts(2.25),
            area: SquareMicrometers::from_footprint(260.0, 20.0),
            encoding_time_s: 10e-12,
        }
    }

    /// A lossless modulator for analytic checks.
    pub fn ideal() -> Self {
        MachZehnderModulator {
            insertion_loss: Decibels(0.0),
            tuning_power: MilliWatts(0.0),
            area: SquareMicrometers(0.0),
            encoding_time_s: 0.0,
        }
    }

    /// Insertion loss per pass.
    pub fn insertion_loss(&self) -> Decibels {
        self.insertion_loss
    }

    /// Average tuning/driving power while encoding.
    pub fn tuning_power(&self) -> MilliWatts {
        self.tuning_power
    }

    /// Device footprint.
    pub fn area(&self) -> SquareMicrometers {
        self.area
    }

    /// Time to switch to a new operand value, seconds.
    pub fn encoding_time_s(&self) -> f64 {
        self.encoding_time_s
    }

    /// The arm phase that encodes `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[-1, 1]`; operands must be normalized
    /// before encoding (paper Section III-C: scaling by `beta = max|x|`).
    pub fn phase_for(&self, value: f64) -> f64 {
        assert!(
            (-1.0..=1.0).contains(&value),
            "MZM operand {value} outside [-1, 1]; normalize first"
        );
        value.acos()
    }

    /// Encodes a normalized value in `[-1, 1]` into an output field,
    /// assuming a unit-amplitude input carrier.
    pub fn encode(&self, value: f64) -> Complex {
        let phi = self.phase_for(value);
        let a = self.insertion_loss.to_linear().sqrt();
        Complex::real(phi.cos()) * a
    }

    /// Encodes a value with additive magnitude and phase noise already
    /// applied by the caller (the encode path itself stays deterministic).
    pub fn encode_with_phase(&self, value: f64, extra_phase_rad: f64) -> Complex {
        let a = self.insertion_loss.to_linear().sqrt();
        Complex::from_polar(value.clamp(-1.0, 1.0).abs() * a, extra_phase_rad)
            * if value < 0.0 { -1.0 } else { 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_identity_on_magnitude() {
        let mzm = MachZehnderModulator::ideal();
        for v in [-1.0, -0.7, -0.1, 0.0, 0.3, 1.0] {
            let e = mzm.encode(v);
            assert!((e.re - v).abs() < 1e-12, "cos(acos(v)) == v");
            assert!(e.im.abs() < 1e-12);
        }
    }

    #[test]
    fn full_range_is_supported() {
        // The crucial contrast with incoherent MRR designs: negative values
        // come out with a pi phase, not clipped.
        let mzm = MachZehnderModulator::ideal();
        let neg = mzm.encode(-0.8);
        assert!(neg.re < 0.0);
        assert!((neg.arg().abs() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn paper_mzm_loss() {
        let mzm = MachZehnderModulator::paper();
        let e = mzm.encode(1.0);
        assert!((e.norm_sqr() - Decibels(1.2).to_linear()).abs() < 1e-12);
    }

    #[test]
    fn encoding_is_fast() {
        // < 100 ps computing requires ~10 ps operand switching.
        assert!(MachZehnderModulator::paper().encoding_time_s() <= 10e-12);
    }

    #[test]
    #[should_panic(expected = "outside [-1, 1]")]
    fn unnormalized_operands_rejected() {
        MachZehnderModulator::ideal().encode(1.5);
    }

    #[test]
    fn encode_with_phase_carries_sign_and_drift() {
        let mzm = MachZehnderModulator::ideal();
        let e = mzm.encode_with_phase(-0.5, 0.1);
        assert!((e.norm() - 0.5).abs() < 1e-12);
        // Sign flip plus drift: the phase is pi + 0.1 (mod 2 pi).
        let expected = Complex::from_polar(0.5, std::f64::consts::PI + 0.1);
        assert!((e - expected).norm() < 1e-12);
    }
}
