//! Photodetection: where interference becomes photocurrent.

use crate::complex::Complex;
use crate::units::{MilliWatts, SquareMicrometers};

/// A photodiode converting incident WDM optical power into photocurrent.
///
/// The generated photocurrent is proportional to the *accumulated
/// intensities* of all incident wavelengths — the squaring and the
/// cross-wavelength summation happen in the device physics, which is what
/// gives DDot its free length-N accumulation (paper Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Photodetector {
    /// Responsivity in A/W (proportionality of current to optical power).
    pub responsivity_a_per_w: f64,
    /// Receiver power consumption.
    pub power: MilliWatts,
    /// Minimum detectable optical power (sensitivity), dBm.
    pub sensitivity_dbm: f64,
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl Photodetector {
    /// Table III values (\[23\]): 1.1 mW, -25 dBm sensitivity, 4 x 10 um^2.
    /// Responsivity of 1 A/W is a typical value for Si-Ge APDs at 1550 nm.
    pub fn paper() -> Self {
        Photodetector {
            responsivity_a_per_w: 1.0,
            power: MilliWatts(1.1),
            sensitivity_dbm: -25.0,
            area: SquareMicrometers::from_footprint(4.0, 10.0),
        }
    }

    /// Minimum detectable optical power as a linear quantity.
    pub fn sensitivity(&self) -> MilliWatts {
        MilliWatts::from_dbm(self.sensitivity_dbm)
    }

    /// Photocurrent (arbitrary units, proportional to amperes) produced by
    /// a set of per-wavelength incident fields.
    pub fn detect(&self, fields: &[Complex]) -> f64 {
        self.responsivity_a_per_w * fields.iter().map(|f| f.norm_sqr()).sum::<f64>()
    }
}

/// A balanced photodetector pair: two matched photodiodes whose currents
/// subtract (paper Eq. 5).
///
/// The differential photocurrent cancels the quadratic terms
/// `(x_i + y_i)^2 - (x_i - y_i)^2 = 4 x_i y_i`, so the output current
/// directly carries the signed dot product — full-range *outputs* with no
/// extra decomposition step.
///
/// ```
/// use lt_photonics::devices::BalancedPhotodetector;
/// use lt_photonics::Complex;
/// let bpd = BalancedPhotodetector::matched();
/// // Fields carrying (x+y) and (x-y) for x=0.5, y=0.25.
/// let sum = [Complex::real(0.75)];
/// let diff = [Complex::real(0.25)];
/// let i = bpd.detect(&sum, &diff);
/// assert!((i - 4.0 * 0.5 * 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancedPhotodetector {
    /// The detector on the "sum" port (responsivity `R0`).
    pub positive: Photodetector,
    /// The detector on the "difference" port (responsivity `R1`).
    pub negative: Photodetector,
}

impl BalancedPhotodetector {
    /// A perfectly matched pair (`R0 == R1`) with paper parameters.
    pub fn matched() -> Self {
        BalancedPhotodetector {
            positive: Photodetector::paper(),
            negative: Photodetector::paper(),
        }
    }

    /// A deliberately mismatched pair, for studying responsivity imbalance.
    pub fn mismatched(r0: f64, r1: f64) -> Self {
        let mut positive = Photodetector::paper();
        positive.responsivity_a_per_w = r0;
        let mut negative = Photodetector::paper();
        negative.responsivity_a_per_w = r1;
        BalancedPhotodetector { positive, negative }
    }

    /// Differential photocurrent `I0 - I1` for fields at the two ports.
    pub fn detect(&self, port0: &[Complex], port1: &[Complex]) -> f64 {
        self.positive.detect(port0) - self.negative.detect(port1)
    }

    /// Total electrical power of the pair.
    pub fn power(&self) -> MilliWatts {
        self.positive.power + self.negative.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_sums_wavelength_intensities() {
        let pd = Photodetector::paper();
        let fields = [
            Complex::real(0.5),
            Complex::new(0.0, 0.5),
            Complex::real(-0.5),
        ];
        assert!((pd.detect(&fields) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_is_3_16_uw() {
        let pd = Photodetector::paper();
        assert!((pd.sensitivity().value() - 0.003_162).abs() < 1e-5);
    }

    #[test]
    fn balanced_pair_cancels_quadratics() {
        let bpd = BalancedPhotodetector::matched();
        // Build (x+y)/sqrt2 and j(x-y)/sqrt2 fields per Eq. 3 and check Eq. 5.
        let x = [0.3, -0.6, 0.9];
        let y = [0.2, 0.5, -0.4];
        let s2 = std::f64::consts::SQRT_2;
        let sum: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| Complex::real((a + b) / s2))
            .collect();
        let diff: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| Complex::new(0.0, (a - b) / s2))
            .collect();
        let i = bpd.detect(&sum, &diff);
        let dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((i - 2.0 * dot).abs() < 1e-12, "I = 2 R x.y with R = 1");
    }

    #[test]
    fn full_range_output_sign() {
        let bpd = BalancedPhotodetector::matched();
        // Negative dot product -> negative photocurrent.
        let i = bpd.detect(&[Complex::real(0.1)], &[Complex::real(0.9)]);
        assert!(i < 0.0);
    }

    #[test]
    fn mismatch_leaves_quadratic_residue() {
        let bpd = BalancedPhotodetector::mismatched(1.0, 0.9);
        let x = 0.5;
        let y = 0.25;
        let s2 = std::f64::consts::SQRT_2;
        let i = bpd.detect(
            &[Complex::real((x + y) / s2)],
            &[Complex::real((x - y) / s2)],
        );
        // Ideal would be 2xy = 0.25; responsivity mismatch leaves an
        // uncancelled quadratic term.
        assert!((i - 2.0 * x * y).abs() > 1e-6);
    }
}
