//! Directional coupler: the interference element of DDot.

use crate::complex::Complex;
use crate::units::{Decibels, SquareMicrometers};
use crate::wdm::DispersionModel;

/// A 2x2 directional coupler.
///
/// The ideal transfer matrix is
///
/// ```text
/// [ t    j*k ]        t = sqrt(1 - kappa),  k = sqrt(kappa)
/// [ j*k  t   ]
/// ```
///
/// with `t = k = sqrt(2)/2` for the 3 dB 50:50 coupler used by DDot
/// (paper Section II-B). The wavelength dependence of `kappa` comes from a
/// [`DispersionModel`].
///
/// ```
/// use lt_photonics::devices::DirectionalCoupler;
/// use lt_photonics::Complex;
/// let dc = DirectionalCoupler::ideal_50_50();
/// let (o0, o1) = dc.couple(Complex::ONE, Complex::ZERO, 1550.0);
/// // Power splits evenly between the two output ports.
/// assert!((o0.norm_sqr() - 0.5).abs() < 1e-12);
/// assert!((o1.norm_sqr() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionalCoupler {
    dispersion: DispersionModel,
    insertion_loss: Decibels,
    area: SquareMicrometers,
}

impl DirectionalCoupler {
    /// The coupler of the paper's Table III (\[63\]): IL 0.33 dB,
    /// 5.25 x 2.4 um^2 footprint, with the paper's dispersion model.
    pub fn paper() -> Self {
        DirectionalCoupler {
            dispersion: DispersionModel::paper(),
            insertion_loss: Decibels(0.33),
            area: SquareMicrometers::from_footprint(5.25, 2.4),
        }
    }

    /// A lossless, dispersion-free 50:50 coupler (for analytic checks).
    pub fn ideal_50_50() -> Self {
        DirectionalCoupler {
            dispersion: DispersionModel::ideal(),
            insertion_loss: Decibels(0.0),
            area: SquareMicrometers(0.0),
        }
    }

    /// Replaces the dispersion model.
    pub fn with_dispersion(mut self, dispersion: DispersionModel) -> Self {
        self.dispersion = dispersion;
        self
    }

    /// Insertion loss per pass.
    pub fn insertion_loss(&self) -> Decibels {
        self.insertion_loss
    }

    /// Device footprint.
    pub fn area(&self) -> SquareMicrometers {
        self.area
    }

    /// Power coupling factor at the given wavelength.
    pub fn coupling_factor(&self, lambda_nm: f64) -> f64 {
        self.dispersion.coupling_factor(lambda_nm)
    }

    /// Amplitude through coefficient `t` at the given wavelength.
    pub fn through_coefficient(&self, lambda_nm: f64) -> f64 {
        self.dispersion.through_coefficient(lambda_nm)
    }

    /// Amplitude cross coefficient `k` at the given wavelength.
    pub fn cross_coefficient(&self, lambda_nm: f64) -> f64 {
        self.dispersion.cross_coefficient(lambda_nm)
    }

    /// Propagates the two input fields through the coupler at `lambda_nm`,
    /// including insertion loss, returning the two output fields
    /// `(top, bottom)`.
    pub fn couple(&self, in0: Complex, in1: Complex, lambda_nm: f64) -> (Complex, Complex) {
        let t = self.through_coefficient(lambda_nm);
        let k = self.cross_coefficient(lambda_nm);
        let jk = Complex::I * k;
        // Amplitude attenuation: power loss IL dB => field factor 10^(-IL/20).
        let a = self.insertion_loss.to_linear().sqrt();
        let out0 = (in0 * t + in1 * jk) * a;
        let out1 = (in0 * jk + in1 * t) * a;
        (out0, out1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_coupler_is_unitary() {
        let dc = DirectionalCoupler::ideal_50_50();
        let in0 = Complex::new(0.6, 0.2);
        let in1 = Complex::new(-0.3, 0.4);
        let (o0, o1) = dc.couple(in0, in1, 1550.0);
        let pin = in0.norm_sqr() + in1.norm_sqr();
        let pout = o0.norm_sqr() + o1.norm_sqr();
        assert!(
            (pin - pout).abs() < 1e-12,
            "lossless coupler conserves power"
        );
    }

    #[test]
    fn paper_coupler_attenuates_by_insertion_loss() {
        let dc = DirectionalCoupler::paper();
        let (o0, o1) = dc.couple(Complex::ONE, Complex::ZERO, 1550.0);
        let pout = o0.norm_sqr() + o1.norm_sqr();
        let expected = Decibels(0.33).to_linear();
        assert!((pout - expected).abs() < 1e-12);
    }

    #[test]
    fn interference_sum_and_difference() {
        // With equal-phase inputs x and y, outputs are (x+y)/sqrt(2) and
        // j(x-y)/sqrt(2) up to the port convention — powers must be
        // (x+y)^2/2 and (x-y)^2/2.
        let dc = DirectionalCoupler::ideal_50_50();
        let x = 0.8;
        let y = 0.3;
        // DDot applies a -90 deg phase to the upper arm; emulate it here.
        let in0 = Complex::real(x) * (-Complex::I);
        let in1 = Complex::real(y);
        let (o0, o1) = dc.couple(in0, in1, 1550.0);
        let p0 = o0.norm_sqr();
        let p1 = o1.norm_sqr();
        let s = 0.5 * (x + y) * (x + y);
        let d = 0.5 * (x - y) * (x - y);
        assert!((p0 - d).abs() < 1e-12 || (p0 - s).abs() < 1e-12);
        assert!((p0 + p1 - (s + d)).abs() < 1e-12);
        // Balanced subtraction recovers 2xy regardless of port ordering.
        assert!(((p0 - p1).abs() - 2.0 * x * y).abs() < 1e-12);
    }

    #[test]
    fn dispersion_changes_split_ratio_slightly() {
        let dc = DirectionalCoupler::paper();
        let kappa_center = dc.coupling_factor(1550.0);
        let kappa_edge = dc.coupling_factor(1554.8);
        assert!((kappa_center - 0.5).abs() < 1e-12);
        assert!(kappa_edge > kappa_center, "kappa grows with wavelength");
        assert!((kappa_edge / kappa_center - 1.0) < 0.025);
    }
}
