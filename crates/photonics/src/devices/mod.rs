//! Optical and mixed-signal device models (paper Table III).
//!
//! Each device couples a *behavioural* model (complex transfer function used
//! by the circuit-level DDot simulation) with a *cost* model (power, area,
//! insertion loss). The cost numbers are the component parameters adopted by
//! the paper; constructors named `paper()` return them.

mod converter;
mod coupler;
mod detector;
mod laser;
mod modulator;
mod mzi;
mod passive;
mod phase_shifter;
mod resonator;

pub use converter::{Adc, Dac, Tia};
pub use coupler::DirectionalCoupler;
pub use detector::{BalancedPhotodetector, Photodetector};
pub use laser::{Laser, MicroComb};
pub use modulator::MachZehnderModulator;
pub use mzi::MachZehnderInterferometer;
pub use passive::{WaveguideCrossing, YBranch};
pub use phase_shifter::{MemsPhaseShifter, PhaseShifter};
pub use resonator::{Microdisk, MicroringResonator};
