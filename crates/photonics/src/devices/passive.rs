//! Purely passive routing elements: Y-branches and waveguide crossings.

use crate::units::{Decibels, SquareMicrometers};

/// A 50/50 Y-branch power splitter (Table III, \[36\]). Cascades of
/// Y-branches implement the intra-core and inter-core optical broadcast
/// trees that share modulated operands across DDot units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YBranch {
    /// Excess insertion loss per split (on top of the inherent 3 dB).
    pub insertion_loss: Decibels,
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl YBranch {
    /// Table III values: IL 0.3 dB, 1.8 x 1.3 um^2.
    pub fn paper() -> Self {
        YBranch {
            insertion_loss: Decibels(0.3),
            area: SquareMicrometers::from_footprint(1.8, 1.3),
        }
    }

    /// Total loss seen by one leaf of a 1-to-`n` broadcast tree built from
    /// Y-branches: the inherent `10 log10(n)` split plus excess loss per
    /// stage.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn broadcast_loss(&self, n: usize) -> Decibels {
        assert!(n > 0, "broadcast fanout must be at least 1");
        if n == 1 {
            return Decibels(0.0);
        }
        let stages = (n as f64).log2().ceil();
        let inherent = 10.0 * (n as f64).log10();
        Decibels(inherent + stages * self.insertion_loss.value())
    }
}

/// A waveguide crossing. The crossbar topology of DPTC routes row and
/// column buses past each other; every crossing adds a small loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveguideCrossing {
    /// Insertion loss per crossing.
    pub insertion_loss: Decibels,
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl WaveguideCrossing {
    /// A typical low-loss SOI crossing: 0.02 dB, ~8 x 8 um^2. (The paper
    /// lists crossings in Fig. 2 but not in Table III; this is a standard
    /// foundry value, and the DDot link budget is insensitive to it.)
    pub fn typical() -> Self {
        WaveguideCrossing {
            insertion_loss: Decibels(0.02),
            area: SquareMicrometers::from_footprint(8.0, 8.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_loss_of_one_is_zero() {
        assert_eq!(YBranch::paper().broadcast_loss(1).value(), 0.0);
    }

    #[test]
    fn broadcast_loss_grows_with_fanout() {
        let y = YBranch::paper();
        let l2 = y.broadcast_loss(2);
        let l12 = y.broadcast_loss(12);
        // 1:2 split: 3.01 dB inherent + 0.3 excess.
        assert!((l2.value() - 3.31).abs() < 0.01);
        // 1:12 split: 10.79 dB inherent + 4 stages * 0.3 excess.
        assert!((l12.value() - 11.99).abs() < 0.01);
        assert!(l12.value() > l2.value());
    }

    #[test]
    fn crossing_loss_is_small() {
        assert!(WaveguideCrossing::typical().insertion_loss.value() < 0.1);
    }
}
