//! Phase shifters: the fixed -90 degree element of DDot and the MEMS
//! shifter used by the MZI-array baseline.

use crate::complex::Complex;
use crate::units::{Decibels, MilliWatts, SquareMicrometers};
use crate::wdm::DispersionModel;

/// A passive phase shifter applying a fixed phase `phi` at the centre
/// wavelength (wavelength-dependent per the dispersion model).
///
/// In DDot the shifter is set to -90 degrees and is *entirely passive*:
/// zero energy, no control, no thermal crosstalk (paper Section III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseShifter {
    nominal_rad: f64,
    dispersion: DispersionModel,
    insertion_loss: Decibels,
    area: SquareMicrometers,
}

impl PhaseShifter {
    /// The DDot phase shifter: -90 degrees, paper dispersion, with the
    /// MEMS shifter's loss/footprint from Table III standing in for the
    /// passive implementation's optical cost.
    pub fn ddot_paper() -> Self {
        PhaseShifter {
            nominal_rad: -std::f64::consts::FRAC_PI_2,
            dispersion: DispersionModel::paper(),
            insertion_loss: Decibels(0.33),
            area: SquareMicrometers::from_footprint(100.0, 45.0),
        }
    }

    /// An ideal shifter with arbitrary phase, no loss, no dispersion.
    pub fn ideal(nominal_rad: f64) -> Self {
        PhaseShifter {
            nominal_rad,
            dispersion: DispersionModel::ideal(),
            insertion_loss: Decibels(0.0),
            area: SquareMicrometers(0.0),
        }
    }

    /// Replaces the dispersion model.
    pub fn with_dispersion(mut self, dispersion: DispersionModel) -> Self {
        self.dispersion = dispersion;
        self
    }

    /// The commanded phase at the centre wavelength, radians.
    pub fn nominal_rad(&self) -> f64 {
        self.nominal_rad
    }

    /// The phase actually applied at `lambda_nm`, radians.
    pub fn phase_at(&self, lambda_nm: f64) -> f64 {
        self.dispersion.phase_shift(self.nominal_rad, lambda_nm)
    }

    /// Insertion loss per pass.
    pub fn insertion_loss(&self) -> Decibels {
        self.insertion_loss
    }

    /// Device footprint.
    pub fn area(&self) -> SquareMicrometers {
        self.area
    }

    /// Applies the shifter to a field at `lambda_nm` (loss included).
    pub fn apply(&self, field: Complex, lambda_nm: f64) -> Complex {
        let a = self.insertion_loss.to_linear().sqrt();
        field * Complex::from_phase(self.phase_at(lambda_nm)) * a
    }
}

/// The silicon-photonic MEMS phase shifter of Table III (\[42\]): the
/// *programmable* shifter the MZI-array baseline depends on, with a 2 us
/// response time that dominates its reconfiguration latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemsPhaseShifter {
    /// Insertion loss per pass.
    pub insertion_loss: Decibels,
    /// Device footprint.
    pub area: SquareMicrometers,
    /// Time to reprogram the phase, seconds.
    pub response_time_s: f64,
    /// Static hold power (MEMS is effectively zero-hold-power).
    pub hold_power: MilliWatts,
}

impl MemsPhaseShifter {
    /// Table III values: IL 0.33 dB, 100 x 45 um^2, 2 us response.
    pub fn paper() -> Self {
        MemsPhaseShifter {
            insertion_loss: Decibels(0.33),
            area: SquareMicrometers::from_footprint(100.0, 45.0),
            response_time_s: 2e-6,
            hold_power: MilliWatts(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn ddot_shifter_applies_minus_j() {
        let ps = PhaseShifter::ideal(-FRAC_PI_2);
        let out = ps.apply(Complex::ONE, 1550.0);
        assert!((out - (-Complex::I)).norm() < 1e-12);
    }

    #[test]
    fn paper_shifter_at_center_is_nominal() {
        let ps = PhaseShifter::ddot_paper();
        assert!((ps.phase_at(1550.0) + FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn dispersion_shifts_phase_off_center() {
        let ps = PhaseShifter::ddot_paper();
        let err = (ps.phase_at(1554.8) - ps.nominal_rad()).to_degrees();
        assert!((err.abs() - 0.28).abs() < 0.01, "err {err} deg");
    }

    #[test]
    fn loss_reduces_power_only() {
        let ps = PhaseShifter::ddot_paper();
        let out = ps.apply(Complex::ONE, 1550.0);
        let p = out.norm_sqr();
        assert!((p - Decibels(0.33).to_linear()).abs() < 1e-12);
    }

    #[test]
    fn mems_shifter_is_slow() {
        let mems = MemsPhaseShifter::paper();
        // 2 us is 10,000 photonic cycles at 5 GHz - the crux of the paper's
        // Challenge 1.
        let cycles = mems.response_time_s / 200e-12;
        assert!((cycles - 10_000.0).abs() < 1.0);
    }
}
