//! Microring and microdisk resonators: WDM (de)multiplexing filters and the
//! weight cells of the MRR-bank baseline.

use crate::units::{Decibels, MilliWatts, SquareMicrometers, TeraHertz};

/// A microdisk resonator (Table III, \[53\]) — the paper uses microdisks as
/// the WDM MUX/DEMUX filters. Its free spectral range bounds the usable
/// wavelength count (Eq. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Microdisk {
    /// Thermal locking power to stay on resonance.
    pub locking_power: MilliWatts,
    /// Insertion loss through the filter.
    pub insertion_loss: Decibels,
    /// Device footprint.
    pub area: SquareMicrometers,
    /// Free spectral range.
    pub fsr: TeraHertz,
}

impl Microdisk {
    /// Table III values: 0.275 mW locking, 0.93 dB IL, 4.8 x 4.8 um^2,
    /// FSR 5.6 THz (55.1 nm).
    pub fn paper() -> Self {
        Microdisk {
            locking_power: MilliWatts(0.275),
            insertion_loss: Decibels(0.93),
            area: SquareMicrometers::from_footprint(4.8, 4.8),
            fsr: TeraHertz(5.6),
        }
    }

    /// Normalized drop-port power transmission at detuning `delta_f_ghz`
    /// from resonance, for a filter of the given 3 dB bandwidth
    /// (a Lorentzian line shape).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_ghz` is not positive.
    pub fn drop_transmission(&self, delta_f_ghz: f64, bandwidth_ghz: f64) -> f64 {
        assert!(bandwidth_ghz > 0.0, "filter bandwidth must be positive");
        let half = bandwidth_ghz / 2.0;
        let peak = self.insertion_loss.to_linear();
        peak * half * half / (half * half + delta_f_ghz * delta_f_ghz)
    }
}

/// A microring resonator (Table III) — the weight cell of the MRR-bank
/// baseline. Unlike DDot's passive interferometer, every MRR must be
/// actively *locked* to its resonance, and in a weight-static dataflow that
/// locking power burns for the entire execution (paper Section V-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroringResonator {
    /// Power to tune the ring to a new weight value.
    pub tuning_power: MilliWatts,
    /// Static power to hold (lock) the encoded value, per 0.5 FSR of tuning
    /// range in the reference; we keep the aggregate mW value.
    pub locking_power: MilliWatts,
    /// Insertion loss through the ring.
    pub insertion_loss: Decibels,
    /// Device footprint.
    pub area: SquareMicrometers,
}

impl MicroringResonator {
    /// Table III values: tuning 0.21 mW, locking 1.2 mW/0.5FSR \[49\],
    /// IL 0.95 dB \[39\], 9.66 x 9.66 um^2 \[39\].
    pub fn paper() -> Self {
        MicroringResonator {
            tuning_power: MilliWatts(0.21),
            locking_power: MilliWatts(1.2),
            insertion_loss: Decibels(0.95),
            area: SquareMicrometers::from_footprint(9.66, 9.66),
        }
    }

    /// Intensity transmission for a *non-negative* encoded weight in
    /// `[0, 1]`. Incoherent intensity modulation cannot represent signs —
    /// this is the paper's Challenge 2 in code form.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is outside `[0, 1]`.
    pub fn transmission_for_weight(&self, weight: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&weight),
            "MRR intensity weight {weight} outside [0, 1]: incoherent rings cannot encode signs"
        );
        weight * self.insertion_loss.to_linear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microdisk_fsr_supports_112_channels() {
        use crate::units::Nanometers;
        use crate::wdm::max_channels_in_fsr;
        let md = Microdisk::paper();
        let bound = max_channels_in_fsr(md.fsr, Nanometers(1550.0), Nanometers(0.4));
        assert_eq!(bound.channels, 112);
    }

    #[test]
    fn drop_port_peaks_on_resonance() {
        let md = Microdisk::paper();
        let on = md.drop_transmission(0.0, 20.0);
        let off = md.drop_transmission(50.0, 20.0);
        assert!(on > off * 10.0, "adjacent channel strongly rejected");
        assert!((on - Decibels(0.93).to_linear()).abs() < 1e-12);
    }

    #[test]
    fn mrr_weight_range_is_non_negative_only() {
        let mrr = MicroringResonator::paper();
        assert!(mrr.transmission_for_weight(0.5) > 0.0);
        let r = std::panic::catch_unwind(|| mrr.transmission_for_weight(-0.1));
        assert!(r.is_err(), "negative weights must be rejected");
    }

    #[test]
    fn locking_dwarfs_tuning() {
        // The locking-vs-tuning gap is what makes the MRR baseline's
        // "op1-mod" bar >40% of its attention energy (Fig. 11).
        let mrr = MicroringResonator::paper();
        assert!(mrr.locking_power.value() > 5.0 * mrr.tuning_power.value());
    }
}
