//! Photonic device substrate for the Lightening-Transformer reproduction.
//!
//! This crate models the optical building blocks of the paper's accelerator
//! (HPCA 2024, arXiv:2305.19533): phase shifters, directional couplers,
//! Mach-Zehnder modulators, microring/microdisk resonators, photodetectors,
//! lasers, and the electrical converters (DAC/ADC/TIA) that surround them.
//!
//! Every device carries two things:
//!
//! 1. **Behaviour** — a complex-valued transfer function used by the
//!    circuit-level simulation in `lt-dptc` (our substitute for Lumerical
//!    INTERCONNECT), and
//! 2. **Cost** — the power / area / insertion-loss parameters of Table III of
//!    the paper, consumed by the architecture models in `lt-arch`.
//!
//! The crate also provides the WDM machinery (DWDM grid, coupling-length
//! dispersion, FSR-limited channel counts — Eq. 10 of the paper), a
//! deterministic Gaussian noise source, and optical link-budget accounting.
//!
//! # Example
//!
//! ```
//! use lt_photonics::wdm::WavelengthGrid;
//! use lt_photonics::devices::DirectionalCoupler;
//!
//! // 12 DWDM channels at 0.4 nm spacing around 1550 nm, as in the paper.
//! let grid = WavelengthGrid::dwdm(12);
//! let dc = DirectionalCoupler::ideal_50_50();
//! // The coupling factor at the centre wavelength is exactly 1/2.
//! let kappa = dc.coupling_factor(grid.center_nm());
//! assert!((kappa - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod complex;
pub mod constants;
pub mod devices;
pub mod link_budget;
pub mod noise;
pub mod units;
pub mod wdm;

pub use complex::Complex;
pub use link_budget::LinkBudget;
pub use noise::GaussianSampler;
pub use units::{Decibels, MilliWatts, Nanometers, SquareMicrometers};
pub use wdm::WavelengthGrid;
