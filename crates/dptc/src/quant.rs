//! Symmetric uniform quantization for MZM operand encoding
//! (re-exported from [`lt_core`]).
//!
//! The quantizer is pure signal-chain machinery shared by the DPTC DACs,
//! the baseline backends, and the NN stack's fake-quantization, so it
//! lives in the `lt-core` foundation crate; this module re-exports it
//! under its historical path.

pub use lt_core::quant::Quantizer;
