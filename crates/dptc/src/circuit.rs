//! Circuit-level DDot simulation: field propagation through real device
//! transfer matrices.
//!
//! This is the repository's substitute for the paper's Lumerical
//! INTERCONNECT functional validation (Section V-A): every optical element
//! is instantiated from [`lt_photonics::devices`], fields are propagated
//! per wavelength, and detection squares and subtracts — the same signal
//! path as the commercial simulator, in pure Rust.

use crate::ddot::perturb_magnitude;
use crate::noise_model::NoiseModel;
use lt_photonics::devices::{
    BalancedPhotodetector, DirectionalCoupler, MachZehnderModulator, PhaseShifter,
};
use lt_photonics::noise::GaussianSampler;
use lt_photonics::wdm::WavelengthGrid;
use lt_photonics::Complex;

/// A netlist-level DDot: two MZM encoders, a -90 degree phase shifter on
/// the `y` arm, a directional coupler, and a balanced photodetector pair.
///
/// The output is calibrated (as a receiver's TIA gain would be) so that the
/// ideal design point returns exactly the dot product; deviations then come
/// only from physics: dispersion, loss asymmetry, and injected noise.
///
/// ```
/// use lt_dptc::DdotCircuit;
/// let circuit = DdotCircuit::paper(12);
/// let x = vec![0.5; 12];
/// let y = vec![-0.25; 12];
/// let out = circuit.dot(&x, &y);
/// let exact: f64 = 12.0 * 0.5 * -0.25;
/// assert!((out - exact).abs() < 0.01 * exact.abs());
/// ```
#[derive(Debug, Clone)]
pub struct DdotCircuit {
    grid: WavelengthGrid,
    mzm: MachZehnderModulator,
    ps: PhaseShifter,
    dc: DirectionalCoupler,
    bpd: BalancedPhotodetector,
    /// Receiver gain normalizing the ideal design point to `x . y`.
    calibration: f64,
}

impl DdotCircuit {
    /// Builds the paper's DDot with real device parameters (losses and
    /// dispersion from Table III) over `n` DWDM channels.
    pub fn paper(n: usize) -> Self {
        Self::assemble(
            WavelengthGrid::dwdm(n),
            MachZehnderModulator::paper(),
            PhaseShifter::ddot_paper(),
            DirectionalCoupler::paper(),
        )
    }

    /// Builds an idealized circuit: lossless, dispersion-free devices.
    pub fn ideal(n: usize) -> Self {
        Self::assemble(
            WavelengthGrid::dwdm(n),
            MachZehnderModulator::ideal(),
            PhaseShifter::ideal(-std::f64::consts::FRAC_PI_2),
            DirectionalCoupler::ideal_50_50(),
        )
    }

    fn assemble(
        grid: WavelengthGrid,
        mzm: MachZehnderModulator,
        ps: PhaseShifter,
        dc: DirectionalCoupler,
    ) -> Self {
        // Field attenuation of the two arms (x: MZM only; y: MZM + PS) and
        // the coupler's common loss; the receiver calibrates these out.
        let a_x = mzm.insertion_loss().to_linear().sqrt();
        let a_y = a_x * ps.insertion_loss().to_linear().sqrt();
        let a_dc2 = dc.insertion_loss().to_linear();
        let calibration = 1.0 / (2.0 * a_x * a_y * a_dc2);
        DdotCircuit {
            grid,
            mzm,
            ps,
            dc,
            bpd: BalancedPhotodetector::matched(),
            calibration,
        }
    }

    /// Number of WDM channels.
    pub fn capacity(&self) -> usize {
        self.grid.len()
    }

    /// The wavelength grid used by this circuit.
    pub fn grid(&self) -> &WavelengthGrid {
        &self.grid
    }

    /// Deterministic propagation (device dispersion and losses only).
    ///
    /// # Panics
    ///
    /// Panics if operand lengths differ, exceed capacity, or fall outside
    /// the MZM's `[-1, 1]` encoding range.
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        self.propagate(x, y, &NoiseModel::noiseless(), &mut GaussianSampler::new(0))
    }

    /// Propagation with encoding noise injected on the modulated fields and
    /// systematic noise on the detected output.
    ///
    /// # Panics
    ///
    /// Panics if operand lengths differ or exceed capacity.
    pub fn dot_noisy(&self, x: &[f64], y: &[f64], noise: &NoiseModel, seed: u64) -> f64 {
        let mut rng = GaussianSampler::new(seed);
        self.propagate(x, y, noise, &mut rng)
    }

    /// As [`DdotCircuit::dot_noisy`] but drawing from a caller-managed RNG
    /// — used by [`crate::Dptc::matmul`] at `Fidelity::Circuit` so that a
    /// whole crossbar shares one reproducible noise stream.
    pub fn dot_noisy_with(
        &self,
        x: &[f64],
        y: &[f64],
        noise: &NoiseModel,
        rng: &mut GaussianSampler,
    ) -> f64 {
        self.propagate(x, y, noise, rng)
    }

    fn propagate(
        &self,
        x: &[f64],
        y: &[f64],
        noise: &NoiseModel,
        rng: &mut GaussianSampler,
    ) -> f64 {
        assert_eq!(x.len(), y.len(), "operands must have equal length");
        assert!(
            x.len() <= self.capacity(),
            "vector length {} exceeds wavelength capacity {}",
            x.len(),
            self.capacity()
        );
        let wavelengths = self.grid.wavelengths_nm();
        let mut port0 = Vec::with_capacity(x.len());
        let mut port1 = Vec::with_capacity(x.len());
        // One relative-phase draw per DDot: the drift lives on the shared
        // operand paths, so every wavelength in this coupler sees the
        // same realization (matching the analytic fidelity).
        let dphi_d = if noise.sigma_phase_rad > 0.0 {
            rng.normal(0.0, noise.sigma_phase_rad)
        } else {
            0.0
        };
        for i in 0..x.len() {
            let lambda = wavelengths[i];
            let xh = perturb_magnitude(x[i], noise.sigma_magnitude, rng).clamp(-1.0, 1.0);
            let yh = perturb_magnitude(y[i], noise.sigma_magnitude, rng).clamp(-1.0, 1.0);
            // Encode. The relative phase drift between the arms is folded
            // into the y field (the paper's single equivalent drift term,
            // Section III-C). Negative values carry a pi phase.
            let a_mzm = self.mzm.insertion_loss().to_linear().sqrt();
            let ex = Complex::real(xh) * a_mzm;
            let sign_phase = if yh < 0.0 { std::f64::consts::PI } else { 0.0 };
            let ey = Complex::from_polar(yh.abs() * a_mzm, sign_phase + dphi_d);
            // -90 degree phase shifter on the y arm (dispersion-aware).
            let ey = self.ps.apply(ey, lambda);
            // Interference in the coupler (dispersion-aware).
            let (z0, z1) = self.dc.couple(ex, ey, lambda);
            port0.push(z0);
            port1.push(z1);
        }
        // Balanced detection accumulates across wavelengths for free.
        let raw = self.bpd.detect(&port0, &port1);
        let calibrated = raw * self.calibration;
        crate::ddot::apply_systematic(calibrated, noise, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddot::DDot;

    fn rand_vec(rng: &mut GaussianSampler, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
    }

    #[test]
    fn ideal_circuit_is_exact() {
        let c = DdotCircuit::ideal(12);
        let mut rng = GaussianSampler::new(1);
        for _ in 0..50 {
            let x = rand_vec(&mut rng, 12);
            let y = rand_vec(&mut rng, 12);
            let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((c.dot(&x, &y) - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_circuit_close_to_exact() {
        // Dispersion + loss asymmetry only: sub-percent deviation.
        let c = DdotCircuit::paper(12);
        let mut rng = GaussianSampler::new(2);
        for _ in 0..50 {
            let x = rand_vec(&mut rng, 12);
            let y = rand_vec(&mut rng, 12);
            let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let got = c.dot(&x, &y);
            assert!(
                (got - exact).abs() < 0.02 * 12f64.sqrt(),
                "got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn circuit_matches_analytic_model_statistics() {
        // The analytic Eq. 9 path and the netlist path must agree on the
        // noise-free deterministic bias (dispersion-induced), which
        // validates the analytic model the accuracy experiments rely on.
        let circuit = DdotCircuit::paper(25);
        let analytic = DDot::new(25);
        let noise =
            NoiseModel::noiseless().with_dispersion(lt_photonics::wdm::DispersionModel::paper());
        let mut rng = GaussianSampler::new(3);
        for _ in 0..50 {
            let x = rand_vec(&mut rng, 25);
            let y = rand_vec(&mut rng, 25);
            let c = circuit.dot(&x, &y);
            let a = analytic.dot_noisy(&x, &y, &noise, 0);
            assert!(
                (c - a).abs() < 5e-3,
                "circuit {c} vs analytic {a}: port conventions must line up"
            );
        }
    }

    #[test]
    fn noisy_circuit_is_seed_deterministic() {
        let c = DdotCircuit::paper(12);
        let x = vec![0.4; 12];
        let y = vec![-0.6; 12];
        let nm = NoiseModel::paper_default();
        assert_eq!(c.dot_noisy(&x, &y, &nm, 7), c.dot_noisy(&x, &y, &nm, 7));
    }

    #[test]
    fn fig6_error_band_4bit_and_8bit() {
        // Reproduce the Fig. 6 experiment shape: random length-12 dot
        // products with the paper's noise at 4-bit/8-bit quantization.
        use crate::quant::Quantizer;
        let c = DdotCircuit::paper(12);
        let nm = NoiseModel::paper_default();
        let mut rng = GaussianSampler::new(4);
        for bits in [4u32, 8] {
            let q = Quantizer::new(bits);
            let mut errs = Vec::new();
            for t in 0..200 {
                let x: Vec<f64> = rand_vec(&mut rng, 12)
                    .into_iter()
                    .map(|v| q.quantize_unit(v))
                    .collect();
                let y: Vec<f64> = rand_vec(&mut rng, 12)
                    .into_iter()
                    .map(|v| q.quantize_unit(v))
                    .collect();
                let exact: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
                let got = c.dot_noisy(&x, &y, &nm, 1000 + t);
                errs.push((got - exact).abs() / 12.0);
            }
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            assert!(
                mean > 0.001 && mean < 0.06,
                "{bits}-bit mean normalized error {mean} outside plausible band"
            );
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_operands() {
        DdotCircuit::ideal(4).dot(&[0.0; 4], &[0.0; 3]);
    }
}
