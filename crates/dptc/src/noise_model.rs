//! The non-ideality model of paper Section III-C.

use lt_photonics::wdm::DispersionModel;

/// Configuration of every noise source injected into the analytic and
/// circuit-level DDot/DPTC simulations.
///
/// * **Magnitude noise** — each encoded operand value `x` becomes
///   `x + N(0, (sigma_mag * |x|)^2)` (relative Gaussian drift).
/// * **Phase noise** — the relative phase between the two operand paths at
///   each DDot drifts by `N(0, sigma_phase^2)`.
/// * **Dispersion** — per-wavelength deviation of the coupler's `kappa` and
///   the phase shifter's phase from their design points.
/// * **Systematic output noise** — the detected output is multiplied by
///   `(1 + N(0, sigma_systematic^2))`, covering photodetection noise and
///   residual coupler imbalance ("Other Noises" in Section III-C).
///
/// ```
/// use lt_dptc::NoiseModel;
/// let nm = NoiseModel::paper_default();
/// assert_eq!(nm.sigma_magnitude, 0.03);
/// assert!((nm.sigma_phase_rad.to_degrees() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Relative std-dev of operand magnitude drift (paper: 0.03).
    pub sigma_magnitude: f64,
    /// Std-dev of the relative phase drift in radians (paper: 2 degrees).
    pub sigma_phase_rad: f64,
    /// Std-dev of the systematic multiplicative output noise (paper: 0.05).
    pub sigma_systematic: f64,
    /// Wavelength-dependent device response; `DispersionModel::ideal()`
    /// disables dispersion.
    pub dispersion: DispersionModel,
}

impl NoiseModel {
    /// The paper's functional-validation operating point: magnitude std
    /// 0.03, phase std 2 degrees, systematic std 0.05, dispersion on.
    pub fn paper_default() -> Self {
        NoiseModel {
            sigma_magnitude: 0.03,
            sigma_phase_rad: 2f64.to_radians(),
            sigma_systematic: 0.05,
            dispersion: DispersionModel::paper(),
        }
    }

    /// No noise at all: the analytic path degenerates to the exact product.
    pub fn noiseless() -> Self {
        NoiseModel {
            sigma_magnitude: 0.0,
            sigma_phase_rad: 0.0,
            sigma_systematic: 0.0,
            dispersion: DispersionModel::ideal(),
        }
    }

    /// Returns a copy with a different magnitude-noise std-dev.
    pub fn with_magnitude(mut self, sigma: f64) -> Self {
        self.sigma_magnitude = sigma;
        self
    }

    /// Returns a copy with a different phase-noise std-dev, in degrees.
    pub fn with_phase_degrees(mut self, deg: f64) -> Self {
        self.sigma_phase_rad = deg.to_radians();
        self
    }

    /// Returns a copy with a different systematic-noise std-dev.
    pub fn with_systematic(mut self, sigma: f64) -> Self {
        self.sigma_systematic = sigma;
        self
    }

    /// Returns a copy with dispersion replaced.
    pub fn with_dispersion(mut self, dispersion: DispersionModel) -> Self {
        self.dispersion = dispersion;
        self
    }

    /// Whether every stochastic term is zero (dispersion may still bias the
    /// result deterministically).
    pub fn is_deterministic(&self) -> bool {
        self.sigma_magnitude == 0.0 && self.sigma_phase_rad == 0.0 && self.sigma_systematic == 0.0
    }
}

impl Default for NoiseModel {
    /// Defaults to the paper's operating point.
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_is_deterministic() {
        assert!(NoiseModel::noiseless().is_deterministic());
        assert!(!NoiseModel::paper_default().is_deterministic());
    }

    #[test]
    fn builders_replace_fields() {
        let nm = NoiseModel::noiseless()
            .with_magnitude(0.08)
            .with_phase_degrees(7.0)
            .with_systematic(0.01);
        assert_eq!(nm.sigma_magnitude, 0.08);
        assert!((nm.sigma_phase_rad.to_degrees() - 7.0).abs() < 1e-12);
        assert_eq!(nm.sigma_systematic, 0.01);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(NoiseModel::default(), NoiseModel::paper_default());
    }
}
