//! Hard-fault injection: dead wavelengths and stuck modulators.
//!
//! Section III-C covers *parametric* noise (drift, dispersion); a real
//! deployment also sees *catastrophic* faults — a comb line dies, an MZM
//! sticks at a bias point. This module injects such faults into the
//! analytic DPTC model so their accuracy impact (and the effectiveness of
//! remapping around them) can be quantified.

use crate::ddot::WavelengthCoefficients;
use crate::dptc::Dptc;
use crate::noise_model::NoiseModel;
use lt_photonics::noise::GaussianSampler;

/// A hard fault in one wavelength channel of a DPTC core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelFault {
    /// The comb line carries no power: the channel contributes nothing
    /// (its products silently vanish from every dot product).
    DeadWavelength {
        /// Index of the dead channel.
        channel: usize,
    },
    /// One row modulator is stuck encoding a fixed value on one channel:
    /// the intended operand is replaced by the stuck value.
    StuckModulator {
        /// Crossbar row whose modulator is stuck.
        row: usize,
        /// Affected wavelength channel.
        channel: usize,
        /// The value the modulator is frozen at, in `[-1, 1]`.
        value: f64,
    },
}

/// A set of hard faults applied to a core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSet {
    faults: Vec<ChannelFault>,
}

impl FaultSet {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a fault.
    pub fn with(mut self, fault: ChannelFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The injected faults.
    pub fn faults(&self) -> &[ChannelFault] {
        &self.faults
    }

    /// Whether any fault is present.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies the faults to an operand pair before encoding: returns the
    /// effective `(a, b)` matrices seen by the optics.
    ///
    /// # Panics
    ///
    /// Panics if a fault references a row/channel outside the operand
    /// shapes.
    pub fn apply(&self, a: &[Vec<f64>], b: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut a = a.to_vec();
        let mut b = b.to_vec();
        for fault in &self.faults {
            match *fault {
                ChannelFault::DeadWavelength { channel } => {
                    assert!(channel < b.len(), "channel {channel} out of range");
                    for row in a.iter_mut() {
                        row[channel] = 0.0;
                    }
                    // Zeroing one side suffices; zero the other too so the
                    // additive dispersion term also vanishes.
                    for v in b[channel].iter_mut() {
                        *v = 0.0;
                    }
                }
                ChannelFault::StuckModulator { row, channel, value } => {
                    assert!(row < a.len(), "row {row} out of range");
                    assert!(channel < a[row].len(), "channel {channel} out of range");
                    a[row][channel] = value.clamp(-1.0, 1.0);
                }
            }
        }
        (a, b)
    }
}

impl Dptc {
    /// One-shot noisy MM with hard faults injected (see [`FaultSet`]).
    ///
    /// # Panics
    ///
    /// Panics if operand shapes do not match the core geometry or a fault
    /// is out of range.
    pub fn matmul_noisy_faulty(
        &self,
        a: &[Vec<f64>],
        b: &[Vec<f64>],
        noise: &NoiseModel,
        faults: &FaultSet,
        seed: u64,
    ) -> Vec<Vec<f64>> {
        let (fa, fb) = faults.apply(a, b);
        let mut rng = GaussianSampler::new(seed);
        let coeffs = WavelengthCoefficients::compute(self.ddot().grid(), &noise.dispersion);
        self.matmul_noisy_with(&fa, &fb, noise, &coeffs, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dptc::DptcConfig;

    fn rand_matrix(rng: &mut GaussianSampler, r: usize, c: usize) -> Vec<Vec<f64>> {
        (0..r)
            .map(|_| (0..c).map(|_| rng.uniform_in(-1.0, 1.0)).collect())
            .collect()
    }

    #[test]
    fn dead_wavelength_removes_one_channel_exactly() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(1);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let faults = FaultSet::none().with(ChannelFault::DeadWavelength { channel: 5 });
        let got = core.matmul_noisy_faulty(&a, &b, &NoiseModel::noiseless(), &faults, 0);
        for i in 0..12 {
            for j in 0..12 {
                let expect: f64 = (0..12)
                    .filter(|&l| l != 5)
                    .map(|l| a[i][l] * b[l][j])
                    .sum();
                assert!((got[i][j] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dead_wavelength_can_be_remapped_around() {
        // The scheduler's remedy: skip the dead channel when tiling (use
        // 11 of 12 lanes). The result is exact again, at ~8% lower
        // throughput - graceful degradation.
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(2);
        let a = rand_matrix(&mut rng, 12, 11);
        let b = rand_matrix(&mut rng, 11, 12);
        // Pack the 11 live lanes into channels 0..11, leave channel 11 dark.
        let mut a_pad = a.clone();
        for row in a_pad.iter_mut() {
            row.push(0.0);
        }
        let mut b_pad = b.clone();
        b_pad.push(vec![0.0; 12]);
        let faults = FaultSet::none().with(ChannelFault::DeadWavelength { channel: 11 });
        let got = core.matmul_noisy_faulty(&a_pad, &b_pad, &NoiseModel::noiseless(), &faults, 0);
        for i in 0..12 {
            for j in 0..12 {
                let expect: f64 = (0..11).map(|l| a[i][l] * b[l][j]).sum();
                assert!((got[i][j] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stuck_modulator_poisons_only_its_row() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(3);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let clean = core.matmul_ideal(&a, &b);
        let faults = FaultSet::none().with(ChannelFault::StuckModulator {
            row: 3,
            channel: 7,
            value: 0.9,
        });
        let got = core.matmul_noisy_faulty(&a, &b, &NoiseModel::noiseless(), &faults, 0);
        for i in 0..12 {
            for j in 0..12 {
                let err = (got[i][j] - clean[i][j]).abs();
                if i == 3 {
                    let expect_err = ((0.9 - a[3][7]) * b[7][j]).abs();
                    assert!((err - expect_err).abs() < 1e-9);
                } else {
                    assert!(err < 1e-12, "row {i} must be unaffected");
                }
            }
        }
    }

    #[test]
    fn faults_compose() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(4);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let faults = FaultSet::none()
            .with(ChannelFault::DeadWavelength { channel: 0 })
            .with(ChannelFault::StuckModulator { row: 1, channel: 2, value: -1.0 });
        assert_eq!(faults.faults().len(), 2);
        assert!(!faults.is_empty());
        let got = core.matmul_noisy_faulty(&a, &b, &NoiseModel::noiseless(), &faults, 0);
        // Spot-check one unaffected row.
        for j in 0..12 {
            let expect: f64 = (1..12).map(|l| a[5][l] * b[l][j]).sum();
            assert!((got[5][j] - expect).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fault_rejected() {
        let faults = FaultSet::none().with(ChannelFault::DeadWavelength { channel: 99 });
        let a = vec![vec![0.0; 12]; 12];
        let b = vec![vec![0.0; 12]; 12];
        faults.apply(&a, &b);
    }
}
