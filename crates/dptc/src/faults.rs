//! Hard-fault injection: dead wavelengths and stuck modulators.
//!
//! Section III-C covers *parametric* noise (drift, dispersion); a real
//! deployment also sees *catastrophic* faults — a comb line dies, an MZM
//! sticks at a bias point. This module injects such faults into the
//! analytic DPTC model so their accuracy impact (and the effectiveness of
//! remapping around them) can be quantified.

use crate::ddot::WavelengthCoefficients;
use crate::dptc::Dptc;
use crate::noise_model::NoiseModel;
use lt_core::{GaussianSampler, Matrix64, MatrixView};

/// A hard fault in one wavelength channel of a DPTC core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelFault {
    /// The comb line carries no power: the channel contributes nothing
    /// (its products silently vanish from every dot product).
    DeadWavelength {
        /// Index of the dead channel.
        channel: usize,
    },
    /// One row modulator is stuck encoding a fixed value on one channel:
    /// the intended operand is replaced by the stuck value.
    StuckModulator {
        /// Crossbar row whose modulator is stuck.
        row: usize,
        /// Affected wavelength channel.
        channel: usize,
        /// The value the modulator is frozen at, in `[-1, 1]`.
        value: f64,
    },
}

/// A set of hard faults applied to a core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSet {
    faults: Vec<ChannelFault>,
}

impl FaultSet {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a fault.
    pub fn with(mut self, fault: ChannelFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The injected faults.
    pub fn faults(&self) -> &[ChannelFault] {
        &self.faults
    }

    /// Whether any fault is present.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies the faults to an operand pair before encoding: returns the
    /// effective `(a, b)` matrices seen by the optics.
    ///
    /// # Panics
    ///
    /// Panics if a fault references a row/channel outside the operand
    /// shapes.
    pub fn apply(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>) -> (Matrix64, Matrix64) {
        let mut a = a.to_matrix();
        let mut b = b.to_matrix();
        for fault in &self.faults {
            match *fault {
                ChannelFault::DeadWavelength { channel } => {
                    assert!(channel < b.rows(), "channel {channel} out of range");
                    for i in 0..a.rows() {
                        a.set(i, channel, 0.0);
                    }
                    // Zeroing one side suffices; zero the other too so the
                    // additive dispersion term also vanishes.
                    for v in b.row_mut(channel) {
                        *v = 0.0;
                    }
                }
                ChannelFault::StuckModulator {
                    row,
                    channel,
                    value,
                } => {
                    assert!(row < a.rows(), "row {row} out of range");
                    assert!(channel < a.cols(), "channel {channel} out of range");
                    a.set(row, channel, value.clamp(-1.0, 1.0));
                }
            }
        }
        (a, b)
    }
}

impl Dptc {
    /// One-shot noisy MM with hard faults injected (see [`FaultSet`]).
    ///
    /// # Panics
    ///
    /// Panics if operand shapes do not match the core geometry or a fault
    /// is out of range.
    pub fn matmul_noisy_faulty(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        noise: &NoiseModel,
        faults: &FaultSet,
        seed: u64,
    ) -> Matrix64 {
        let (fa, fb) = faults.apply(a, b);
        let mut rng = GaussianSampler::new(seed);
        let coeffs = WavelengthCoefficients::compute(self.ddot().grid(), &noise.dispersion);
        self.mm_noisy_with(fa.view(), fb.view(), noise, &coeffs, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Fidelity;
    use crate::dptc::DptcConfig;

    fn rand_matrix(rng: &mut GaussianSampler, r: usize, c: usize) -> Matrix64 {
        Matrix64::from_fn(r, c, |_, _| rng.uniform_in(-1.0, 1.0))
    }

    #[test]
    fn dead_wavelength_removes_one_channel_exactly() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(1);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let faults = FaultSet::none().with(ChannelFault::DeadWavelength { channel: 5 });
        let got =
            core.matmul_noisy_faulty(a.view(), b.view(), &NoiseModel::noiseless(), &faults, 0);
        for i in 0..12 {
            for j in 0..12 {
                let expect: f64 = (0..12)
                    .filter(|&l| l != 5)
                    .map(|l| a.get(i, l) * b.get(l, j))
                    .sum();
                assert!((got.get(i, j) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dead_wavelength_can_be_remapped_around() {
        // The scheduler's remedy: skip the dead channel when tiling (use
        // 11 of 12 lanes). The result is exact again, at ~8% lower
        // throughput - graceful degradation.
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(2);
        let a = rand_matrix(&mut rng, 12, 11);
        let b = rand_matrix(&mut rng, 11, 12);
        // Pack the 11 live lanes into channels 0..11, leave channel 11 dark.
        let a_pad = Matrix64::from_fn(12, 12, |i, j| if j < 11 { a.get(i, j) } else { 0.0 });
        let b_pad = Matrix64::from_fn(12, 12, |i, j| if i < 11 { b.get(i, j) } else { 0.0 });
        let faults = FaultSet::none().with(ChannelFault::DeadWavelength { channel: 11 });
        let got = core.matmul_noisy_faulty(
            a_pad.view(),
            b_pad.view(),
            &NoiseModel::noiseless(),
            &faults,
            0,
        );
        let exact = lt_core::reference_gemm(&a.view(), &b.view());
        assert!(got.max_abs_diff(&exact) < 1e-9);
    }

    #[test]
    fn stuck_modulator_poisons_only_its_row() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(3);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let clean = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
        let faults = FaultSet::none().with(ChannelFault::StuckModulator {
            row: 3,
            channel: 7,
            value: 0.9,
        });
        let got =
            core.matmul_noisy_faulty(a.view(), b.view(), &NoiseModel::noiseless(), &faults, 0);
        for i in 0..12 {
            for j in 0..12 {
                let err = (got.get(i, j) - clean.get(i, j)).abs();
                if i == 3 {
                    let expect_err = ((0.9 - a.get(3, 7)) * b.get(7, j)).abs();
                    assert!((err - expect_err).abs() < 1e-9);
                } else {
                    assert!(err < 1e-12, "row {i} must be unaffected");
                }
            }
        }
    }

    #[test]
    fn faults_compose() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(4);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let faults = FaultSet::none()
            .with(ChannelFault::DeadWavelength { channel: 0 })
            .with(ChannelFault::StuckModulator {
                row: 1,
                channel: 2,
                value: -1.0,
            });
        assert_eq!(faults.faults().len(), 2);
        assert!(!faults.is_empty());
        let got =
            core.matmul_noisy_faulty(a.view(), b.view(), &NoiseModel::noiseless(), &faults, 0);
        // Spot-check one unaffected row.
        for j in 0..12 {
            let expect: f64 = (1..12).map(|l| a.get(5, l) * b.get(l, j)).sum();
            assert!((got.get(5, j) - expect).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fault_rejected() {
        let faults = FaultSet::none().with(ChannelFault::DeadWavelength { channel: 99 });
        let a = Matrix64::zeros(12, 12);
        let b = Matrix64::zeros(12, 12);
        faults.apply(a.view(), b.view());
    }
}
