//! DDot: the dynamically-operated full-range optical dot-product engine
//! (paper Section III-A).

use crate::noise_model::NoiseModel;
use lt_photonics::noise::GaussianSampler;
use lt_photonics::wdm::{DispersionModel, WavelengthGrid};

use std::f64::consts::FRAC_PI_2;

/// Per-wavelength device coefficients entering the noisy transfer function
/// (paper Eq. 8/9): the coupler's through/cross amplitudes and the
/// dispersion-induced phase error of the -90 degree shifter.
#[derive(Debug, Clone, PartialEq)]
pub struct WavelengthCoefficients {
    /// Through amplitude `t_i = sqrt(1 - kappa(lambda_i))`.
    pub t: Vec<f64>,
    /// Cross amplitude `k_i = sqrt(kappa(lambda_i))`.
    pub k: Vec<f64>,
    /// Dispersion-induced phase error `delta_phi_lambda_i`, radians.
    pub dphi: Vec<f64>,
    /// Precomputed zero-phase-drift multiplier
    /// `2 t_i k_i (-sin(-pi/2 + dphi_i)) = 2 t_i k_i cos(dphi_i)` — the
    /// whole multiplicative term of Eq. 9 when no per-DDot phase noise
    /// is drawn. Hoisting it out of the per-element loop removes the
    /// `sin` from every deterministic MAC (the quantized digital
    /// reference and every zero-sigma tile).
    pub mult0: Vec<f64>,
    /// Precomputed drift-quadrature multiplier `2 t_i k_i sin(dphi_i)`.
    /// With a per-DDot phase drift `g`, the Eq. 9 multiplier expands by
    /// the angle-addition identity to
    /// `2 t k cos(dphi_i + g) = mult0_i cos(g) - msin_i sin(g)`, so one
    /// `sin_cos` per DDot output covers every wavelength and the MAC
    /// loop stays free of transcendentals.
    pub msin: Vec<f64>,
    /// Precomputed coupler-imbalance coefficient `(t_i^2 - k_i^2) / 2`
    /// multiplying the additive `(x^2 - y^2)` term of Eq. 9.
    pub imbalance: Vec<f64>,
}

impl WavelengthCoefficients {
    /// Computes the coefficients of `grid` under `dispersion`.
    pub fn compute(grid: &WavelengthGrid, dispersion: &DispersionModel) -> Self {
        let mut t = Vec::with_capacity(grid.len());
        let mut k = Vec::with_capacity(grid.len());
        let mut dphi = Vec::with_capacity(grid.len());
        let mut mult0 = Vec::with_capacity(grid.len());
        let mut msin = Vec::with_capacity(grid.len());
        let mut imbalance = Vec::with_capacity(grid.len());
        for &lambda in grid.wavelengths_nm() {
            let ti = dispersion.through_coefficient(lambda);
            let ki = dispersion.cross_coefficient(lambda);
            let dphi_i = dispersion.phase_error(-FRAC_PI_2, lambda);
            t.push(ti);
            k.push(ki);
            dphi.push(dphi_i);
            mult0.push(2.0 * ti * ki * (-(dphi_i - FRAC_PI_2).sin()));
            msin.push(2.0 * ti * ki * dphi_i.sin());
            imbalance.push((ti * ti - ki * ki) / 2.0);
        }
        WavelengthCoefficients {
            t,
            k,
            dphi,
            mult0,
            msin,
            imbalance,
        }
    }

    /// Number of wavelengths covered.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the coefficient set is empty.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }
}

/// A DDot engine processing up to `n` WDM channels.
///
/// Each input pair `(x_i, y_i)` rides its own wavelength; all pairs
/// interfere in parallel in the shared coupler and sum for free on the
/// photodetectors. Both operands switch at modulation speed (~10 ps), so
/// there is no weight-mapping or device-programming latency — the property
/// that makes attention workloads viable (paper Insight 1).
///
/// ```
/// use lt_dptc::{DDot, NoiseModel};
/// let ddot = DDot::new(12);
/// let x: Vec<f64> = (0..12).map(|i| (i as f64 / 11.0) - 0.5).collect();
/// let y: Vec<f64> = (0..12).map(|i| 0.5 - (i as f64 / 11.0)).collect();
/// let exact = ddot.dot_ideal(&x, &y);
/// let noisy = ddot.dot_noisy(&x, &y, &NoiseModel::paper_default(), 1);
/// assert!((exact - noisy).abs() < 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct DDot {
    grid: WavelengthGrid,
}

impl DDot {
    /// Creates an engine with `n` DWDM channels (0.4 nm spacing around
    /// 1550 nm, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        DDot {
            grid: WavelengthGrid::dwdm(n),
        }
    }

    /// Creates an engine over an explicit wavelength grid.
    pub fn with_grid(grid: WavelengthGrid) -> Self {
        DDot { grid }
    }

    /// The underlying wavelength grid.
    pub fn grid(&self) -> &WavelengthGrid {
        &self.grid
    }

    /// Maximum vector length (number of wavelengths).
    pub fn capacity(&self) -> usize {
        self.grid.len()
    }

    /// The exact dot product — the functional contract of the engine.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or exceed the
    /// wavelength capacity.
    pub fn dot_ideal(&self, x: &[f64], y: &[f64]) -> f64 {
        self.check_lengths(x, y);
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    /// The noisy analytic transfer (paper Eq. 9): encoding magnitude and
    /// phase drift, per-wavelength dispersion, and systematic output noise.
    ///
    /// Operands are expected to be normalized into `[-1, 1]` (values
    /// outside are accepted but the noise statistics assume normalization).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or exceed capacity.
    pub fn dot_noisy(&self, x: &[f64], y: &[f64], noise: &NoiseModel, seed: u64) -> f64 {
        let mut rng = GaussianSampler::new(seed);
        let coeffs = WavelengthCoefficients::compute(&self.grid, &noise.dispersion);
        self.dot_noisy_with(x, y, &coeffs, noise, &mut rng)
    }

    /// The noisy analytic transfer with precomputed coefficients and an
    /// externally managed RNG — the hot path used by [`crate::Dptc`].
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or exceed capacity.
    pub fn dot_noisy_with(
        &self,
        x: &[f64],
        y: &[f64],
        coeffs: &WavelengthCoefficients,
        noise: &NoiseModel,
        rng: &mut GaussianSampler,
    ) -> f64 {
        self.check_lengths(x, y);
        // One relative-phase draw per DDot invocation: all wavelength
        // pairs interfere in the same physical coupler, so the operand
        // paths' drift is common to every channel (the noise model's
        // "at each DDot"). The angle-addition tables then fold the draw
        // into the precomputed multipliers — one `sin_cos` per output,
        // no transcendentals in the MAC loop.
        let (sg, cg) = if noise.sigma_phase_rad > 0.0 {
            rng.normal(0.0, noise.sigma_phase_rad).sin_cos()
        } else {
            (0.0, 1.0)
        };
        let mut io = 0.0;
        for i in 0..x.len() {
            let xh = perturb_magnitude(x[i], noise.sigma_magnitude, rng);
            let yh = perturb_magnitude(y[i], noise.sigma_magnitude, rng);
            let mult = coeffs.mult0[i] * cg - coeffs.msin[i] * sg;
            io += mult * xh * yh + coeffs.imbalance[i] * (xh * xh - yh * yh);
        }
        apply_systematic(io, noise, rng)
    }

    fn check_lengths(&self, x: &[f64], y: &[f64]) {
        assert_eq!(
            x.len(),
            y.len(),
            "dot-product operands must have equal length"
        );
        assert!(
            x.len() <= self.capacity(),
            "vector length {} exceeds wavelength capacity {}",
            x.len(),
            self.capacity()
        );
    }
}

/// One wavelength's contribution to the differential photocurrent,
/// normalized so that the ideal design point returns exactly `x * y`.
///
/// With the coupler at `t, k` and the total relative phase
/// `phi = dphi_d - pi/2 + dphi_lambda`, field propagation gives
///
/// ```text
/// I = 2 t k (-sin phi) x y  +  (t^2 - k^2) (x^2 - y^2) / 2
/// ```
///
/// At the design point (`t = k = sqrt(2)/2`, `phi = -pi/2`) the
/// multiplicative factor is at a local optimum (robustness argument of
/// Section III-C) and the additive term vanishes. The sign of the additive
/// term differs from the paper's printed Eq. 9 only by output-port
/// labeling; it is zero-mean either way.
pub fn ddot_term(x: f64, y: f64, t: f64, k: f64, dphi_lambda: f64, dphi_d: f64) -> f64 {
    let phi = dphi_d - FRAC_PI_2 + dphi_lambda;
    2.0 * t * k * (-phi.sin()) * x * y + (t * t - k * k) * (x * x - y * y) / 2.0
}

pub(crate) fn perturb_magnitude(v: f64, sigma: f64, rng: &mut GaussianSampler) -> f64 {
    if sigma > 0.0 {
        v + rng.normal(0.0, sigma * v.abs())
    } else {
        v
    }
}

pub(crate) fn apply_systematic(io: f64, noise: &NoiseModel, rng: &mut GaussianSampler) -> f64 {
    if noise.sigma_systematic > 0.0 {
        io * (1.0 + rng.normal(0.0, noise.sigma_systematic))
    } else {
        io
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64)
            .collect()
    }

    #[test]
    fn ideal_matches_plain_dot() {
        let ddot = DDot::new(12);
        let x = ramp(12, -1.0, 1.0);
        let y = ramp(12, 1.0, -0.5);
        let expected: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((ddot.dot_ideal(&x, &y) - expected).abs() < 1e-12);
    }

    #[test]
    fn noiseless_model_is_exact_without_dispersion() {
        let ddot = DDot::new(12);
        let x = ramp(12, -0.9, 0.9);
        let y = ramp(12, 0.3, -0.8);
        let out = ddot.dot_noisy(&x, &y, &NoiseModel::noiseless(), 0);
        assert!((out - ddot.dot_ideal(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn angle_addition_tables_match_ddot_term() {
        // The hot path folds a per-DDot drift `g` into the precomputed
        // mult0/msin tables; this must agree exactly with evaluating the
        // Eq. 9 transfer directly at that drift.
        let grid = WavelengthGrid::dwdm(8);
        let coeffs = WavelengthCoefficients::compute(&grid, &DispersionModel::paper());
        let (x, y) = (0.62, -0.47);
        for &g in &[0.0f64, 0.0371, -0.2] {
            let (sg, cg) = g.sin_cos();
            for i in 0..coeffs.len() {
                let via_tables = (coeffs.mult0[i] * cg - coeffs.msin[i] * sg) * x * y
                    + coeffs.imbalance[i] * (x * x - y * y);
                let direct = ddot_term(x, y, coeffs.t[i], coeffs.k[i], coeffs.dphi[i], g);
                assert!((via_tables - direct).abs() < 1e-14, "lambda {i}, g {g}");
            }
        }
    }

    #[test]
    fn design_point_term_is_exact() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let v = ddot_term(0.7, -0.4, s, s, 0.0, 0.0);
        assert!((v - 0.7 * -0.4).abs() < 1e-12);
    }

    #[test]
    fn dispersion_only_bias_is_small() {
        // Dispersion alone (no stochastic noise) must introduce only a tiny
        // deterministic bias — the robustness claim of Fig. 3.
        let ddot = DDot::new(25);
        let x = ramp(25, -1.0, 1.0);
        let y = ramp(25, 0.5, -1.0);
        let noise =
            NoiseModel::noiseless().with_dispersion(lt_photonics::wdm::DispersionModel::paper());
        let out = ddot.dot_noisy(&x, &y, &noise, 0);
        let exact = ddot.dot_ideal(&x, &y);
        let rel = (out - exact).abs() / exact.abs().max(1e-9);
        assert!(rel < 0.01, "dispersion bias {rel} should be < 1%");
    }

    #[test]
    fn noisy_output_is_deterministic_per_seed() {
        let ddot = DDot::new(12);
        let x = ramp(12, -1.0, 1.0);
        let y = ramp(12, -0.2, 0.9);
        let nm = NoiseModel::paper_default();
        let a = ddot.dot_noisy(&x, &y, &nm, 99);
        let b = ddot.dot_noisy(&x, &y, &nm, 99);
        assert_eq!(a, b);
        let c = ddot.dot_noisy(&x, &y, &nm, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_error_band_on_random_vectors() {
        // Average relative error at the paper's noise point should be a few
        // percent (Fig. 6 reports 2.6% at 4-bit, 3.4% at 8-bit).
        let ddot = DDot::new(12);
        let nm = NoiseModel::paper_default();
        let mut rng = GaussianSampler::new(2024);
        let mut rel_sum = 0.0;
        let trials = 400;
        for t in 0..trials {
            let x: Vec<f64> = (0..12).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let y: Vec<f64> = (0..12).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let exact = ddot.dot_ideal(&x, &y);
            let noisy = ddot.dot_noisy(&x, &y, &nm, t as u64);
            // Normalize by the vector-length scale (as the paper's relative
            // error does) rather than the possibly tiny exact value.
            rel_sum += (noisy - exact).abs() / 12.0f64.sqrt();
        }
        let mean_rel = rel_sum / trials as f64;
        assert!(
            mean_rel > 0.001 && mean_rel < 0.08,
            "mean normalized error {mean_rel} out of the plausible band"
        );
    }

    #[test]
    fn full_range_signs_preserved_under_noise() {
        let ddot = DDot::new(12);
        let nm = NoiseModel::paper_default();
        let x = vec![0.9; 12];
        let yp = vec![0.9; 12];
        let yn = vec![-0.9; 12];
        let pos = ddot.dot_noisy(&x, &yp, &nm, 5);
        let neg = ddot.dot_noisy(&x, &yn, &nm, 5);
        assert!(pos > 0.0 && neg < 0.0, "signed outputs survive the noise");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        DDot::new(4).dot_ideal(&[1.0; 4], &[1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds wavelength capacity")]
    fn over_capacity_rejected() {
        DDot::new(4).dot_ideal(&[1.0; 8], &[1.0; 8]);
    }
}
