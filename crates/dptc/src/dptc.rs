//! DPTC: the dynamically-operated photonic tensor core (paper Section
//! III-B).
//!
//! A `Nv x Nh` crossbar of [`DDot`] units computes an
//! `[Nh, N_lambda] x [N_lambda, Nv]` matrix product in one cycle. Each
//! modulated WDM signal is broadcast to an entire row or column of units
//! ("intra-core optical broadcast"), so a one-shot MM costs only
//! `Nh*N_lambda + N_lambda*Nv` signal encodings instead of
//! `2*Nh*Nv*N_lambda` (Eq. 6).

use crate::ddot::{ddot_term, perturb_magnitude, DDot, WavelengthCoefficients};
use crate::noise_model::NoiseModel;
use crate::quant::Quantizer;
use lt_photonics::noise::GaussianSampler;

/// Geometry of a DPTC crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DptcConfig {
    /// Number of horizontal input waveguides (rows of the left operand).
    pub nh: usize,
    /// Number of vertical input waveguides (columns of the right operand).
    pub nv: usize,
    /// Number of WDM wavelengths (the shared inner dimension).
    pub nlambda: usize,
}

impl DptcConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nh: usize, nv: usize, nlambda: usize) -> Self {
        assert!(
            nh > 0 && nv > 0 && nlambda > 0,
            "DPTC dimensions must be positive (got {nh} x {nv} x {nlambda})"
        );
        DptcConfig { nh, nv, nlambda }
    }

    /// The paper's core geometry: `Nh = Nv = N_lambda = 12` (Table IV).
    pub fn lt_paper() -> Self {
        DptcConfig::new(12, 12, 12)
    }

    /// A square core of size `n` (used for the Fig. 9/10 scaling sweeps).
    pub fn square(n: usize) -> Self {
        DptcConfig::new(n, n, n)
    }

    /// Multiply-accumulate operations performed per cycle.
    pub fn macs_per_cycle(&self) -> usize {
        self.nh * self.nv * self.nlambda
    }

    /// Number of DDot units in the crossbar.
    pub fn num_ddots(&self) -> usize {
        self.nh * self.nv
    }

    /// Number of tiles `T = ceil(m/Nh) * ceil(d/N_lambda) * ceil(n/Nv)`
    /// needed for an `m x d` by `d x n` GEMM (the `T` of Eq. 11).
    pub fn tiles_for(&self, m: usize, d: usize, n: usize) -> usize {
        m.div_ceil(self.nh) * d.div_ceil(self.nlambda) * n.div_ceil(self.nv)
    }

    /// Hardware utilization of a tiled GEMM: useful MACs over issued MACs.
    pub fn utilization(&self, m: usize, d: usize, n: usize) -> f64 {
        let useful = (m * d * n) as f64;
        let issued = (self.tiles_for(m, d, n) * self.macs_per_cycle()) as f64;
        useful / issued
    }
}

/// The per-invocation operand encoding cost of Eq. 6, in units of
/// "scalar signals that need a DAC + MZM drive".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingCost {
    /// Encodings with crossbar sharing: `Nh*N_lambda + N_lambda*Nv`.
    pub shared: usize,
    /// Encodings without sharing (separate dot-product engines):
    /// `2 * Nh * Nv * N_lambda`.
    pub unshared: usize,
}

impl EncodingCost {
    /// The encoding-cost saving factor `2 Nh Nv / (Nh + Nv)` enabled by the
    /// intra-core optical broadcast.
    pub fn saving_factor(&self) -> f64 {
        self.unshared as f64 / self.shared as f64
    }
}

/// A dynamically-operated photonic tensor core.
///
/// ```
/// use lt_dptc::{Dptc, DptcConfig};
/// let core = Dptc::new(DptcConfig::lt_paper());
/// // Eq. 6: a 12x12x12 core saves 12x encoding cost.
/// assert!((core.encoding_cost().saving_factor() - 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Dptc {
    config: DptcConfig,
    ddot: DDot,
}

impl Dptc {
    /// Creates a core with the given geometry over the paper's DWDM grid.
    pub fn new(config: DptcConfig) -> Self {
        Dptc {
            config,
            ddot: DDot::new(config.nlambda),
        }
    }

    /// The core geometry.
    pub fn config(&self) -> DptcConfig {
        self.config
    }

    /// The underlying DDot engine (shared wavelength grid).
    pub fn ddot(&self) -> &DDot {
        &self.ddot
    }

    /// The Eq. 6 encoding cost of one one-shot MM.
    pub fn encoding_cost(&self) -> EncodingCost {
        let DptcConfig { nh, nv, nlambda } = self.config;
        EncodingCost {
            shared: nh * nlambda + nlambda * nv,
            unshared: 2 * nh * nv * nlambda,
        }
    }

    /// One-shot exact matrix product: `a` is `[Nh][N_lambda]`, `b` is
    /// `[N_lambda][Nv]`, the result is `[Nh][Nv]`.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not match the core geometry.
    pub fn matmul_ideal(&self, a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.check_shapes(a, b);
        let DptcConfig { nh, nv, nlambda } = self.config;
        let mut out = vec![vec![0.0; nv]; nh];
        for (i, row) in a.iter().enumerate() {
            for j in 0..nv {
                let mut acc = 0.0;
                for (l, b_row) in b.iter().enumerate().take(nlambda) {
                    acc += row[l] * b_row[j];
                }
                out[i][j] = acc;
            }
        }
        out
    }

    /// One-shot noisy matrix product using the analytic Eq. 9 transfer.
    ///
    /// Noise realizations follow the hardware's sharing structure: each
    /// operand element is *encoded once* and broadcast, so its magnitude
    /// drift is shared by every DDot in its row/column; the relative phase
    /// drift is drawn per DDot per wavelength; the systematic output noise
    /// is drawn per detected output.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not match the core geometry.
    pub fn matmul_noisy(
        &self,
        a: &[Vec<f64>],
        b: &[Vec<f64>],
        noise: &NoiseModel,
        seed: u64,
    ) -> Vec<Vec<f64>> {
        let mut rng = GaussianSampler::new(seed);
        let coeffs = WavelengthCoefficients::compute(self.ddot.grid(), &noise.dispersion);
        self.matmul_noisy_with(a, b, noise, &coeffs, &mut rng)
    }

    /// Noisy one-shot MM with caller-managed RNG and precomputed
    /// coefficients (the hot path for tiled GEMM).
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not match the core geometry.
    pub fn matmul_noisy_with(
        &self,
        a: &[Vec<f64>],
        b: &[Vec<f64>],
        noise: &NoiseModel,
        coeffs: &WavelengthCoefficients,
        rng: &mut GaussianSampler,
    ) -> Vec<Vec<f64>> {
        self.check_shapes(a, b);
        let DptcConfig { nh, nv, nlambda } = self.config;

        // Encode each operand element once (shared noise realization).
        let a_hat: Vec<Vec<f64>> = a
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| perturb_magnitude(v, noise.sigma_magnitude, rng))
                    .collect()
            })
            .collect();
        let b_hat: Vec<Vec<f64>> = b
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| perturb_magnitude(v, noise.sigma_magnitude, rng))
                    .collect()
            })
            .collect();

        let mut out = vec![vec![0.0; nv]; nh];
        for i in 0..nh {
            for j in 0..nv {
                let mut io = 0.0;
                for l in 0..nlambda {
                    let dphi_d = if noise.sigma_phase_rad > 0.0 {
                        rng.normal(0.0, noise.sigma_phase_rad)
                    } else {
                        0.0
                    };
                    io += ddot_term(
                        a_hat[i][l],
                        b_hat[l][j],
                        coeffs.t[l],
                        coeffs.k[l],
                        coeffs.dphi[l],
                        dphi_d,
                    );
                }
                out[i][j] = crate::ddot::apply_systematic(io, noise, rng);
            }
        }
        out
    }

    /// One-shot MM at *circuit-level* fidelity: every DDot output is
    /// obtained by propagating fields through the device netlist
    /// ([`crate::DdotCircuit`]) instead of the analytic Eq. 9 transfer.
    ///
    /// Operand magnitude noise follows the hardware sharing structure
    /// (each element encoded once, broadcast to its row/column); phase
    /// drift and systematic noise are drawn per DDot inside the netlist.
    /// Roughly an order of magnitude slower than
    /// [`Dptc::matmul_noisy`] — use it for validation, not for tiled GEMM.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not match the core geometry.
    pub fn matmul_circuit(
        &self,
        a: &[Vec<f64>],
        b: &[Vec<f64>],
        noise: &NoiseModel,
        seed: u64,
    ) -> Vec<Vec<f64>> {
        self.check_shapes(a, b);
        let DptcConfig { nh, nv, nlambda } = self.config;
        let mut rng = GaussianSampler::new(seed);

        // Shared encoding noise, exactly as in `matmul_noisy_with`.
        let a_hat: Vec<Vec<f64>> = a
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| perturb_magnitude(v, noise.sigma_magnitude, &mut rng).clamp(-1.0, 1.0))
                    .collect()
            })
            .collect();
        let b_hat: Vec<Vec<f64>> = b
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| perturb_magnitude(v, noise.sigma_magnitude, &mut rng).clamp(-1.0, 1.0))
                    .collect()
            })
            .collect();

        // The per-DDot netlist then only adds phase drift + systematic
        // noise (magnitudes were already perturbed above).
        let ddot_noise = NoiseModel {
            sigma_magnitude: 0.0,
            ..*noise
        };
        let circuit = crate::circuit::DdotCircuit::paper(nlambda);
        let mut out = vec![vec![0.0; nv]; nh];
        let mut y = vec![0.0; nlambda];
        for i in 0..nh {
            for (j, out_ij) in out[i].iter_mut().enumerate().take(nv) {
                for (l, yl) in y.iter_mut().enumerate() {
                    *yl = b_hat[l][j];
                }
                *out_ij = circuit.dot_noisy_with(&a_hat[i], &y, &ddot_noise, &mut rng);
            }
        }
        out
    }

    /// Tiled GEMM of arbitrary dimensions through the noisy core, with
    /// per-tile operand normalization (`beta = max|.|`, paper Section
    /// III-C) and `bits`-bit operand quantization.
    ///
    /// Partial sums accumulate at full precision, mirroring the analog
    /// photocurrent summation and temporal accumulation of Section IV
    /// (A/D conversion happens after analog accumulation, so no
    /// intermediate quantization is modeled).
    ///
    /// `a` is row-major `m x d`, `b` is row-major `d x n`; the result is
    /// row-major `m x n`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the given dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        &self,
        a: &[f64],
        b: &[f64],
        m: usize,
        d: usize,
        n: usize,
        bits: u32,
        noise: &NoiseModel,
        seed: u64,
    ) -> Vec<f64> {
        assert_eq!(a.len(), m * d, "left operand length mismatch");
        assert_eq!(b.len(), d * n, "right operand length mismatch");
        let quant = Quantizer::new(bits);
        let mut rng = GaussianSampler::new(seed);
        let coeffs = WavelengthCoefficients::compute(self.ddot.grid(), &noise.dispersion);
        let DptcConfig { nh, nv, nlambda } = self.config;
        let mut out = vec![0.0; m * n];

        let mut tile_a = vec![vec![0.0; nlambda]; nh];
        let mut tile_b = vec![vec![0.0; nv]; nlambda];
        for mi in (0..m).step_by(nh) {
            for ni in (0..n).step_by(nv) {
                for di in (0..d).step_by(nlambda) {
                    // Gather tiles (zero-padded at the edges).
                    let mut beta_a = 0.0f64;
                    for (ti, row) in tile_a.iter_mut().enumerate() {
                        for (tl, v) in row.iter_mut().enumerate() {
                            let (gi, gl) = (mi + ti, di + tl);
                            *v = if gi < m && gl < d { a[gi * d + gl] } else { 0.0 };
                            beta_a = beta_a.max(v.abs());
                        }
                    }
                    let mut beta_b = 0.0f64;
                    for (tl, row) in tile_b.iter_mut().enumerate() {
                        for (tj, v) in row.iter_mut().enumerate() {
                            let (gl, gj) = (di + tl, ni + tj);
                            *v = if gl < d && gj < n { b[gl * n + gj] } else { 0.0 };
                            beta_b = beta_b.max(v.abs());
                        }
                    }
                    if beta_a == 0.0 || beta_b == 0.0 {
                        continue; // all-zero tile contributes nothing
                    }
                    // Normalize into [-1, 1] and quantize (the DAC).
                    for row in tile_a.iter_mut() {
                        for v in row.iter_mut() {
                            *v = quant.quantize_unit(*v / beta_a);
                        }
                    }
                    for row in tile_b.iter_mut() {
                        for v in row.iter_mut() {
                            *v = quant.quantize_unit(*v / beta_b);
                        }
                    }
                    let tile_out = self.matmul_noisy_with(&tile_a, &tile_b, noise, &coeffs, &mut rng);
                    // Rescale and accumulate (analog-domain accumulation).
                    let scale = beta_a * beta_b;
                    for ti in 0..nh {
                        let gi = mi + ti;
                        if gi >= m {
                            break;
                        }
                        for tj in 0..nv {
                            let gj = ni + tj;
                            if gj >= n {
                                break;
                            }
                            out[gi * n + gj] += tile_out[ti][tj] * scale;
                        }
                    }
                }
            }
        }
        out
    }

    /// Exact tiled GEMM (same tiling and quantization, no analog noise) —
    /// the "quantized digital" reference the accuracy experiments compare
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the given dimensions.
    pub fn gemm_exact_quantized(
        &self,
        a: &[f64],
        b: &[f64],
        m: usize,
        d: usize,
        n: usize,
        bits: u32,
    ) -> Vec<f64> {
        self.gemm(a, b, m, d, n, bits, &NoiseModel::noiseless(), 0)
    }

    fn check_shapes(&self, a: &[Vec<f64>], b: &[Vec<f64>]) {
        let DptcConfig { nh, nv, nlambda } = self.config;
        assert_eq!(a.len(), nh, "left operand must have Nh = {nh} rows");
        assert!(
            a.iter().all(|r| r.len() == nlambda),
            "left operand rows must have N_lambda = {nlambda} entries"
        );
        assert_eq!(b.len(), nlambda, "right operand must have N_lambda = {nlambda} rows");
        assert!(
            b.iter().all(|r| r.len() == nv),
            "right operand rows must have Nv = {nv} entries"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(rng: &mut GaussianSampler, r: usize, c: usize) -> Vec<Vec<f64>> {
        (0..r)
            .map(|_| (0..c).map(|_| rng.uniform_in(-1.0, 1.0)).collect())
            .collect()
    }

    fn rand_flat(rng: &mut GaussianSampler, n: usize, scale: f64) -> Vec<f64> {
        (0..n).map(|_| rng.uniform_in(-scale, scale)).collect()
    }

    #[test]
    fn ideal_matches_reference_matmul() {
        let core = Dptc::new(DptcConfig::new(3, 5, 4));
        let mut rng = GaussianSampler::new(1);
        let a = rand_matrix(&mut rng, 3, 4);
        let b = rand_matrix(&mut rng, 4, 5);
        let out = core.matmul_ideal(&a, &b);
        for i in 0..3 {
            for j in 0..5 {
                let expect: f64 = (0..4).map(|l| a[i][l] * b[l][j]).sum();
                assert!((out[i][j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn eq6_saving_factor() {
        // Nh = Nv = N_lambda = 12 => 12x less encoding cost (paper text).
        let core = Dptc::new(DptcConfig::lt_paper());
        let cost = core.encoding_cost();
        assert_eq!(cost.shared, 12 * 12 + 12 * 12);
        assert_eq!(cost.unshared, 2 * 12 * 12 * 12);
        assert!((cost.saving_factor() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn eq6_general_formula() {
        let core = Dptc::new(DptcConfig::new(8, 24, 12));
        let cost = core.encoding_cost();
        let expect = 2.0 * 8.0 * 24.0 / (8.0 + 24.0);
        assert!((cost.saving_factor() - expect).abs() < 1e-12);
    }

    #[test]
    fn tiles_match_eq11() {
        let cfg = DptcConfig::lt_paper();
        // DeiT-T QK^T per head: [197, 64] x [64, 197].
        let t = cfg.tiles_for(197, 64, 197);
        assert_eq!(t, 17 * 6 * 17);
        assert!(cfg.utilization(197, 64, 197) < 1.0);
        // Perfectly divisible workload has utilization 1.
        assert!((cfg.utilization(24, 24, 24) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_matmul_tracks_ideal() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(5);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let ideal = core.matmul_ideal(&a, &b);
        let noisy = core.matmul_noisy(&a, &b, &NoiseModel::paper_default(), 7);
        let mut max_err = 0.0f64;
        for i in 0..12 {
            for j in 0..12 {
                max_err = max_err.max((ideal[i][j] - noisy[i][j]).abs());
            }
        }
        // Errors stay in the few-percent band relative to the length-12
        // dot-product scale.
        assert!(max_err > 0.0 && max_err < 0.8, "max_err {max_err}");
    }

    #[test]
    fn circuit_level_matmul_tracks_ideal() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(21);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let ideal = core.matmul_ideal(&a, &b);
        let circuit = core.matmul_circuit(&a, &b, &NoiseModel::paper_default(), 9);
        let analytic = core.matmul_noisy(&a, &b, &NoiseModel::paper_default(), 9);
        let mut max_circuit = 0.0f64;
        let mut max_analytic = 0.0f64;
        for i in 0..12 {
            for j in 0..12 {
                max_circuit = max_circuit.max((circuit[i][j] - ideal[i][j]).abs());
                max_analytic = max_analytic.max((analytic[i][j] - ideal[i][j]).abs());
            }
        }
        // Both fidelities stay in the same error envelope.
        assert!(max_circuit > 0.0 && max_circuit < 0.8, "circuit err {max_circuit}");
        assert!(
            max_circuit < 3.0 * max_analytic.max(0.05),
            "circuit {max_circuit} vs analytic {max_analytic}"
        );
    }

    #[test]
    fn circuit_level_matmul_noiseless_has_only_dispersion_bias() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(23);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let ideal = core.matmul_ideal(&a, &b);
        let noise = NoiseModel::noiseless()
            .with_dispersion(lt_photonics::wdm::DispersionModel::paper());
        let circuit = core.matmul_circuit(&a, &b, &noise, 0);
        for i in 0..12 {
            for j in 0..12 {
                assert!(
                    (circuit[i][j] - ideal[i][j]).abs() < 0.05,
                    "({i},{j}): {} vs {}",
                    circuit[i][j],
                    ideal[i][j]
                );
            }
        }
    }

    #[test]
    fn noiseless_gemm_equals_quantized_reference() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(9);
        let (m, d, n) = (20, 30, 17);
        let a = rand_flat(&mut rng, m * d, 2.0);
        let b = rand_flat(&mut rng, d * n, 3.0);
        let out = core.gemm_exact_quantized(&a, &b, m, d, n, 8);
        // Compare against a straightforward f64 matmul; 8-bit quantization
        // keeps per-tile error small.
        for i in 0..m {
            for j in 0..n {
                let exact: f64 = (0..d).map(|l| a[i * d + l] * b[l * n + j]).sum();
                let got = out[i * n + j];
                assert!(
                    (got - exact).abs() < 0.3,
                    "({i},{j}): got {got}, exact {exact}"
                );
            }
        }
    }

    #[test]
    fn gemm_handles_non_divisible_edges() {
        let core = Dptc::new(DptcConfig::new(4, 4, 4));
        let mut rng = GaussianSampler::new(11);
        let (m, d, n) = (5, 7, 3);
        let a = rand_flat(&mut rng, m * d, 1.0);
        let b = rand_flat(&mut rng, d * n, 1.0);
        let out = core.gemm(&a, &b, m, d, n, 8, &NoiseModel::noiseless(), 0);
        assert_eq!(out.len(), m * n);
        for i in 0..m {
            for j in 0..n {
                let exact: f64 = (0..d).map(|l| a[i * d + l] * b[l * n + j]).sum();
                assert!((out[i * n + j] - exact).abs() < 0.1);
            }
        }
    }

    #[test]
    fn zero_tiles_are_skipped() {
        let core = Dptc::new(DptcConfig::new(4, 4, 4));
        let a = vec![0.0; 16];
        let b = vec![1.0; 16];
        let out = core.gemm(&a, &b, 4, 4, 4, 4, &NoiseModel::paper_default(), 3);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gemm_noise_is_seed_deterministic() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(13);
        let a = rand_flat(&mut rng, 24 * 24, 1.0);
        let b = rand_flat(&mut rng, 24 * 24, 1.0);
        let nm = NoiseModel::paper_default();
        let o1 = core.gemm(&a, &b, 24, 24, 24, 4, &nm, 42);
        let o2 = core.gemm(&a, &b, 24, 24, 24, 4, &nm, 42);
        assert_eq!(o1, o2);
    }

    #[test]
    #[should_panic(expected = "must have Nh")]
    fn wrong_shapes_rejected() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let a = vec![vec![0.0; 12]; 5];
        let b = vec![vec![0.0; 12]; 12];
        core.matmul_ideal(&a, &b);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_config_rejected() {
        DptcConfig::new(0, 12, 12);
    }
}
