//! DPTC: the dynamically-operated photonic tensor core (paper Section
//! III-B).
//!
//! A `Nv x Nh` crossbar of [`DDot`] units computes an
//! `[Nh, N_lambda] x [N_lambda, Nv]` matrix product in one cycle. Each
//! modulated WDM signal is broadcast to an entire row or column of units
//! ("intra-core optical broadcast"), so a one-shot MM costs only
//! `Nh*N_lambda + N_lambda*Nv` signal encodings instead of
//! `2*Nh*Nv*N_lambda` (Eq. 6).
//!
//! Simulation fidelity is selected by [`Fidelity`], not by calling a
//! different method: [`Dptc::matmul`] (one-shot, core-geometry operands)
//! and [`Dptc::gemm`] (tiled, arbitrary shapes) are the whole compute
//! API. The seed's legacy ragged-`Vec<Vec<f64>>`
//! shims were removed once nothing in-tree used them.

use crate::backend::Fidelity;
use crate::circuit::DdotCircuit;
use crate::ddot::{perturb_magnitude, DDot, WavelengthCoefficients};
use crate::noise_model::NoiseModel;
use crate::quant::Quantizer;
use lt_core::{GaussianSampler, Matrix64, MatrixView};

/// Geometry of a DPTC crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DptcConfig {
    /// Number of horizontal input waveguides (rows of the left operand).
    pub nh: usize,
    /// Number of vertical input waveguides (columns of the right operand).
    pub nv: usize,
    /// Number of WDM wavelengths (the shared inner dimension).
    pub nlambda: usize,
}

impl DptcConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nh: usize, nv: usize, nlambda: usize) -> Self {
        assert!(
            nh > 0 && nv > 0 && nlambda > 0,
            "DPTC dimensions must be positive (got {nh} x {nv} x {nlambda})"
        );
        DptcConfig { nh, nv, nlambda }
    }

    /// The paper's core geometry: `Nh = Nv = N_lambda = 12` (Table IV).
    pub fn lt_paper() -> Self {
        DptcConfig::new(12, 12, 12)
    }

    /// A square core of size `n` (used for the Fig. 9/10 scaling sweeps).
    pub fn square(n: usize) -> Self {
        DptcConfig::new(n, n, n)
    }

    /// Multiply-accumulate operations performed per cycle.
    pub fn macs_per_cycle(&self) -> usize {
        self.nh * self.nv * self.nlambda
    }

    /// Number of DDot units in the crossbar.
    pub fn num_ddots(&self) -> usize {
        self.nh * self.nv
    }

    /// Number of tiles `T = ceil(m/Nh) * ceil(d/N_lambda) * ceil(n/Nv)`
    /// needed for an `m x d` by `d x n` GEMM (the `T` of Eq. 11).
    pub fn tiles_for(&self, m: usize, d: usize, n: usize) -> usize {
        m.div_ceil(self.nh) * d.div_ceil(self.nlambda) * n.div_ceil(self.nv)
    }

    /// Hardware utilization of a tiled GEMM: useful MACs over issued MACs.
    pub fn utilization(&self, m: usize, d: usize, n: usize) -> f64 {
        let useful = (m * d * n) as f64;
        let issued = (self.tiles_for(m, d, n) * self.macs_per_cycle()) as f64;
        useful / issued
    }
}

/// The per-invocation operand encoding cost of Eq. 6, in units of
/// "scalar signals that need a DAC + MZM drive".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingCost {
    /// Encodings with crossbar sharing: `Nh*N_lambda + N_lambda*Nv`.
    pub shared: usize,
    /// Encodings without sharing (separate dot-product engines):
    /// `2 * Nh * Nv * N_lambda`.
    pub unshared: usize,
}

impl EncodingCost {
    /// The encoding-cost saving factor `2 Nh Nv / (Nh + Nv)` enabled by the
    /// intra-core optical broadcast.
    pub fn saving_factor(&self) -> f64 {
        self.unshared as f64 / self.shared as f64
    }
}

/// A dynamically-operated photonic tensor core.
///
/// ```
/// use lt_dptc::{Dptc, DptcConfig};
/// let core = Dptc::new(DptcConfig::lt_paper());
/// // Eq. 6: a 12x12x12 core saves 12x encoding cost.
/// assert!((core.encoding_cost().saving_factor() - 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Dptc {
    config: DptcConfig,
    ddot: DDot,
}

impl Dptc {
    /// Creates a core with the given geometry over the paper's DWDM grid.
    pub fn new(config: DptcConfig) -> Self {
        Dptc {
            config,
            ddot: DDot::new(config.nlambda),
        }
    }

    /// The core geometry.
    pub fn config(&self) -> DptcConfig {
        self.config
    }

    /// The underlying DDot engine (shared wavelength grid).
    pub fn ddot(&self) -> &DDot {
        &self.ddot
    }

    /// The Eq. 6 encoding cost of one one-shot MM.
    pub fn encoding_cost(&self) -> EncodingCost {
        let DptcConfig { nh, nv, nlambda } = self.config;
        EncodingCost {
            shared: nh * nlambda + nlambda * nv,
            unshared: 2 * nh * nv * nlambda,
        }
    }

    /// One-shot matrix product at the selected [`Fidelity`]: `a` is
    /// `[Nh, N_lambda]`, `b` is `[N_lambda, Nv]`, the result is
    /// `[Nh, Nv]`.
    ///
    /// * [`Fidelity::Ideal`] — the functional contract: the exact product
    ///   through the workspace's shared kernel.
    /// * [`Fidelity::AnalyticNoisy`] — the paper's Eq. 9 transfer with
    ///   encoding magnitude/phase noise, per-wavelength dispersion, and
    ///   systematic output noise. Noise realizations follow the
    ///   hardware's sharing structure: each operand element is *encoded
    ///   once* and broadcast, so its magnitude drift is shared by every
    ///   DDot in its row/column; relative phase drift is drawn once per
    ///   DDot (all wavelengths interfere in the same coupler, so they
    ///   share its operand-path drift); systematic noise per detected
    ///   output.
    /// * [`Fidelity::Circuit`] — field propagation through the actual
    ///   device netlist ([`DdotCircuit`]); roughly an order of magnitude
    ///   slower, use for validation.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not match the core geometry.
    pub fn matmul(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        fidelity: &Fidelity,
    ) -> Matrix64 {
        self.check_shapes(a, b);
        match *fidelity {
            Fidelity::Ideal => a.matmul(&b),
            Fidelity::AnalyticNoisy { noise, seed } => {
                let mut rng = GaussianSampler::new(seed);
                let coeffs = WavelengthCoefficients::compute(self.ddot.grid(), &noise.dispersion);
                self.mm_noisy_with(a, b, &noise, &coeffs, &mut rng)
            }
            Fidelity::Circuit { noise, seed } => {
                let mut rng = GaussianSampler::new(seed);
                let circuit = DdotCircuit::paper(self.config.nlambda);
                self.mm_circuit_with(a, b, &noise, &circuit, &mut rng)
            }
        }
    }

    /// Tiled GEMM of arbitrary dimensions at the selected [`Fidelity`],
    /// with per-tile operand normalization (`beta = max|.|`, paper
    /// Section III-C) and `bits`-bit operand quantization.
    ///
    /// Partial sums accumulate at full precision, mirroring the analog
    /// photocurrent summation and temporal accumulation of Section IV
    /// (A/D conversion happens after analog accumulation, so no
    /// intermediate quantization is modeled).
    ///
    /// [`Fidelity::Ideal`] bypasses tiling and quantization entirely and
    /// returns the exact product — the functional contract, bit-for-bit
    /// identical to [`lt_core::NativeBackend`]. Use
    /// [`Dptc::gemm_quantized`] for the quantized-but-noiseless digital
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn gemm(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        bits: u32,
        fidelity: &Fidelity,
    ) -> Matrix64 {
        assert_eq!(
            a.cols(),
            b.rows(),
            "gemm shape mismatch: {:?} x {:?}",
            a.shape(),
            b.shape()
        );
        match *fidelity {
            Fidelity::Ideal => a.matmul(&b),
            Fidelity::AnalyticNoisy { noise, seed } => {
                let coeffs = WavelengthCoefficients::compute(self.ddot.grid(), &noise.dispersion);
                self.gemm_tiled_analytic(a, b, bits, &noise, seed, &coeffs)
            }
            Fidelity::Circuit { noise, seed } => {
                let quant = Quantizer::new(bits);
                let mut rng = GaussianSampler::new(seed);
                self.gemm_tiled_circuit(a, b, &quant, &noise, &mut rng)
            }
        }
    }

    /// Exact tiled GEMM (same tiling and quantization as the noisy path,
    /// no analog noise) — the "quantized digital" reference the accuracy
    /// experiments compare against.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn gemm_quantized(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        bits: u32,
    ) -> Matrix64 {
        self.gemm(
            a,
            b,
            bits,
            &Fidelity::AnalyticNoisy {
                noise: NoiseModel::noiseless(),
                seed: 0,
            },
        )
    }

    /// The analytic Eq. 9 one-shot MM with precomputed coefficients and a
    /// caller-managed RNG — the hot path shared by [`Dptc::gemm`] and the
    /// fault-injection entry points.
    pub(crate) fn mm_noisy_with(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        noise: &NoiseModel,
        coeffs: &WavelengthCoefficients,
        rng: &mut GaussianSampler,
    ) -> Matrix64 {
        self.check_shapes(a, b);
        let DptcConfig { nh, nv, nlambda } = self.config;

        // Encode each operand element once (shared noise realization).
        let mut a_hat = a.to_matrix();
        for v in a_hat.data_mut() {
            *v = perturb_magnitude(*v, noise.sigma_magnitude, rng);
        }
        // Transposed so each DDot's wavelength column is contiguous.
        let bt = b.to_matrix().transpose();
        let mut b_hat = bt;
        for v in b_hat.data_mut() {
            *v = perturb_magnitude(*v, noise.sigma_magnitude, rng);
        }

        let mut out = Matrix64::zeros(nh, nv);
        noisy_mm_rows(
            a_hat.data(),
            b_hat.data(),
            nh,
            nv,
            nv,
            nlambda,
            nlambda,
            noise,
            coeffs,
            rng,
            out.data_mut(),
        );
        out
    }

    /// Circuit-level one-shot MM: every DDot output is obtained by
    /// propagating fields through the device netlist.
    pub(crate) fn mm_circuit_with(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        noise: &NoiseModel,
        circuit: &DdotCircuit,
        rng: &mut GaussianSampler,
    ) -> Matrix64 {
        self.check_shapes(a, b);
        let DptcConfig { nh, nv, nlambda } = self.config;

        // Shared encoding noise, exactly as in `mm_noisy_with`, clamped to
        // the MZM's encoding range.
        let mut a_hat = a.to_matrix();
        for v in a_hat.data_mut() {
            *v = perturb_magnitude(*v, noise.sigma_magnitude, rng).clamp(-1.0, 1.0);
        }
        let mut b_hat = b.to_matrix();
        for v in b_hat.data_mut() {
            *v = perturb_magnitude(*v, noise.sigma_magnitude, rng).clamp(-1.0, 1.0);
        }

        // The per-DDot netlist then only adds phase drift + systematic
        // noise (magnitudes were already perturbed above).
        let ddot_noise = NoiseModel {
            sigma_magnitude: 0.0,
            ..*noise
        };
        let mut out = Matrix64::zeros(nh, nv);
        let mut y = vec![0.0; nlambda];
        for i in 0..nh {
            let a_row = a_hat.row(i);
            let out_row = out.row_mut(i);
            for (j, out_ij) in out_row.iter_mut().enumerate().take(nv) {
                for (l, yl) in y.iter_mut().enumerate() {
                    *yl = b_hat.get(l, j);
                }
                *out_ij = circuit.dot_noisy_with(a_row, &y, &ddot_noise, rng);
            }
        }
        out
    }

    /// The shared tiled-GEMM loop.
    ///
    /// The analytic path is the workspace's hottest loop (every recorded
    /// forward pass lands here), so it is organized around three
    /// invariants: every `B` tile is gathered, normalized, DAC-quantized,
    /// and magnitude-perturbed exactly once per call (stored transposed
    /// so each DDot reads its wavelength column contiguously); every `A`
    /// tile once per row strip. Encoding noise is drawn at gather time
    /// because that is when the DAC drives the modulator: a tile loaded
    /// once and reused against many partners carries one encoding
    /// realization — the same operand-reuse structure the paper's Eq. 6
    /// counts DAC conversions by. The per-output noise model then needs
    /// one `sin_cos` and two Gaussians per DDot, with a branch-free
    /// multiply-add MAC loop in between. Noise work is confined to the
    /// *valid* tile region: edge tiles (and especially the `m = 1`
    /// matrix-vector products of autoregressive decode, which occupy one
    /// row of a 12-row strip) never pay DAC-encoding or per-DDot draws
    /// for zero-padded rows, columns, or wavelengths — padding is never
    /// encoded, carries no signal, and its detector outputs are
    /// discarded, so the model draws nothing for it. The circuit
    /// fidelity keeps the straightforward gather-per-tile structure — it
    /// is a validation path, not a hot one.
    ///
    /// Per-call fixed costs are hoisted out of this loop: the wavelength
    /// transfer coefficients are passed in precomputed (the backend
    /// caches them — the dispersion model is a config constant, not a
    /// per-call quantity), and every tile staging buffer lives in
    /// thread-local scratch so a decode token's ~25 matrix-vector calls
    /// allocate nothing. Scratch reuse is sound without re-zeroing
    /// because every loop below reads only the valid region it just
    /// wrote (`rows_used x cols_used x lambda_used`).
    pub(crate) fn gemm_tiled_analytic(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        bits: u32,
        noise: &NoiseModel,
        seed: u64,
        coeffs: &WavelengthCoefficients,
    ) -> Matrix64 {
        let (m, d) = a.shape();
        let n = b.cols();
        let quant = Quantizer::new(bits);
        let mut rng = GaussianSampler::new(seed);
        let DptcConfig { nh, nv, nlambda } = self.config;
        let mut out = Matrix64::zeros(m, n);
        if m == 0 || n == 0 || d == 0 {
            return out;
        }

        let nd = d.div_ceil(nlambda);
        let nn = n.div_ceil(nv);
        let tlen_a = nh * nlambda;
        let tlen_b = nv * nlambda;

        TILE_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let (b_tiles, beta_b, a_tiles, beta_a, tile_out, dequant) =
                scratch.prepare(bits, nn * nd * tlen_b, nn * nd, nd * tlen_a, nd, nh * nv);
            let levels = quant.positive_levels() as f64;

            // Gather, normalize, quantize, and magnitude-perturb every B tile
            // once (the DAC drive), transposed to wavelength-contiguous
            // columns. beta == 0 marks an all-zero tile (never encoded, so
            // it consumes no noise and is skipped below).
            for (nj, ni) in (0..n).step_by(nv).enumerate() {
                let cols_used = nv.min(n - ni);
                for (dj, di) in (0..d).step_by(nlambda).enumerate() {
                    let lambda_used = nlambda.min(d - di);
                    let tile = &mut b_tiles[(nj * nd + dj) * tlen_b..][..tlen_b];
                    let mut beta = 0.0f64;
                    for tl in 0..lambda_used {
                        let brow = b.row(di + tl);
                        for (tj, &v) in brow[ni..ni + cols_used].iter().enumerate() {
                            tile[tj * nlambda + tl] = v;
                            beta = beta.max(v.abs());
                        }
                    }
                    if beta > 0.0 {
                        encode_tile(
                            tile,
                            cols_used,
                            lambda_used,
                            nlambda,
                            beta,
                            levels,
                            dequant,
                            noise,
                            &mut rng,
                        );
                    }
                    beta_b[nj * nd + dj] = beta;
                }
            }

            // Per-row-strip A tiles (encoded once per strip, reused by every
            // column strip — one DAC drive per load) and the tile output.
            for mi in (0..m).step_by(nh) {
                let rows_used = nh.min(m - mi);
                for (dj, di) in (0..d).step_by(nlambda).enumerate() {
                    let lambda_used = nlambda.min(d - di);
                    let tile = &mut a_tiles[dj * tlen_a..][..tlen_a];
                    let mut beta = 0.0f64;
                    for ti in 0..rows_used {
                        let arow = a.row(mi + ti);
                        for (tl, &v) in arow[di..di + lambda_used].iter().enumerate() {
                            tile[ti * nlambda + tl] = v;
                            beta = beta.max(v.abs());
                        }
                    }
                    if beta > 0.0 {
                        encode_tile(
                            tile,
                            rows_used,
                            lambda_used,
                            nlambda,
                            beta,
                            levels,
                            dequant,
                            noise,
                            &mut rng,
                        );
                    }
                    beta_a[dj] = beta;
                }
                for nj in 0..nn {
                    let ni = nj * nv;
                    let cols_used = nv.min(n - ni);
                    for dj in 0..nd {
                        let (ba, bb) = (beta_a[dj], beta_b[nj * nd + dj]);
                        if ba == 0.0 || bb == 0.0 {
                            continue; // all-zero tile contributes nothing
                        }
                        let lambda_used = nlambda.min(d - dj * nlambda);
                        let at = &a_tiles[dj * tlen_a..][..tlen_a];
                        let btile = &b_tiles[(nj * nd + dj) * tlen_b..][..tlen_b];
                        noisy_mm_rows(
                            at,
                            btile,
                            rows_used,
                            cols_used,
                            nv,
                            nlambda,
                            lambda_used,
                            noise,
                            coeffs,
                            &mut rng,
                            tile_out,
                        );
                        // Rescale and accumulate (analog-domain accumulation).
                        let scale = ba * bb;
                        for ti in 0..rows_used {
                            let src = &tile_out[ti * nv..(ti + 1) * nv];
                            let dst = out.row_mut(mi + ti);
                            for (tj, &v) in src[..cols_used].iter().enumerate() {
                                dst[ni + tj] += v * scale;
                            }
                        }
                    }
                }
            }
        });
        out
    }

    /// Circuit-fidelity tiled GEMM: gather-per-tile, field propagation
    /// per DDot. Kept structurally simple — this is the validation path.
    fn gemm_tiled_circuit(
        &self,
        a: MatrixView<'_, f64>,
        b: MatrixView<'_, f64>,
        quant: &Quantizer,
        noise: &NoiseModel,
        rng: &mut GaussianSampler,
    ) -> Matrix64 {
        let (m, d) = a.shape();
        let n = b.cols();
        let circuit = DdotCircuit::paper(self.config.nlambda);
        let DptcConfig { nh, nv, nlambda } = self.config;
        let mut out = Matrix64::zeros(m, n);

        let mut tile_a = Matrix64::zeros(nh, nlambda);
        let mut tile_b = Matrix64::zeros(nlambda, nv);
        for mi in (0..m).step_by(nh) {
            for ni in (0..n).step_by(nv) {
                for di in (0..d).step_by(nlambda) {
                    // Gather tiles (zero-padded at the edges).
                    let mut beta_a = 0.0f64;
                    for ti in 0..nh {
                        let gi = mi + ti;
                        let row = tile_a.row_mut(ti);
                        for (tl, v) in row.iter_mut().enumerate() {
                            let gl = di + tl;
                            *v = if gi < m && gl < d { a.get(gi, gl) } else { 0.0 };
                            beta_a = beta_a.max(v.abs());
                        }
                    }
                    let mut beta_b = 0.0f64;
                    for tl in 0..nlambda {
                        let gl = di + tl;
                        let row = tile_b.row_mut(tl);
                        for (tj, v) in row.iter_mut().enumerate() {
                            let gj = ni + tj;
                            *v = if gl < d && gj < n { b.get(gl, gj) } else { 0.0 };
                            beta_b = beta_b.max(v.abs());
                        }
                    }
                    if beta_a == 0.0 || beta_b == 0.0 {
                        continue; // all-zero tile contributes nothing
                    }
                    // Normalize into [-1, 1] and quantize (the DAC).
                    for v in tile_a.data_mut() {
                        *v = quant.quantize_unit(*v / beta_a);
                    }
                    for v in tile_b.data_mut() {
                        *v = quant.quantize_unit(*v / beta_b);
                    }
                    let tile_out =
                        self.mm_circuit_with(tile_a.view(), tile_b.view(), noise, &circuit, rng);
                    // Rescale and accumulate (analog-domain accumulation).
                    let scale = beta_a * beta_b;
                    for ti in 0..nh {
                        let gi = mi + ti;
                        if gi >= m {
                            break;
                        }
                        let src = tile_out.row(ti);
                        let dst = out.row_mut(gi);
                        for tj in 0..nv {
                            let gj = ni + tj;
                            if gj >= n {
                                break;
                            }
                            dst[gj] += src[tj] * scale;
                        }
                    }
                }
            }
        }
        out
    }

    fn check_shapes(&self, a: MatrixView<'_, f64>, b: MatrixView<'_, f64>) {
        let DptcConfig { nh, nv, nlambda } = self.config;
        assert_eq!(a.rows(), nh, "left operand must have Nh = {nh} rows");
        assert_eq!(
            a.cols(),
            nlambda,
            "left operand rows must have N_lambda = {nlambda} entries"
        );
        assert_eq!(
            b.rows(),
            nlambda,
            "right operand must have N_lambda = {nlambda} rows"
        );
        assert_eq!(
            b.cols(),
            nv,
            "right operand rows must have Nv = {nv} entries"
        );
    }
}

/// Normalizes a gathered tile into `[-1, 1]`, quantizes it (the DAC),
/// and draws its magnitude-noise realization — one encoding per tile
/// load, shared by every product the loaded tile participates in.
///
/// Only the valid region is encoded: `outer` rows of `inner` entries at
/// stride `stride` (`stride = N_lambda` for both the row-major `A` tile
/// and the transposed `B` tile). Zero-padded entries are never driven
/// onto a modulator, so they consume no DAC work and no noise draws —
/// and `quantize_unit(0) == 0` exactly, so skipping them is
/// value-identical on the noiseless path.
/// Reusable tile staging buffers for [`Dptc::gemm_tiled_analytic`].
///
/// One instance per thread (see [`TILE_SCRATCH`]): the analytic GEMM is
/// called hundreds of times per decoded token with identical small
/// shapes, and per-call `Vec` allocation was a measurable slice of the
/// decode hot path. Buffers only ever grow; callers slice to the exact
/// lengths they need and must not read beyond the region they wrote
/// (stale data from earlier calls is deliberately left in place).
#[derive(Default)]
struct TileScratch {
    b_tiles: Vec<f64>,
    beta_b: Vec<f64>,
    a_tiles: Vec<f64>,
    beta_a: Vec<f64>,
    tile_out: Vec<f64>,
    /// Bit-width the dequantization table below was built for (0 = none).
    quant_bits: u32,
    /// `dequant[q] == q / levels` for `q in 0..=levels`, computed with
    /// the same division [`Quantizer::quantize_unit`] performs — so a
    /// table lookup reproduces the quantizer's output bit-for-bit while
    /// skipping the per-element divide and `round()` (see
    /// [`encode_tile`]).
    dequant: Vec<f64>,
}

impl TileScratch {
    /// Grows each buffer to at least the requested length, rebuilds the
    /// dequantization table if the bit-width changed, and returns
    /// exact-length mutable slices plus the table.
    #[allow(clippy::type_complexity)]
    fn prepare(
        &mut self,
        bits: u32,
        b_tiles: usize,
        beta_b: usize,
        a_tiles: usize,
        beta_a: usize,
        tile_out: usize,
    ) -> (
        &mut [f64],
        &mut [f64],
        &mut [f64],
        &mut [f64],
        &mut [f64],
        &[f64],
    ) {
        fn grow(buf: &mut Vec<f64>, len: usize) -> &mut [f64] {
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            &mut buf[..len]
        }
        if self.quant_bits != bits {
            let levels = (1u32 << (bits - 1)) - 1;
            self.dequant.clear();
            self.dequant
                .extend((0..=levels).map(|q| f64::from(q) / f64::from(levels)));
            self.quant_bits = bits;
        }
        (
            grow(&mut self.b_tiles, b_tiles),
            grow(&mut self.beta_b, beta_b),
            grow(&mut self.a_tiles, a_tiles),
            grow(&mut self.beta_a, beta_a),
            grow(&mut self.tile_out, tile_out),
            &self.dequant,
        )
    }
}

thread_local! {
    /// Per-thread tile scratch — parallel row-block workers each get
    /// their own, so the hot path stays contention-free.
    static TILE_SCRATCH: std::cell::RefCell<TileScratch> =
        std::cell::RefCell::new(TileScratch::default());
}

/// DAC quantization here is a bit-for-bit reimplementation of
/// [`Quantizer::quantize_unit`] tuned for this loop: the division by
/// `levels` becomes a lookup in the precomputed `dequant` table (built
/// with the very same division), and `round()` — a libm call at the
/// baseline x86-64 target — becomes an add-and-truncate on the absolute
/// value with the sign restored by `copysign` (which also reproduces
/// `round`'s signed zero for negative inputs rounding to zero). The
/// add-and-truncate equals round-half-away-from-zero exactly because
/// `|x| <= levels < 2^15`, so `|x| + 0.5` is computed without rounding
/// error.
#[allow(clippy::too_many_arguments)]
fn encode_tile(
    tile: &mut [f64],
    outer: usize,
    inner: usize,
    stride: usize,
    beta: f64,
    levels: f64,
    dequant: &[f64],
    noise: &NoiseModel,
    rng: &mut GaussianSampler,
) {
    let inv = 1.0 / beta;
    let quantize = |v: f64| {
        let x = (v * inv).clamp(-1.0, 1.0) * levels;
        dequant[(x.abs() + 0.5) as usize].copysign(x)
    };
    for o in 0..outer {
        let row = &mut tile[o * stride..o * stride + inner];
        if noise.sigma_magnitude > 0.0 {
            for v in row.iter_mut() {
                *v = perturb_magnitude(quantize(*v), noise.sigma_magnitude, rng);
            }
        } else {
            for v in row.iter_mut() {
                *v = quantize(*v);
            }
        }
    }
}

/// The per-output DDot loop shared by the one-shot MM and the tiled
/// GEMM hot path. Operands are already magnitude-perturbed: `a_rows` is
/// row-major with `nlambda`-entry rows, `bt_rows` is the *transposed*
/// right operand (`nlambda`-entry rows), so both stream contiguously.
/// Only `rows x cols` outputs are detected — a decode-style `m = 1`
/// strip computes one row, not the full `Nh x Nv` crossbar — and each
/// output draws one phase realization (folded into the precomputed
/// angle-addition tables — see [`WavelengthCoefficients::msin`]) and
/// one systematic realization; the wavelength loop is a branch-free
/// multiply-add chain over two interleaved accumulators (the strict
/// single-chain version serializes on FP-add latency). `out` keeps row
/// stride `out_stride` (`>= cols`); entries beyond `rows x cols` are
/// left untouched.
#[allow(clippy::too_many_arguments)]
fn noisy_mm_rows(
    a_rows: &[f64],
    bt_rows: &[f64],
    rows: usize,
    cols: usize,
    out_stride: usize,
    nlambda: usize,
    lambda_used: usize,
    noise: &NoiseModel,
    coeffs: &WavelengthCoefficients,
    rng: &mut GaussianSampler,
    out: &mut [f64],
) {
    let drift = noise.sigma_phase_rad > 0.0;
    let mult0 = &coeffs.mult0[..lambda_used];
    let msin = &coeffs.msin[..lambda_used];
    let imb = &coeffs.imbalance[..lambda_used];
    for i in 0..rows {
        let a_row = &a_rows[i * nlambda..i * nlambda + lambda_used];
        let out_row = &mut out[i * out_stride..i * out_stride + cols];
        for (j, out_ij) in out_row.iter_mut().enumerate() {
            let b_col = &bt_rows[j * nlambda..j * nlambda + lambda_used];
            let (sg, cg) = if drift {
                rng.normal(0.0, noise.sigma_phase_rad).sin_cos()
            } else {
                (0.0, 1.0)
            };
            let (mut io0, mut io1) = (0.0, 0.0);
            let mut l = 0;
            while l + 1 < lambda_used {
                let (x0, y0) = (a_row[l], b_col[l]);
                let (x1, y1) = (a_row[l + 1], b_col[l + 1]);
                io0 += (mult0[l] * cg - msin[l] * sg) * x0 * y0 + imb[l] * (x0 * x0 - y0 * y0);
                io1 += (mult0[l + 1] * cg - msin[l + 1] * sg) * x1 * y1
                    + imb[l + 1] * (x1 * x1 - y1 * y1);
                l += 2;
            }
            if l < lambda_used {
                let (x, y) = (a_row[l], b_col[l]);
                io0 += (mult0[l] * cg - msin[l] * sg) * x * y + imb[l] * (x * x - y * y);
            }
            *out_ij = crate::ddot::apply_systematic(io0 + io1, noise, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(rng: &mut GaussianSampler, r: usize, c: usize) -> Matrix64 {
        Matrix64::from_fn(r, c, |_, _| rng.uniform_in(-1.0, 1.0))
    }

    fn rand_scaled(rng: &mut GaussianSampler, r: usize, c: usize, scale: f64) -> Matrix64 {
        Matrix64::from_fn(r, c, |_, _| rng.uniform_in(-scale, scale))
    }

    fn paper_noisy(seed: u64) -> Fidelity {
        Fidelity::AnalyticNoisy {
            noise: NoiseModel::paper_default(),
            seed,
        }
    }

    #[test]
    fn ideal_matches_reference_matmul() {
        let core = Dptc::new(DptcConfig::new(3, 5, 4));
        let mut rng = GaussianSampler::new(1);
        let a = rand_matrix(&mut rng, 3, 4);
        let b = rand_matrix(&mut rng, 4, 5);
        let out = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
        let reference = lt_core::reference_gemm(&a.view(), &b.view());
        assert!(out.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn eq6_saving_factor() {
        // Nh = Nv = N_lambda = 12 => 12x less encoding cost (paper text).
        let core = Dptc::new(DptcConfig::lt_paper());
        let cost = core.encoding_cost();
        assert_eq!(cost.shared, 12 * 12 + 12 * 12);
        assert_eq!(cost.unshared, 2 * 12 * 12 * 12);
        assert!((cost.saving_factor() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn eq6_general_formula() {
        let core = Dptc::new(DptcConfig::new(8, 24, 12));
        let cost = core.encoding_cost();
        let expect = 2.0 * 8.0 * 24.0 / (8.0 + 24.0);
        assert!((cost.saving_factor() - expect).abs() < 1e-12);
    }

    #[test]
    fn tiles_match_eq11() {
        let cfg = DptcConfig::lt_paper();
        // DeiT-T QK^T per head: [197, 64] x [64, 197].
        let t = cfg.tiles_for(197, 64, 197);
        assert_eq!(t, 17 * 6 * 17);
        assert!(cfg.utilization(197, 64, 197) < 1.0);
        // Perfectly divisible workload has utilization 1.
        assert!((cfg.utilization(24, 24, 24) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_matmul_tracks_ideal() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(5);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let ideal = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
        let noisy = core.matmul(a.view(), b.view(), &paper_noisy(7));
        let max_err = ideal.max_abs_diff(&noisy);
        // Errors stay in the few-percent band relative to the length-12
        // dot-product scale.
        assert!(max_err > 0.0 && max_err < 0.8, "max_err {max_err}");
    }

    #[test]
    fn circuit_level_matmul_tracks_ideal() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(21);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let ideal = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
        let circuit = core.matmul(
            a.view(),
            b.view(),
            &Fidelity::Circuit {
                noise: NoiseModel::paper_default(),
                seed: 9,
            },
        );
        let analytic = core.matmul(a.view(), b.view(), &paper_noisy(9));
        let max_circuit = circuit.max_abs_diff(&ideal);
        let max_analytic = analytic.max_abs_diff(&ideal);
        // Both fidelities stay in the same error envelope.
        assert!(
            max_circuit > 0.0 && max_circuit < 0.8,
            "circuit err {max_circuit}"
        );
        assert!(
            max_circuit < 3.0 * max_analytic.max(0.05),
            "circuit {max_circuit} vs analytic {max_analytic}"
        );
    }

    #[test]
    fn circuit_level_matmul_noiseless_has_only_dispersion_bias() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(23);
        let a = rand_matrix(&mut rng, 12, 12);
        let b = rand_matrix(&mut rng, 12, 12);
        let ideal = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
        let noise =
            NoiseModel::noiseless().with_dispersion(lt_photonics::wdm::DispersionModel::paper());
        let circuit = core.matmul(a.view(), b.view(), &Fidelity::Circuit { noise, seed: 0 });
        assert!(
            circuit.max_abs_diff(&ideal) < 0.05,
            "max dispersion bias {}",
            circuit.max_abs_diff(&ideal)
        );
    }

    #[test]
    fn noiseless_gemm_equals_quantized_reference() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(9);
        let (m, d, n) = (20, 30, 17);
        let a = rand_scaled(&mut rng, m, d, 2.0);
        let b = rand_scaled(&mut rng, d, n, 3.0);
        let out = core.gemm_quantized(a.view(), b.view(), 8);
        // Compare against a straightforward f64 matmul; 8-bit quantization
        // keeps per-tile error small.
        let exact = lt_core::reference_gemm(&a.view(), &b.view());
        assert!(
            out.max_abs_diff(&exact) < 0.3,
            "max quantization error {}",
            out.max_abs_diff(&exact)
        );
    }

    #[test]
    fn ideal_gemm_is_bit_exact_with_shared_kernel() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(31);
        let a = rand_scaled(&mut rng, 19, 37, 2.0);
        let b = rand_scaled(&mut rng, 37, 23, 2.0);
        let out = core.gemm(a.view(), b.view(), 4, &Fidelity::Ideal);
        assert_eq!(out, a.matmul(&b), "Ideal fidelity is the exact contract");
    }

    #[test]
    fn gemm_handles_non_divisible_edges() {
        let core = Dptc::new(DptcConfig::new(4, 4, 4));
        let mut rng = GaussianSampler::new(11);
        let (m, d, n) = (5, 7, 3);
        let a = rand_matrix(&mut rng, m, d);
        let b = rand_matrix(&mut rng, d, n);
        let out = core.gemm(
            a.view(),
            b.view(),
            8,
            &Fidelity::AnalyticNoisy {
                noise: NoiseModel::noiseless(),
                seed: 0,
            },
        );
        assert_eq!(out.shape(), (m, n));
        let exact = lt_core::reference_gemm(&a.view(), &b.view());
        assert!(out.max_abs_diff(&exact) < 0.1);
    }

    #[test]
    fn zero_tiles_are_skipped() {
        let core = Dptc::new(DptcConfig::new(4, 4, 4));
        let a = Matrix64::zeros(4, 4);
        let b = Matrix64::from_fn(4, 4, |_, _| 1.0);
        let out = core.gemm(a.view(), b.view(), 4, &paper_noisy(3));
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gemm_noise_is_seed_deterministic() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let mut rng = GaussianSampler::new(13);
        let a = rand_matrix(&mut rng, 24, 24);
        let b = rand_matrix(&mut rng, 24, 24);
        let o1 = core.gemm(a.view(), b.view(), 4, &paper_noisy(42));
        let o2 = core.gemm(a.view(), b.view(), 4, &paper_noisy(42));
        assert_eq!(o1, o2);
    }

    #[test]
    #[should_panic(expected = "must have Nh")]
    fn wrong_shapes_rejected() {
        let core = Dptc::new(DptcConfig::lt_paper());
        let a = Matrix64::zeros(5, 12);
        let b = Matrix64::zeros(12, 12);
        core.matmul(a.view(), b.view(), &Fidelity::Ideal);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_config_rejected() {
        DptcConfig::new(0, 12, 12);
    }
}
