//! The Lightening-Transformer core contribution: **DDot** and **DPTC**.
//!
//! * [`DDot`] is a dynamically-operated, full-range optical dot-product
//!   engine (paper Section III-A): both operands are encoded as coherent
//!   WDM signals, interfere in a 50:50 directional coupler behind a -90
//!   degree phase shifter, and are read out by balanced photodetection.
//!   The differential photocurrent carries the signed dot product in one
//!   shot — no weight mapping, no device programming, no non-negative
//!   decomposition.
//! * [`Dptc`] tiles DDot units into a crossbar (Section III-B) that
//!   computes an `[Nh, N_lambda] x [N_lambda, Nv]` matrix product per cycle
//!   while broadcasting each modulated operand to a whole row/column of
//!   units, amortizing the encoding cost (Eq. 6).
//!
//! Three simulation fidelities are provided:
//!
//! 1. **Ideal** — exact arithmetic (the functional contract).
//! 2. **Analytic noisy** — the paper's Eq. 9 transfer with encoding
//!    magnitude/phase noise, per-wavelength dispersion, and systematic
//!    output noise. This is the model used for all accuracy experiments.
//! 3. **Circuit-level** — field propagation through the actual device
//!    transfer matrices from [`lt_photonics`] (our substitute for the
//!    paper's Lumerical INTERCONNECT validation).
//!
//! # Example
//!
//! ```
//! use lt_dptc::{Dptc, DptcConfig, NoiseModel};
//!
//! let core = Dptc::new(DptcConfig::lt_paper()); // 12 x 12 x 12
//! let a = vec![vec![0.25; 12]; 12];
//! let b = vec![vec![-0.5; 12]; 12];
//! let ideal = core.matmul_ideal(&a, &b);
//! assert!((ideal[0][0] - 12.0 * 0.25 * -0.5).abs() < 1e-12);
//!
//! let noisy = core.matmul_noisy(&a, &b, &NoiseModel::paper_default(), 7);
//! let err = (noisy[0][0] - ideal[0][0]).abs();
//! assert!(err < 0.5, "noise is bounded at the paper's operating point");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#![allow(clippy::needless_range_loop)] // index loops are the idiom for matrix kernels

pub mod circuit;
pub mod ddot;
pub mod dptc;
pub mod faults;
pub mod noise_model;
pub mod quant;

pub use circuit::DdotCircuit;
pub use ddot::DDot;
pub use dptc::{Dptc, DptcConfig, EncodingCost};
pub use faults::{ChannelFault, FaultSet};
pub use noise_model::NoiseModel;
pub use quant::Quantizer;
