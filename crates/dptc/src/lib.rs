//! The Lightening-Transformer core contribution: **DDot** and **DPTC**.
//!
//! * [`DDot`] is a dynamically-operated, full-range optical dot-product
//!   engine (paper Section III-A): both operands are encoded as coherent
//!   WDM signals, interfere in a 50:50 directional coupler behind a -90
//!   degree phase shifter, and are read out by balanced photodetection.
//!   The differential photocurrent carries the signed dot product in one
//!   shot — no weight mapping, no device programming, no non-negative
//!   decomposition.
//! * [`Dptc`] tiles DDot units into a crossbar (Section III-B) that
//!   computes an `[Nh, N_lambda] x [N_lambda, Nv]` matrix product per cycle
//!   while broadcasting each modulated operand to a whole row/column of
//!   units, amortizing the encoding cost (Eq. 6).
//!
//! Simulation fidelity is a *value*, not a method: [`Fidelity`] selects
//! between exact arithmetic, the paper's analytic Eq. 9 noise transfer,
//! and circuit-level field propagation, all behind the same
//! [`Dptc::matmul`] / [`Dptc::gemm`] API. [`DptcBackend`] additionally
//! exposes the core as a pluggable [`lt_core::ComputeBackend`] so the
//! whole workspace (NN engines, baselines, experiments) can swap compute
//! physics without touching algorithm code.
//!
//! # Example
//!
//! ```
//! use lt_core::Matrix64;
//! use lt_dptc::{Dptc, DptcConfig, Fidelity, NoiseModel};
//!
//! let core = Dptc::new(DptcConfig::lt_paper()); // 12 x 12 x 12
//! let a = Matrix64::from_fn(12, 12, |_, _| 0.25);
//! let b = Matrix64::from_fn(12, 12, |_, _| -0.5);
//! let ideal = core.matmul(a.view(), b.view(), &Fidelity::Ideal);
//! assert!((ideal.get(0, 0) - 12.0 * 0.25 * -0.5).abs() < 1e-12);
//!
//! let noisy = core.matmul(a.view(), b.view(), &Fidelity::paper_noisy(7));
//! let err = (noisy.get(0, 0) - ideal.get(0, 0)).abs();
//! assert!(err < 0.5, "noise is bounded at the paper's operating point");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![allow(clippy::needless_range_loop)] // index loops are the idiom for matrix kernels

pub mod backend;
pub mod circuit;
pub mod ddot;
pub mod dptc;
pub mod faults;
pub mod noise_model;
pub mod quant;

pub use backend::{DptcBackend, Fidelity};
pub use circuit::DdotCircuit;
pub use ddot::DDot;
pub use dptc::{Dptc, DptcConfig, EncodingCost};
pub use faults::{ChannelFault, FaultSet};
pub use noise_model::NoiseModel;
pub use quant::Quantizer;
